// Minimal JSON reader for benchdiff — just enough to load the bench
// record arrays the BenchReport envelope emits (tools/benchdiff/README in
// docs/OBSERVABILITY.md). Recursive descent over the full value grammar,
// numbers as double, no external dependencies. Not a general-purpose
// parser: inputs are trusted bench output, so the error handling aims at
// pointing a human to the byte, not at hostile documents.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tiv::benchdiff::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse(std::string* error) {
    std::optional<Value> v = parse_value();
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing content after document");
        v.reset();
      }
    }
    if (!v.has_value() && error != nullptr) *error = error_;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("bad literal");
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    Value v;
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null")) return std::nullopt;
        return v;
      case 't':
        if (!literal("true")) return std::nullopt;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) return std::nullopt;
        v.kind = Value::Kind::kBool;
        return v;
      case '"':
        return parse_string();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_number() {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) {
      fail("bad number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::optional<Value> parse_string() {
    ++pos_;  // opening quote
    Value v;
    v.kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u': {
          // BMP-only \uXXXX, encoded as UTF-8 (bench output never emits
          // these; accepted so hand-written fixtures do not trip us).
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return std::nullopt;
            }
          }
          if (cp < 0x80) {
            v.string.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            v.string.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            v.string.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            v.string.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            v.string.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            v.string.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::optional<Value> elem = parse_value();
      if (!elem.has_value()) return std::nullopt;
      v.array.push_back(std::move(*elem));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']')) return std::nullopt;
      return v;
    }
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<Value> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      std::optional<Value> val = parse_value();
      if (!val.has_value()) return std::nullopt;
      v.object[key->string] = std::move(*val);
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}')) return std::nullopt;
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace detail

/// Parses one JSON document. On failure returns nullopt and, when `error`
/// is non-null, a one-line description with the byte offset.
inline std::optional<Value> parse(std::string_view text, std::string* error) {
  return detail::Parser(text).parse(error);
}

}  // namespace tiv::benchdiff::json
