#include "benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>

namespace tiv::benchdiff {
namespace {

/// Stable text form of a key-field value. Integral doubles print as
/// integers so "n=512" matches whether the writer emitted 512 or 512.0.
std::string value_text(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kString:
      return v.string;
    case json::Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    case json::Value::Kind::kNumber: {
      if (std::nearbyint(v.number) == v.number &&
          std::abs(v.number) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.number));
        return buf;
      }
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6g", v.number);
      return buf;
    }
    default:
      return "?";
  }
}

/// "section=kernel n=512 threads=2" — the record's identity under the
/// configured key fields (absent fields simply don't contribute).
std::string key_of(const json::Value& record,
                   const std::vector<std::string>& key_fields) {
  std::string key;
  for (const std::string& f : key_fields) {
    const json::Value* v = record.find(f);
    if (v == nullptr) continue;
    if (!key.empty()) key += ' ';
    key += f;
    key += '=';
    key += value_text(*v);
  }
  return key;
}

bool is_meta(const json::Value& record) {
  const json::Value* s = record.find("section");
  return s != nullptr && s->is_string() && s->string == "meta";
}

const json::Value* meta_of(const json::Value& doc) {
  if (!doc.is_array() || doc.array.empty()) return nullptr;
  const json::Value& first = doc.array.front();
  return is_meta(first) ? &first : nullptr;
}

double num_field(const json::Value& record, const std::string& name,
                 bool* present) {
  const json::Value* v = record.find(name);
  if (v == nullptr || !v->is_number()) {
    *present = false;
    return 0.0;
  }
  *present = true;
  return v->number;
}

MetricRow compare(const MetricSpec& spec, const std::string& key, double base,
                  double cur) {
  MetricRow row;
  row.record_key = key;
  row.metric = spec.name;
  row.op = spec.op;
  row.limit = spec.limit;
  row.base = base;
  row.cur = cur;
  row.ratio = base != 0.0 ? cur / base : 0.0;
  switch (spec.op) {
    case '<':
      if (base <= 0.0) {
        // A 0.000 min-of-k timing has no usable ratio; flag, don't gate.
        row.note = "base=0 (not comparable)";
      } else {
        row.pass = row.ratio <= spec.limit;
      }
      break;
    case '>':
      if (base <= 0.0) {
        row.note = "base=0 (not comparable)";
      } else {
        row.pass = row.ratio >= spec.limit;
      }
      break;
    case '=':
      // Relative tolerance; absolute when the baseline is exactly zero
      // (deterministic counters that must stay zero gate with "x=0").
      row.pass = base != 0.0 ? std::abs(row.ratio - 1.0) <= spec.limit
                             : std::abs(cur) <= spec.limit;
      break;
    default:
      row.pass = false;
      row.note = "bad op";
      break;
  }
  return row;
}

}  // namespace

std::optional<MetricSpec> parse_metric_spec(std::string_view spec) {
  const std::size_t pos = spec.find_first_of("<>=");
  if (pos == 0 || pos == std::string_view::npos ||
      pos + 1 >= spec.size()) {
    return std::nullopt;
  }
  MetricSpec out;
  out.name = std::string(spec.substr(0, pos));
  out.op = spec[pos];
  const std::string limit_text(spec.substr(pos + 1));
  char* end = nullptr;
  out.limit = std::strtod(limit_text.c_str(), &end);
  if (end != limit_text.c_str() + limit_text.size() ||
      !std::isfinite(out.limit) || out.limit < 0.0) {
    return std::nullopt;
  }
  return out;
}

std::vector<std::string> default_key_fields() {
  return {"section",    "scenario",        "kill_point",
          "kind",       "name",            "series",
          "n",          "hosts",           "threads",
          "tile_dim",   "batch",           "missing_fraction",
          "dirty_fraction", "corrupt_fraction",
          "threshold",  "worst_fraction"};
}

std::vector<std::string> validate(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_array()) {
    problems.push_back("document is not a JSON array of records");
    return problems;
  }
  if (doc.array.empty()) {
    problems.push_back("record array is empty");
    return problems;
  }
  for (std::size_t i = 0; i < doc.array.size(); ++i) {
    const json::Value& r = doc.array[i];
    if (!r.is_object()) {
      problems.push_back("record " + std::to_string(i) + " is not an object");
      continue;
    }
    const json::Value* s = r.find("section");
    if (s == nullptr || !s->is_string() || s->string.empty()) {
      problems.push_back("record " + std::to_string(i) +
                         " lacks a string \"section\"");
    }
  }
  const json::Value* meta = meta_of(doc);
  if (meta == nullptr) {
    problems.push_back("first record is not the {\"section\":\"meta\"} envelope");
    return problems;
  }
  const json::Value* ver = meta->find("schema_version");
  if (ver == nullptr || !ver->is_number()) {
    problems.push_back("meta record lacks a numeric schema_version");
  } else if (static_cast<int>(ver->number) != kSchemaVersion) {
    problems.push_back("unsupported schema_version " +
                       value_text(*ver) + " (tool understands " +
                       std::to_string(kSchemaVersion) + ")");
  }
  const json::Value* bench = meta->find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    problems.push_back("meta record lacks a non-empty bench name");
  }
  return problems;
}

DiffResult diff(const json::Value& baseline, const json::Value& current,
                const DiffOptions& opts) {
  DiffResult result;
  for (const std::string& p : validate(baseline)) {
    result.errors.push_back("baseline: " + p);
  }
  for (const std::string& p : validate(current)) {
    result.errors.push_back("current: " + p);
  }
  if (opts.specs.empty()) {
    result.errors.push_back("no metric specs given");
  }
  if (!result.errors.empty()) {
    result.exit_code = 2;
    return result;
  }

  const json::Value* base_meta = meta_of(baseline);
  const json::Value* cur_meta = meta_of(current);
  const std::string base_bench = base_meta->find("bench")->string;
  const std::string cur_bench = cur_meta->find("bench")->string;
  if (base_bench != cur_bench) {
    result.errors.push_back("bench name mismatch: baseline is \"" +
                            base_bench + "\", current is \"" + cur_bench +
                            "\"");
    result.exit_code = 2;
    return result;
  }

  // Index the current run's records by key. Duplicate keys keep the first
  // and warn — a key-field list too narrow for the bench's sweep.
  std::map<std::string, const json::Value*> cur_by_key;
  for (const json::Value& r : current.array) {
    if (is_meta(r)) continue;
    const std::string key = key_of(r, opts.key_fields);
    if (!cur_by_key.emplace(key, &r).second) {
      result.warnings.push_back("current: duplicate record key \"" + key +
                                "\" (first kept)");
    }
  }

  std::set<std::string> matched;
  for (const json::Value& base_rec : baseline.array) {
    if (is_meta(base_rec)) continue;
    // A record participates if it carries at least one gated metric.
    bool participates = false;
    for (const MetricSpec& spec : opts.specs) {
      bool present = false;
      num_field(base_rec, spec.name, &present);
      participates = participates || present;
    }
    if (!participates) continue;

    const std::string key = key_of(base_rec, opts.key_fields);
    const auto it = cur_by_key.find(key);
    if (it == cur_by_key.end()) {
      result.errors.push_back("baseline record \"" + key +
                              "\" has no match in the current run");
      continue;
    }
    matched.insert(key);
    for (const MetricSpec& spec : opts.specs) {
      bool base_has = false;
      const double base_v = num_field(base_rec, spec.name, &base_has);
      if (!base_has) continue;
      bool cur_has = false;
      const double cur_v = num_field(*it->second, spec.name, &cur_has);
      if (!cur_has) {
        result.errors.push_back("record \"" + key + "\": metric \"" +
                                spec.name +
                                "\" missing from the current run");
        continue;
      }
      result.rows.push_back(compare(spec, key, base_v, cur_v));
    }
  }

  if (result.rows.empty() && result.errors.empty()) {
    result.errors.push_back(
        "no baseline record carries any of the gated metrics");
  }
  // New configurations in the current run (extra thread counts on a
  // bigger box) are fine — mention them, don't gate them.
  for (const auto& [key, rec] : cur_by_key) {
    (void)rec;
    if (matched.count(key) == 0) {
      bool participates = false;
      for (const MetricSpec& spec : opts.specs) {
        bool present = false;
        num_field(*cur_by_key[key], spec.name, &present);
        participates = participates || present;
      }
      if (participates) {
        result.warnings.push_back("current record \"" + key +
                                  "\" has no baseline (not gated)");
      }
    }
  }

  if (!result.errors.empty()) {
    result.exit_code = 2;
  } else {
    const bool regressed = std::any_of(
        result.rows.begin(), result.rows.end(),
        [](const MetricRow& r) { return !r.pass; });
    result.exit_code = regressed ? 1 : 0;
  }
  return result;
}

bool self_test(const json::Value& baseline, const DiffOptions& opts,
               std::ostream& out) {
  // Leg 1: the unmodified copy must pass (same doc, ratio 1 everywhere).
  const DiffResult clean = diff(baseline, baseline, opts);
  if (clean.exit_code != 0) {
    out << "self-test FAILED: identical copy did not pass (exit "
        << clean.exit_code << ")\n";
    write_table(out, clean);
    return false;
  }

  // Leg 2: a synthetic 2x regression on every gated metric must trip the
  // gate. '<' metrics double, '>' metrics halve, '=' metrics double —
  // each the canonical "got twice as bad" for its direction.
  json::Value doctored = baseline;
  std::size_t injected = 0;
  for (json::Value& rec : doctored.array) {
    if (is_meta(rec)) continue;
    for (const MetricSpec& spec : opts.specs) {
      const auto it = rec.object.find(spec.name);
      if (it == rec.object.end() || !it->second.is_number()) continue;
      if (it->second.number == 0.0) continue;  // 0 has no 2x
      it->second.number *= spec.op == '>' ? 0.5 : 2.0;
      ++injected;
    }
  }
  if (injected == 0) {
    out << "self-test FAILED: no nonzero gated metric to inject into\n";
    return false;
  }
  const DiffResult doped = diff(baseline, doctored, opts);
  if (doped.exit_code != 1) {
    out << "self-test FAILED: injected 2x regression on " << injected
        << " metric(s) was not flagged (exit " << doped.exit_code
        << ") — thresholds too generous for a 2x canary?\n";
    write_table(out, doped);
    return false;
  }
  out << "self-test OK: clean copy passed, injected 2x regression on "
      << injected << " metric(s) tripped the gate\n";
  return true;
}

void write_table(std::ostream& out, const DiffResult& result) {
  for (const std::string& e : result.errors) out << "ERROR: " << e << "\n";
  for (const std::string& w : result.warnings) out << "warn: " << w << "\n";
  if (!result.rows.empty()) {
    std::size_t key_w = 6;
    std::size_t met_w = 6;
    for (const MetricRow& r : result.rows) {
      key_w = std::max(key_w, r.record_key.size());
      met_w = std::max(met_w, r.metric.size());
    }
    char line[512];
    std::snprintf(line, sizeof(line), "%-*s  %-*s  %12s  %12s  %8s  %-8s  %s\n",
                  static_cast<int>(key_w), "record", static_cast<int>(met_w),
                  "metric", "baseline", "current", "ratio", "gate", "status");
    out << line;
    for (const MetricRow& r : result.rows) {
      char gate[32];
      std::snprintf(gate, sizeof(gate), "%c%g", r.op, r.limit);
      std::snprintf(line, sizeof(line),
                    "%-*s  %-*s  %12.4f  %12.4f  %8.3f  %-8s  %s%s%s\n",
                    static_cast<int>(key_w), r.record_key.c_str(),
                    static_cast<int>(met_w), r.metric.c_str(), r.base, r.cur,
                    r.ratio, gate, r.pass ? "ok" : "REGRESSED",
                    r.note.empty() ? "" : "  ", r.note.c_str());
      out << line;
    }
  }
  const std::size_t failed = static_cast<std::size_t>(
      std::count_if(result.rows.begin(), result.rows.end(),
                    [](const MetricRow& r) { return !r.pass; }));
  out << result.rows.size() << " metric comparison(s), " << failed
      << " regression(s), " << result.errors.size() << " error(s)\n";
}

}  // namespace tiv::benchdiff
