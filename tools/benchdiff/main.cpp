// benchdiff CLI — the CI perf gate (docs/OBSERVABILITY.md).
//
// Modes:
//
//   benchdiff --baseline=FILE --current=FILE --metric=SPEC [--metric=...]
//             [--keys=f1,f2,...]
//       Diff a fresh bench run against a committed baseline. SPEC is
//       name<limit (lower-better ratio), name>limit (higher-better
//       ratio) or name=tolerance (must match). Exit 0 pass, 1 regression,
//       2 structural error.
//
//   benchdiff --validate FILE [FILE...]
//       Check each file against the BenchReport envelope (meta record,
//       schema_version, per-record sections). Exit 0 when all valid,
//       2 otherwise.
//
//   benchdiff --self-test=FILE --metric=SPEC [--metric=...]
//       Prove the gate works: the unmodified file must pass against
//       itself, and a synthetic 2x regression on every gated metric must
//       fail. Exit 0 when both hold, 1 otherwise. Run it with strict
//       thresholds (a spec like ms<1.5): a 2x canary cannot trip a gate
//       looser than 2x.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchdiff.hpp"

namespace {

using tiv::benchdiff::DiffOptions;
using tiv::benchdiff::DiffResult;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::optional<tiv::benchdiff::json::Value> load(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::cerr << "benchdiff: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto doc = tiv::benchdiff::json::parse(text, &error);
  if (!doc.has_value()) {
    std::cerr << "benchdiff: " << path << ": " << error << "\n";
  }
  return doc;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      return out;
    }
    if (pos > start) out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

int usage() {
  std::cerr
      << "usage:\n"
      << "  benchdiff --baseline=FILE --current=FILE --metric=SPEC...\n"
      << "            [--keys=field1,field2,...]\n"
      << "  benchdiff --validate FILE...\n"
      << "  benchdiff --self-test=FILE --metric=SPEC...\n"
      << "SPEC: name<limit | name>limit | name=tolerance\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string self_test_path;
  bool validate_mode = false;
  std::vector<std::string> positional;
  DiffOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = value_of("--current=");
    } else if (arg.rfind("--self-test=", 0) == 0) {
      self_test_path = value_of("--self-test=");
    } else if (arg == "--validate") {
      validate_mode = true;
    } else if (arg.rfind("--metric=", 0) == 0) {
      const auto spec =
          tiv::benchdiff::parse_metric_spec(value_of("--metric="));
      if (!spec.has_value()) {
        std::cerr << "benchdiff: bad metric spec: " << arg << "\n";
        return 2;
      }
      opts.specs.push_back(*spec);
    } else if (arg.rfind("--keys=", 0) == 0) {
      opts.key_fields = split(value_of("--keys="), ',');
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "benchdiff: unknown flag " << arg << "\n";
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (validate_mode) {
    if (positional.empty()) return usage();
    bool all_ok = true;
    for (const std::string& path : positional) {
      const auto doc = load(path);
      if (!doc.has_value()) {
        all_ok = false;
        continue;
      }
      const auto problems = tiv::benchdiff::validate(*doc);
      if (problems.empty()) {
        std::cout << path << ": ok\n";
      } else {
        all_ok = false;
        for (const std::string& p : problems) {
          std::cout << path << ": " << p << "\n";
        }
      }
    }
    return all_ok ? 0 : 2;
  }

  if (!self_test_path.empty()) {
    if (opts.specs.empty()) return usage();
    const auto doc = load(self_test_path);
    if (!doc.has_value()) return 2;
    return tiv::benchdiff::self_test(*doc, opts, std::cout) ? 0 : 1;
  }

  if (baseline_path.empty() || current_path.empty() || !positional.empty()) {
    return usage();
  }
  const auto base = load(baseline_path);
  const auto cur = load(current_path);
  if (!base.has_value() || !cur.has_value()) return 2;
  const DiffResult result = tiv::benchdiff::diff(*base, *cur, opts);
  tiv::benchdiff::write_table(std::cout, result);
  return result.exit_code;
}
