// benchdiff core — baseline diffing for the unified BenchReport JSON
// schema (docs/OBSERVABILITY.md, "Benchmark methodology & baselines").
//
// A diff takes two bench record arrays (baseline from bench/baselines/,
// current from a fresh run), refuses structural mismatches (schema
// version, bench name), matches records by their identifying key fields
// (section, n, threads, ...), and gates each requested metric with a
// per-metric noise threshold:
//
//   spec        meaning                                  pass condition
//   ms<1.8      lower is better, ratio limit             cur <= base * 1.8
//   speedup>0.5 higher is better, ratio floor            cur >= base * 0.5
//   hits=0.001  must match, relative tolerance           |cur/base - 1| <= 0.001
//                                                        (|cur| <= tol when base == 0)
//
// Deterministic counters (seeded-RNG benches) gate with '=' and a tight
// tolerance; wall-clock timings gate with '<' and a generous one — the
// split that makes a 1-core dev-box baseline usable on a 4-core CI runner.
//
// Exit-code contract (the CI gate keys on it):
//   0  all gated metrics within threshold
//   1  at least one metric regressed past its threshold
//   2  structural error: unparseable input, schema-version or bench-name
//      mismatch, a gated baseline record/metric missing from the current
//      run, or a bad metric spec
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json_mini.hpp"

namespace tiv::benchdiff {

/// The schema this tool understands; must equal the envelope's
/// schema_version (BenchReport::kSchemaVersion).
inline constexpr int kSchemaVersion = 1;

/// One gated metric: name + comparison + threshold. See the table above.
struct MetricSpec {
  std::string name;
  char op = '<';       ///< '<' ratio limit, '>' ratio floor, '=' tolerance
  double limit = 0.0;
};

/// Parses "name<1.8" / "name>0.5" / "name=0.001"; nullopt on bad syntax
/// or a non-finite/negative threshold.
std::optional<MetricSpec> parse_metric_spec(std::string_view spec);

/// Default identifying fields: every record's subset of these, rendered
/// "field=value", is its match key. Covers all current perf benches.
std::vector<std::string> default_key_fields();

/// One (record, metric) comparison.
struct MetricRow {
  std::string record_key;
  std::string metric;
  char op = '<';
  double limit = 0.0;
  double base = 0.0;
  double cur = 0.0;
  double ratio = 0.0;  ///< cur/base; 0 when base == 0
  bool pass = true;
  std::string note;  ///< "base=0 (not comparable)" and similar
};

struct DiffOptions {
  std::vector<MetricSpec> specs;
  std::vector<std::string> key_fields = default_key_fields();
};

struct DiffResult {
  int exit_code = 0;  ///< 0 pass, 1 regression, 2 structural
  std::vector<MetricRow> rows;
  std::vector<std::string> errors;    ///< structural (force exit 2)
  std::vector<std::string> warnings;  ///< informational (never gate)
};

/// Diffs two parsed bench documents. Never throws; problems land in
/// errors/warnings and the exit code.
DiffResult diff(const json::Value& baseline, const json::Value& current,
                const DiffOptions& opts);

/// Validates one parsed document against the BenchReport envelope: a
/// non-empty array of objects, first record section "meta" with the
/// supported schema_version and a non-empty bench name, every record
/// carrying a string "section". Returns the violations (empty = valid).
std::vector<std::string> validate(const json::Value& doc);

/// Self-test: doubles every '<'-gated metric of `baseline` into a
/// synthetic current document and verifies the gate (a) passes the
/// unmodified copy and (b) fails the 2x regression. Returns true when the
/// gate behaved; explains itself on `out` either way.
bool self_test(const json::Value& baseline, const DiffOptions& opts,
               std::ostream& out);

/// Renders the per-metric delta table plus errors/warnings.
void write_table(std::ostream& out, const DiffResult& result);

}  // namespace tiv::benchdiff
