// TIV alert: thresholding, accuracy/recall evaluation, and the shrinkage
// signal end-to-end.
#include <cmath>

#include <gtest/gtest.h>

#include "core/alert.hpp"
#include "delayspace/generate.hpp"

namespace tiv::core {
namespace {

TEST(TivAlert, ThresholdLogic) {
  const TivAlert alert(
      [](HostId a, HostId b) { return a == 0 && b == 1 ? 0.3 : 1.2; }, 0.6);
  EXPECT_TRUE(alert.alerted(0, 1));
  EXPECT_FALSE(alert.alerted(1, 2));
  EXPECT_DOUBLE_EQ(alert.ratio(0, 1), 0.3);
}

TEST(TivAlert, NanRatioNeverAlerts) {
  const TivAlert alert(
      [](HostId, HostId) { return std::nan(""); }, 0.6);
  EXPECT_FALSE(alert.alerted(0, 1));
}

std::vector<EdgeRatioSample> crafted_samples() {
  // 10 samples; severities 9,8,...,0; ratios perfectly anti-correlated
  // (ratio = (9 - severity) / 10 + 0.05).
  std::vector<EdgeRatioSample> s;
  for (int i = 0; i < 10; ++i) {
    EdgeRatioSample e;
    e.a = 0;
    e.b = static_cast<HostId>(i + 1);
    e.severity = 9.0 - i;
    e.ratio = static_cast<double>(i) / 10.0 + 0.05;
    s.push_back(e);
  }
  return s;
}

TEST(EvaluateAlert, PerfectPredictorHandComputed) {
  const auto samples = crafted_samples();
  // threshold 0.30 alerts samples with ratio 0.05, 0.15, 0.25: the three
  // highest severities. worst_fraction 0.3 -> worst set = 3 samples.
  const AlertMetrics m = evaluate_alert(samples, 0.3, 0.30);
  EXPECT_EQ(m.alerts, 3u);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(EvaluateAlert, TightThresholdHighAccuracyLowRecall) {
  const auto samples = crafted_samples();
  // threshold 0.1 alerts only the single worst sample; worst set of 30%
  // has 3 members -> accuracy 1, recall 1/3.
  const AlertMetrics m = evaluate_alert(samples, 0.3, 0.10);
  EXPECT_EQ(m.alerts, 1u);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
}

TEST(EvaluateAlert, LooseThresholdFullRecallLowerAccuracy) {
  const auto samples = crafted_samples();
  // threshold 1.0 alerts everything: recall 1, accuracy = worst fraction.
  const AlertMetrics m = evaluate_alert(samples, 0.3, 1.0);
  EXPECT_EQ(m.alerts, 10u);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.accuracy, 0.3, 1e-12);
}

TEST(EvaluateAlert, RecallMonotoneInThreshold) {
  const auto samples = crafted_samples();
  double prev = -1.0;
  for (double t = 0.05; t <= 1.0; t += 0.1) {
    const AlertMetrics m = evaluate_alert(samples, 0.2, t);
    EXPECT_GE(m.recall, prev);
    prev = m.recall;
  }
}

TEST(EvaluateAlert, EmptyAndDegenerateInputs) {
  EXPECT_EQ(evaluate_alert({}, 0.1, 0.5).alerts, 0u);
  const auto samples = crafted_samples();
  EXPECT_EQ(evaluate_alert(samples, 0.0, 0.5).alerts, 0u);
  // Threshold 0: nothing alerted, accuracy degenerates to 0.
  const AlertMetrics none = evaluate_alert(samples, 0.3, 0.0);
  EXPECT_EQ(none.alerts, 0u);
  EXPECT_DOUBLE_EQ(none.accuracy, 0.0);
}

TEST(EvaluateAlert, NanRatiosAreNeverAlerted) {
  auto samples = crafted_samples();
  samples[0].ratio = std::nan("");  // the most severe sample becomes mute
  const AlertMetrics m = evaluate_alert(samples, 0.3, 1.0);
  EXPECT_EQ(m.alerts, 9u);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
}

TEST(AlertEndToEnd, ShrinkageSignalBeatsChance) {
  // On a generated delay space, alerts at a tight threshold must
  // concentrate on genuinely severe edges far beyond the base rate.
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 80;
  p.topology.seed = 51;
  p.hosts.num_hosts = 300;
  p.hosts.seed = 52;
  const auto ds = delayspace::generate_delay_space(p);
  embedding::VivaldiParams vp;
  vp.seed = 3;
  embedding::VivaldiSystem vivaldi(ds.measured, vp);
  vivaldi.run(300);
  const auto samples = collect_ratio_severity_samples(vivaldi, 3000, 11);
  const AlertMetrics m = evaluate_alert(samples, 0.10, 0.5);
  // Random flagging would have accuracy ~0.10; the alert must do much
  // better.
  EXPECT_GT(m.accuracy, 0.3);
  EXPECT_GT(m.alerts, 10u);
}

TEST(CollectSamples, RatiosMatchSystem) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 50;
  p.topology.seed = 53;
  p.hosts.num_hosts = 80;
  p.hosts.seed = 54;
  const auto ds = delayspace::generate_delay_space(p);
  embedding::VivaldiParams vp;
  embedding::VivaldiSystem vivaldi(ds.measured, vp);
  vivaldi.run(50);
  const auto samples = collect_ratio_severity_samples(vivaldi, 100, 13);
  ASSERT_EQ(samples.size(), 100u);
  const TivAnalyzer analyzer(ds.measured);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.ratio, vivaldi.prediction_ratio(s.a, s.b));
    EXPECT_NEAR(s.severity, analyzer.edge_severity(s.a, s.b), 1e-9);
  }
}

}  // namespace
}  // namespace tiv::core
