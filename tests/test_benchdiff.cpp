// benchdiff core (tools/benchdiff): metric-spec grammar, threshold math
// for all three operators (including the base == 0 edge cases), record
// matching and the structural-error contract (missing metric/record,
// schema-version and bench-name mismatch), envelope validation, the
// injected-regression self-test, and the JSON reader it all sits on.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "benchdiff.hpp"
#include "json_mini.hpp"

namespace tiv::benchdiff {
namespace {

json::Value parse_or_die(const std::string& text) {
  std::string error;
  auto v = json::parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error << "\n" << text;
  return v.has_value() ? *v : json::Value{};
}

std::string meta_record(const std::string& bench, int schema = 1) {
  return R"({"section":"meta","schema_version":)" + std::to_string(schema) +
         R"(,"bench":")" + bench + R"("})";
}

// Two-record fixture: one meta, one kernel row with a timing and two
// deterministic counters.
json::Value fixture(double ms, double checksum, double mismatches = 0.0) {
  std::ostringstream doc;
  doc << "[" << meta_record("bench_fix") << ","
      << R"({"section":"kernel","n":256,"ms":)" << ms
      << R"(,"checksum":)" << checksum << R"(,"mismatches":)" << mismatches
      << "}]";
  return parse_or_die(doc.str());
}

DiffOptions specs(const std::string& a, const std::string& b = "",
                  const std::string& c = "") {
  DiffOptions opts;
  for (const std::string& s : {a, b, c}) {
    if (s.empty()) continue;
    auto spec = parse_metric_spec(s);
    EXPECT_TRUE(spec.has_value()) << s;
    if (spec.has_value()) opts.specs.push_back(*spec);
  }
  return opts;
}

// --- Spec grammar -----------------------------------------------------------

TEST(BenchdiffSpec, ParsesAllThreeOperators) {
  auto lt = parse_metric_spec("ms<1.8");
  ASSERT_TRUE(lt.has_value());
  EXPECT_EQ(lt->name, "ms");
  EXPECT_EQ(lt->op, '<');
  EXPECT_DOUBLE_EQ(lt->limit, 1.8);

  auto gt = parse_metric_spec("speedup>0.5");
  ASSERT_TRUE(gt.has_value());
  EXPECT_EQ(gt->op, '>');

  auto eq = parse_metric_spec("hits=0.001");
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->op, '=');
  EXPECT_DOUBLE_EQ(eq->limit, 0.001);
}

TEST(BenchdiffSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_metric_spec("ms").has_value());         // no operator
  EXPECT_FALSE(parse_metric_spec("<1.8").has_value());       // no name
  EXPECT_FALSE(parse_metric_spec("ms<").has_value());        // no limit
  EXPECT_FALSE(parse_metric_spec("ms<abc").has_value());     // bad number
  EXPECT_FALSE(parse_metric_spec("ms<-2").has_value());      // negative
  EXPECT_FALSE(parse_metric_spec("ms<1.8x").has_value());    // trailing junk
}

// --- Threshold math ---------------------------------------------------------

TEST(BenchdiffDiff, RatioLimitGatesLowerIsBetter) {
  const auto base = fixture(10.0, 42.0);
  // 1.5x slower passes a <1.8 gate...
  auto r = diff(base, fixture(15.0, 42.0), specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 0) << r.errors.empty();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0].pass);
  EXPECT_DOUBLE_EQ(r.rows[0].ratio, 1.5);
  // ...2x slower fails it.
  r = diff(base, fixture(20.0, 42.0), specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_FALSE(r.rows[0].pass);
  // Getting faster always passes.
  r = diff(base, fixture(3.0, 42.0), specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 0);
}

TEST(BenchdiffDiff, RatioFloorGatesHigherIsBetter) {
  const auto base = fixture(10.0, 8.0);
  auto r = diff(base, fixture(10.0, 6.0), specs("checksum>0.5"));
  EXPECT_EQ(r.exit_code, 0);  // 0.75x of baseline, above the 0.5 floor
  r = diff(base, fixture(10.0, 3.0), specs("checksum>0.5"));
  EXPECT_EQ(r.exit_code, 1);  // 0.375x: below the floor
}

TEST(BenchdiffDiff, ToleranceGatesDeterministicCounters) {
  const auto base = fixture(10.0, 1000.0);
  auto r = diff(base, fixture(99.0, 1000.0), specs("checksum=0.001"));
  EXPECT_EQ(r.exit_code, 0);  // exact match; timing not gated
  r = diff(base, fixture(10.0, 1000.5), specs("checksum=0.001"));
  EXPECT_EQ(r.exit_code, 0);  // within 0.1% relative tolerance
  r = diff(base, fixture(10.0, 1002.0), specs("checksum=0.001"));
  EXPECT_EQ(r.exit_code, 1);  // 0.2% off: outside
}

TEST(BenchdiffDiff, ZeroBaselineIsAbsoluteForEqualsAndSkippedForRatios) {
  const auto base = fixture(10.0, 42.0, 0.0);
  // '=' with base 0: |cur| <= tol, absolute.
  auto r = diff(base, fixture(10.0, 42.0, 0.0), specs("mismatches=0.5"));
  EXPECT_EQ(r.exit_code, 0);
  r = diff(base, fixture(10.0, 42.0, 3.0), specs("mismatches=0.5"));
  EXPECT_EQ(r.exit_code, 1);
  // '<' with base 0: a ratio is meaningless — pass with a note rather
  // than dividing by zero or failing a brand-new metric.
  r = diff(base, fixture(10.0, 42.0, 3.0), specs("mismatches<2"));
  EXPECT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_FALSE(r.rows[0].note.empty());
}

// --- Structural contract ----------------------------------------------------

TEST(BenchdiffDiff, MissingMetricIsStructural) {
  const auto base = fixture(10.0, 42.0);
  const auto cur = parse_or_die(
      "[" + meta_record("bench_fix") + R"(,{"section":"kernel","n":256}])");
  const auto r = diff(base, cur, specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.errors.empty());
}

TEST(BenchdiffDiff, MissingRecordIsStructural) {
  const auto base = fixture(10.0, 42.0);
  const auto cur = parse_or_die("[" + meta_record("bench_fix") + "]");
  const auto r = diff(base, cur, specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(BenchdiffDiff, ExtraCurrentRecordOnlyWarns) {
  const auto base = fixture(10.0, 42.0);
  const auto cur = parse_or_die(
      "[" + meta_record("bench_fix") +
      R"(,{"section":"kernel","n":256,"ms":10,"checksum":42,"mismatches":0})" +
      R"(,{"section":"kernel","n":512,"ms":80,"checksum":7,"mismatches":0}])");
  const auto r = diff(base, cur, specs("ms<1.8"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.warnings.empty());
}

TEST(BenchdiffDiff, SchemaVersionMismatchIsRejected) {
  const auto base = fixture(10.0, 42.0);
  const auto cur = parse_or_die(
      "[" + meta_record("bench_fix", 999) +
      R"(,{"section":"kernel","n":256,"ms":10,"checksum":42,"mismatches":0}])");
  EXPECT_EQ(diff(base, cur, specs("ms<1.8")).exit_code, 2);
}

TEST(BenchdiffDiff, BenchNameMismatchIsRejected) {
  const auto base = fixture(10.0, 42.0);
  const auto cur = parse_or_die(
      "[" + meta_record("bench_other") +
      R"(,{"section":"kernel","n":256,"ms":10,"checksum":42,"mismatches":0}])");
  EXPECT_EQ(diff(base, cur, specs("ms<1.8")).exit_code, 2);
}

// --- Envelope validation ----------------------------------------------------

TEST(BenchdiffValidate, AcceptsWellFormedEnvelope) {
  EXPECT_TRUE(validate(fixture(10.0, 42.0)).empty());
}

TEST(BenchdiffValidate, RejectsEnvelopeViolations) {
  EXPECT_FALSE(validate(parse_or_die("{}")).empty());   // not an array
  EXPECT_FALSE(validate(parse_or_die("[]")).empty());   // empty
  // First record must be the meta envelope.
  EXPECT_FALSE(
      validate(parse_or_die(R"([{"section":"kernel","ms":1}])")).empty());
  // Unsupported schema version.
  EXPECT_FALSE(
      validate(parse_or_die("[" + meta_record("b", 2) + "]")).empty());
  // Every record needs a string section.
  EXPECT_FALSE(validate(parse_or_die("[" + meta_record("b") + R"(,{"ms":1}])"))
                   .empty());
}

// --- Self-test --------------------------------------------------------------

TEST(BenchdiffSelfTest, StrictGateCatchesInjectedRegression) {
  std::ostringstream out;
  EXPECT_TRUE(self_test(fixture(10.0, 42.0),
                        specs("ms<1.5", "checksum=0.001"), out));
}

TEST(BenchdiffSelfTest, LooseGateFlunksTheCanary) {
  // A <3.0 gate cannot catch the synthetic 2x injection — self_test must
  // report the gate as toothless.
  std::ostringstream out;
  EXPECT_FALSE(self_test(fixture(10.0, 42.0), specs("ms<3.0"), out));
}

// --- write_table smoke ------------------------------------------------------

TEST(BenchdiffTable, RendersRowsAndSummary) {
  const auto r =
      diff(fixture(10.0, 42.0), fixture(20.0, 42.0), specs("ms<1.8"));
  std::ostringstream out;
  write_table(out, r);
  EXPECT_NE(out.str().find("ms"), std::string::npos);
  EXPECT_NE(out.str().find("REGRESSED"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("1 regression(s)"), std::string::npos);
}

// --- JSON reader ------------------------------------------------------------

TEST(BenchdiffJson, ParsesScalarsStringsAndNesting) {
  const auto v = parse_or_die(
      R"({"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null,"e":{"f":"é"}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  ASSERT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("a")->array[2].number, -300.0);
  EXPECT_EQ(v.find("b")->string, "x\ny");
  EXPECT_TRUE(v.find("c")->boolean);
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("e")->find("f")->string, "\xc3\xa9");
}

TEST(BenchdiffJson, ReportsErrorsWithByteOffsets) {
  std::string error;
  EXPECT_FALSE(json::parse("[1,2", &error).has_value());
  EXPECT_NE(error.find("byte"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(json::parse("[1] trailing", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  EXPECT_FALSE(json::parse(R"({"a")", &error).has_value());
  EXPECT_FALSE(json::parse(R"("\q")", &error).has_value());
}

}  // namespace
}  // namespace tiv::benchdiff
