// Matrix helpers, Jacobi SVD, NMF, and IDES.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "delayspace/generate.hpp"
#include "matfact/ides.hpp"
#include "matfact/matrix.hpp"
#include "matfact/nmf.hpp"
#include "matfact/svd.hpp"
#include "util/rng.hpp"

namespace tiv::matfact {
namespace {

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  for (std::size_t i = 0; i < 6; ++i) a.data()[i] = static_cast<double>(i + 1);
  Matrix b(3, 2);
  // [7 8; 9 10; 11 12]
  for (std::size_t i = 0; i < 6; ++i) b.data()[i] = static_cast<double>(i + 7);
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  a.at(0, 2) = 5.0;
  a.at(1, 0) = -1.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(t.transposed().frobenius_distance(a), 0.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(1, 2);
  a.at(0, 0) = 3.0;
  a.at(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(SolveLinear, KnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero on the initial pivot position; succeeds only with row swaps.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(LeastSquares, ExactForConsistentSystem) {
  // Overdetermined but consistent: y = 2x over 4 samples.
  Matrix a(4, 1);
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i, 0) = static_cast<double>(i + 1);
    b[i] = 2.0 * static_cast<double>(i + 1);
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-6);
}

TEST(LeastSquares, MinimizesResidual) {
  // y ~= 1*x + noise; the fit must beat both 0 and 2 as slopes.
  Matrix a(5, 1);
  std::vector<double> b{1.1, 1.9, 3.2, 3.8, 5.1};
  for (std::size_t i = 0; i < 5; ++i) a.at(i, 0) = static_cast<double>(i + 1);
  const auto x = solve_least_squares(a, b);
  auto residual = [&](double slope) {
    double ss = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      const double r = b[i] - slope * a.at(i, 0);
      ss += r * r;
    }
    return ss;
  };
  EXPECT_LT(residual(x[0]), residual(0.0));
  EXPECT_LT(residual(x[0]), residual(2.0));
}

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.uniform(-10.0, 10.0);
  return m;
}

TEST(Svd, ReconstructsExactly) {
  const Matrix a = random_matrix(8, 5, 3);
  const SvdResult svd = jacobi_svd(a);
  EXPECT_LT(svd.reconstruct().frobenius_distance(a), 1e-8);
}

TEST(Svd, SingularValuesSortedDescendingNonNegative) {
  const Matrix a = random_matrix(10, 6, 4);
  const SvdResult svd = jacobi_svd(a);
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], 0.0);
    if (i > 0) EXPECT_LE(svd.sigma[i], svd.sigma[i - 1]);
  }
}

TEST(Svd, ColumnsAreOrthonormal) {
  const Matrix a = random_matrix(9, 4, 5);
  const SvdResult svd = jacobi_svd(a);
  for (std::size_t c1 = 0; c1 < 4; ++c1) {
    for (std::size_t c2 = c1; c2 < 4; ++c2) {
      double udot = 0.0;
      double vdot = 0.0;
      for (std::size_t r = 0; r < 9; ++r) udot += svd.u.at(r, c1) * svd.u.at(r, c2);
      for (std::size_t r = 0; r < 4; ++r) vdot += svd.v.at(r, c1) * svd.v.at(r, c2);
      const double expected = c1 == c2 ? 1.0 : 0.0;
      EXPECT_NEAR(udot, expected, 1e-8);
      EXPECT_NEAR(vdot, expected, 1e-8);
    }
  }
}

TEST(Svd, TruncatedRankOfLowRankMatrixIsExact) {
  // Build an exactly rank-2 matrix and check the rank-2 truncation recovers
  // it while rank-1 does not.
  const Matrix u = random_matrix(7, 2, 6);
  const Matrix v = random_matrix(2, 5, 7);
  const Matrix a = u.multiply(v);
  const SvdResult svd = jacobi_svd(a);
  EXPECT_LT(svd.reconstruct(2).frobenius_distance(a), 1e-8);
  EXPECT_GT(svd.reconstruct(1).frobenius_distance(a), 1e-3);
  EXPECT_LT(svd.sigma[2], 1e-8);
}

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = 1.0;
  a.at(2, 2) = 2.0;
  const SvdResult svd = jacobi_svd(a);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-10);
  EXPECT_NEAR(svd.sigma[2], 1.0, 1e-10);
}

TEST(Nmf, FactorsAreNonNegative) {
  Matrix a = random_matrix(10, 8, 8);
  for (double& v : a.data()) v = std::abs(v);
  NmfParams p;
  p.rank = 4;
  const NmfResult r = nmf(a, p);
  for (double v : r.w.data()) EXPECT_GE(v, 0.0);
  for (double v : r.h.data()) EXPECT_GE(v, 0.0);
}

TEST(Nmf, ErrorDecreasesWithRank) {
  Matrix a = random_matrix(12, 12, 9);
  for (double& v : a.data()) v = std::abs(v);
  NmfParams p1;
  p1.rank = 1;
  p1.max_iters = 300;
  NmfParams p8;
  p8.rank = 8;
  p8.max_iters = 300;
  EXPECT_GT(nmf(a, p1).final_error, nmf(a, p8).final_error);
}

TEST(Nmf, NearExactOnLowRankNonNegativeMatrix) {
  Matrix u = random_matrix(9, 2, 10);
  Matrix v = random_matrix(2, 9, 11);
  for (double& x : u.data()) x = std::abs(x);
  for (double& x : v.data()) x = std::abs(x);
  const Matrix a = u.multiply(v);
  NmfParams p;
  p.rank = 3;
  p.max_iters = 2000;
  p.rel_tolerance = 1e-9;
  const NmfResult r = nmf(a, p);
  EXPECT_LT(r.final_error / a.frobenius_norm(), 0.02);
}

delayspace::DelaySpace test_space() {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = 13;
  p.hosts.num_hosts = 150;
  p.hosts.seed = 14;
  // These tests validate the factorization mechanics; satellite hosts and
  // measurement artifacts legitimately wreck inner-product fits and are
  // exercised by the figure benches instead.
  p.hosts.satellite_access_prob = 0.0;
  p.hosts.under_measurement_prob = 0.0;
  return delayspace::generate_delay_space(p);
}

TEST(Ides, PredictionsAreNonNegative) {
  const auto ds = test_space();
  const Ides ides(ds.measured, {});
  for (delayspace::HostId i = 0; i < 20; ++i) {
    for (delayspace::HostId j = 0; j < 20; ++j) {
      EXPECT_GE(ides.predicted(i, j), 0.0);
    }
  }
}

TEST(Ides, LandmarkPairsWellApproximated) {
  const auto ds = test_space();
  IdesParams p;
  p.rank = 12;
  p.num_landmarks = 24;
  const Ides ides(ds.measured, p);
  double rel_sum = 0.0;
  std::size_t count = 0;
  for (auto a : ides.landmarks()) {
    for (auto b : ides.landmarks()) {
      if (a == b || !ds.measured.has(a, b)) continue;
      const double measured = ds.measured.at(a, b);
      rel_sum += std::abs(ides.predicted(a, b) - measured) / measured;
      ++count;
    }
  }
  // Rank-12 factorization of a 24x24 landmark matrix keeps most of the
  // energy.
  EXPECT_LT(rel_sum / static_cast<double>(count), 0.35);
}

TEST(Ides, BetterThanConstantPredictor) {
  const auto ds = test_space();
  const Ides ides(ds.measured, {});
  // Compare against predicting the global mean everywhere.
  double mean = 0.0;
  std::size_t n = 0;
  for (const double d : ds.measured.all_delays()) {
    mean += d;
    ++n;
  }
  mean /= static_cast<double>(n);
  double ides_err = 0.0;
  double const_err = 0.0;
  for (delayspace::HostId i = 0; i < ds.measured.size(); ++i) {
    for (delayspace::HostId j = i + 1; j < ds.measured.size(); ++j) {
      if (!ds.measured.has(i, j)) continue;
      const double d = ds.measured.at(i, j);
      ides_err += std::abs(ides.predicted(i, j) - d);
      const_err += std::abs(mean - d);
    }
  }
  EXPECT_LT(ides_err, const_err);
}

TEST(Ides, NmfBackendWorks) {
  const auto ds = test_space();
  IdesParams p;
  p.method = IdesParams::Method::kNmf;
  const Ides ides(ds.measured, p);
  double sum = 0.0;
  for (delayspace::HostId i = 0; i < 10; ++i) {
    sum += ides.predicted(i, i + 1);
  }
  EXPECT_GT(sum, 0.0);  // not degenerate all-zero
}

TEST(Ides, ParameterValidation) {
  const auto ds = test_space();
  IdesParams too_many;
  too_many.num_landmarks = 10000;
  EXPECT_THROW(Ides(ds.measured, too_many), std::invalid_argument);
  IdesParams rank_high;
  rank_high.rank = 64;
  rank_high.num_landmarks = 32;
  EXPECT_THROW(Ides(ds.measured, rank_high), std::invalid_argument);
}

// Rank sweep: IDES aggregate accuracy improves (or at least does not
// degrade much) with rank.
class IdesRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IdesRankSweep, ReasonableRelativeError) {
  const auto ds = test_space();
  IdesParams p;
  p.rank = GetParam();
  p.num_landmarks = 32;
  const Ides ides(ds.measured, p);
  double rel = 0.0;
  std::size_t count = 0;
  Rng rng(1);
  for (int k = 0; k < 2000; ++k) {
    const auto i = static_cast<delayspace::HostId>(
        rng.uniform_index(ds.measured.size()));
    const auto j = static_cast<delayspace::HostId>(
        rng.uniform_index(ds.measured.size()));
    if (i == j || !ds.measured.has(i, j)) continue;
    rel += std::abs(ides.predicted(i, j) - ds.measured.at(i, j)) /
           ds.measured.at(i, j);
    ++count;
  }
  // Loose sanity bound: high ranks overfit the 32-landmark least-squares
  // fits, so accuracy is not monotone in rank (IDES is a strawman, and the
  // paper's Fig. 15 shows it losing to Vivaldi).
  EXPECT_LT(rel / static_cast<double>(count), 1.5);
}

INSTANTIATE_TEST_SUITE_P(Ranks, IdesRankSweep,
                         ::testing::Values(4u, 8u, 16u));

}  // namespace
}  // namespace tiv::matfact
