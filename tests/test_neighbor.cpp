// Neighbor-selection harness and the Meridian experiment wrapper.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "delayspace/generate.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "neighbor/selection.hpp"

namespace tiv::neighbor {
namespace {

DelayMatrix line_matrix(const std::vector<float>& pos) {
  DelayMatrix m(static_cast<HostId>(pos.size()));
  for (HostId i = 0; i < pos.size(); ++i) {
    for (HostId j = i + 1; j < pos.size(); ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]));
    }
  }
  return m;
}

TEST(PercentagePenalty, HandComputed) {
  const DelayMatrix m = line_matrix({0, 10, 30, 100});
  // Client 0; candidates {1, 2, 3}: optimal is node 1 at 10 ms. Selecting
  // node 2 (30 ms) costs (30-10)*100/10 = 200%.
  EXPECT_DOUBLE_EQ(percentage_penalty(m, 0, 2, {1, 2, 3}), 200.0);
  EXPECT_DOUBLE_EQ(percentage_penalty(m, 0, 1, {1, 2, 3}), 0.0);
}

TEST(PercentagePenalty, NanWhenUnmeasurable) {
  DelayMatrix m(3);
  m.set(0, 1, 10.0f);
  // 0-2 missing: selecting 2 cannot be evaluated.
  EXPECT_TRUE(std::isnan(percentage_penalty(m, 0, 2, {1, 2})));
}

TEST(SelectionExperiment, RejectsOversizedCandidateSet) {
  const DelayMatrix m = line_matrix({0, 1, 2});
  SelectionParams p;
  p.num_candidates = 3;
  EXPECT_THROW(SelectionExperiment(m, p), std::invalid_argument);
}

TEST(SelectionExperiment, OraclePredictorHasZeroPenalty) {
  delayspace::DelaySpaceParams dp;
  dp.topology.num_ases = 50;
  dp.topology.seed = 61;
  dp.hosts.num_hosts = 120;
  dp.hosts.seed = 62;
  const auto ds = delayspace::generate_delay_space(dp);
  SelectionParams p;
  p.num_candidates = 20;
  p.runs = 2;
  const SelectionExperiment exp(ds.measured, p);
  const Cdf cdf = exp.run([&ds](HostId a, HostId b) {
    return static_cast<double>(ds.measured.at(a, b));
  });
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 0.0);  // every test optimal
}

TEST(SelectionExperiment, RandomPredictorIsWorseThanOracle) {
  delayspace::DelaySpaceParams dp;
  dp.topology.num_ases = 50;
  dp.topology.seed = 63;
  dp.hosts.num_hosts = 120;
  dp.hosts.seed = 64;
  const auto ds = delayspace::generate_delay_space(dp);
  SelectionParams p;
  p.num_candidates = 20;
  p.runs = 2;
  const SelectionExperiment exp(ds.measured, p);
  // A hash-based pseudo-random predictor.
  const Cdf random_cdf = exp.run([](HostId a, HostId b) {
    return static_cast<double>((a * 2654435761u + b * 40503u) % 1000);
  });
  EXPECT_GT(random_cdf.quantile(0.5), 0.0);
}

TEST(SelectionExperiment, CandidateSetsHaveRequestedShape) {
  const DelayMatrix m = line_matrix({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  SelectionParams p;
  p.num_candidates = 4;
  p.runs = 3;
  const SelectionExperiment exp(m, p);
  ASSERT_EQ(exp.candidate_sets().size(), 3u);
  for (const auto& set : exp.candidate_sets()) {
    EXPECT_EQ(set.size(), 4u);
    for (HostId c : set) EXPECT_LT(c, 10u);
  }
}

TEST(SelectionExperiment, ChooserReceivesNonCandidateClients) {
  const DelayMatrix m = line_matrix({0, 5, 10, 15, 20, 25});
  SelectionParams p;
  p.num_candidates = 2;
  p.runs = 1;
  const SelectionExperiment exp(m, p);
  const auto& candidates = exp.candidate_sets()[0];
  exp.run_with_chooser([&](HostId client, const std::vector<HostId>& cands) {
    EXPECT_EQ(cands, candidates);
    for (HostId c : cands) EXPECT_NE(client, c);
    return cands[0];
  });
}

TEST(MeridianExperiment, RejectsOversizedOverlay) {
  const DelayMatrix m = line_matrix({0, 1, 2});
  MeridianExperimentParams p;
  p.num_meridian_nodes = 3;
  EXPECT_THROW(run_meridian_experiment(m, p), std::invalid_argument);
}

TEST(MeridianExperiment, RunsAndAccountsProbes) {
  delayspace::DelaySpaceParams dp;
  dp.topology.num_ases = 60;
  dp.topology.seed = 65;
  dp.hosts.num_hosts = 150;
  dp.hosts.seed = 66;
  const auto ds = delayspace::generate_delay_space(dp);
  MeridianExperimentParams p;
  p.num_meridian_nodes = 60;
  p.runs = 2;
  const auto result = run_meridian_experiment(ds.measured, p);
  EXPECT_GT(result.total_queries, 100u);
  EXPECT_GT(result.total_probes, result.total_queries);
  EXPECT_GT(result.probes_per_query(), 1.0);
  EXPECT_GE(result.fraction_optimal_found, 0.0);
  EXPECT_LE(result.fraction_optimal_found, 1.0);
  EXPECT_FALSE(result.penalties.empty());
  // Penalties are nonnegative by construction.
  EXPECT_GE(result.penalties.quantile(0.0), 0.0);
}

TEST(MeridianExperiment, IdealizedModeNearOptimalOnMetricData) {
  // Metric (line) delay space + full rings + no termination: Meridian finds
  // the closest node almost always (paper Fig. 14, Euclidean curve).
  std::vector<float> pos;
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    pos.push_back(static_cast<float>(rng.uniform(0.0, 500.0)));
  }
  const DelayMatrix m = line_matrix(pos);
  MeridianExperimentParams p;
  p.num_meridian_nodes = 40;
  p.runs = 2;
  p.meridian.ring_capacity = 10000;
  p.meridian.num_rings = 16;
  p.meridian.use_termination = false;
  const auto result = run_meridian_experiment(m, p);
  EXPECT_GT(result.fraction_optimal_found, 0.9);
  EXPECT_LE(result.penalties.quantile(0.9), 1e-6);
}

TEST(MeridianExperiment, TivDataDegradesIdealizedMeridian) {
  // Same idealized settings on a TIV-bearing space: a visible fraction of
  // queries miss the true nearest node (paper: 13%).
  delayspace::DelaySpaceParams dp;
  dp.topology.num_ases = 60;
  dp.topology.seed = 67;
  dp.hosts.num_hosts = 150;
  dp.hosts.seed = 68;
  const auto ds = delayspace::generate_delay_space(dp);
  MeridianExperimentParams p;
  p.num_meridian_nodes = 40;
  p.runs = 2;
  p.meridian.ring_capacity = 10000;
  p.meridian.num_rings = 16;
  p.meridian.use_termination = false;
  const auto result = run_meridian_experiment(ds.measured, p);
  EXPECT_LT(result.fraction_optimal_found, 0.99);
  EXPECT_GT(result.penalties.quantile(1.0), 0.0);
}

}  // namespace
}  // namespace tiv::neighbor
