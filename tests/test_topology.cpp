#include "topology/generator.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "topology/as_graph.hpp"

namespace tiv::topology {
namespace {

TopologyParams small_params(std::uint64_t seed = 1) {
  TopologyParams p;
  p.num_ases = 120;
  p.seed = seed;
  return p;
}

TEST(AsGraph, AdjacencyRolesAreConsistent) {
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kCustomerProvider, 5.0, 1.0},
      {1, 2, LinkKind::kPeerPeer, 7.0, 2.0},
  };
  const AsGraph g(nodes, links);
  ASSERT_EQ(g.adjacent(0).size(), 1u);
  EXPECT_EQ(g.adjacent(0)[0].role, Role::kToProvider);
  EXPECT_EQ(g.adjacent(1).size(), 2u);
  EXPECT_EQ(g.provider_count(0), 1u);
  EXPECT_EQ(g.customer_count(1), 1u);
  EXPECT_EQ(g.peer_count(1), 1u);
  EXPECT_EQ(g.peer_count(2), 1u);
  // Experienced delay = propagation * congestion.
  EXPECT_DOUBLE_EQ(g.adjacent(1)[1].data_delay_ms, 14.0);
}

// --- CSR segment invariants ----------------------------------------------

/// The role segments must tile [offset(v), offset(v+1)) exactly, agree with
/// the adjacent() view entry-for-entry, and reproduce every link twice (once
/// per endpoint) with the role flipped across the link.
void expect_csr_invariants(const AsGraph& g) {
  std::size_t total_entries = 0;
  // Per-link role tallies rebuilt from the raw link list.
  std::vector<std::size_t> providers(g.size(), 0);
  std::vector<std::size_t> customers(g.size(), 0);
  std::vector<std::size_t> peers(g.size(), 0);
  for (const auto& l : g.links()) {
    if (l.kind == LinkKind::kCustomerProvider) {
      ++providers[l.a];  // a sees b as provider
      ++customers[l.b];
    } else {
      ++peers[l.a];
      ++peers[l.b];
    }
  }
  for (AsId v = 0; v < g.size(); ++v) {
    const auto prov = g.providers(v);
    const auto cust = g.customers(v);
    const auto peer = g.peers(v);
    const auto all = g.neighbors(v);
    // Segment widths are the O(1) role counts and sum to the degree.
    EXPECT_EQ(prov.count, g.provider_count(v));
    EXPECT_EQ(cust.count, g.customer_count(v));
    EXPECT_EQ(peer.count, g.peer_count(v));
    EXPECT_EQ(prov.count + cust.count + peer.count, g.degree(v));
    EXPECT_EQ(all.count, g.degree(v));
    EXPECT_EQ(providers[v], g.provider_count(v)) << "node " << v;
    EXPECT_EQ(customers[v], g.customer_count(v)) << "node " << v;
    EXPECT_EQ(peers[v], g.peer_count(v)) << "node " << v;
    // Segments are contiguous: providers, then customers, then peers, and
    // neighbors(v) spans all three with shared lane pointers.
    EXPECT_EQ(cust.neighbor, prov.neighbor + prov.count);
    EXPECT_EQ(peer.neighbor, cust.neighbor + cust.count);
    EXPECT_EQ(all.neighbor, prov.neighbor);
    // The materialized adjacent() view walks the same entries in segment
    // order with the derived role.
    const auto view = g.adjacent(v);
    ASSERT_EQ(view.size(), g.degree(v));
    std::size_t i = 0;
    for (const Adjacency& adj : view) {
      const Role want = i < prov.count ? Role::kToProvider
                        : i < prov.count + cust.count ? Role::kToCustomer
                                                      : Role::kToPeer;
      EXPECT_EQ(adj.role, want) << "node " << v << " entry " << i;
      EXPECT_EQ(adj.neighbor, all.neighbor[i]);
      EXPECT_DOUBLE_EQ(adj.delay_ms, all.delay_ms[i]);
      EXPECT_DOUBLE_EQ(adj.data_delay_ms, all.data_delay_ms[i]);
      ++i;
    }
    total_entries += g.degree(v);
  }
  // Every link contributes exactly two CSR entries.
  EXPECT_EQ(total_entries, 2 * g.links().size());
}

TEST(AsGraph, CsrSegmentsOnHandBuiltGraph) {
  std::vector<AsNode> nodes(5);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kCustomerProvider, 5.0, 1.0},
      {2, 1, LinkKind::kCustomerProvider, 3.0, 2.0},
      {1, 3, LinkKind::kPeerPeer, 7.0, 1.0},
      {0, 3, LinkKind::kCustomerProvider, 4.0, 1.5},
      {2, 3, LinkKind::kPeerPeer, 9.0, 1.0},
      // node 4 isolated: all segments empty.
  };
  const AsGraph g(nodes, links);
  expect_csr_invariants(g);
  // Within-segment order is link insertion order: node 1's customers are
  // 0 then 2; node 3's peers are 1 then 2.
  ASSERT_EQ(g.customers(1).count, 2u);
  EXPECT_EQ(g.customers(1).neighbor[0], 0u);
  EXPECT_EQ(g.customers(1).neighbor[1], 2u);
  ASSERT_EQ(g.peers(3).count, 2u);
  EXPECT_EQ(g.peers(3).neighbor[0], 1u);
  EXPECT_EQ(g.peers(3).neighbor[1], 2u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.neighbors(4).count, 0u);
}

TEST(AsGraph, CsrSegmentsOnGeneratedGraphs) {
  for (std::uint64_t seed : {2ULL, 13ULL, 77ULL}) {
    expect_csr_invariants(generate_topology(small_params(seed)));
  }
}

TEST(AsGraph, ValidateChecksCsrLayout) {
  // validate() must accept the generator output (its CSR rebuild-and-compare
  // sweep passes) at several scales.
  for (std::uint32_t n : {20u, 120u}) {
    TopologyParams p = small_params(n);
    p.num_ases = n;
    EXPECT_NO_THROW(generate_topology(p).validate());
  }
}

TEST(AsGraph, ValidateRejectsSelfLink) {
  std::vector<AsNode> nodes(2);
  std::vector<AsLink> links{{0, 0, LinkKind::kPeerPeer, 1.0, 1.0}};
  const AsGraph g(nodes, links);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(AsGraph, ValidateRejectsNonPositiveDelay) {
  std::vector<AsNode> nodes(2);
  std::vector<AsLink> links{{0, 1, LinkKind::kPeerPeer, 0.0, 1.0}};
  const AsGraph g(nodes, links);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(AsGraph, ValidateRejectsCongestionBelowOne) {
  std::vector<AsNode> nodes(2);
  std::vector<AsLink> links{{0, 1, LinkKind::kPeerPeer, 1.0, 0.5}};
  const AsGraph g(nodes, links);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(AsGraph, ValidateRejectsProviderCycle) {
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kCustomerProvider, 1.0, 1.0},
      {1, 2, LinkKind::kCustomerProvider, 1.0, 1.0},
      {2, 0, LinkKind::kCustomerProvider, 1.0, 1.0},
  };
  const AsGraph g(nodes, links);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(AsGraph, ValidateAcceptsDiamondHierarchy) {
  std::vector<AsNode> nodes(4);
  // 3 and 2 both customers of 1 and 0; no cycle.
  std::vector<AsLink> links{
      {2, 0, LinkKind::kCustomerProvider, 1.0, 1.0},
      {2, 1, LinkKind::kCustomerProvider, 1.0, 1.0},
      {3, 0, LinkKind::kCustomerProvider, 1.0, 1.0},
      {3, 1, LinkKind::kCustomerProvider, 1.0, 1.0},
      {0, 1, LinkKind::kPeerPeer, 1.0, 1.0},
  };
  const AsGraph g(nodes, links);
  EXPECT_NO_THROW(g.validate());
}

TEST(AsGraph, RejectsOutOfRangeEndpoint) {
  std::vector<AsNode> nodes(2);
  std::vector<AsLink> links{{0, 5, LinkKind::kPeerPeer, 1.0, 1.0}};
  EXPECT_THROW(AsGraph(nodes, links), std::out_of_range);
}

TEST(Generator, ProducesRequestedSize) {
  const AsGraph g = generate_topology(small_params());
  EXPECT_EQ(g.size(), 120u);
}

TEST(Generator, DeterministicForSeed) {
  const AsGraph a = generate_topology(small_params(7));
  const AsGraph b = generate_topology(small_params(7));
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
    EXPECT_DOUBLE_EQ(a.links()[i].delay_ms, b.links()[i].delay_ms);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const AsGraph a = generate_topology(small_params(1));
  const AsGraph b = generate_topology(small_params(2));
  bool any_diff = a.links().size() != b.links().size();
  for (std::size_t i = 0; !any_diff && i < a.links().size(); ++i) {
    any_diff = a.links()[i].delay_ms != b.links()[i].delay_ms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, Tier1sFormFullPeerMesh) {
  const AsGraph g = generate_topology(small_params());
  std::vector<AsId> tier1s;
  for (AsId v = 0; v < g.size(); ++v) {
    if (g.node(v).tier == Tier::kTier1) tier1s.push_back(v);
  }
  ASSERT_GE(tier1s.size(), 2u);
  for (AsId a : tier1s) {
    for (AsId b : tier1s) {
      if (a == b) continue;
      bool peered = false;
      for (const auto& adj : g.adjacent(a)) {
        if (adj.neighbor == b && adj.role == Role::kToPeer) peered = true;
      }
      EXPECT_TRUE(peered) << "tier1 " << a << " and " << b << " not peered";
    }
  }
}

TEST(Generator, EveryNonTier1HasAProvider) {
  const AsGraph g = generate_topology(small_params());
  for (AsId v = 0; v < g.size(); ++v) {
    if (g.node(v).tier == Tier::kTier1) continue;
    EXPECT_GE(g.provider_count(v), 1u) << "AS " << v << " has no transit";
  }
}

TEST(Generator, PassesStructuralValidation) {
  for (std::uint64_t seed : {1ULL, 5ULL, 99ULL}) {
    EXPECT_NO_THROW(generate_topology(small_params(seed)).validate());
  }
}

TEST(Generator, ClustersArePopulatedAndNoiseExists) {
  TopologyParams p = small_params();
  p.noise_fraction = 0.10;
  const AsGraph g = generate_topology(p);
  std::map<int, int> cluster_counts;
  for (const auto& n : g.nodes()) ++cluster_counts[n.cluster];
  EXPECT_GE(cluster_counts.size(), 4u);  // 3 majors + noise
  EXPECT_GT(cluster_counts[kNoiseCluster], 0);
  for (int c = 0; c < 3; ++c) EXPECT_GT(cluster_counts[c], 10);
}

TEST(Generator, LinkDelaysScaleWithDistance) {
  const AsGraph g = generate_topology(small_params());
  // Cross-cluster links (tier-1 mesh) must be much longer than the median
  // intra-cluster link.
  std::vector<double> intra;
  std::vector<double> cross;
  for (const auto& l : g.links()) {
    const auto& na = g.node(l.a);
    const auto& nb = g.node(l.b);
    if (na.cluster < 0 || nb.cluster < 0) continue;
    (na.cluster == nb.cluster ? intra : cross).push_back(l.delay_ms);
  }
  ASSERT_FALSE(intra.empty());
  ASSERT_FALSE(cross.empty());
  double intra_sum = 0.0;
  for (double d : intra) intra_sum += d;
  double cross_sum = 0.0;
  for (double d : cross) cross_sum += d;
  EXPECT_GT(cross_sum / cross.size(), 3.0 * intra_sum / intra.size());
}

TEST(Generator, CongestionRespectsCapAndFloor) {
  const AsGraph g = generate_topology(small_params());
  bool any_congested = false;
  for (const auto& l : g.links()) {
    EXPECT_GE(l.congestion, 1.0);
    EXPECT_LE(l.congestion, 14.0 + 1e-9);
    any_congested |= l.congestion > 1.5;
  }
  EXPECT_TRUE(any_congested);
}

TEST(Generator, ZeroCongestionProbDisablesCongestion) {
  TopologyParams p = small_params();
  p.congested_link_prob = 0.0;
  const AsGraph g = generate_topology(p);
  for (const auto& l : g.links()) EXPECT_DOUBLE_EQ(l.congestion, 1.0);
}

TEST(Generator, RemoteTransitCreatesCrossClusterProviders) {
  TopologyParams p = small_params(3);
  p.remote_transit_prob = 1.0;  // every tier-2 buys remote transit
  const AsGraph g = generate_topology(p);
  std::size_t remote = 0;
  std::size_t local = 0;
  for (AsId v = 0; v < g.size(); ++v) {
    if (g.node(v).tier != Tier::kTier2) continue;
    for (const auto& adj : g.adjacent(v)) {
      if (adj.role != Role::kToProvider) continue;
      (g.node(adj.neighbor).cluster != g.node(v).cluster ? remote : local)++;
    }
  }
  EXPECT_GT(remote, 0u);
  EXPECT_EQ(local, 0u);
}

TEST(Generator, RejectsTooFewAses) {
  TopologyParams p;
  p.num_ases = 3;
  EXPECT_THROW(generate_topology(p), std::invalid_argument);
}

TEST(Generator, RejectsInvertedProviderRange) {
  TopologyParams p = small_params();
  p.stub_providers_min = 3;
  p.stub_providers_max = 1;
  EXPECT_THROW(generate_topology(p), std::invalid_argument);
}

class GeneratorScaleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GeneratorScaleSweep, ValidAtEveryScale) {
  TopologyParams p;
  p.num_ases = GetParam();
  p.seed = GetParam();
  const AsGraph g = generate_topology(p);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.size(), GetParam());
  // Hierarchy depth sanity: there is at least one stub and one tier-2.
  std::set<Tier> tiers;
  for (const auto& n : g.nodes()) tiers.insert(n.tier);
  EXPECT_TRUE(tiers.count(Tier::kTier1));
  EXPECT_TRUE(tiers.count(Tier::kStub));
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorScaleSweep,
                         ::testing::Values(20u, 60u, 150u, 400u));

}  // namespace
}  // namespace tiv::topology
