// The TIV severity metric: hand-computed cases, metric-space zero property,
// symmetry, bulk-vs-single consistency, and scale invariance.
#include <cmath>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "delayspace/generate.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrix;

/// 4 nodes; the only violation is edge 0-2 (d=100) witnessed by node 1
/// (5 + 5 = 10 < 100). Node 3 is far from everything (no violations).
DelayMatrix hand_matrix() {
  DelayMatrix m(4);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 2, 100.0f);
  m.set(0, 3, 200.0f);
  m.set(1, 3, 200.0f);
  m.set(2, 3, 200.0f);
  return m;
}

TEST(Severity, HandComputedSingleViolation) {
  const DelayMatrix m = hand_matrix();
  const TivAnalyzer a(m);
  // sev(0,2) = (100 / 10) / 4 = 2.5. (Witness 3: 200+200 > 100, no
  // violation.)
  EXPECT_NEAR(a.edge_severity(0, 2), 2.5, 1e-9);
  // Short edges cause no violations.
  EXPECT_DOUBLE_EQ(a.edge_severity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.edge_severity(1, 2), 0.0);
  // 0-3 is violated via witness 1? 5 + 200 = 205 > 200: no. Witness 2:
  // 100 + 200 = 300 > 200: no.
  EXPECT_DOUBLE_EQ(a.edge_severity(0, 3), 0.0);
}

TEST(Severity, EdgeStatsDetail) {
  const DelayMatrix m = hand_matrix();
  const TivAnalyzer a(m);
  const EdgeTivStats s = a.edge_stats(0, 2);
  EXPECT_EQ(s.violation_count, 1u);
  EXPECT_EQ(s.witness_count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_ratio, 10.0);
  EXPECT_DOUBLE_EQ(s.max_ratio, 10.0);
  EXPECT_DOUBLE_EQ(s.violating_fraction(), 0.5);
}

TEST(Severity, ViolationRatiosList) {
  const DelayMatrix m = hand_matrix();
  const TivAnalyzer a(m);
  const auto ratios = a.violation_ratios(0, 2);
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_DOUBLE_EQ(ratios[0], 10.0);
  EXPECT_TRUE(a.violation_ratios(0, 1).empty());
}

TEST(Severity, MetricSpaceHasZeroSeverityEverywhere) {
  // Points on a line: the triangle inequality holds with equality at worst.
  DelayMatrix m(8);
  const float pos[8] = {0, 3, 7, 15, 40, 90, 200, 450};
  for (delayspace::HostId i = 0; i < 8; ++i) {
    for (delayspace::HostId j = i + 1; j < 8; ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]));
    }
  }
  const TivAnalyzer a(m);
  const SeverityMatrix sev = a.all_severities();
  for (delayspace::HostId i = 0; i < 8; ++i) {
    for (delayspace::HostId j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(sev.at(i, j), 0.0f);
    }
  }
  EXPECT_DOUBLE_EQ(a.violating_triangle_fraction(), 0.0);
}

TEST(Severity, AllSeveritiesMatchesSingleEdgeComputation) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 50;
  p.topology.seed = 41;
  p.hosts.num_hosts = 90;
  p.hosts.seed = 42;
  const auto ds = delayspace::generate_delay_space(p);
  const TivAnalyzer a(ds.measured);
  const SeverityMatrix sev = a.all_severities();
  Rng rng(1);
  for (int k = 0; k < 200; ++k) {
    const auto i = static_cast<delayspace::HostId>(rng.uniform_index(90));
    const auto j = static_cast<delayspace::HostId>(rng.uniform_index(90));
    if (i == j) continue;
    EXPECT_NEAR(sev.at(i, j), a.edge_severity(i, j), 1e-5);
  }
}

TEST(Severity, MatrixIsSymmetric) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 50;
  p.topology.seed = 43;
  p.hosts.num_hosts = 60;
  p.hosts.seed = 44;
  const auto ds = delayspace::generate_delay_space(p);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  for (delayspace::HostId i = 0; i < 60; ++i) {
    for (delayspace::HostId j = i + 1; j < 60; ++j) {
      EXPECT_FLOAT_EQ(sev.at(i, j), sev.at(j, i));
    }
  }
}

TEST(Severity, ScaleInvariant) {
  // Severity is a ratio metric: multiplying all delays by a constant must
  // not change it.
  const DelayMatrix m = hand_matrix();
  DelayMatrix scaled(4);
  for (delayspace::HostId i = 0; i < 4; ++i) {
    for (delayspace::HostId j = i + 1; j < 4; ++j) {
      scaled.set(i, j, m.at(i, j) * 7.5f);
    }
  }
  const TivAnalyzer a(m);
  const TivAnalyzer b(scaled);
  EXPECT_NEAR(a.edge_severity(0, 2), b.edge_severity(0, 2), 1e-9);
}

TEST(Severity, MissingLegsExcluded) {
  DelayMatrix m(4);
  m.set(0, 2, 100.0f);
  m.set(0, 1, 5.0f);
  // 1-2 missing: witness 1 cannot certify a violation of 0-2.
  m.set(0, 3, 5.0f);
  m.set(2, 3, 5.0f);
  const TivAnalyzer a(m);
  const EdgeTivStats s = a.edge_stats(0, 2);
  EXPECT_EQ(s.witness_count, 1u);  // only node 3 has both legs
  EXPECT_EQ(s.violation_count, 1u);
  EXPECT_NEAR(s.severity, (100.0 / 10.0) / 4.0, 1e-9);
}

TEST(Severity, UnmeasuredEdgeHasZeroSeverity) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  const TivAnalyzer a(m);
  EXPECT_DOUBLE_EQ(a.edge_severity(0, 2), 0.0);
  EXPECT_EQ(a.edge_stats(0, 2).witness_count, 0u);
}

TEST(Severity, SampledSeveritiesAreConsistent) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 50;
  p.topology.seed = 45;
  p.hosts.num_hosts = 80;
  p.hosts.seed = 46;
  const auto ds = delayspace::generate_delay_space(p);
  const TivAnalyzer a(ds.measured);
  const auto samples = a.sampled_severities(100, 9);
  EXPECT_EQ(samples.size(), 100u);
  for (const auto& [edge, sev] : samples) {
    EXPECT_NEAR(sev, a.edge_severity(edge.first, edge.second), 1e-9);
  }
}

TEST(Severity, TriangleFractionExactVsSampledAgree) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 50;
  p.topology.seed = 47;
  p.hosts.num_hosts = 70;
  p.hosts.seed = 48;
  const auto ds = delayspace::generate_delay_space(p);
  const TivAnalyzer a(ds.measured);
  const double exact = a.violating_triangle_fraction();
  const double sampled = a.violating_triangle_fraction(200000);
  EXPECT_GT(exact, 0.0);
  EXPECT_NEAR(sampled, exact, 0.02);
}

TEST(Severity, TriangleFractionHandCase) {
  // hand_matrix has 4 triangles; only (0,1,2) violates.
  const DelayMatrix m = hand_matrix();
  const TivAnalyzer a(m);
  EXPECT_NEAR(a.violating_triangle_fraction(), 0.25, 1e-9);
}

TEST(SeverityMatrixValues, ListsOnlyMeasuredEdges) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  SeverityMatrix sev(3);
  sev.set(0, 1, 1.5f);
  sev.set(0, 2, 9.9f);  // unmeasured edge: excluded
  const auto vals = sev.values_for_measured_edges(m);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 1.5);
}

// Severity definition sanity over generated spaces of several sizes.
class SeverityGeneratedSweep : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(SeverityGeneratedSweep, SeveritiesNonNegativeAndTailExists) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = GetParam();
  p.hosts.num_hosts = GetParam();
  p.hosts.seed = GetParam() + 1;
  const auto ds = delayspace::generate_delay_space(p);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  double max_sev = 0.0;
  for (delayspace::HostId i = 0; i < ds.measured.size(); ++i) {
    for (delayspace::HostId j = i + 1; j < ds.measured.size(); ++j) {
      EXPECT_GE(sev.at(i, j), 0.0f);
      max_sev = std::max(max_sev, static_cast<double>(sev.at(i, j)));
    }
  }
  // The synthetic Internet must actually contain severe TIVs.
  EXPECT_GT(max_sev, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SeverityGeneratedSweep,
                         ::testing::Values(100u, 200u, 350u));

}  // namespace
}  // namespace tiv::core
