// TIV-aware one-hop detour routing.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/detour.hpp"
#include "delayspace/generate.hpp"
#include "matrix_test_utils.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

/// Severely violated edge 0-1 (100 ms) with a relay cloud 5 ms from both.
DelayMatrix relay_cloud() {
  DelayMatrix m(10);
  m.set(0, 1, 100.0f);
  for (HostId w = 2; w < 10; ++w) {
    m.set(0, w, 5.0f);
    m.set(1, w, 5.0f);
    for (HostId w2 = w + 1; w2 < 10; ++w2) m.set(w, w2, 6.0f);
  }
  return m;
}

embedding::VivaldiSystem trained_system(const DelayMatrix& m) {
  embedding::VivaldiParams p;
  p.dimension = 3;
  p.seed = 7;
  embedding::VivaldiSystem sys(m, p);
  sys.run(400);
  return sys;
}

TEST(DetourRouter, OracleFindsBestRelay) {
  const DelayMatrix m = relay_cloud();
  const auto sys = trained_system(m);
  const DetourRouter router(sys, {});
  EXPECT_NEAR(router.oracle_one_hop(0, 1), 10.0, 1e-6);
  // For an un-violated edge the direct path is the oracle.
  EXPECT_NEAR(router.oracle_one_hop(2, 3), 6.0, 1e-6);
}

TEST(DetourRouter, DetoursAlertedEdge) {
  const DelayMatrix m = relay_cloud();
  const auto sys = trained_system(m);
  // Sanity: the 0-1 edge must be alerted (it is crushed by 16 witnesses).
  ASSERT_LT(sys.prediction_ratio(0, 1), 0.6);
  const DetourRouter router(sys, {});
  Rng rng(1);
  const DetourDecision d = router.route(0, 1, rng);
  EXPECT_TRUE(d.alerted);
  EXPECT_TRUE(d.detoured);
  EXPECT_NEAR(d.achieved_ms, 10.0, 1e-6);
  EXPECT_GT(d.probes, 0u);
}

TEST(DetourRouter, LeavesCleanEdgesAlone) {
  const DelayMatrix m = relay_cloud();
  const auto sys = trained_system(m);
  const DetourRouter router(sys, {});
  Rng rng(1);
  const DetourDecision d = router.route(2, 3, rng);
  EXPECT_FALSE(d.alerted);
  EXPECT_FALSE(d.detoured);
  EXPECT_EQ(d.probes, 0u);
  EXPECT_DOUBLE_EQ(d.achieved_ms, d.direct_ms);
}

TEST(DetourRouter, AchievedNeverWorseThanDirect) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = 101;
  p.hosts.num_hosts = 200;
  p.hosts.seed = 102;
  const auto ds = delayspace::generate_delay_space(p);
  const auto sys = trained_system(ds.measured);
  const DetourRouter router(sys, {});
  Rng rng(3);
  for (int k = 0; k < 300; ++k) {
    const auto a = static_cast<HostId>(rng.uniform_index(200));
    const auto b = static_cast<HostId>(rng.uniform_index(200));
    if (a == b) continue;
    Rng r2(k);
    const DetourDecision d = router.route(a, b, r2);
    EXPECT_LE(d.achieved_ms, d.direct_ms + 1e-6);
    EXPECT_GE(d.achieved_ms, router.oracle_one_hop(a, b) - 1e-6);
  }
}

using tiv::test::random_matrix;

TEST(DetourRouter, MaskedOracleExactlyEqualsScalarOracle) {
  // The masked lane scan and the seed's branchy scan do identical double
  // arithmetic and min is order-free, so the two must agree bit for bit —
  // including pairs with no direct measurement and pairs with no valid
  // relay, on dense, 30%-missing, missing-heavy, and tiny matrices.
  struct Case {
    HostId n;
    double missing;
  };
  for (const Case c : {Case{40, 0.0}, Case{40, 0.3}, Case{32, 0.9},
                       Case{2, 0.0}, Case{3, 0.5}, Case{5, 0.3},
                       Case{7, 0.95}}) {
    const DelayMatrix m = random_matrix(c.n, c.missing, 400 + c.n);
    embedding::VivaldiParams vp;
    vp.seed = 5;
    const embedding::VivaldiSystem sys(m, vp);
    const DetourRouter router(sys, {});
    for (HostId a = 0; a < c.n; ++a) {
      for (HostId b = a + 1; b < c.n; ++b) {
        EXPECT_EQ(router.oracle_one_hop(a, b),
                  router.oracle_one_hop_scalar(a, b))
            << "n=" << c.n << " missing=" << c.missing << " pair (" << a
            << ", " << b << ")";
      }
    }
  }
}

TEST(DetourRouter, AcceptsPrebuiltView) {
  const DelayMatrix m = relay_cloud();
  const auto sys = trained_system(m);
  const DelayMatrixView view(m);
  const DetourRouter with_view(sys, {}, &view);
  const DetourRouter self_built(sys, {});
  Rng rng(1);
  for (HostId a = 0; a < m.size(); ++a) {
    for (HostId b = a + 1; b < m.size(); ++b) {
      EXPECT_EQ(with_view.oracle_one_hop(a, b),
                self_built.oracle_one_hop(a, b));
      const DetourDecision da = with_view.route(a, b, rng);
      const DetourDecision db = self_built.route(a, b, rng);
      EXPECT_EQ(da.achieved_ms, db.achieved_ms);
      EXPECT_EQ(da.probes, db.probes);
    }
  }
}

TEST(DetourRouter, UnmeasuredPairEarlyReturnsWithMeasuredFlag) {
  // (0, 1) has no measurement: route must flag it and spend nothing,
  // instead of alerting on a NaN prediction ratio and probing relays.
  DelayMatrix m(4);
  m.set(0, 2, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 3, 6.0f);
  m.set(1, 3, 6.0f);
  m.set(2, 3, 4.0f);
  embedding::VivaldiParams vp;
  vp.seed = 11;
  embedding::VivaldiSystem sys(m, vp);
  sys.run(50);
  const DetourRouter router(sys, {});
  Rng rng(2);
  const DetourDecision d = router.route(0, 1, rng);
  EXPECT_FALSE(d.measured);
  EXPECT_FALSE(d.alerted);
  EXPECT_FALSE(d.detoured);
  EXPECT_EQ(d.probes, 0u);
  EXPECT_TRUE(std::isinf(d.direct_ms));
  EXPECT_TRUE(std::isinf(d.achieved_ms));
  // A measured pair reports the flag set.
  EXPECT_TRUE(router.route(0, 2, rng).measured);
}

TEST(DetourEvaluation, ReportsAchievedVsRequestedOnSparseMatrix) {
  // 4 positive measured edges in a 20-host matrix: a 500-edge request must
  // exhaust, and the duplicate-free sampler caps achieved at 4 distinct
  // edges (the old sampler padded the shortfall with duplicates).
  DelayMatrix m(20);
  m.set(0, 1, 10.0f);
  m.set(2, 3, 12.0f);
  m.set(4, 5, 14.0f);
  m.set(6, 7, 16.0f);
  embedding::VivaldiParams vp;
  vp.seed = 13;
  embedding::VivaldiSystem sys(m, vp);
  sys.run(50);
  const DetourEvaluation eval = evaluate_detour_routing(sys, {}, 500);
  EXPECT_EQ(eval.edges_requested, 500u);
  EXPECT_LE(eval.edges, 4u);
  EXPECT_LT(eval.edges, eval.edges_requested);
}

TEST(DetourEvaluation, TivAwareBeatsDirectAndSpendsFewerProbesThanRandom) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 70;
  p.topology.seed = 103;
  p.hosts.num_hosts = 300;
  p.hosts.seed = 104;
  const auto ds = delayspace::generate_delay_space(p);
  const auto sys = trained_system(ds.measured);
  const DetourEvaluation eval = evaluate_detour_routing(sys, {}, 2000);
  ASSERT_GT(eval.edges, 1000u);
  // Detouring helps on average and never hurts.
  EXPECT_LE(eval.achieved_ms.mean, eval.direct_ms.mean);
  EXPECT_GE(eval.achieved_ms.mean, eval.oracle_ms.mean);
  // Stretch relative to the one-hop oracle improves.
  EXPECT_LT(eval.mean_stretch_achieved, eval.mean_stretch_direct);
  // The alert gate spends far fewer probes than probing relays everywhere.
  EXPECT_LT(eval.probes_tiv_aware, eval.probes_random / 4);
  EXPECT_GT(eval.alerted_edges, 0u);
}

TEST(DetourEvaluation, ThresholdZeroDisablesDetours) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = 105;
  p.hosts.num_hosts = 150;
  p.hosts.seed = 106;
  const auto ds = delayspace::generate_delay_space(p);
  const auto sys = trained_system(ds.measured);
  DetourParams dp;
  dp.alert_threshold = 0.0;
  const DetourEvaluation eval = evaluate_detour_routing(sys, dp, 500);
  EXPECT_EQ(eval.alerted_edges, 0u);
  EXPECT_EQ(eval.probes_tiv_aware, 0u);
  EXPECT_DOUBLE_EQ(eval.achieved_ms.mean, eval.direct_ms.mean);
}

}  // namespace
}  // namespace tiv::core
