// Dynamic-neighbor Vivaldi, the severity filter strawman, TIV-aware
// Meridian wiring, cluster analysis, and proximity.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/cluster_analysis.hpp"
#include "core/dynamic_neighbor.hpp"
#include "core/proximity.hpp"
#include "core/severity_filter.hpp"
#include "core/tiv_aware.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/generate.hpp"
#include "util/stats.hpp"

namespace tiv::core {
namespace {

delayspace::DelaySpace medium_space(std::uint64_t seed = 71,
                                    std::uint32_t hosts = 200) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 70;
  p.topology.seed = seed;
  p.hosts.num_hosts = hosts;
  p.hosts.seed = seed + 1;
  return delayspace::generate_delay_space(p);
}

// --- DynamicNeighborVivaldi ------------------------------------------------

TEST(DynamicNeighbor, KeepsNeighborCountStable) {
  const auto ds = medium_space();
  embedding::VivaldiParams vp;
  vp.neighbors_per_node = 16;
  DynamicNeighborParams dp;
  dp.period_seconds = 30;
  DynamicNeighborVivaldi dyn(ds.measured, vp, dp);
  dyn.run_iteration();
  dyn.run_iteration();
  EXPECT_EQ(dyn.iterations_done(), 2u);
  for (delayspace::HostId i = 0; i < ds.measured.size(); ++i) {
    EXPECT_EQ(dyn.system().neighbors(i).size(), 16u);
  }
}

TEST(DynamicNeighbor, NeighborEdgesAreDeduplicatedPairs) {
  const auto ds = medium_space(73, 100);
  embedding::VivaldiParams vp;
  vp.neighbors_per_node = 8;
  DynamicNeighborParams dp;
  dp.period_seconds = 10;
  const DynamicNeighborVivaldi dyn(ds.measured, vp, dp);
  const auto edges = dyn.neighbor_edges();
  std::set<std::pair<delayspace::HostId, delayspace::HostId>> unique(
      edges.begin(), edges.end());
  EXPECT_EQ(unique.size(), edges.size());
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(DynamicNeighbor, ReducesNeighborEdgeSeverity) {
  // The headline Fig. 22 effect: iterating the update shifts the neighbor
  // edge severity distribution down.
  const auto ds = medium_space(75, 250);
  embedding::VivaldiParams vp;
  vp.neighbors_per_node = 16;
  DynamicNeighborParams dp;
  dp.period_seconds = 60;
  DynamicNeighborVivaldi dyn(ds.measured, vp, dp);
  const TivAnalyzer analyzer(ds.measured);

  auto mean_severity = [&] {
    const auto edges = dyn.neighbor_edges();
    double sum = 0.0;
    for (const auto& [a, b] : edges) sum += analyzer.edge_severity(a, b);
    return sum / static_cast<double>(edges.size());
  };
  const double before = mean_severity();
  for (int it = 0; it < 5; ++it) dyn.run_iteration();
  const double after = mean_severity();
  EXPECT_LT(after, before * 0.9);
}

// --- SeverityFilter ---------------------------------------------------------

TEST(SeverityFilter, FiltersRequestedFraction) {
  const auto ds = medium_space(77, 150);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const SeverityFilter filter(ds.measured, sev, 0.2);
  const std::size_t edges = ds.measured.measured_pair_count();
  EXPECT_NEAR(static_cast<double>(filter.filtered_count()) /
                  static_cast<double>(edges),
              0.2, 0.05);
}

TEST(SeverityFilter, FilteredEdgesHaveHigherSeverityThanKept) {
  const auto ds = medium_space(79, 120);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const SeverityFilter filter(ds.measured, sev, 0.1);
  for (delayspace::HostId i = 0; i < ds.measured.size(); ++i) {
    for (delayspace::HostId j = i + 1; j < ds.measured.size(); ++j) {
      if (filter.filtered(i, j)) {
        EXPECT_GE(sev.at(i, j), filter.cutoff_severity());
      } else {
        EXPECT_LT(sev.at(i, j), filter.cutoff_severity());
      }
    }
  }
}

TEST(SeverityFilter, ZeroFractionFiltersNothing) {
  const auto ds = medium_space(81, 80);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const SeverityFilter filter(ds.measured, sev, 0.0);
  EXPECT_EQ(filter.filtered_count(), 0u);
  EXPECT_FALSE(filter.filtered(0, 1));
}

TEST(SeverityFilter, AppliedToVivaldiAvoidsFilteredEdges) {
  const auto ds = medium_space(83, 150);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const SeverityFilter filter(ds.measured, sev, 0.2);
  embedding::VivaldiParams vp;
  vp.neighbors_per_node = 16;
  embedding::VivaldiSystem sys(ds.measured, vp);
  apply_filter_to_vivaldi(sys, filter);
  for (delayspace::HostId i = 0; i < ds.measured.size(); ++i) {
    for (delayspace::HostId n : sys.neighbors(i)) {
      EXPECT_FALSE(filter.filtered(i, n));
    }
  }
}

// --- TIV-aware Meridian wiring ---------------------------------------------

TEST(TivAware, PredictorMatchesVivaldi) {
  const auto ds = medium_space(85, 80);
  embedding::VivaldiParams vp;
  embedding::VivaldiSystem sys(ds.measured, vp);
  sys.run(30);
  const auto pred = vivaldi_predictor(sys);
  EXPECT_DOUBLE_EQ(pred(3, 7), sys.predicted(3, 7));
}

TEST(TivAware, ParamsCarryPaperSettings) {
  const auto ds = medium_space(87, 80);
  embedding::VivaldiParams vp;
  embedding::VivaldiSystem sys(ds.measured, vp);
  const auto mp = tiv_aware_meridian_params(sys);
  EXPECT_TRUE(mp.adjust_rings);
  EXPECT_TRUE(mp.restart_on_alert);
  EXPECT_DOUBLE_EQ(mp.ts, 0.6);
  EXPECT_DOUBLE_EQ(mp.tl, 2.0);
  ASSERT_TRUE(static_cast<bool>(mp.predictor));
  EXPECT_DOUBLE_EQ(mp.predictor(1, 2), sys.predicted(1, 2));
}

// --- Cluster analysis -------------------------------------------------------

TEST(ClusterAnalysis, CrossClusterEdgesCauseMoreViolations) {
  const auto ds = medium_space(89, 250);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const auto clustering = delayspace::cluster_delay_space(ds.measured, {});
  ASSERT_GE(clustering.num_clusters(), 2u);
  const ClusterTivStats stats =
      cluster_tiv_stats(ds.measured, sev, clustering, 3000);
  ASSERT_GT(stats.edges_within, 0u);
  ASSERT_GT(stats.edges_cross, 0u);
  // The paper's in-text DS^2 numbers: 80 within vs 206 cross. Direction
  // must match.
  EXPECT_GT(stats.mean_violations_cross, stats.mean_violations_within);
}

TEST(ClusterAnalysis, ExhaustiveStatsMatchScalarRecomputation) {
  // The batched masked-view violation counts must reproduce the scalar
  // edge_stats counts exactly, so the aggregated means are bit-equal to a
  // brute-force recomputation over the same (exhaustive) edge set.
  const auto ds = medium_space(88, 60);
  const DelayMatrix& m = ds.measured;
  const SeverityMatrix sev = TivAnalyzer(m).all_severities();
  const auto clustering = delayspace::cluster_delay_space(m, {});
  const ClusterTivStats stats = cluster_tiv_stats(m, sev, clustering, 0);

  const TivAnalyzer analyzer(m);
  double viol_within = 0.0, viol_cross = 0.0;
  double sev_within = 0.0, sev_cross = 0.0;
  std::size_t n_within = 0, n_cross = 0;
  for (delayspace::HostId i = 0; i < m.size(); ++i) {
    for (delayspace::HostId j = i + 1; j < m.size(); ++j) {
      if (!m.has(i, j)) continue;
      const auto count =
          static_cast<double>(analyzer.edge_stats(i, j).violation_count);
      if (clustering.same_cluster(i, j)) {
        ++n_within;
        viol_within += count;
        sev_within += sev.at(i, j);
      } else {
        ++n_cross;
        viol_cross += count;
        sev_cross += sev.at(i, j);
      }
    }
  }
  EXPECT_EQ(stats.edges_within, n_within);
  EXPECT_EQ(stats.edges_cross, n_cross);
  EXPECT_EQ(stats.edges_requested, n_within + n_cross);
  if (n_within > 0) {
    EXPECT_DOUBLE_EQ(stats.mean_violations_within,
                     viol_within / static_cast<double>(n_within));
    EXPECT_DOUBLE_EQ(stats.mean_severity_within,
                     sev_within / static_cast<double>(n_within));
  }
  if (n_cross > 0) {
    EXPECT_DOUBLE_EQ(stats.mean_violations_cross,
                     viol_cross / static_cast<double>(n_cross));
    EXPECT_DOUBLE_EQ(stats.mean_severity_cross,
                     sev_cross / static_cast<double>(n_cross));
  }
}

TEST(ClusterAnalysis, SampledStatsUseDistinctEdgesAndReportRequested) {
  // 10 hosts, dense: 45 edges. Requesting 1000 must cap at 45 distinct
  // edges (the old with-replacement sampler returned ~1000 rows with heavy
  // duplication) and surface the requested count.
  delayspace::DelayMatrix m(10);
  for (delayspace::HostId i = 0; i < 10; ++i) {
    for (delayspace::HostId j = i + 1; j < 10; ++j) {
      m.set(i, j, 10.0f + static_cast<float>(i + j));
    }
  }
  const SeverityMatrix sev = TivAnalyzer(m).all_severities();
  const auto clustering = delayspace::cluster_delay_space(m, {});
  const ClusterTivStats stats = cluster_tiv_stats(m, sev, clustering, 1000);
  EXPECT_EQ(stats.edges_requested, 1000u);
  EXPECT_LE(stats.edges_within + stats.edges_cross, 45u);
}

TEST(ClusterAnalysis, PrebuiltViewMatchesSelfBuilt) {
  const auto ds = medium_space(90, 80);
  const DelayMatrix& m = ds.measured;
  const SeverityMatrix sev = TivAnalyzer(m).all_severities();
  const auto clustering = delayspace::cluster_delay_space(m, {});
  const delayspace::DelayMatrixView view(m);
  const ClusterTivStats a = cluster_tiv_stats(m, sev, clustering, 500, 7);
  const ClusterTivStats b =
      cluster_tiv_stats(m, sev, clustering, 500, 7, &view);
  EXPECT_EQ(a.edges_within, b.edges_within);
  EXPECT_EQ(a.edges_cross, b.edges_cross);
  EXPECT_DOUBLE_EQ(a.mean_violations_within, b.mean_violations_within);
  EXPECT_DOUBLE_EQ(a.mean_violations_cross, b.mean_violations_cross);
}

TEST(ClusterAnalysis, GridHasRequestedShape) {
  const auto ds = medium_space(91, 120);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const auto clustering = delayspace::cluster_delay_space(ds.measured, {});
  const auto grid = severity_cluster_grid(ds.measured, sev, clustering, 24);
  ASSERT_EQ(grid.size(), 24u);
  for (const auto& row : grid) {
    ASSERT_EQ(row.size(), 24u);
    for (double v : row) EXPECT_GE(v, 0.0);
  }
}

TEST(ClusterAnalysis, GridDiagonalBlocksDarker) {
  // Within-cluster blocks (diagonal) must average lower severity than
  // off-diagonal blocks.
  const auto ds = medium_space(93, 250);
  const SeverityMatrix sev = TivAnalyzer(ds.measured).all_severities();
  const auto clustering = delayspace::cluster_delay_space(ds.measured, {});
  ASSERT_GE(clustering.num_clusters(), 2u);
  const std::size_t g = 30;
  const auto grid = severity_cluster_grid(ds.measured, sev, clustering, g);
  // Approximate block boundaries from cluster sizes.
  const double n = static_cast<double>(ds.measured.size());
  std::vector<std::size_t> boundaries;  // grid row where each cluster ends
  std::size_t acc = 0;
  for (const auto& members : clustering.members) {
    acc += members.size();
    boundaries.push_back(static_cast<std::size_t>(acc / n * g));
  }
  double diag_sum = 0.0;
  std::size_t diag_n = 0;
  double off_sum = 0.0;
  std::size_t off_n = 0;
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      // Which cluster block does (r, c) fall into?
      auto block_of = [&](std::size_t x) {
        for (std::size_t b = 0; b < boundaries.size(); ++b) {
          if (x < boundaries[b]) return static_cast<int>(b);
        }
        return -1;  // noise region
      };
      const int br = block_of(r);
      const int bc = block_of(c);
      if (br < 0 || bc < 0) continue;
      if (br == bc) {
        diag_sum += grid[r][c];
        ++diag_n;
      } else {
        off_sum += grid[r][c];
        ++off_n;
      }
    }
  }
  ASSERT_GT(diag_n, 0u);
  ASSERT_GT(off_n, 0u);
  EXPECT_LT(diag_sum / diag_n, off_sum / off_n);
}

TEST(ClusterAnalysis, PrintGridProducesOneLinePerRow) {
  std::vector<std::vector<double>> grid{{0.0, 1.0}, {0.5, 0.2}};
  std::ostringstream os;
  print_severity_grid(os, grid);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  // Max severity renders as the brightest ramp character.
  EXPECT_NE(out.find('@'), std::string::npos);
}

// --- Proximity ---------------------------------------------------------------

TEST(Proximity, NearestNeighborIsTrueMinimum) {
  delayspace::DelayMatrix m(4);
  m.set(0, 1, 10.0f);
  m.set(0, 2, 5.0f);
  m.set(0, 3, 20.0f);
  m.set(1, 2, 1.0f);
  m.set(1, 3, 1.0f);
  m.set(2, 3, 1.0f);
  EXPECT_EQ(nearest_neighbor(m, 0, /*exclude=*/3), 2u);
  EXPECT_EQ(nearest_neighbor(m, 0, /*exclude=*/2), 1u);
}

TEST(Proximity, NoMeasurableNeighborReturnsSelf) {
  delayspace::DelayMatrix m(2);
  EXPECT_EQ(nearest_neighbor(m, 0, 1), 0u);
}

TEST(Proximity, ExperimentProducesPairedDistributions) {
  const auto ds = medium_space(95, 150);
  ProximityParams p;
  p.sample_edges = 500;
  const ProximityResult r = proximity_experiment(ds.measured, p);
  EXPECT_EQ(r.nearest_pair_diffs.size(), r.random_pair_diffs.size());
  EXPECT_GT(r.nearest_pair_diffs.size(), 300u);
  for (double d : r.nearest_pair_diffs) EXPECT_GE(d, 0.0);
}

TEST(Proximity, ReportsAchievedVsRequestedOnMostlyMissingMatrix) {
  // A 40-host matrix with one measured 6-clique: at most 15 distinct
  // primary edges exist, so a 2000-sample request must exhaust and report
  // the achieved count instead of silently returning a short vector.
  delayspace::DelayMatrix m(40);
  for (delayspace::HostId i = 0; i < 6; ++i) {
    for (delayspace::HostId j = i + 1; j < 6; ++j) {
      m.set(i, j, 20.0f + static_cast<float>(3 * i + j));
    }
  }
  ProximityParams p;
  p.sample_edges = 2000;
  p.seed = 5;
  const ProximityResult r = proximity_experiment(m, p);
  EXPECT_EQ(r.edges_requested, 2000u);
  EXPECT_EQ(r.edges_achieved, r.nearest_pair_diffs.size());
  EXPECT_LE(r.edges_achieved, 15u);
  EXPECT_TRUE(r.sampler_exhausted);
}

TEST(Proximity, AchievedCountMatchesDiffSizes) {
  const auto ds = medium_space(96, 120);
  ProximityParams p;
  p.sample_edges = 400;
  const ProximityResult r = proximity_experiment(ds.measured, p);
  EXPECT_EQ(r.edges_requested, 400u);
  EXPECT_EQ(r.edges_achieved, r.nearest_pair_diffs.size());
  EXPECT_EQ(r.edges_achieved, r.random_pair_diffs.size());
}

TEST(Proximity, PrebuiltViewMatchesSelfBuilt) {
  const auto ds = medium_space(98, 100);
  ProximityParams p;
  p.sample_edges = 300;
  const delayspace::DelayMatrixView view(ds.measured);
  const ProximityResult a = proximity_experiment(ds.measured, p);
  const ProximityResult b = proximity_experiment(ds.measured, p, &view);
  ASSERT_EQ(a.nearest_pair_diffs.size(), b.nearest_pair_diffs.size());
  for (std::size_t i = 0; i < a.nearest_pair_diffs.size(); ++i) {
    EXPECT_EQ(a.nearest_pair_diffs[i], b.nearest_pair_diffs[i]);
    EXPECT_EQ(a.random_pair_diffs[i], b.random_pair_diffs[i]);
  }
}

TEST(Proximity, NearestPairsOnlyMarginallyMoreSimilar) {
  // The paper's negative result: nearest-pair severity differences are not
  // much tighter than random-pair ones. Check direction (<=) but also that
  // the gap is not enormous.
  const auto ds = medium_space(97, 250);
  ProximityParams p;
  p.sample_edges = 800;
  const ProximityResult r = proximity_experiment(ds.measured, p);
  const double near_med = percentile(r.nearest_pair_diffs, 50);
  const double rand_med = percentile(r.random_pair_diffs, 50);
  EXPECT_LE(near_med, rand_med * 1.5);
}

}  // namespace
}  // namespace tiv::core
