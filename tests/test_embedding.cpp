// Vec, VivaldiSystem, trackers, and LAT.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "delayspace/delay_matrix.hpp"
#include "embedding/coords.hpp"
#include "embedding/lat.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"

namespace tiv::embedding {
namespace {

using delayspace::DelayMatrix;
using delayspace::HostId;

TEST(Vec, Arithmetic) {
  Vec a(std::vector<double>{1.0, 2.0});
  const Vec b(std::vector<double>{3.0, -1.0});
  EXPECT_DOUBLE_EQ((a + b)[0], 4.0);
  EXPECT_DOUBLE_EQ((a - b)[1], 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0)[1], 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a)[0], 2.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(Vec(std::vector<double>{3.0, 4.0}).norm(), 5.0);
}

TEST(Vec, Distance) {
  const Vec a(std::vector<double>{0.0, 0.0});
  const Vec b(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

/// Metric matrix: points on a line at the given positions.
DelayMatrix line_matrix(const std::vector<float>& pos) {
  DelayMatrix m(static_cast<HostId>(pos.size()));
  for (HostId i = 0; i < pos.size(); ++i) {
    for (HostId j = i + 1; j < pos.size(); ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]));
    }
  }
  return m;
}

/// The paper's 3-node TIV example: 5 / 5 / 100 ms.
DelayMatrix tiv_triangle() {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 2, 100.0f);
  return m;
}

VivaldiParams test_params(std::uint32_t dim = 2) {
  VivaldiParams p;
  p.dimension = dim;
  p.seed = 7;
  return p;
}

TEST(Vivaldi, ConvergesOnEmbeddableData) {
  const DelayMatrix m = line_matrix({0, 10, 25, 40, 80, 120, 200, 350});
  VivaldiSystem sys(m, test_params(3));
  sys.run(400);
  const auto err = sys.snapshot_error().absolute_error();
  // A line embeds exactly in any dimension >= 1; errors must become small
  // relative to the 350 ms scale.
  EXPECT_LT(err.median, 6.0);
  EXPECT_LT(err.p90, 20.0);
}

TEST(Vivaldi, CannotResolveTivTriangle) {
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, test_params());
  sys.run(500);
  const auto err = sys.snapshot_error().absolute_error();
  // No Euclidean placement satisfies 5/5/100: total error is bounded below
  // (the best embedding leaves ~ 90/3 ms per edge on average).
  EXPECT_GT(err.max, 10.0);
}

TEST(Vivaldi, TivTriangleKeepsOscillating) {
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, test_params());
  sys.run(200);
  // After "convergence", movement never dies out.
  MovementRecorder rec;
  for (int t = 0; t < 100; ++t) rec.record(sys.tick());
  EXPECT_GT(rec.speed_summary().mean, 0.1);
}

TEST(Vivaldi, EmbeddableDataStopsMoving) {
  const DelayMatrix m = line_matrix({0, 10, 30, 70, 150});
  VivaldiSystem sys(m, test_params(3));
  sys.run(800);
  MovementRecorder rec;
  for (int t = 0; t < 50; ++t) rec.record(sys.tick());
  EXPECT_LT(rec.speed_summary().median, 1.0);
}

TEST(Vivaldi, SevereTivEdgeGetsShrunk) {
  // Hosts 0 and 1 measure 100 ms apart, but eight witnesses sit 5 ms from
  // both. The embedding must sacrifice the one inconsistent edge to keep
  // the sixteen consistent ones: its prediction ratio collapses — the
  // observation the TIV alert mechanism (paper §5.1) is built on.
  DelayMatrix m(10);
  m.set(0, 1, 100.0f);
  for (HostId w = 2; w < 10; ++w) {
    m.set(0, w, 5.0f);
    m.set(1, w, 5.0f);
    for (HostId w2 = w + 1; w2 < 10; ++w2) m.set(w, w2, 6.0f);
  }
  VivaldiParams p = test_params(3);
  VivaldiSystem sys(m, p);
  sys.run(400);
  const double ratio = sys.prediction_ratio(0, 1);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.5);
  // The consistent edges keep reasonable predictions.
  EXPECT_LT(sys.snapshot_error().absolute_error().median, 5.0);
}

TEST(Vivaldi, PredictionRatioNanForMissingPair) {
  DelayMatrix sparse(3);
  sparse.set(0, 1, 5.0f);
  VivaldiSystem sys2(sparse, test_params());
  EXPECT_TRUE(std::isnan(sys2.prediction_ratio(0, 2)));
}

TEST(Vivaldi, DeterministicForSeed) {
  const DelayMatrix m = line_matrix({0, 5, 12, 30});
  VivaldiSystem a(m, test_params());
  VivaldiSystem b(m, test_params());
  a.run(50);
  b.run(50);
  for (HostId i = 0; i < 4; ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_DOUBLE_EQ(a.coord(i)[d], b.coord(i)[d]);
    }
  }
}

TEST(Vivaldi, NeighborSetsRespectRequestedSize) {
  const DelayMatrix m = line_matrix(std::vector<float>(50, 0.0f));
  VivaldiParams p = test_params();
  p.neighbors_per_node = 8;
  // All delays zero is degenerate; use a generated-like matrix instead.
  DelayMatrix m2(50);
  for (HostId i = 0; i < 50; ++i) {
    for (HostId j = i + 1; j < 50; ++j) {
      m2.set(i, j, 1.0f + static_cast<float>(i + j));
    }
  }
  const VivaldiSystem sys(m2, p);
  for (HostId i = 0; i < 50; ++i) {
    EXPECT_EQ(sys.neighbors(i).size(), 8u);
    for (HostId n : sys.neighbors(i)) EXPECT_NE(n, i);
  }
}

TEST(Vivaldi, SetNeighborsValidates) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  VivaldiSystem sys(m, test_params());
  EXPECT_NO_THROW(sys.set_neighbors(0, {1}));
  EXPECT_THROW(sys.set_neighbors(0, {2}), std::invalid_argument);
}

TEST(Vivaldi, RejectsZeroDimension) {
  VivaldiParams p;
  p.dimension = 0;
  const DelayMatrix m_tiv = tiv_triangle();
  EXPECT_THROW(VivaldiSystem(m_tiv, p), std::invalid_argument);
}

TEST(Vivaldi, SampledSnapshotError) {
  const DelayMatrix m = line_matrix({0, 10, 30, 70, 150, 290});
  VivaldiSystem sys(m, test_params(3));
  sys.run(200);
  const auto full = sys.snapshot_error();
  const auto sampled = sys.snapshot_error(10);
  EXPECT_EQ(sampled.count(), 10u);
  EXPECT_GT(full.absolute_error().count, 10u);
}

TEST(EdgeErrorTrace, RecordsSignedErrorPerTick) {
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, test_params());
  EdgeErrorTrace trace({{0, 2}, {0, 1}});
  for (int t = 0; t < 10; ++t) {
    sys.tick();
    trace.observe(sys);
  }
  ASSERT_EQ(trace.trace(0).size(), 10u);
  ASSERT_EQ(trace.trace(1).size(), 10u);
  // Signed error of the long edge starts strongly negative (coords start
  // near origin, so predicted << 100).
  EXPECT_LT(trace.trace(0).front(), 0.0);
}

TEST(OscillationTracker, RangeIsMaxMinusMin) {
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, test_params());
  OscillationTracker tracker(
      std::vector<OscillationTracker::Edge>{{0, 2}});
  sys.run(100);
  for (int t = 0; t < 200; ++t) {
    sys.tick();
    tracker.observe(sys);
  }
  const auto ranges = tracker.ranges(sys.matrix());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_FLOAT_EQ(static_cast<float>(ranges[0].measured_ms), 100.0f);
  EXPECT_GT(ranges[0].range_ms, 1.0);  // TIV -> the prediction oscillates
}

TEST(OscillationTracker, SamplesEdgesFromMatrix) {
  DelayMatrix m(20);
  for (HostId i = 0; i < 20; ++i) {
    for (HostId j = i + 1; j < 20; ++j) m.set(i, j, 10.0f);
  }
  const OscillationTracker small(m, 1000);
  EXPECT_EQ(small.edge_count(), 190u);  // all edges fit
  const OscillationTracker sampled(m, 50);
  EXPECT_EQ(sampled.edge_count(), 50u);
}

TEST(OscillationTracker, NoObservationsYieldsEmpty) {
  DelayMatrix m(3);
  m.set(0, 1, 1.0f);
  const OscillationTracker tracker(m, 10);
  EXPECT_TRUE(tracker.ranges(m).empty());
}

TEST(Lat, TwoNodeSystemCorrectedExactly) {
  // With one neighbor each, e_0 = e_1 = (d - p) / 2, so the adjusted
  // prediction is p + (d - p) = d: LAT recovers the measured delay exactly,
  // whatever the embedding did.
  DelayMatrix m(2);
  m.set(0, 1, 42.0f);
  VivaldiSystem sys(m, test_params());
  sys.run(10);  // deliberately unconverged
  const LatAdjustment lat(sys);
  EXPECT_NEAR(lat.predicted(sys, 0, 1), 42.0, 1e-9);
}

TEST(Lat, AdjustmentsSumResidualsOverNeighbors) {
  // Hand-checked e_x on the TIV triangle: e_0 is half the mean residual of
  // node 0 against its two neighbors.
  const DelayMatrix m = tiv_triangle();
  VivaldiSystem sys(m, test_params());
  sys.run(100);
  const LatAdjustment lat(sys);
  const double r01 = m.at(0, 1) - sys.predicted(0, 1);
  const double r02 = m.at(0, 2) - sys.predicted(0, 2);
  EXPECT_NEAR(lat.adjustment(0), (r01 + r02) / 4.0, 1e-9);
}

TEST(Lat, ZeroResidualsGiveZeroAdjustment) {
  const DelayMatrix m = line_matrix({0, 10, 30, 70, 150});
  VivaldiSystem sys(m, test_params(3));
  sys.run(1000);
  const LatAdjustment lat(sys);
  // Well-embedded data: adjustments are small relative to typical delays.
  for (HostId i = 0; i < m.size(); ++i) {
    EXPECT_LT(std::abs(lat.adjustment(i)), 5.0);
  }
}

TEST(Lat, PredictionNeverNegative) {
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, test_params());
  sys.run(50);
  const LatAdjustment lat(sys);
  for (HostId i = 0; i < 3; ++i) {
    for (HostId j = 0; j < 3; ++j) {
      if (i != j) EXPECT_GE(lat.predicted(sys, i, j), 0.0);
    }
  }
}

// Dimensional sweep: Vivaldi in any dimension still cannot fix a TIV
// triangle (supports the paper's "any metric space is incompatible" claim).
class VivaldiDimSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VivaldiDimSweep, TivResidualPersistsInAllDimensions) {
  VivaldiParams p = test_params(GetParam());
  const DelayMatrix m_tiv = tiv_triangle();
  VivaldiSystem sys(m_tiv, p);
  sys.run(500);
  const auto err = sys.snapshot_error().absolute_error();
  // 5+5 < 100 forces total absolute error of at least 90 across the three
  // edges in *any* metric space; mean >= 30 in theory, allow slack for the
  // optimizer splitting it unevenly.
  EXPECT_GT(err.mean, 15.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, VivaldiDimSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 9u));

}  // namespace
}  // namespace tiv::embedding
