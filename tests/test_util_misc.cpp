// parallel_for, Flags, and Table.
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace tiv {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, HandlesZeroAndOne) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ChunksCoverRangeWithoutOverlap) {
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_chunks(kN, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    for (std::size_t i = b; i < e; ++i) ++visits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ThreadCountOverride) {
  set_parallel_thread_count(1);
  EXPECT_EQ(parallel_thread_count(), 1u);
  // Single-threaded execution must still visit everything.
  std::size_t sum = 0;  // no atomics needed with 1 thread
  parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
  set_parallel_thread_count(0);
  EXPECT_GE(parallel_thread_count(), 1u);
}

Flags make_flags(std::vector<const char*> argv) {
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesEqualsForm) {
  const auto f = make_flags({"prog", "--hosts=500", "--name=ds2"});
  EXPECT_EQ(f.get_int("hosts", 0), 500);
  EXPECT_EQ(f.get_string("name", ""), "ds2");
}

TEST(Flags, ParsesSpaceForm) {
  const auto f = make_flags({"prog", "--hosts", "500"});
  EXPECT_EQ(f.get_int("hosts", 0), 500);
}

TEST(Flags, BareBooleanAndExplicit) {
  const auto f = make_flags({"prog", "--full", "--fast=false"});
  EXPECT_TRUE(f.get_bool("full", false));
  EXPECT_FALSE(f.get_bool("fast", true));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = make_flags({"prog"});
  EXPECT_EQ(f.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("y", 2.5), 2.5);
  EXPECT_FALSE(f.has("x"));
}

TEST(Flags, RejectsNonFlagToken) {
  EXPECT_THROW(make_flags({"prog", "positional"}), std::invalid_argument);
}

TEST(Flags, RejectsBadInteger) {
  const auto f = make_flags({"prog", "--n=abc"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
}

TEST(Flags, RejectsBadBoolean) {
  const auto f = make_flags({"prog", "--b=maybe"});
  EXPECT_THROW(f.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, UnconsumedDetectsTypos) {
  const auto f = make_flags({"prog", "--hosts=5", "--typo=1"});
  EXPECT_EQ(f.get_int("hosts", 0), 5);
  const auto unknown = f.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
  EXPECT_THROW(reject_unknown_flags(f), std::invalid_argument);
}

TEST(Flags, RejectUnknownPassesWhenAllConsumed) {
  const auto f = make_flags({"prog", "--hosts=5"});
  EXPECT_EQ(f.get_int("hosts", 0), 5);
  EXPECT_NO_THROW(reject_unknown_flags(f));
}

TEST(Table, AlignsColumnsAndUnderlines) {
  Table t({"a", "long_header"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row_numeric({3.14159, 2.0}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.14,2.00\n");
}

TEST(Table, FormatDoubleHandlesNan) {
  EXPECT_EQ(format_double(std::nan(""), 2), "-");
  EXPECT_EQ(format_double(1.5, 2), "1.50");
}

}  // namespace
}  // namespace tiv
