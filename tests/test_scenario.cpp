// Scenario observatory (src/scenario/): generator determinism (same seed
// => byte-identical trace file), trace-format roundtrip and torn-trailer
// rejection, scorer math on hand-built ground truth, replay bit-identity
// vs direct ingestion across densities and n < 8, and a FaultInjector-
// under-replay soak asserting post-recovery bit-identity.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/alert.hpp"
#include "core/severity.hpp"
#include "matrix_test_utils.hpp"
#include "scenario/generators.hpp"
#include "scenario/replay.hpp"
#include "scenario/score.hpp"
#include "shard/fault_injector.hpp"
#include "util/rng.hpp"

namespace tiv::scenario {
namespace {

using core::SeverityMatrix;
using delayspace::DelayMatrix;
using test::random_matrix;

std::string scratch_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tiv_test_scenario_" + tag + "_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           ".tivtrace"))
      .string();
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

ScenarioParams small_params(std::uint32_t epochs = 6, std::uint64_t seed = 5) {
  ScenarioParams p;
  p.epochs = epochs;
  p.seed = seed;
  return p;
}

TEST(TraceGenerators, SameSeedYieldsByteIdenticalFile) {
  const DelayMatrix base = random_matrix(24, 0.1, 11);
  for (const auto& family : scenario_families()) {
    const DelayTrace a = generate_scenario(family, base, small_params());
    const DelayTrace b = generate_scenario(family, base, small_params());
    const std::string pa = scratch_path(family + "_a");
    const std::string pb = scratch_path(family + "_b");
    a.save(pa);
    b.save(pb);
    EXPECT_EQ(read_bytes(pa), read_bytes(pb)) << family;

    const DelayTrace c =
        generate_scenario(family, base, small_params(6, /*seed=*/99));
    const std::string pc = scratch_path(family + "_c");
    c.save(pc);
    EXPECT_NE(read_bytes(pa), read_bytes(pc))
        << family << ": different seed must change the trace";
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
    std::filesystem::remove(pc);
  }
}

TEST(TraceGenerators, AllFamiliesEmitValidBoundedEvents) {
  const DelayMatrix base = random_matrix(20, 0.2, 7);
  const auto params = small_params(8);
  for (const auto& family : scenario_families()) {
    const DelayTrace trace = generate_scenario(family, base, params);
    EXPECT_EQ(trace.hosts, base.size()) << family;
    EXPECT_EQ(trace.family, family);
    EXPECT_EQ(trace.seed, params.seed);
    ASSERT_EQ(trace.epochs.size(), params.epochs) << family;
    EXPECT_GT(trace.total_truth_events(), 0u) << family;
    EXPECT_GT(trace.total_samples(), 0u) << family;
    for (const auto& epoch : trace.epochs) {
      for (const auto& streams :
           {&epoch.truth, &epoch.samples}) {
        for (const auto& e : *streams) {
          EXPECT_LT(e.a, base.size()) << family;
          EXPECT_LT(e.b, base.size()) << family;
          EXPECT_NE(e.a, e.b) << family;
          EXPECT_FALSE(std::isnan(e.delay_ms)) << family;
        }
      }
    }
  }
}

TEST(TraceGenerators, UnknownFamilyAndBadParamsThrow) {
  const DelayMatrix base = random_matrix(8, 0.0, 3);
  EXPECT_THROW(generate_scenario("no_such_family", base, small_params()),
               std::invalid_argument);
  ScenarioParams zero_epochs = small_params(6);
  zero_epochs.epochs = 0;
  EXPECT_THROW(generate_scenario("oscillation", base, zero_epochs),
               std::invalid_argument);
  ScenarioParams flat = small_params();
  flat.inflation = 1.0;
  EXPECT_THROW(generate_scenario("oscillation", base, flat),
               std::invalid_argument);
}

TEST(TraceFormat, RoundtripPreservesEveryEvent) {
  const DelayMatrix base = random_matrix(16, 0.15, 21);
  const DelayTrace trace =
      generate_scenario("partition_heal", base, small_params(5, 13));
  const std::string path = scratch_path("roundtrip");
  trace.save(path);
  const DelayTrace loaded = DelayTrace::load(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.hosts, trace.hosts);
  EXPECT_EQ(loaded.seed, trace.seed);
  EXPECT_EQ(loaded.family, trace.family);
  ASSERT_EQ(loaded.epochs.size(), trace.epochs.size());
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    const auto& want = trace.epochs[e];
    const auto& got = loaded.epochs[e];
    ASSERT_EQ(got.truth.size(), want.truth.size());
    ASSERT_EQ(got.samples.size(), want.samples.size());
    for (std::size_t i = 0; i < want.truth.size(); ++i) {
      EXPECT_EQ(got.truth[i].a, want.truth[i].a);
      EXPECT_EQ(got.truth[i].b, want.truth[i].b);
      EXPECT_EQ(got.truth[i].delay_ms, want.truth[i].delay_ms);
      EXPECT_EQ(got.truth[i].timestamp, want.truth[i].timestamp);
    }
    for (std::size_t i = 0; i < want.samples.size(); ++i) {
      EXPECT_EQ(got.samples[i].delay_ms, want.samples[i].delay_ms);
      EXPECT_EQ(got.samples[i].timestamp, want.samples[i].timestamp);
    }
  }
}

TEST(TraceFormat, RejectsTornAndCorruptFiles) {
  const DelayMatrix base = random_matrix(10, 0.0, 9);
  const DelayTrace trace =
      generate_scenario("oscillation", base, small_params(4));
  const std::string path = scratch_path("torn");
  trace.save(path);
  const std::string good = read_bytes(path);

  // Flipped payload byte: checksum must catch it.
  std::string bad = good;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  { std::ofstream(path, std::ios::binary) << bad; }
  EXPECT_THROW(DelayTrace::load(path), TraceFormatError);

  // Torn trailer: a write that died mid-file.
  { std::ofstream(path, std::ios::binary) << good.substr(0, good.size() - 5); }
  EXPECT_THROW(DelayTrace::load(path), TraceFormatError);

  // Wrong magic.
  bad = good;
  bad[0] = 'X';
  { std::ofstream(path, std::ios::binary) << bad; }
  EXPECT_THROW(DelayTrace::load(path), TraceFormatError);

  // Too short to even hold magic + trailer.
  { std::ofstream(path, std::ios::binary) << "TIV"; }
  EXPECT_THROW(DelayTrace::load(path), TraceFormatError);

  std::filesystem::remove(path);
  EXPECT_THROW(DelayTrace::load(path), std::runtime_error);
}

TEST(Score, ClassificationCountsMath) {
  ClassificationCounts c;
  // 3 TP, 1 FP, 2 FN, 4 TN.
  for (int i = 0; i < 3; ++i) c.add(true, true);
  c.add(true, false);
  for (int i = 0; i < 2; ++i) c.add(false, true);
  for (int i = 0; i < 4; ++i) c.add(false, false);
  EXPECT_EQ(c.tp, 3u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 2u);
  EXPECT_EQ(c.tn, 4u);
  EXPECT_EQ(c.total(), 10u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.recall(), 0.6);
  EXPECT_DOUBLE_EQ(c.f1(), 2.0 * 0.75 * 0.6 / (0.75 + 0.6));

  const ClassificationCounts empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
}

TEST(Score, RatioAlertMatchesHandComputedSets) {
  // 10 samples; worst 20% = 2 highest severities (0.9, 0.8). Alerts at
  // ratio < 0.5: indices 0, 1, 2. Index 0 (sev 0.9) and 1 (sev 0.8) are
  // worst; index 2 is a false alert. NaN ratio never alerts.
  const std::vector<double> ratios{0.1, 0.2, 0.3, 0.7, 0.9,
                                   std::numeric_limits<double>::quiet_NaN(),
                                   0.8, 0.95, 0.6, 0.55};
  const std::vector<double> severities{0.9, 0.8, 0.1, 0.05, 0.02,
                                       0.7,  0.01, 0.03, 0.04, 0.06};
  const RatioAlertScore s = score_ratio_alert(ratios, severities, 0.2, 0.5);
  EXPECT_EQ(s.counts.tp, 2u);
  EXPECT_EQ(s.counts.fp, 1u);
  EXPECT_EQ(s.counts.fn, 0u);
  EXPECT_EQ(s.counts.tn, 7u);
  EXPECT_DOUBLE_EQ(s.severity_cutoff, 0.8);
  EXPECT_DOUBLE_EQ(s.alert_fraction, 0.3);
  EXPECT_DOUBLE_EQ(s.counts.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.counts.recall(), 1.0);

  EXPECT_EQ(score_ratio_alert({}, {}, 0.2, 0.5).counts.total(), 0u);
  EXPECT_THROW(score_ratio_alert(ratios, std::vector<double>{1.0}, 0.2, 0.5),
               std::invalid_argument);
}

TEST(Score, EvaluateAlertDelegatesToSharedScorer) {
  // evaluate_alert must agree with score_ratio_alert called directly —
  // the satellite contract that figs 20/21 and the observatory share one
  // classification implementation.
  std::vector<core::EdgeRatioSample> samples;
  std::vector<double> ratios;
  std::vector<double> severities;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    core::EdgeRatioSample s;
    s.ratio = rng.bernoulli(0.1) ? std::numeric_limits<double>::quiet_NaN()
                                 : rng.uniform(0.0, 1.5);
    s.severity = rng.uniform(0.0, 1.0);
    samples.push_back(s);
    ratios.push_back(s.ratio);
    severities.push_back(s.severity);
  }
  for (const double w : {0.01, 0.1, 0.5}) {
    for (const double t : {0.2, 0.6, 1.0}) {
      const auto m = core::evaluate_alert(samples, w, t);
      const auto s = score_ratio_alert(ratios, severities, w, t);
      EXPECT_EQ(m.alerts, s.counts.predicted_positive());
      EXPECT_DOUBLE_EQ(m.accuracy, s.counts.precision());
      EXPECT_DOUBLE_EQ(m.recall, s.counts.recall());
      EXPECT_DOUBLE_EQ(m.f1, s.counts.f1());
      EXPECT_DOUBLE_EQ(m.alert_fraction, s.alert_fraction);
    }
  }
}

/// Hand-driven scorer: 4 hosts, one watched edge (0,1). Truth severity
/// crosses the 0.5 gate at epoch 1, the monitor follows at epoch 3
/// (detect lag 2); truth clears at epoch 5, the monitor at epoch 6
/// (clear lag 1).
TEST(Score, TimeToDetectAndClearOnHandBuiltTimeline) {
  const delayspace::HostId n = 4;
  DelayMatrix truth(n);
  DelayMatrix monitor(n);
  for (delayspace::HostId a = 0; a < n; ++a) {
    for (delayspace::HostId b = a + 1; b < n; ++b) {
      truth.set(a, b, 50.0f);
      monitor.set(a, b, 50.0f);
    }
  }
  ScorerParams params;
  params.severity_threshold = 0.5;
  params.score_detour = false;
  QualityScorer scorer(n, params);

  auto observe = [&](float truth_sev01, float monitor_sev01) {
    SeverityMatrix ts(n);
    SeverityMatrix ms(n);
    ts.set(0, 1, truth_sev01);
    ms.set(0, 1, monitor_sev01);
    scorer.observe_epoch(truth, ts, monitor, ms);
  };
  observe(0.0f, 0.0f);  // epoch 0: quiet
  observe(0.9f, 0.0f);  // epoch 1: truth onset, not yet detected
  observe(0.9f, 0.0f);  // epoch 2
  observe(0.9f, 0.8f);  // epoch 3: detected (lag 2)
  observe(0.9f, 0.8f);  // epoch 4
  observe(0.0f, 0.8f);  // epoch 5: truth clear, alert still up
  observe(0.0f, 0.0f);  // epoch 6: alert drops (lag 1)

  const ThresholdQuality& q = scorer.headline();
  EXPECT_EQ(q.onsets, 1u);
  EXPECT_EQ(q.onsets_detected, 1u);
  EXPECT_EQ(q.onsets_missed, 0u);
  EXPECT_DOUBLE_EQ(q.mean_time_to_detect(), 2.0);
  EXPECT_EQ(q.clears, 1u);
  EXPECT_EQ(q.clears_confirmed, 1u);
  EXPECT_DOUBLE_EQ(q.mean_time_to_clear(), 1.0);
  // Classification totals over 7 epochs * 6 edges: the watched edge is a
  // TP in epochs 3-4, FN in 1-2, FP in 5; everything else is TN.
  EXPECT_EQ(q.counts.tp, 2u);
  EXPECT_EQ(q.counts.fn, 2u);
  EXPECT_EQ(q.counts.fp, 1u);
  EXPECT_EQ(q.counts.tn, 7u * 6u - 5u);
  EXPECT_EQ(scorer.epochs_scored(), 7u);
}

void expect_replay_bit_identical(const DelayMatrix& base,
                                 ReplayConfig::Engine engine,
                                 const std::string& family) {
  const DelayTrace trace = generate_scenario(family, base, small_params(5));
  ReplayConfig cfg;
  cfg.engine = engine;
  cfg.shard.tile_dim = 16;
  const ReplayDriver::Result result =
      ReplayDriver(base, trace, cfg).run();
  EXPECT_EQ(result.bit_mismatches, 0u)
      << family << " n=" << base.size()
      << (engine == ReplayConfig::Engine::kShard ? " (shard)" : " (memory)");
  EXPECT_EQ(result.epochs, trace.epochs.size());
  EXPECT_EQ(result.samples, trace.total_samples());
}

TEST(Replay, BitIdenticalToDirectIngestionAcrossDensities) {
  for (const double missing : {0.0, 0.3, 0.9}) {
    const DelayMatrix base = random_matrix(24, missing, 41);
    for (const auto engine :
         {ReplayConfig::Engine::kInMemory, ReplayConfig::Engine::kShard}) {
      expect_replay_bit_identical(base, engine, "oscillation");
      expect_replay_bit_identical(base, engine, "partition_heal");
    }
  }
}

TEST(Replay, BitIdenticalOnTinyMatrices) {
  for (const delayspace::HostId n : {3, 5, 7}) {
    const DelayMatrix base = random_matrix(n, 0.1, 50 + n);
    for (const auto engine :
         {ReplayConfig::Engine::kInMemory, ReplayConfig::Engine::kShard}) {
      expect_replay_bit_identical(base, engine, "flash_crowd");
    }
  }
}

TEST(Replay, ShardAndInMemoryAgreeOnQuality) {
  const DelayMatrix base = random_matrix(20, 0.1, 61);
  const DelayTrace trace =
      generate_scenario("correlated_links", base, small_params(6));
  ScorerParams sp;
  sp.severity_threshold = 0.1;

  auto score = [&](ReplayConfig::Engine engine) {
    ReplayConfig cfg;
    cfg.engine = engine;
    cfg.shard.tile_dim = 16;
    QualityScorer scorer(base.size(), sp);
    ReplayDriver(base, trace, cfg).run([&](const ReplayDriver::EpochView& v) {
      scorer.observe_epoch(v.truth, v.truth_severities, v.monitor,
                           v.monitor_severities);
    });
    return scorer;
  };
  const QualityScorer mem = score(ReplayConfig::Engine::kInMemory);
  const QualityScorer shard = score(ReplayConfig::Engine::kShard);
  EXPECT_EQ(mem.headline().counts.tp, shard.headline().counts.tp);
  EXPECT_EQ(mem.headline().counts.fp, shard.headline().counts.fp);
  EXPECT_EQ(mem.headline().counts.fn, shard.headline().counts.fn);
  EXPECT_EQ(mem.headline().onsets, shard.headline().onsets);
  EXPECT_EQ(mem.detour().wins, shard.detour().wins);
}

TEST(Replay, MismatchedHostCountThrows) {
  const DelayMatrix base = random_matrix(8, 0.0, 3);
  DelayTrace trace = generate_scenario("oscillation", base, small_params(3));
  trace.hosts = 9;
  EXPECT_THROW(ReplayDriver(base, trace, {}), std::invalid_argument);
}

TEST(Replay, FaultSoakRecoversToBitIdentity) {
  const DelayMatrix base = random_matrix(24, 0.1, 71);
  const DelayTrace trace =
      generate_scenario("oscillation", base, small_params(6));

  shard::FaultInjector::Config fc;
  fc.seed = 99;
  fc.bitflip_every_kth_read = 7;  // aggressive rot on every 7th tile read
  shard::FaultInjector input_fault(fc);
  fc.seed = 100;
  shard::FaultInjector sink_fault(fc);

  ReplayConfig cfg;
  cfg.engine = ReplayConfig::Engine::kShard;
  cfg.shard.tile_dim = 16;
  ReplayDriver driver(base, trace, cfg);
  driver.set_fault_injectors(&input_fault, &sink_fault);
  const ReplayDriver::Result result = driver.run();

  // The soak proves nothing unless rot actually landed...
  EXPECT_GT(input_fault.stats().bitflips + sink_fault.stats().bitflips, 0u);
  // ...and the contract is that recovery absorbed every flip: the replay
  // stayed bit-identical to direct ingestion at every epoch.
  EXPECT_EQ(result.bit_mismatches, 0u);
  const auto& r = result.recovery;
  EXPECT_GT(r.input_tiles_recovered + r.sink_tiles_recovered + r.io_retries +
                r.input_read_retries + r.sink_read_retries,
            0u);
}

}  // namespace
}  // namespace tiv::scenario
