// Height-vector Vivaldi (Dabek et al. §2.6).
#include <cmath>

#include <gtest/gtest.h>

#include "delayspace/generate.hpp"
#include "embedding/vivaldi.hpp"

namespace tiv::embedding {
namespace {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// Grid-with-constants: nodes on a 2-D grid; the first kSatellites hosts
/// each add 200 ms of access delay to every measurement (additive per
/// endpoint, so a satellite-satellite edge carries 400 ms). One such
/// constant can be faked by placing the node far away in the plane; four
/// mutually-conflicting constants cannot, while four heights absorb them
/// exactly.
constexpr HostId kSatellites = 4;

DelayMatrix satellite_matrix() {
  constexpr int kGrid = 5;  // 25 hosts at 20 ms spacing
  DelayMatrix m(kGrid * kGrid);
  auto pos = [](HostId h) {
    return std::pair<double, double>{20.0 * (h % kGrid), 20.0 * (h / kGrid)};
  };
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      const auto [xi, yi] = pos(i);
      const auto [xj, yj] = pos(j);
      double d = std::hypot(xi - xj, yi - yj);
      if (i < kSatellites) d += 200.0;
      if (j < kSatellites) d += 200.0;
      m.set(i, j, static_cast<float>(std::max(d, 0.1)));
    }
  }
  return m;
}

VivaldiParams height_params(bool height) {
  VivaldiParams p;
  p.dimension = 2;
  p.seed = 7;
  p.use_height = height;
  return p;
}

TEST(HeightVivaldi, HeightsStayAboveMinimum) {
  const DelayMatrix m = satellite_matrix();
  VivaldiSystem sys(m, height_params(true));
  sys.run(300);
  for (HostId i = 0; i < m.size(); ++i) {
    EXPECT_GE(sys.height(i), sys.params().min_height - 1e-12);
  }
}

TEST(HeightVivaldi, HeightDisabledReportsZero) {
  const DelayMatrix m = satellite_matrix();
  VivaldiSystem sys(m, height_params(false));
  sys.run(10);
  EXPECT_DOUBLE_EQ(sys.height(3), 0.0);
}

TEST(HeightVivaldi, SatelliteHostsGetLargeHeights) {
  const DelayMatrix m = satellite_matrix();
  VivaldiSystem sys(m, height_params(true));
  sys.run(10000);
  // The satellite hosts carry the 200 ms constants; their heights must
  // dwarf everyone else's.
  double other_max = 0.0;
  for (HostId i = kSatellites; i < m.size(); ++i) {
    other_max = std::max(other_max, sys.height(i));
  }
  for (HostId s = 0; s < kSatellites; ++s) {
    EXPECT_GT(sys.height(s), 50.0);
    EXPECT_GT(sys.height(s), 1.5 * other_max);
  }
}

TEST(HeightVivaldi, BeatsPlainEuclideanOnSatelliteData) {
  const DelayMatrix m = satellite_matrix();
  VivaldiSystem plain(m, height_params(false));
  VivaldiSystem tall(m, height_params(true));
  plain.run(10000);
  tall.run(10000);
  const double err_plain = plain.snapshot_error().absolute_error().mean;
  const double err_tall = tall.snapshot_error().absolute_error().mean;
  EXPECT_LT(err_tall, err_plain * 0.8);
}

TEST(HeightVivaldi, PredictionIncludesBothHeights) {
  const DelayMatrix m = satellite_matrix();
  VivaldiSystem sys(m, height_params(true));
  sys.run(100);
  const double d = distance(sys.coord(1), sys.coord(2));
  EXPECT_NEAR(sys.predicted(1, 2), d + sys.height(1) + sys.height(2), 1e-12);
}

TEST(HeightVivaldi, StillConvergesOnGeneratedSpace) {
  delayspace::DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = 111;
  p.hosts.num_hosts = 200;
  p.hosts.seed = 112;
  p.hosts.satellite_access_prob = 0.05;  // plenty of tall hosts
  const auto ds = delayspace::generate_delay_space(p);
  VivaldiParams vp = height_params(true);
  vp.dimension = 5;
  VivaldiSystem sys(ds.measured, vp);
  sys.run(300);
  const auto err = sys.snapshot_error().absolute_error();
  EXPECT_LT(err.median, 40.0);
}

}  // namespace
}  // namespace tiv::embedding
