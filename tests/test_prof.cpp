// Sampling profiler (src/obs/prof.*): span-stack registry push/pop and
// clamping, sampler-vs-worker concurrency (the reads TSan must bless),
// self/total path rollup math, collapsed-stack and JSON export shape,
// and SpanProfiler start/stop idempotence.
#include <array>
#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace tiv::obs {
namespace {

// --- SpanStack registry -----------------------------------------------------

TEST(SpanStack, PushPopRoundTrip) {
  SpanStack::Slot* slot = SpanStack::slot();
  ASSERT_NE(slot, nullptr);
  std::array<const char*, SpanStack::kMaxDepth> frames{};
  ASSERT_EQ(SpanStack::read(*slot, frames), 0u);

  SpanStack::push(*slot, "outer");
  SpanStack::push(*slot, "inner");
  ASSERT_EQ(SpanStack::read(*slot, frames), 2u);
  EXPECT_STREQ(frames[0], "outer");
  EXPECT_STREQ(frames[1], "inner");

  SpanStack::pop(*slot);
  ASSERT_EQ(SpanStack::read(*slot, frames), 1u);
  EXPECT_STREQ(frames[0], "outer");
  SpanStack::pop(*slot);
  EXPECT_EQ(SpanStack::read(*slot, frames), 0u);
}

TEST(SpanStack, OverflowCountsDepthButClampsNames) {
  SpanStack::Slot* slot = SpanStack::slot();
  ASSERT_NE(slot, nullptr);
  const std::size_t deep = SpanStack::kMaxDepth + 4;
  for (std::size_t i = 0; i < deep; ++i) SpanStack::push(*slot, "f");
  // Readers clamp to kMaxDepth; pops still balance the full nesting.
  std::array<const char*, SpanStack::kMaxDepth> frames{};
  EXPECT_EQ(SpanStack::read(*slot, frames), SpanStack::kMaxDepth);
  for (std::size_t i = 0; i < deep; ++i) SpanStack::pop(*slot);
  EXPECT_EQ(SpanStack::read(*slot, frames), 0u);
}

TEST(SpanStack, SpanPublishesOnlyWhenEnabled) {
  SpanStack::Slot* slot = SpanStack::slot();
  ASSERT_NE(slot, nullptr);
  std::array<const char*, SpanStack::kMaxDepth> frames{};

  ASSERT_FALSE(SpanStack::publishing());
  {
    Span off("quiet");
    EXPECT_EQ(SpanStack::read(*slot, frames), 0u);
  }

  SpanStack::set_publishing(true);
  {
    Span on("loud");
    ASSERT_EQ(SpanStack::read(*slot, frames), 1u);
    EXPECT_STREQ(frames[0], "loud");
  }
  SpanStack::set_publishing(false);
  EXPECT_EQ(SpanStack::read(*slot, frames), 0u);
}

// The exact race the sampler thread runs: worker threads push/pop their
// span stacks while a reader polls every slot. All crossings are atomic
// loads/stores, so TSan (the CI job that runs this binary) must see no
// race, and every read must return a prefix of literals we pushed.
TEST(SpanStack, ConcurrentReadsAreRaceFree) {
  SpanStack::set_publishing(true);
  std::atomic<bool> stop{false};
  constexpr int kWorkers = 4;

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        Span outer("outer");
        Span inner("inner");
      }
    });
  }

  std::thread reader([&stop] {
    std::array<const char*, SpanStack::kMaxDepth> frames{};
    std::uint64_t polls = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = SpanStack::slots_in_use();
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t d = SpanStack::read(SpanStack::slot_at(i), frames);
        for (std::uint32_t f = 0; f < d; ++f) {
          // A racing read may see a stale frame, never garbage: every
          // observed name is one of the two literals the workers push.
          const std::string name = frames[f] == nullptr ? "" : frames[f];
          EXPECT_TRUE(name == "outer" || name == "inner") << name;
        }
      }
      ++polls;
    }
    EXPECT_GT(polls, 0u);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : workers) t.join();
  reader.join();
  SpanStack::set_publishing(false);
}

// --- Profile rollup + export ------------------------------------------------

Profile make_profile() {
  Profile p;
  p.hz = 97.0;
  p.ticks = 10;
  p.samples = 6;
  p.idle_ticks = 4;
  p.threads_seen = 1;
  p.by_path["epoch"] = 3;
  p.by_path["epoch;sink-commit"] = 2;
  p.by_path["flush"] = 1;
  return p;
}

TEST(Profile, PathStatsRollUpTotals) {
  const auto stats = make_profile().path_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats.at("epoch").self, 3u);
  EXPECT_EQ(stats.at("epoch").total, 5u);  // 3 self + 2 in sink-commit
  EXPECT_EQ(stats.at("epoch;sink-commit").self, 2u);
  EXPECT_EQ(stats.at("epoch;sink-commit").total, 2u);
  EXPECT_EQ(stats.at("flush").self, 1u);
  EXPECT_EQ(stats.at("flush").total, 1u);
}

TEST(Profile, AncestorWithNoDirectSamplesAppears) {
  Profile p;
  p.by_path["a;b;c"] = 4;
  const auto stats = p.path_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats.at("a").self, 0u);
  EXPECT_EQ(stats.at("a").total, 4u);
  EXPECT_EQ(stats.at("a;b").self, 0u);
  EXPECT_EQ(stats.at("a;b").total, 4u);
  EXPECT_EQ(stats.at("a;b;c").self, 4u);
}

TEST(Profile, CollapsedFormatIsPathSpaceCount) {
  std::ostringstream out;
  make_profile().write_collapsed(out);
  EXPECT_EQ(out.str(),
            "epoch 3\n"
            "epoch;sink-commit 2\n"
            "flush 1\n");
}

TEST(Profile, JsonCarriesStatsPathsAndTree) {
  std::ostringstream out;
  make_profile().write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"hz\":97"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ticks\":10"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":6"), std::string::npos);
  EXPECT_NE(json.find("\"idle_ticks\":4"), std::string::npos);
  EXPECT_NE(json.find("\"threads_seen\":1"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"epoch;sink-commit\""), std::string::npos);
  EXPECT_NE(json.find("\"self\":2"), std::string::npos);
  // Hierarchical view: sink-commit nests under epoch.
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sink-commit\""), std::string::npos);
}

TEST(Profile, EmptyProfileStillWritesValidShape) {
  std::ostringstream out;
  Profile().write_json(out);
  EXPECT_NE(out.str().find("\"paths\":[]"), std::string::npos) << out.str();
}

// --- SpanProfiler lifecycle -------------------------------------------------

TEST(SpanProfiler, StartStopAreIdempotent) {
  SpanProfiler prof({1000.0});
  EXPECT_FALSE(prof.running());
  prof.stop();  // stop before start: no-op
  EXPECT_FALSE(prof.running());

  prof.start();
  prof.start();  // double start: single sampler
  EXPECT_TRUE(prof.running());
  EXPECT_TRUE(SpanStack::publishing());

  prof.stop();
  prof.stop();
  EXPECT_FALSE(prof.running());
  EXPECT_FALSE(SpanStack::publishing());
}

TEST(SpanProfiler, SamplesActiveSpans) {
  SpanProfiler prof({2000.0});
  prof.start();
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  while (std::chrono::steady_clock::now() < until) {
    Span busy("busy-phase");
    volatile double sink = 0.0;
    for (int i = 0; i < 2000; ++i) sink = sink + static_cast<double>(i);
  }
  prof.stop();

  const Profile p = prof.profile();
  EXPECT_GT(p.ticks, 0u);
  EXPECT_GT(p.samples, 0u);
  EXPECT_GE(p.threads_seen, 1u);
  std::uint64_t busy = 0;
  for (const auto& [path, count] : p.by_path) {
    if (path.find("busy-phase") != std::string::npos) busy += count;
  }
  EXPECT_GT(busy, 0u);
}

TEST(SpanProfiler, RestartAccumulates) {
  SpanProfiler prof({1000.0});
  prof.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  prof.stop();
  const std::uint64_t first = prof.profile().ticks;
  EXPECT_GT(first, 0u);

  prof.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  prof.stop();
  EXPECT_GT(prof.profile().ticks, first);
}

}  // namespace
}  // namespace tiv::obs
