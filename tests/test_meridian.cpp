// MeridianOverlay ring construction, recursive queries, and the
// misplacement analysis.
#include <cmath>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "delayspace/generate.hpp"
#include "meridian/meridian.hpp"
#include "meridian/misplacement.hpp"
#include "util/rng.hpp"

namespace tiv::meridian {
namespace {

using delayspace::DelayMatrix;

/// Points on a line -> a perfectly metric delay space.
DelayMatrix line_matrix(const std::vector<float>& pos) {
  DelayMatrix m(static_cast<HostId>(pos.size()));
  for (HostId i = 0; i < pos.size(); ++i) {
    for (HostId j = i + 1; j < pos.size(); ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]));
    }
  }
  return m;
}

MeridianParams full_ring_params() {
  MeridianParams p;
  p.ring_capacity = 10000;  // effectively unbounded
  p.num_rings = 16;
  p.use_termination = false;
  return p;
}

TEST(Meridian, RejectsBadParameters) {
  const DelayMatrix m = line_matrix({0, 1, 2, 3});
  std::vector<HostId> nodes{0, 1, 2};
  MeridianParams p;
  p.beta = 1.5;
  EXPECT_THROW(MeridianOverlay(m, nodes, p), std::invalid_argument);
  p = MeridianParams{};
  p.s = 0.5;
  EXPECT_THROW(MeridianOverlay(m, nodes, p), std::invalid_argument);
  p = MeridianParams{};
  p.adjust_rings = true;  // without predictor
  EXPECT_THROW(MeridianOverlay(m, nodes, p), std::invalid_argument);
  EXPECT_THROW(MeridianOverlay(m, {0}, MeridianParams{}),
               std::invalid_argument);
}

TEST(Meridian, RingCapacityRespected) {
  DelayMatrix m(40);
  // Everyone 10 ms from everyone: all members target the same ring.
  for (HostId i = 0; i < 40; ++i) {
    for (HostId j = i + 1; j < 40; ++j) m.set(i, j, 10.0f);
  }
  std::vector<HostId> nodes(40);
  std::iota(nodes.begin(), nodes.end(), 0);
  MeridianParams p;
  p.ring_capacity = 5;
  const MeridianOverlay overlay(m, nodes, p);
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    EXPECT_LE(overlay.rings_of(v).size(), 5u);
  }
}

TEST(Meridian, RingIndexGrowsWithDelay) {
  const DelayMatrix m = line_matrix({0, 1, 3, 9, 27, 81, 243});
  std::vector<HostId> nodes{0, 1, 2, 3, 4, 5, 6};
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  // Node 0's entries must be sorted by delay with non-decreasing ring index.
  const auto& rings = overlay.rings_of(0);
  ASSERT_EQ(rings.size(), 6u);
  for (std::size_t e = 1; e < rings.size(); ++e) {
    EXPECT_GE(rings[e].placement_delay, rings[e - 1].placement_delay);
    EXPECT_GE(rings[e].ring, rings[e - 1].ring);
  }
  EXPECT_GE(rings.back().ring, rings.front().ring + 3);
}

TEST(Meridian, EdgeFilterExcludesEdges) {
  const DelayMatrix m = line_matrix({0, 5, 10, 15, 20});
  std::vector<HostId> nodes{0, 1, 2, 3, 4};
  MeridianParams p = full_ring_params();
  p.edge_filter = [](HostId a, HostId b) {
    return (a == 0 && b == 1) || (a == 1 && b == 0);
  };
  const MeridianOverlay overlay(m, nodes, p);
  for (const auto& e : overlay.rings_of(0)) EXPECT_NE(e.member, 1u);
  for (const auto& e : overlay.rings_of(1)) EXPECT_NE(e.member, 0u);
  // Other nodes unaffected.
  EXPECT_EQ(overlay.rings_of(2).size(), 4u);
}

TEST(Meridian, OptimalNodeComputesMinimum) {
  const DelayMatrix m = line_matrix({0, 5, 10, 50, 100});
  std::vector<HostId> nodes{0, 1, 4};
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  const auto [best, d] = overlay.optimal_node(3);
  EXPECT_EQ(best, 1u);
  EXPECT_DOUBLE_EQ(d, 45.0);
}

TEST(Meridian, FindsNearestOnMetricSpaceWithIdealSettings) {
  // 60 points on a line, all overlay members, full rings, no termination:
  // the query must find the true nearest node from any start.
  std::vector<float> pos;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    pos.push_back(static_cast<float>(rng.uniform(0.0, 400.0)));
  }
  const DelayMatrix m = line_matrix(pos);
  std::vector<HostId> nodes(48);  // first 48 are overlay, rest targets
  std::iota(nodes.begin(), nodes.end(), 0);
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  std::size_t exact = 0;
  std::size_t total = 0;
  for (HostId target = 48; target < 60; ++target) {
    for (HostId start : {0u, 10u, 47u}) {
      const auto [opt, opt_d] = overlay.optimal_node(target);
      const QueryResult qr = overlay.find_closest(target, start);
      ++total;
      exact += std::abs(qr.chosen_delay - opt_d) < 1e-6;
    }
  }
  // Idealized Meridian on metric data: near-perfect (paper Fig. 14's
  // Euclidean curve). Allow the rare stall the paper itself observes.
  EXPECT_GE(static_cast<double>(exact) / static_cast<double>(total), 0.9);
}

TEST(Meridian, TerminationReducesProbes) {
  delayspace::DelaySpaceParams params;
  params.topology.num_ases = 60;
  params.topology.seed = 21;
  params.hosts.num_hosts = 160;
  params.hosts.seed = 22;
  const auto ds = delayspace::generate_delay_space(params);
  std::vector<HostId> nodes(80);
  std::iota(nodes.begin(), nodes.end(), 0);

  MeridianParams with_term;
  with_term.use_termination = true;
  MeridianParams no_term = with_term;
  no_term.use_termination = false;

  const MeridianOverlay a(ds.measured, nodes, with_term);
  const MeridianOverlay b(ds.measured, nodes, no_term);
  std::uint64_t probes_term = 0;
  std::uint64_t probes_noterm = 0;
  for (HostId target = 80; target < 160; ++target) {
    probes_term += a.find_closest(target, nodes[target % 80]).probes;
    probes_noterm += b.find_closest(target, nodes[target % 80]).probes;
  }
  EXPECT_LE(probes_term, probes_noterm);
}

TEST(Meridian, QueryVisitsCountedInHops) {
  const DelayMatrix m = line_matrix({0, 100, 200, 300, 301});
  std::vector<HostId> nodes{0, 1, 2, 3};
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  const QueryResult qr = overlay.find_closest(4, 0);  // target at 301
  EXPECT_EQ(qr.chosen, 3u);
  EXPECT_GE(qr.hops, 1u);
  EXPECT_GT(qr.probes, 0u);
}

TEST(Meridian, ThrowsWhenStartNotInOverlay) {
  const DelayMatrix m = line_matrix({0, 1, 2, 3});
  std::vector<HostId> nodes{0, 1};
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  EXPECT_THROW(overlay.find_closest(3, 2), std::invalid_argument);
}

TEST(Meridian, RingAdjustmentAddsDualPlacement) {
  // Edge 0-1 is severely violated (measured 100, "predicted" 10): with
  // adjustment on, node 1 appears in node 0's rings both at 100 and at 10.
  DelayMatrix m(4);
  m.set(0, 1, 100.0f);
  m.set(0, 2, 10.0f);
  m.set(0, 3, 12.0f);
  m.set(1, 2, 10.0f);
  m.set(1, 3, 12.0f);
  m.set(2, 3, 4.0f);
  std::vector<HostId> nodes{0, 1, 2, 3};
  MeridianParams p = full_ring_params();
  p.adjust_rings = true;
  p.predictor = [](HostId a, HostId b) {
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return 10.0;
    return 50.0;  // ratio within [ts, tl] for 10-12 ms edges? 50/10=5 > tl!
  };
  // Use a predictor consistent with measured for non-alert edges.
  p.predictor = [&m](HostId a, HostId b) {
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return 10.0;
    return static_cast<double>(m.at(a, b));
  };
  const MeridianOverlay overlay(m, nodes, p);
  int placements_of_1 = 0;
  for (const auto& e : overlay.rings_of(0)) placements_of_1 += e.member == 1;
  EXPECT_EQ(placements_of_1, 2);
  // Non-alerted members stay single-placed.
  int placements_of_2 = 0;
  for (const auto& e : overlay.rings_of(0)) placements_of_2 += e.member == 2;
  EXPECT_EQ(placements_of_2, 1);
}

TEST(Meridian, RingOccupancySums) {
  const DelayMatrix m = line_matrix({0, 2, 4, 8, 16, 32});
  std::vector<HostId> nodes{0, 1, 2, 3, 4, 5};
  const MeridianOverlay overlay(m, nodes, full_ring_params());
  const auto occ = overlay.ring_occupancy();
  std::size_t total = 0;
  for (std::size_t r = 1; r < occ.size(); ++r) total += occ[r];
  EXPECT_EQ(total, 30u);  // 6 nodes x 5 members
}

// --- Misplacement analysis ------------------------------------------------

TEST(Misplacement, ZeroOnMetricSpace) {
  // Triangle inequality guarantees every node in the beta-ball of Nj lies
  // within [(1-beta)d, (1+beta)d] of Ni.
  std::vector<float> pos;
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    pos.push_back(static_cast<float>(rng.uniform(0.0, 300.0)));
  }
  const DelayMatrix m = line_matrix(pos);
  MisplacementParams p;
  EXPECT_DOUBLE_EQ(misplacement_fraction(m, p), 0.0);
}

TEST(Misplacement, DetectsTivInducedErrors) {
  // The 3-node TIV example embedded in a larger set: misplacement > 0.
  DelayMatrix m(4);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 2, 100.0f);
  m.set(0, 3, 50.0f);
  m.set(1, 3, 50.0f);
  m.set(2, 3, 50.0f);
  EXPECT_GT(misplacement_fraction(m, {}), 0.0);
}

TEST(Misplacement, LargerBetaToleratesMore) {
  delayspace::DelaySpaceParams params;
  params.topology.num_ases = 60;
  params.topology.seed = 31;
  params.hosts.num_hosts = 120;
  params.hosts.seed = 32;
  const auto ds = delayspace::generate_delay_space(params);
  MisplacementParams small;
  small.beta = 0.1;
  MisplacementParams large;
  large.beta = 0.9;
  EXPECT_GT(misplacement_fraction(ds.measured, small),
            misplacement_fraction(ds.measured, large));
}

TEST(Misplacement, SeriesBinsAreFractions) {
  delayspace::DelaySpaceParams params;
  params.topology.num_ases = 60;
  params.topology.seed = 33;
  params.hosts.num_hosts = 100;
  params.hosts.seed = 34;
  const auto ds = delayspace::generate_delay_space(params);
  MisplacementParams p;
  p.sample_pairs = 2000;
  const auto bins = misplacement_series(ds.measured, p);
  EXPECT_FALSE(bins.empty());
  for (const auto& b : bins) {
    EXPECT_GE(b.median, 0.0);
    EXPECT_LE(b.median, 1.0);
  }
}

}  // namespace
}  // namespace tiv::meridian
