// Survivable storage (shard/fault_injector + stream/epoch_manifest +
// ShardStreamEngine self-healing): deterministic fault injection flips
// bits, tears commits, and kills the process mid-epoch, and the engine
// must converge back to severities bit-identical to the in-memory
// reference — plus the crash-consistency and geometry-check contracts of
// the tile files themselves.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "matrix_test_utils.hpp"
#include "shard/checksum.hpp"
#include "shard/fault_injector.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"
#include "stream/epoch_manifest.hpp"
#include "stream/incremental_severity.hpp"
#include "stream/shard_stream.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::stream {
namespace {

using core::SeverityMatrix;
using delayspace::DelayMatrix;
using delayspace::HostId;
using shard::CorruptTileError;
using shard::FaultInjector;
using shard::InjectedCrash;
using shard::InjectedIoError;

using tiv::test::random_matrix;

std::string scratch_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tiv_test_fault_" + tag + "_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           ".tiles"))
      .string();
}

/// XORs one byte at absolute `offset` of `path` — persistent disk rot, as
/// opposed to the injector's in-flight read flips.
void rot_byte_at(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

::testing::AssertionResult engine_matches(ShardStreamEngine& engine,
                                          const SeverityMatrix& want) {
  const HostId n = engine.size();
  if (want.size() != n) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  std::vector<float> row(n);
  for (HostId a = 0; a < n; ++a) {
    engine.severity_row(a, row);
    for (HostId b = 0; b < n; ++b) {
      const auto g = std::bit_cast<std::uint32_t>(row[b]);
      const auto w = std::bit_cast<std::uint32_t>(want.at(a, b));
      if (g != w) {
        return ::testing::AssertionFailure()
               << "severity (" << a << ", " << b << "): bits " << g
               << " != " << w;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

ShardStreamConfig engine_config(const std::string& tag, bool keep_files) {
  ShardStreamConfig cfg;
  cfg.tile_dim = 16;
  cfg.input_path = scratch_path(tag + "_in");
  cfg.sink_path = scratch_path(tag + "_out");
  cfg.keep_files = keep_files;
  return cfg;
}

void remove_store_files(const ShardStreamConfig& cfg) {
  std::filesystem::remove(cfg.input_path);
  std::filesystem::remove(cfg.sink_path);
  std::filesystem::remove(EpochManifest::path_for(cfg.sink_path));
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, EveryKthReadFlipsDeterministically) {
  FaultInjector::Config cfg;
  cfg.seed = 7;
  cfg.bitflip_every_kth_read = 3;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  int flips = 0;
  for (int i = 0; i < 9; ++i) {
    a.before_read();
    b.before_read();
    std::size_t byte_a = 0, byte_b = 0;
    unsigned bit_a = 0, bit_b = 0;
    const bool fa = a.corrupt_read(1024, &byte_a, &bit_a);
    const bool fb = b.corrupt_read(1024, &byte_b, &bit_b);
    EXPECT_EQ(fa, fb);  // pure function of (seed, ordinal)
    if (fa) {
      ++flips;
      EXPECT_EQ(byte_a, byte_b);
      EXPECT_EQ(bit_a, bit_b);
      EXPECT_LT(byte_a, 1024u);
      EXPECT_LT(bit_a, 8u);
    }
  }
  EXPECT_EQ(flips, 3);  // reads 3, 6, 9
  EXPECT_EQ(a.stats().reads, 9u);
  EXPECT_EQ(a.stats().bitflips, 3u);
}

TEST(FaultInjector, EioRateAlwaysFiresAtOne) {
  FaultInjector::Config cfg;
  cfg.eio_read_rate = 1.0;
  FaultInjector inj(cfg);
  EXPECT_THROW(inj.before_read(), InjectedIoError);
  EXPECT_EQ(inj.stats().eio_errors, 1u);
}

TEST(FaultInjector, AttachedInjectorCorruptsStoreReads) {
  const DelayMatrix m = random_matrix(20, 0.1, 61);
  const std::string path = scratch_path("inj_store");
  shard::TileStore::write_matrix(path, m, 16);
  auto store = shard::TileStore::open(path);
  FaultInjector::Config cfg;
  cfg.bitflip_every_kth_read = 1;  // every read flips
  FaultInjector inj(cfg);
  store.set_fault_injector(&inj);
  std::vector<float> payload(store.payload_floats());
  std::vector<std::uint64_t> masks(store.mask_words());
  EXPECT_THROW(store.read_tile(0, 0, payload.data(), masks.data()),
               CorruptTileError);
  store.set_fault_injector(nullptr);  // disk untouched: clean read now
  store.read_tile(0, 0, payload.data(), masks.data());
  EXPECT_GE(inj.stats().bitflips, 1u);
  std::filesystem::remove(path);
}

// --- Geometry checks on reopen ----------------------------------------------

TEST(GeometryCheck, ReopenRejectsMismatchedStores) {
  const DelayMatrix m = random_matrix(32, 0.1, 62);
  const std::string in_path = scratch_path("geom_in");
  const std::string out_path = scratch_path("geom_out");
  shard::TileStore::write_matrix(in_path, m, 16);
  sink::SeverityTileStore::create(out_path, 32, 16);

  // Matching expectations open fine; nonzero mismatched n or tile_dim is
  // rejected in both stores via the shared helper.
  shard::TileStore::open(in_path, false, 32, 16);
  sink::SeverityTileStore::open(out_path, false, 32, 16);
  EXPECT_THROW(shard::TileStore::open(in_path, false, 48, 16),
               std::runtime_error);
  EXPECT_THROW(shard::TileStore::open(in_path, false, 32, 32),
               std::runtime_error);
  EXPECT_THROW(sink::SeverityTileStore::open(out_path, false, 48, 16),
               std::runtime_error);
  EXPECT_THROW(sink::SeverityTileStore::open(out_path, false, 32, 32),
               std::runtime_error);

  // recover() routes the same check: a config whose geometry does not
  // match the files is rejected before any tile is served.
  ShardStreamConfig cfg;
  cfg.input_path = in_path;
  cfg.sink_path = out_path;
  cfg.tile_dim = 32;  // files were built with 16
  cfg.keep_files = true;
  EXPECT_THROW(ShardStreamEngine::recover(m, cfg), std::runtime_error);

  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

// --- EpochManifest ----------------------------------------------------------

TEST(EpochManifest, RoundTripAndClear) {
  const std::string path = scratch_path("manifest");
  EpochManifest m;
  m.generation = 42;
  m.input_tiles = {{0, 0}, {0, 2}, {2, 0}};
  m.sink_tiles = {{0, 1}, {1, 2}};
  m.write(path);

  const auto got = EpochManifest::load(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->generation, 42u);
  EXPECT_EQ(got->input_tiles, m.input_tiles);
  EXPECT_EQ(got->sink_tiles, m.sink_tiles);

  EpochManifest::clear(path);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(EpochManifest::load(path).has_value());
  EpochManifest::clear(path);  // idempotent
}

TEST(EpochManifest, TornManifestLoadsAsClean) {
  const std::string path = scratch_path("manifest_torn");
  EpochManifest m;
  m.generation = 7;
  m.input_tiles = {{1, 1}};
  m.sink_tiles = {{0, 1}};
  m.write(path);
  // A crash mid-manifest-write leaves a short or checksum-broken file:
  // both must read as "no torn epoch" (the stores were not touched yet).
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
  EXPECT_FALSE(EpochManifest::load(path).has_value());
  m.write(path);
  rot_byte_at(path, 9);
  EXPECT_FALSE(EpochManifest::load(path).has_value());
  std::filesystem::remove(path);
}

// --- Self-healing reads ------------------------------------------------------

TEST(FaultRecovery, DiskRotInSinkTileHealsOnRead) {
  const DelayMatrix m = random_matrix(37, 0.3, 63);
  const SeverityMatrix want = core::TivAnalyzer(m).all_severities();
  auto cfg = engine_config("sinkrot", /*keep_files=*/true);
  { ShardStreamEngine build(m, cfg); }  // build stores, keep files

  {  // rot one byte inside sink tile (1, 2), then reopen cold
    const auto sink = sink::SeverityTileStore::open(cfg.sink_path);
    rot_byte_at(cfg.sink_path, sink.tile_offset(1, 2) + 100);
  }
  ShardStreamEngine engine = ShardStreamEngine::recover(m, cfg);
  EXPECT_TRUE(engine_matches(engine, want));
  EXPECT_GE(engine.recovery_stats().sink_tiles_recovered, 1u);
  EXPECT_EQ(engine.recovery_stats().torn_epochs_replayed, 0u);
  // Healed on disk, not just in cache: a second cold open reads clean.
  {
    const auto sink = sink::SeverityTileStore::open(cfg.sink_path);
    std::vector<float> tile(sink.payload_floats());
    sink.read_tile(1, 2, tile.data());
  }
  remove_store_files(cfg);
}

TEST(FaultRecovery, DiskRotInInputTileHealsFromLiveMatrix) {
  const DelayMatrix m = random_matrix(37, 0.2, 64);
  auto cfg = engine_config("inrot", /*keep_files=*/true);
  { ShardStreamEngine build(m, cfg); }

  {  // rot input tile (1, 2) — outside the dirty band repacked below
    const auto in = shard::TileStore::open(cfg.input_path);
    rot_byte_at(cfg.input_path, in.tile_offset(1, 2) + 64);
  }
  DelayStream stream(m);
  IncrementalSeverity in_memory(stream.matrix());
  ShardStreamEngine engine = ShardStreamEngine::recover(stream.matrix(), cfg);

  // An epoch dirtying band 0 scans input tiles of every band, including
  // the rotten (1, 2): the engine must repack it from the live matrix and
  // finish the epoch bit-identically.
  stream.ingest({0, 5, 17.0f, 0.0});
  const Epoch epoch = stream.commit_epoch();
  in_memory.apply_epoch(stream.matrix(), epoch.dirty_hosts);
  engine.apply_epoch(stream.matrix(), epoch.dirty_hosts);
  EXPECT_TRUE(engine_matches(engine, in_memory.severities()));
  EXPECT_GE(engine.recovery_stats().input_tiles_recovered, 1u);
  remove_store_files(cfg);
}

TEST(FaultRecovery, TruncatedSinkTailHealsOnRead) {
  const DelayMatrix m = random_matrix(37, 0.3, 65);
  const SeverityMatrix want = core::TivAnalyzer(m).all_severities();
  auto cfg = engine_config("trunc", /*keep_files=*/true);
  { ShardStreamEngine build(m, cfg); }

  const auto full_size = std::filesystem::file_size(cfg.sink_path);
  std::filesystem::resize_file(cfg.sink_path, full_size - 10);

  ShardStreamEngine engine = ShardStreamEngine::recover(m, cfg);
  EXPECT_TRUE(engine_matches(engine, want));
  EXPECT_GE(engine.recovery_stats().sink_tiles_recovered, 1u);
  // The heal rewrote the lost tail in place.
  EXPECT_EQ(std::filesystem::file_size(cfg.sink_path), full_size);
  remove_store_files(cfg);
}

TEST(FaultRecovery, InjectedEioRetriesUntilClean) {
  const DelayMatrix m = random_matrix(48, 0.1, 66);
  const SeverityMatrix want = core::TivAnalyzer(m).all_severities();
  auto cfg = engine_config("eio", false);
  // One-tile sink budget: every readback row misses, so the injector sees
  // real preads (a fully-cached sink would never call it).
  cfg.output_budget_bytes = 16 * 16 * sizeof(float);
  ShardStreamEngine engine(m, cfg);
  FaultInjector::Config icfg;
  icfg.eio_read_rate = 0.4;
  FaultInjector inj(icfg);
  engine.set_sink_fault_injector(&inj);
  EXPECT_TRUE(engine_matches(engine, want));
  engine.set_sink_fault_injector(nullptr);
  EXPECT_GE(engine.recovery_stats().io_retries, 1u);
  EXPECT_EQ(engine.recovery_stats().sink_tiles_recovered, 0u);
}

// --- Kill-mid-commit + recover ----------------------------------------------

/// Runs one epoch that dies mid-commit under `make_fault`, then recovers
/// from the on-disk state and asserts bit-identity with the in-memory
/// reference that applied the epoch cleanly.
void kill_and_recover(std::uint32_t torn_at, bool fault_on_input,
                      const std::string& tag) {
  set_parallel_thread_count(2);
  DelayStream stream(random_matrix(37, 0.3, 67));
  IncrementalSeverity in_memory(stream.matrix());
  auto cfg = engine_config(tag, /*keep_files=*/true);

  FaultInjector::Config icfg;
  icfg.torn_write_at_commit = torn_at;
  FaultInjector inj(icfg);
  {
    ShardStreamEngine engine(stream.matrix(), cfg);
    // Attach after the initial build so the ordinal counts epoch commits.
    if (fault_on_input) {
      engine.set_input_fault_injector(&inj);
    } else {
      engine.set_sink_fault_injector(&inj);
    }
    for (int u = 0; u < 40; ++u) {
      const auto a = static_cast<HostId>(u % 37);
      const auto b = static_cast<HostId>((u * 7 + 3) % 37);
      if (a != b) stream.ingest({a, b, float(10 + u), 0.0});
    }
    const Epoch epoch = stream.commit_epoch();
    in_memory.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    EXPECT_THROW(engine.apply_epoch(stream.matrix(), epoch.dirty_hosts),
                 InjectedCrash);
    EXPECT_EQ(inj.stats().torn_writes, 1u);
  }  // "process dies": engine destroyed, stores + manifest survive

  ASSERT_TRUE(std::filesystem::exists(EpochManifest::path_for(cfg.sink_path)))
      << "a torn epoch must leave its journal behind";

  // Reopen-after-kill: the journaled tiles replay from the post-epoch
  // matrix and the result is bit-identical to the clean in-memory path.
  ShardStreamEngine engine =
      ShardStreamEngine::recover(stream.matrix(), cfg);
  EXPECT_EQ(engine.recovery_stats().torn_epochs_replayed, 1u);
  EXPECT_EQ(engine.epochs_applied(), 1u);
  EXPECT_FALSE(std::filesystem::exists(EpochManifest::path_for(cfg.sink_path)));
  EXPECT_TRUE(engine_matches(engine, in_memory.severities()));

  // The recovered engine keeps working: another clean epoch stays
  // bit-identical.
  stream.ingest({3, 30, 99.0f, 1.0});
  const Epoch epoch2 = stream.commit_epoch();
  in_memory.apply_epoch(stream.matrix(), epoch2.dirty_hosts);
  engine.apply_epoch(stream.matrix(), epoch2.dirty_hosts);
  EXPECT_TRUE(engine_matches(engine, in_memory.severities()));

  remove_store_files(cfg);
  set_parallel_thread_count(0);
}

TEST(FaultRecovery, KillOnFirstInputRepackRecovers) {
  kill_and_recover(1, /*fault_on_input=*/true, "kill_in1");
}

TEST(FaultRecovery, KillMidInputRepackBatchRecovers) {
  kill_and_recover(3, /*fault_on_input=*/true, "kill_in3");
}

TEST(FaultRecovery, KillOnFirstSinkCommitRecovers) {
  kill_and_recover(1, /*fault_on_input=*/false, "kill_out1");
}

TEST(FaultRecovery, KillMidSinkCommitBatchRecovers) {
  kill_and_recover(2, /*fault_on_input=*/false, "kill_out2");
}

TEST(FaultRecovery, FailBeforeChecksumRecovers) {
  // The other half of the torn-commit window: tile bytes land, checksum
  // does not. Identical recovery contract.
  set_parallel_thread_count(2);
  DelayStream stream(random_matrix(37, 0.2, 68));
  IncrementalSeverity in_memory(stream.matrix());
  auto cfg = engine_config("failck", /*keep_files=*/true);
  FaultInjector::Config icfg;
  icfg.fail_at_commit = 2;
  FaultInjector inj(icfg);
  {
    ShardStreamEngine engine(stream.matrix(), cfg);
    engine.set_sink_fault_injector(&inj);
    for (int u = 0; u < 30; ++u) {
      stream.ingest({static_cast<HostId>(u % 37),
                     static_cast<HostId>((u * 11 + 5) % 37), float(20 + u),
                     0.0});
    }
    const Epoch epoch = stream.commit_epoch();
    in_memory.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    EXPECT_THROW(engine.apply_epoch(stream.matrix(), epoch.dirty_hosts),
                 InjectedCrash);
    EXPECT_EQ(inj.stats().commit_fails, 1u);
  }
  ShardStreamEngine engine =
      ShardStreamEngine::recover(stream.matrix(), cfg);
  EXPECT_EQ(engine.recovery_stats().torn_epochs_replayed, 1u);
  EXPECT_TRUE(engine_matches(engine, in_memory.severities()));
  remove_store_files(cfg);
  set_parallel_thread_count(0);
}

// --- The soak: randomized epochs under sustained bit-flips -------------------

TEST(FaultRecovery, BitflipSoakStaysBitIdentical) {
  set_parallel_thread_count(2);
  const HostId n = 70;  // 5 bands: 25 input tiles, 15 sink tiles
  DelayStream stream(random_matrix(n, 0.3, 69));
  IncrementalSeverity in_memory(stream.matrix());
  auto cfg = engine_config("soak", false);
  // Budgets far below the tile grids (just above the 2-thread pinned
  // working set): constant eviction keeps the injectors on the read path —
  // a fully-cached store would never exercise them.
  const std::size_t in_tile = 16 * 16 * sizeof(float) + 16 * sizeof(std::uint64_t);
  cfg.input_budget_bytes = 8 * in_tile;
  cfg.output_budget_bytes = 3 * (16 * 16 * sizeof(float));
  ShardStreamEngine engine(stream.matrix(), cfg);

  // Flip one bit on every ~40th read of either store — well inside the
  // ISSUE's <= 5%-of-reads envelope, hot enough that every epoch and most
  // readbacks trip at least one heal.
  FaultInjector::Config in_cfg;
  in_cfg.seed = 11;
  in_cfg.bitflip_every_kth_read = 40;
  FaultInjector in_inj(in_cfg);
  FaultInjector::Config out_cfg;
  out_cfg.seed = 13;
  out_cfg.bitflip_every_kth_read = 40;
  FaultInjector out_inj(out_cfg);
  engine.set_input_fault_injector(&in_inj);
  engine.set_sink_fault_injector(&out_inj);
  engine.attach_source(&stream.matrix());

  Rng rng(0xf417u);
  for (int e = 0; e < 5; ++e) {
    const std::size_t updates = 1 + rng.uniform_index(2 * n);
    for (std::size_t u = 0; u < updates; ++u) {
      const auto a = static_cast<HostId>(rng.uniform_index(n));
      const auto b = static_cast<HostId>(rng.uniform_index(n));
      if (a == b) continue;
      const float value =
          rng.bernoulli(0.2) ? DelayMatrix::kMissing
                             : static_cast<float>(rng.uniform(1.0, 400.0));
      stream.ingest({a, b, value, double(e)});
    }
    const Epoch epoch = stream.commit_epoch();
    in_memory.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    engine.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    // Full readback under injection after every epoch: zero bit mismatches
    // tolerated, ever.
    ASSERT_TRUE(engine_matches(engine, in_memory.severities()))
        << "epoch " << e;
  }
  // In-flight flips are *transient*: the tile-file layer absorbs them with
  // a clean re-read (read_retries) instead of escalating to a rebuild —
  // the soak must show the faults were really hit and really absorbed.
  const auto rec = engine.recovery_stats();
  EXPECT_GE(rec.input_read_retries + rec.sink_read_retries, 1u)
      << "the soak must actually exercise the transient-retry path "
      << "(flips injected: " << in_inj.stats().bitflips << " + "
      << out_inj.stats().bitflips << ")";
  engine.set_input_fault_injector(nullptr);
  engine.set_sink_fault_injector(nullptr);
  set_parallel_thread_count(0);
}

}  // namespace
}  // namespace tiv::stream
