#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tiv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(15);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double ss = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(ss / kDraws, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(21);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 3.0, 0.15);
}

TEST(Rng, ParetoRespectsScaleAndIsHeavyTailed) {
  Rng rng(23);
  int above_10x = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.pareto(2.0, 1.5);
    ASSERT_GE(x, 2.0);
    above_10x += x > 20.0;
  }
  // P(X > 10 xm) = 10^-alpha ~= 3.2% for alpha = 1.5.
  EXPECT_NEAR(static_cast<double>(above_10x) / kDraws, 0.0316, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(25);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(27);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = rng.sample_without_replacement(100, 30);
    ASSERT_EQ(picks.size(), 30u);
    std::set<std::uint32_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 30u);
    for (auto p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(29);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  Rng rng(31);
  std::vector<int> counts(20, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (auto p : rng.sample_without_replacement(20, 5)) ++counts[p];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 4, kTrials / 4 * 0.1);
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(33);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent() == child();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePermutesAllElements) {
  Rng rng(35);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(37);
  // Satisfies uniform_random_bit_generator: usable with std::shuffle.
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST_P(RngSeedSweep, IndexBoundsHoldAcrossSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(3), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace tiv
