// End-to-end integration tests: the full pipelines the paper's evaluation
// runs, at reduced scale, asserting the *direction* of every headline
// result. These are the repository's regression net for the figure benches.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/alert.hpp"
#include "core/dynamic_neighbor.hpp"
#include "core/severity.hpp"
#include "core/severity_filter.hpp"
#include "core/tiv_aware.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/datasets.hpp"
#include "delayspace/euclidean.hpp"
#include "embedding/lat.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"
#include "matfact/ides.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "neighbor/selection.hpp"

namespace tiv {
namespace {

using delayspace::HostId;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = new delayspace::DelaySpace(
        delayspace::make_dataset(delayspace::DatasetId::kDs2, 400));
    embedding::VivaldiParams vp;
    vp.seed = 3;
    vivaldi_ = new embedding::VivaldiSystem(space_->measured, vp);
    vivaldi_->run(150);
  }
  static void TearDownTestSuite() {
    delete vivaldi_;
    delete space_;
    vivaldi_ = nullptr;
    space_ = nullptr;
  }

  static delayspace::DelaySpace* space_;
  static embedding::VivaldiSystem* vivaldi_;
};

delayspace::DelaySpace* PipelineTest::space_ = nullptr;
embedding::VivaldiSystem* PipelineTest::vivaldi_ = nullptr;

TEST_F(PipelineTest, Section2_TivIsPresentButMostEdgesMild) {
  const core::TivAnalyzer analyzer(space_->measured);
  const double frac = analyzer.violating_triangle_fraction(200000);
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.35);
  const auto samples = analyzer.sampled_severities(3000);
  std::vector<double> sev;
  for (const auto& s : samples) sev.push_back(s.second);
  const Summary sum = summarize(sev);
  EXPECT_LT(sum.median, 0.1);  // most edges are mild ...
  EXPECT_GT(sum.max, 0.5);     // ... the tail is severe
}

TEST_F(PipelineTest, Section2_ClusteringMatchesGroundTruth) {
  const auto clustering =
      delayspace::cluster_delay_space(space_->measured, {});
  EXPECT_GE(clustering.num_clusters(), 2u);
  EXPECT_GT(delayspace::rand_index(clustering, space_->host_cluster), 0.8);
}

TEST_F(PipelineTest, Section3_VivaldiOscillatesUnderTiv) {
  embedding::VivaldiParams vp;
  vp.seed = 9;
  embedding::VivaldiSystem sys(space_->measured, vp);
  sys.run(150);
  embedding::MovementRecorder rec;
  for (int t = 0; t < 50; ++t) rec.record(sys.tick());
  // On TIV data the system never stops moving (paper: 1.6 ms/step median).
  EXPECT_GT(rec.speed_summary().median, 0.3);
}

TEST_F(PipelineTest, Section3_IdealMeridianWorseOnTivThanEuclidean) {
  delayspace::EuclideanParams ep;
  ep.num_hosts = space_->measured.size();
  const auto euclid = delayspace::euclidean_matrix(ep);
  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = 40;
  p.runs = 2;
  p.meridian.ring_capacity = 100000;
  p.meridian.num_rings = 20;
  p.meridian.use_termination = false;
  const auto r_euclid = neighbor::run_meridian_experiment(euclid, p);
  const auto r_tiv = neighbor::run_meridian_experiment(space_->measured, p);
  EXPECT_GT(r_euclid.fraction_optimal_found,
            r_tiv.fraction_optimal_found);
}

TEST_F(PipelineTest, Section4_StrawmenDoNotBeatVivaldiMuch) {
  neighbor::SelectionParams sp;
  sp.num_candidates = 25;
  sp.runs = 3;
  const neighbor::SelectionExperiment exp(space_->measured, sp);

  const Cdf vivaldi_cdf = exp.run([&](HostId a, HostId b) {
    return vivaldi_->predicted(a, b);
  });
  // IDES (Fig. 15): the paper's core point is that accommodating TIV in the
  // *model* does not make neighbor selection reliable — the penalty tail
  // stays heavy. (Our synthetic matrix is more factorable than measured
  // data, so IDES's median can come out better than Vivaldi's here; see
  // EXPERIMENTS.md.)
  const matfact::Ides ides(space_->measured, {});
  const Cdf ides_cdf =
      exp.run([&](HostId a, HostId b) { return ides.predicted(a, b); });
  EXPECT_GT(ides_cdf.quantile(0.9), 50.0);  // far from oracle (0%)

  // LAT (Fig. 16): within noise of Vivaldi at the median.
  const embedding::LatAdjustment lat(*vivaldi_);
  const Cdf lat_cdf = exp.run([&](HostId a, HostId b) {
    return lat.predicted(*vivaldi_, a, b);
  });
  EXPECT_GE(lat_cdf.quantile(0.5), vivaldi_cdf.quantile(0.5) * 0.5);
  EXPECT_GT(lat_cdf.quantile(0.9), 50.0);
}

TEST_F(PipelineTest, Section5_DynamicNeighborBeatsOriginal) {
  neighbor::SelectionParams sp;
  sp.num_candidates = 25;
  sp.runs = 3;
  const neighbor::SelectionExperiment exp(space_->measured, sp);
  const Cdf original = exp.run([&](HostId a, HostId b) {
    return vivaldi_->predicted(a, b);
  });

  embedding::VivaldiParams vp;
  vp.seed = 3;
  core::DynamicNeighborParams dp;
  dp.period_seconds = 60;
  core::DynamicNeighborVivaldi dyn(space_->measured, vp, dp);
  for (int it = 0; it < 5; ++it) dyn.run_iteration();
  const Cdf tuned = exp.run([&](HostId a, HostId b) {
    return dyn.system().predicted(a, b);
  });
  // Fig. 23's headline: clear improvement in the upper half of the CDF.
  EXPECT_LT(tuned.quantile(0.75), original.quantile(0.75));
  EXPECT_LT(tuned.quantile(0.9), original.quantile(0.9));
}

TEST_F(PipelineTest, Section5_TivAwareMeridianImprovesFullRingSetting) {
  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = 40;
  p.runs = 3;
  p.meridian.ring_capacity = 100000;
  p.meridian.num_rings = 20;
  const auto original =
      neighbor::run_meridian_experiment(space_->measured, p);

  neighbor::MeridianExperimentParams p_alert = p;
  p_alert.meridian = core::tiv_aware_meridian_params(*vivaldi_, p.meridian);
  const auto alert =
      neighbor::run_meridian_experiment(space_->measured, p_alert);
  // Fig. 25's direction: at least as good at finding the optimal node, at
  // modest probe overhead.
  EXPECT_GE(alert.fraction_optimal_found,
            original.fraction_optimal_found - 0.01);
  EXPECT_LT(alert.probes_per_query(), original.probes_per_query() * 1.35);
}

TEST_F(PipelineTest, Section5_AlertConcentratesOnSevereEdges) {
  const auto samples = core::collect_ratio_severity_samples(*vivaldi_, 4000);
  const auto loose = core::evaluate_alert(samples, 0.10, 0.9);
  const auto tight = core::evaluate_alert(samples, 0.10, 0.4);
  // Tightening the threshold trades recall for accuracy (Figs. 20-21).
  EXPECT_GE(tight.accuracy, loose.accuracy);
  EXPECT_LE(tight.recall, loose.recall);
}

TEST_F(PipelineTest, DatasetsAllAnalyzable) {
  // Smoke the whole Section-2 pipeline on every preset at small scale.
  for (const auto id : delayspace::all_datasets()) {
    const auto space = delayspace::make_dataset(id, 150);
    const core::TivAnalyzer analyzer(space.measured);
    const double frac = analyzer.violating_triangle_fraction(50000);
    EXPECT_GT(frac, 0.0) << delayspace::dataset_name(id);
    EXPECT_LT(frac, 0.6) << delayspace::dataset_name(id);
  }
}

}  // namespace
}  // namespace tiv
