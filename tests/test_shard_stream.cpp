// Out-of-core live pipeline (src/sink/ + stream/shard_stream): the
// severity tile sink round-trips and rejects corruption, the sink-fed
// streaming driver matches the in-memory kernel bit for bit, and the
// headline contract — after every randomized epoch the ShardStreamEngine's
// on-disk severities, read back through the budgeted sink cache, are
// bit-identical to the in-memory streaming path (and hence to a
// from-scratch TivAnalyzer::all_severities rebuild) — across densities,
// measured<->missing churn, tile sizes that do not divide n, and n < 8.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "core/shard_severity.hpp"
#include "matrix_test_utils.hpp"
#include "shard/checksum.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_cache.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"
#include "stream/incremental_severity.hpp"
#include "stream/shard_stream.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::stream {
namespace {

using core::SeverityMatrix;
using core::TivAnalyzer;
using delayspace::DelayMatrix;
using delayspace::HostId;
using shard::CorruptTileError;
using sink::SeverityCache;
using sink::SeverityTileStore;

using tiv::test::random_matrix;

std::string scratch_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tiv_test_sink_" + tag + "_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           ".tiles"))
      .string();
}

/// Flips one byte at `offset` (from the end when negative) of `path`.
void corrupt_byte_at(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, offset < 0 ? SEEK_END : SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

/// Engine severities (read back through the sink cache, row by row) agree
/// bit for bit with `want` on every cell, unmeasured pairs and the
/// diagonal included.
::testing::AssertionResult engine_matches(ShardStreamEngine& engine,
                                          const SeverityMatrix& want) {
  const HostId n = engine.size();
  if (want.size() != n) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  std::vector<float> row(n);
  for (HostId a = 0; a < n; ++a) {
    engine.severity_row(a, row);
    for (HostId b = 0; b < n; ++b) {
      const auto g = std::bit_cast<std::uint32_t>(row[b]);
      const auto w = std::bit_cast<std::uint32_t>(want.at(a, b));
      if (g != w) {
        return ::testing::AssertionFailure()
               << "severity (" << a << ", " << b << "): bits " << g
               << " != " << w << " (" << row[b] << " vs " << want.at(a, b)
               << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// --- SeverityTileStore ------------------------------------------------------

TEST(SeverityTileStore, CreateReopenRoundTrip) {
  const std::string path = scratch_path("roundtrip");
  // 37 = 2*16 + 5: ragged last band.
  SeverityTileStore::create(path, 37, 16);
  std::vector<float> tile(16 * 16);
  {
    auto store = SeverityTileStore::open(path, /*writable=*/true);
    EXPECT_EQ(store.size(), 37u);
    EXPECT_EQ(store.tiles_per_side(), 3u);
    EXPECT_EQ(store.tile_count(), 6u);
    EXPECT_EQ(store.band_rows(0), 16u);
    EXPECT_EQ(store.band_rows(2), 5u);
    EXPECT_EQ(store.tile_index(0, 0), 0u);
    EXPECT_EQ(store.tile_index(0, 2), 2u);
    EXPECT_EQ(store.tile_index(1, 1), 3u);
    EXPECT_EQ(store.tile_index(2, 2), 5u);

    store.read_tile(1, 2, tile.data());  // fresh stores are all zero
    for (const float v : tile) EXPECT_EQ(v, 0.0f);

    for (std::size_t i = 0; i < tile.size(); ++i) {
      tile[i] = static_cast<float>(i) * 0.25f;
    }
    store.write_tile(1, 2, tile.data());
  }  // closed
  {
    const auto store = SeverityTileStore::open(path);
    std::vector<float> got(16 * 16);
    store.read_tile(1, 2, got.data());
    EXPECT_EQ(got, tile);  // survives reopen-after-close, checksum included
    store.read_tile(0, 1, got.data());
    for (const float v : got) EXPECT_EQ(v, 0.0f);
  }
  std::filesystem::remove(path);
}

TEST(SeverityTileStore, WriteOnReadOnlyStoreThrows) {
  const std::string path = scratch_path("readonly");
  SeverityTileStore::create(path, 16, 16);
  auto store = SeverityTileStore::open(path);
  const std::vector<float> tile(16 * 16, 1.0f);
  EXPECT_THROW(store.write_tile(0, 0, tile.data()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SeverityTileStore, CorruptTileIsRejectedLoudly) {
  const std::string path = scratch_path("corrupt");
  SeverityTileStore::create(path, 37, 16);
  {
    auto store = SeverityTileStore::open(path, /*writable=*/true);
    std::vector<float> tile(16 * 16, 2.5f);
    store.write_tile(2, 2, tile.data());
  }
  corrupt_byte_at(path, -5);  // inside the last tile's payload (2, 2)
  const auto store = SeverityTileStore::open(path);
  std::vector<float> tile(16 * 16);
  EXPECT_THROW(store.read_tile(2, 2, tile.data()), CorruptTileError);
  store.read_tile(0, 1, tile.data());  // other tiles unaffected
  std::filesystem::remove(path);
}

// --- Sink-fed streaming driver ---------------------------------------------

void expect_sink_build_matches_in_memory(const DelayMatrix& m,
                                         std::uint32_t tile_dim) {
  const std::string in_path = scratch_path(
      "sinkbuild_in_n" + std::to_string(m.size()) + "_t" +
      std::to_string(tile_dim));
  const std::string out_path = scratch_path(
      "sinkbuild_out_n" + std::to_string(m.size()) + "_t" +
      std::to_string(tile_dim));
  shard::TileStore::write_matrix(in_path, m, tile_dim);
  const auto store = shard::TileStore::open(in_path);
  shard::TileCache cache(store, std::size_t{1} << 22);
  SeverityTileStore::create(out_path, m.size(), tile_dim);
  auto sink = SeverityTileStore::open(out_path, /*writable=*/true);
  core::all_severities_to_sink(store, cache, sink);

  const SeverityMatrix want = TivAnalyzer(m).all_severities();
  SeverityCache reader(sink, std::size_t{1} << 22);
  const HostId n = m.size();
  std::vector<float> row(n);
  for (HostId a = 0; a < n; ++a) {
    reader.read_row(a, row);
    for (HostId b = 0; b < n; ++b) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(row[b]),
                std::bit_cast<std::uint32_t>(want.at(a, b)))
          << "(" << a << ", " << b << ")";
      // Point reads agree with row reads (they address the same tiles).
      ASSERT_EQ(reader.at(a, b), row[b]);
    }
  }
  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

TEST(SinkSeverity, FullBuildMatchesInMemoryDense) {
  expect_sink_build_matches_in_memory(random_matrix(96, 0.0, 31), 32);
}

TEST(SinkSeverity, FullBuildMatchesInMemoryMissingAndRagged) {
  expect_sink_build_matches_in_memory(random_matrix(37, 0.3, 32), 16);
  expect_sink_build_matches_in_memory(random_matrix(70, 0.9, 33), 16);
}

TEST(SinkSeverity, GeometryMismatchRejected) {
  const DelayMatrix m = random_matrix(32, 0.1, 34);
  const std::string in_path = scratch_path("geom_in");
  const std::string out_path = scratch_path("geom_out");
  shard::TileStore::write_matrix(in_path, m, 16);
  const auto store = shard::TileStore::open(in_path);
  shard::TileCache cache(store, std::size_t{1} << 20);
  SeverityTileStore::create(out_path, 48, 16);  // wrong n
  auto sink = SeverityTileStore::open(out_path, /*writable=*/true);
  EXPECT_THROW(core::all_severities_to_sink(store, cache, sink),
               std::invalid_argument);
  auto sink_ro = SeverityTileStore::open(out_path);  // right flag matters too
  EXPECT_THROW(core::repair_severities_to_sink(store, cache, sink_ro,
                                               std::vector<HostId>{1}),
               std::invalid_argument);
  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

// --- ShardStreamEngine: the bit-identity contract ---------------------------

/// Replays randomized epochs through one DelayStream feeding BOTH streaming
/// engines — the in-memory IncrementalSeverity and the out-of-core
/// ShardStreamEngine — and asserts the sink readback is bit-identical to
/// the in-memory maintained matrix (itself bit-identical to a full
/// rebuild, enforced by test_stream_engine) after every commit. Epochs mix
/// value updates, measured<->missing toggles, and intra-epoch re-updates.
void replay_and_check_engine(HostId n, double missing, std::uint32_t tile_dim,
                             std::uint64_t seed, int epochs) {
  // Pin the pool width: the peak-vs-budget assertions below only hold when
  // the tight budgets dominate the pinned working set (3 input tiles per
  // band-pair worker + one prefetch), which an unbounded many-core pool
  // would exceed. Same pattern as test_tile_store's tiny-budget test.
  set_parallel_thread_count(2);
  DelayStream stream(random_matrix(n, missing, seed));
  IncrementalSeverity in_memory(stream.matrix());

  ShardStreamConfig cfg;
  cfg.tile_dim = tile_dim;
  cfg.input_path = scratch_path("engine_in_n" + std::to_string(n) + "_s" +
                                std::to_string(seed));
  cfg.sink_path = scratch_path("engine_out_n" + std::to_string(n) + "_s" +
                               std::to_string(seed));
  // Tight-but-sane budgets: a handful of tiles each, far below the whole
  // tile grid, above the 2-thread pinned working set (3*2 + 2 tiles in,
  // one per worker out).
  const std::size_t in_tile =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float) +
      static_cast<std::size_t>(tile_dim) * ((tile_dim + 63) / 64) *
          sizeof(std::uint64_t);
  cfg.input_budget_bytes = 10 * in_tile;
  cfg.output_budget_bytes =
      4 * static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float);
  ShardStreamEngine engine(stream.matrix(), cfg);

  ASSERT_TRUE(engine_matches(engine, in_memory.severities()))
      << "initial build, n=" << n;

  Rng rng(seed ^ 0x5117u);
  for (int e = 0; e < epochs; ++e) {
    const std::size_t updates = 1 + rng.uniform_index(2 * n);
    for (std::size_t u = 0; u < updates; ++u) {
      const auto a = static_cast<HostId>(rng.uniform_index(n));
      const auto b = static_cast<HostId>(rng.uniform_index(n));
      if (a == b) continue;
      const float value =
          rng.bernoulli(0.2) ? DelayMatrix::kMissing
                             : static_cast<float>(rng.uniform(1.0, 400.0));
      stream.ingest({a, b, value, double(e)});
    }
    const Epoch epoch = stream.commit_epoch();
    in_memory.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    const auto stats = engine.apply_epoch(stream.matrix(), epoch.dirty_hosts);
    if (!epoch.dirty_hosts.empty()) {
      EXPECT_GT(stats.input_tiles_repacked, 0u);
    }
    ASSERT_TRUE(engine_matches(engine, in_memory.severities()))
        << "n=" << n << " missing=" << missing << " tile=" << tile_dim
        << " seed=" << seed << " epoch=" << e;
  }

  // The tracked working set stayed within the configured budgets (the
  // readback loops pin one tile at a time; the band-pair drivers pin a
  // handful per worker — both dominated by these budgets).
  EXPECT_LE(engine.input_cache_stats().peak_bytes, cfg.input_budget_bytes);
  EXPECT_LE(engine.output_cache_stats().peak_bytes, cfg.output_budget_bytes);
  set_parallel_thread_count(0);
}

TEST(ShardStreamEngine, BitIdenticalTinyMatrices) {
  // n < 8: a single ragged tile pair; empty witness sets and fully-missing
  // rows all occur.
  for (const HostId n : {4, 7}) {
    for (const double missing : {0.0, 0.3, 0.9}) {
      replay_and_check_engine(n, missing, 16, 2 * n + 1, 4);
    }
  }
}

TEST(ShardStreamEngine, BitIdenticalNonDividingTileSizes) {
  // 70 = 4*16 + 6 and 37 = 2*16 + 5: ragged last bands, multi-band dirty
  // sets, heavy eviction under the 8-tile input budget.
  replay_and_check_engine(70, 0.3, 16, 41, 4);
  replay_and_check_engine(37, 0.0, 16, 42, 4);
}

TEST(ShardStreamEngine, BitIdenticalDenseAndMostlyMissing) {
  replay_and_check_engine(48, 0.0, 16, 43, 4);
  replay_and_check_engine(48, 0.9, 16, 44, 4);
}

TEST(ShardStreamEngine, CleanEpochRepairsNothing) {
  const DelayMatrix m = random_matrix(24, 0.2, 51);
  ShardStreamConfig cfg;
  cfg.tile_dim = 16;
  cfg.input_path = scratch_path("clean_in");
  cfg.sink_path = scratch_path("clean_out");
  ShardStreamEngine engine(m, cfg);
  const auto stats = engine.apply_epoch(m, std::vector<HostId>{});
  EXPECT_EQ(stats.input_tiles_repacked, 0u);
  EXPECT_EQ(stats.severity_tiles_committed, 0u);
  EXPECT_EQ(stats.edges_recomputed, 0u);
}

TEST(ShardStreamEngine, RemovesSpillFilesOnDestruction) {
  const std::string in_path = scratch_path("cleanup_in");
  const std::string out_path = scratch_path("cleanup_out");
  {
    ShardStreamConfig cfg;
    cfg.tile_dim = 16;
    cfg.input_path = in_path;
    cfg.sink_path = out_path;
    ShardStreamEngine engine(random_matrix(20, 0.1, 52), cfg);
    EXPECT_TRUE(std::filesystem::exists(in_path));
    EXPECT_TRUE(std::filesystem::exists(out_path));
  }
  EXPECT_FALSE(std::filesystem::exists(in_path));
  EXPECT_FALSE(std::filesystem::exists(out_path));
}

TEST(ShardStreamEngine, MatrixSizeChangeRejected) {
  ShardStreamConfig cfg;
  cfg.tile_dim = 16;
  ShardStreamEngine engine(random_matrix(20, 0.1, 53), cfg);
  const DelayMatrix wrong = random_matrix(24, 0.1, 53);
  EXPECT_THROW(engine.apply_epoch(wrong, std::vector<HostId>{1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tiv::stream
