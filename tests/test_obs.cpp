// Telemetry layer (src/obs/): counter exactness under concurrent update,
// log2 histogram bucket boundaries, snapshot/delta semantics, registry
// link aggregation (sum with retained fold, max), span-tracer ring
// wraparound, and the pipeline contract — a ShardStreamEngine epoch
// records an "epoch" span that nests its tile-repack / band-pair-stream /
// sink-commit child phases with non-zero durations.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "matrix_test_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "stream/delay_stream.hpp"
#include "stream/shard_stream.hpp"
#include "util/parallel.hpp"

namespace tiv::obs {
namespace {

using Agg = MetricsRegistry::Agg;

// --- Counter ----------------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  // Shards merge without loss once updaters quiesce.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddMax) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);  // below current: no-op
  EXPECT_EQ(g.value(), 7);
  g.max_of(19);
  EXPECT_EQ(g.value(), 19);
}

// --- Histogram --------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  // bucket 0 holds only 0; bucket b >= 1 spans [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower_bound(3), 4u);
  EXPECT_EQ(Histogram::bucket_lower_bound(64), std::uint64_t{1} << 63);

  Histogram h;
  for (const std::uint64_t v : {0, 1, 2, 3, 4, 7, 8}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, 25u);
  EXPECT_EQ(s.buckets[0], 1u);  // {0}
  EXPECT_EQ(s.buckets[1], 1u);  // {1}
  EXPECT_EQ(s.buckets[2], 2u);  // {2, 3}
  EXPECT_EQ(s.buckets[3], 2u);  // {4, 7}
  EXPECT_EQ(s.buckets[4], 1u);  // {8}
}

TEST(ObsHistogram, ConcurrentRecordsAreExact) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 7);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t per_thread_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i % 7;
  EXPECT_EQ(s.sum, kThreads * per_thread_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(ObsHistogram, QuantileStaysInBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(5);  // all in bucket [4, 8)
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_GE(s.quantile(q), 4.0);
    EXPECT_LE(s.quantile(q), 8.0);
  }
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

// --- Snapshot / delta -------------------------------------------------------

TEST(ObsSnapshot, DeltaCountsIncrementsGaugesStayLevels) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.delta.counter");
  Gauge& g = reg.gauge("test.delta.gauge");
  Histogram& h = reg.histogram("test.delta.hist");

  c.add(5);
  g.set(42);
  h.record(100);
  const MetricsSnapshot base = reg.snapshot();
  ASSERT_EQ(base.counters.at("test.delta.counter"), 5u);
  ASSERT_EQ(base.gauges.at("test.delta.gauge"), 42);
  ASSERT_EQ(base.histograms.at("test.delta.hist").count, 1u);

  c.add(7);
  g.set(17);
  h.record(200);
  h.record(300);
  const MetricsSnapshot delta = reg.snapshot().delta_since(base);
  EXPECT_EQ(delta.counters.at("test.delta.counter"), 7u);
  EXPECT_EQ(delta.gauges.at("test.delta.gauge"), 17);  // point-in-time
  EXPECT_EQ(delta.histograms.at("test.delta.hist").count, 2u);
  EXPECT_EQ(delta.histograms.at("test.delta.hist").sum, 500u);
}

TEST(ObsSnapshot, DeltaClampsRegressionsAtZero) {
  // Synthesized snapshots: a counter that "went backwards" (an unlinked
  // non-retained source) must not produce a wrapped-around delta.
  MetricsSnapshot base;
  base.counters["x"] = 10;
  MetricsSnapshot cur;
  cur.counters["x"] = 4;
  EXPECT_EQ(cur.delta_since(base).counters.at("x"), 0u);
}

TEST(ObsSnapshot, JsonHasAllSections) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.json.counter").add(3);
  reg.gauge("test.json.gauge").set(-2);
  reg.histogram("test.json.hist").record(9);
  std::ostringstream out;
  reg.snapshot().write_json(out);
  const std::string j = out.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.gauge\":-2"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

// --- Registry links ---------------------------------------------------------

TEST(ObsRegistryLink, SumAggregatesLiveSourcesAndRetainsDeadOnes) {
  auto& reg = MetricsRegistry::instance();
  std::uint64_t a = 3;
  std::uint64_t b = 4;
  {
    auto la = reg.link("test.link.sum", Agg::kSum, [&a] { return a; });
    auto lb = reg.link("test.link.sum", Agg::kSum, [&b] { return b; });
    EXPECT_EQ(reg.snapshot().counters.at("test.link.sum"), 7u);
    a = 10;
    EXPECT_EQ(reg.snapshot().counters.at("test.link.sum"), 14u);
  }
  // Both sources died; their final values fold into the retained base so
  // the total never goes backwards.
  EXPECT_EQ(reg.snapshot().counters.at("test.link.sum"), 14u);
  std::uint64_t c = 100;
  auto lc = reg.link("test.link.sum", Agg::kSum, [&c] { return c; });
  EXPECT_EQ(reg.snapshot().counters.at("test.link.sum"), 114u);
}

TEST(ObsRegistryLink, MaxAggregates) {
  auto& reg = MetricsRegistry::instance();
  std::uint64_t a = 3;
  std::uint64_t b = 9;
  {
    auto la = reg.link("test.link.max", Agg::kMax, [&a] { return a; });
    auto lb = reg.link("test.link.max", Agg::kMax, [&b] { return b; });
    EXPECT_EQ(reg.snapshot().counters.at("test.link.max"), 9u);
  }
  // Retained fold keeps the high-water mark, and a smaller live source
  // does not lower it.
  std::uint64_t c = 4;
  auto lc = reg.link("test.link.max", Agg::kMax, [&c] { return c; });
  EXPECT_EQ(reg.snapshot().counters.at("test.link.max"), 9u);
  c = 12;
  EXPECT_EQ(reg.snapshot().counters.at("test.link.max"), 12u);
}

TEST(ObsRegistryLink, NoRetainDropsValueOnUnlink) {
  auto& reg = MetricsRegistry::instance();
  std::uint64_t v = 55;
  {
    auto l = reg.link("test.link.noretain", Agg::kSum, [&v] { return v; },
                      /*retain_on_unlink=*/false);
    EXPECT_EQ(reg.snapshot().counters.at("test.link.noretain"), 55u);
  }
  const MetricsSnapshot s = reg.snapshot();
  const auto it = s.counters.find("test.link.noretain");
  EXPECT_TRUE(it == s.counters.end() || it->second == 0u);
}

TEST(ObsRegistryLink, MoveTransfersOwnership) {
  auto& reg = MetricsRegistry::instance();
  std::uint64_t v = 8;
  auto l1 = reg.link("test.link.move", Agg::kSum, [&v] { return v; },
                     /*retain_on_unlink=*/false);
  MetricsRegistry::Link l2 = std::move(l1);
  EXPECT_EQ(reg.snapshot().counters.at("test.link.move"), 8u);
  {
    MetricsRegistry::Link l3 = std::move(l2);
  }  // unlink happens exactly once, here
  const MetricsSnapshot s = reg.snapshot();
  const auto it = s.counters.find("test.link.move");
  EXPECT_TRUE(it == s.counters.end() || it->second == 0u);
}

// --- SpanTracer -------------------------------------------------------------

TEST(ObsSpanTracer, RingWraparoundKeepsNewestOldestFirst) {
  SpanTracer t(8);
  EXPECT_EQ(t.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) t.record("w", i, i + 1);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].start_ns, 12 + i);  // spans 12..19 survive, oldest first
    EXPECT_EQ(evs[i].dur_ns, 1u);
  }
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(ObsSpanTracer, CapacityRoundsUpToPowerOfTwo) {
  SpanTracer t(5);
  EXPECT_EQ(t.capacity(), 8u);
}

TEST(ObsSpanTracer, TotalsAndCountsByName) {
  SpanTracer t(16);
  t.record("alpha", 100, 350);
  t.record("beta", 400, 500);
  t.record("alpha", 600, 610);
  EXPECT_EQ(t.total_ns("alpha"), 260u);
  EXPECT_EQ(t.total_ns("beta"), 100u);
  EXPECT_EQ(t.count("alpha"), 2u);
  EXPECT_EQ(t.count("gamma"), 0u);
}

TEST(ObsSpanTracer, DetachedSpanIsNoOp) {
  ASSERT_EQ(SpanTracer::current(), nullptr);
  { Span s("nobody-listening"); }  // must not crash or allocate a tracer
  EXPECT_EQ(SpanTracer::current(), nullptr);
}

TEST(ObsSpanTracer, AttachedSpanRecordsAndDetachesOnDestruction) {
  {
    SpanTracer t(16);
    SpanTracer::attach(&t);
    { Span s("attached-phase"); }
    EXPECT_EQ(t.count("attached-phase"), 1u);
  }  // tracer destructor self-detaches
  EXPECT_EQ(SpanTracer::current(), nullptr);
}

TEST(ObsSpanTracer, ChromeTraceJsonShape) {
  SpanTracer t(16);
  t.record("phase-a", 1000, 3000);
  t.record("phase-b", 4000, 9000);
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string j = out.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"phase-a\""), std::string::npos);
  // Timestamps and durations are microseconds: 1000 ns -> 1 us, 2000 -> 2.
  EXPECT_NE(j.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
}

// --- Pipeline span nesting --------------------------------------------------

std::string scratch_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tiv_test_obs_" + tag + "_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           ".tiles"))
      .string();
}

TEST(ObsPipeline, EngineEpochSpanNestsItsPhases) {
  set_parallel_thread_count(2);
  SpanTracer tracer(1 << 10);
  SpanTracer::attach(&tracer);

  stream::DelayStream ds(tiv::test::random_matrix(24, 0.2, 77));
  stream::ShardStreamConfig cfg;
  cfg.tile_dim = 16;
  cfg.input_path = scratch_path("nest_in");
  cfg.sink_path = scratch_path("nest_out");
  stream::ShardStreamEngine engine(ds.matrix(), cfg);
  // The initial build records band-pair-stream spans of its own; start the
  // epoch-nesting check from a clean ring.
  tracer.clear();

  const std::vector<stream::DelaySample> batch = {{0, 1, 50.0f, 0.0},
                                                  {2, 19, 60.0f, 0.0}};
  ds.ingest(std::span<const stream::DelaySample>(batch));
  const stream::Epoch epoch = ds.commit_epoch();
  ASSERT_FALSE(epoch.dirty_hosts.empty());
  engine.apply_epoch(ds.matrix(), epoch.dirty_hosts);
  SpanTracer::attach(nullptr);

  const std::vector<TraceEvent> evs = tracer.events();
  const TraceEvent* epoch_ev = nullptr;
  for (const TraceEvent& e : evs) {
    if (std::string_view(e.name) == "epoch") epoch_ev = &e;
  }
  ASSERT_NE(epoch_ev, nullptr);
  EXPECT_GT(epoch_ev->dur_ns, 0u);

  EXPECT_EQ(tracer.count("ingest"), 1u);  // the one batch ingested above
  EXPECT_GE(tracer.count("tile-repack"), 1u);
  EXPECT_GE(tracer.count("band-pair-stream"), 1u);
  EXPECT_GE(tracer.count("sink-commit"), 1u);

  // RAII containment: every child phase ran on the epoch's thread, inside
  // the epoch span's [start, start + dur] window, and took measurable time.
  const std::uint64_t epoch_end = epoch_ev->start_ns + epoch_ev->dur_ns;
  for (const TraceEvent& e : evs) {
    const std::string_view name(e.name);
    if (name != "tile-repack" && name != "band-pair-stream" &&
        name != "sink-commit") {
      continue;
    }
    EXPECT_EQ(e.tid, epoch_ev->tid) << name;
    EXPECT_GE(e.start_ns, epoch_ev->start_ns) << name;
    EXPECT_LE(e.start_ns + e.dur_ns, epoch_end) << name;
    EXPECT_GT(e.dur_ns, 0u) << name;
  }
  set_parallel_thread_count(0);
}

// --- Histogram JSON bucket encodings ----------------------------------------

TEST(ObsSnapshot, SparseBucketsSkipEmptyAndKeyByLowerBound) {
  MetricsSnapshot s;
  auto& h = s.histograms["h"];
  h.count = 3;
  h.sum = 18;
  h.buckets[0] = 1;  // value 0
  h.buckets[4] = 2;  // values in [8, 16)
  std::ostringstream out;
  s.write_json(out);
  // Only the two occupied buckets appear, keyed by inclusive lower bound.
  EXPECT_NE(out.str().find("\"buckets\":{\"0\":1,\"8\":2}"),
            std::string::npos)
      << out.str();
}

TEST(ObsSnapshot, DenseBucketsEmitTheFullArray) {
  MetricsSnapshot s;
  s.histograms["h"].buckets[4] = 2;
  std::ostringstream out;
  s.write_json(out, MetricsJsonOptions{.dense_histograms = true});
  const std::string j = out.str();
  const std::size_t open = j.find("\"buckets\":[");
  ASSERT_NE(open, std::string::npos) << j;
  // 65 fixed entries -> 64 commas between them.
  const std::size_t close = j.find(']', open);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(std::count(j.begin() + static_cast<std::ptrdiff_t>(open),
                       j.begin() + static_cast<std::ptrdiff_t>(close), ','),
            64);
}

// --- Prometheus exposition --------------------------------------------------

TEST(ObsPrometheus, MetricNameSanitization) {
  EXPECT_EQ(prom::metric_name("pool.chunks_claimed"),
            "tiv_pool_chunks_claimed");
  EXPECT_EQ(prom::metric_name("a-b c.d"), "tiv_a_b_c_d");
  EXPECT_EQ(prom::metric_name("ns:sub"), "tiv_ns:sub");  // colons are legal
}

TEST(ObsPrometheus, HelpEscaping) {
  EXPECT_EQ(prom::escape_help("plain"), "plain");
  EXPECT_EQ(prom::escape_help("a\\b\nc"), "a\\\\b\\nc");
}

TEST(ObsPrometheus, BucketsAreCumulativeAndInfClosesTheSeries) {
  MetricsSnapshot s;
  s.counters["engine.epochs"] = 7;
  s.gauges["cache.bytes"] = -5;
  auto& h = s.histograms["epoch.ns"];
  h.count = 5;
  h.sum = 30;
  h.buckets[2] = 3;  // values in [2, 4), le = 3
  h.buckets[4] = 2;  // values in [8, 16), le = 15
  std::ostringstream out;
  SnapshotReporter::write_prometheus(out, s);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE tiv_engine_epochs counter\n"
                      "tiv_engine_epochs 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tiv_cache_bytes gauge\ntiv_cache_bytes -5\n"),
            std::string::npos);
  // Cumulative counts: 3 at le=3, then 3+2=5 at le=15; empty buckets are
  // skipped and +Inf carries the total.
  EXPECT_NE(text.find("tiv_epoch_ns_bucket{le=\"3\"} 3\n"
                      "tiv_epoch_ns_bucket{le=\"15\"} 5\n"
                      "tiv_epoch_ns_bucket{le=\"+Inf\"} 5\n"
                      "tiv_epoch_ns_sum 30\n"
                      "tiv_epoch_ns_count 5\n"),
            std::string::npos)
      << text;
}

TEST(ObsPrometheus, LiveRegistrySnapshotRenders) {
  MetricsRegistry::instance().counter("test.prom.live").add(2);
  std::ostringstream out;
  SnapshotReporter::write_prometheus(out);
  EXPECT_NE(out.str().find("tiv_test_prom_live"), std::string::npos);
}

}  // namespace
}  // namespace tiv::obs
