#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace tiv {
namespace {

TEST(Percentile, EmptyIsNan) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({3.5}, 0), 3.5);
  EXPECT_DOUBLE_EQ(percentile({3.5}, 100), 3.5);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, HandlesUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50), 3.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200), 3.0);
}

TEST(Summarize, KnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Cdf, FractionAtMost) {
  const Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(10.0), 1.0);
}

TEST(Cdf, QuantileRoundTrip) {
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i);
  const Cdf cdf(values);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.9), 90.0, 1e-9);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Cdf, CurveEndsAtExtremesAndIsMonotone) {
  const Cdf cdf({5.0, 1.0, 9.0, 3.0, 7.0});
  const auto curve = cdf.curve(4);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 9.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(Cdf, EmptyBehaves) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(5).empty());
}

TEST(BinnedSeries, AssignsToCorrectBins) {
  BinnedSeries s(0.0, 100.0, 10.0);
  s.add(5.0, 1.0);
  s.add(15.0, 2.0);
  s.add(15.5, 4.0);
  const auto bins = s.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].x_center, 5.0);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_DOUBLE_EQ(bins[0].median, 1.0);
  EXPECT_DOUBLE_EQ(bins[1].x_center, 15.0);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_DOUBLE_EQ(bins[1].median, 3.0);
  EXPECT_DOUBLE_EQ(bins[1].mean, 3.0);
}

TEST(BinnedSeries, ClampsOutOfRangePoints) {
  BinnedSeries s(0.0, 10.0, 10.0);
  s.add(-5.0, 1.0);
  s.add(100.0, 2.0);
  const auto bins = s.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].count, 2u);
}

TEST(BinnedSeries, SkipsEmptyBins) {
  BinnedSeries s(0.0, 50.0, 10.0);
  s.add(45.0, 1.0);
  const auto bins = s.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].x_center, 45.0);
}

TEST(BinnedSeries, PercentilesWithinBin) {
  BinnedSeries s(0.0, 10.0, 10.0);
  for (int i = 0; i <= 100; ++i) s.add(5.0, i);
  const auto bins = s.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_NEAR(bins[0].p10, 10.0, 1e-9);
  EXPECT_NEAR(bins[0].median, 50.0, 1e-9);
  EXPECT_NEAR(bins[0].p90, 90.0, 1e-9);
}

TEST(ErrorAccumulator, AbsoluteAndRelative) {
  ErrorAccumulator acc;
  acc.add(12.0, 10.0);  // abs 2, rel 0.2
  acc.add(8.0, 10.0);   // abs 2, rel 0.2
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.absolute_error().mean, 2.0);
  EXPECT_DOUBLE_EQ(acc.relative_error().mean, 0.2);
}

TEST(ErrorAccumulator, NonPositiveActualSkipsRelative) {
  ErrorAccumulator acc;
  acc.add(5.0, 0.0);
  EXPECT_EQ(acc.absolute_error().count, 1u);
  EXPECT_EQ(acc.relative_error().count, 0u);
}

// Property sweep: percentile_sorted must agree with a direct definition on
// random samples of several sizes.
class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneInP) {
  std::vector<double> v;
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < GetParam(); ++i) {
    state = state * 1664525u + 1013904223u;
    v.push_back(static_cast<double>(state % 1000));
  }
  double prev = -1e300;
  for (double p = 0; p <= 100; p += 7.3) {
    const double q = percentile(v, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST_P(PercentileProperty, BoundedByMinMax) {
  std::vector<double> v;
  unsigned state = static_cast<unsigned>(GetParam()) + 99u;
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < GetParam(); ++i) {
    state = state * 22695477u + 1u;
    const double x = static_cast<double>(state % 5000) / 7.0;
    v.push_back(x);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    const double q = percentile(v, p);
    EXPECT_GE(q, lo);
    EXPECT_LE(q, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileProperty,
                         ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace tiv
