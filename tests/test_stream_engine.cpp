// Streaming TIV engine (src/stream/): ingestion semantics, dirty-epoch
// tracking, incremental view repair, and the headline contract — the
// incrementally maintained severity matrix is *bit-identical* to a
// from-scratch TivAnalyzer::all_severities rebuild after every committed
// epoch, across randomized update sequences that include measured<->missing
// toggles and repeated same-edge updates within one epoch.
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "matrix_test_utils.hpp"
#include "stream/delay_stream.hpp"
#include "stream/incremental_severity.hpp"
#include "stream/incremental_view.hpp"
#include "util/rng.hpp"

namespace tiv::stream {
namespace {

using core::SeverityMatrix;
using core::TivAnalyzer;
using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

// --- EdgeEstimator ----------------------------------------------------------

TEST(EdgeEstimator, LatestTracksMostRecentSample) {
  EstimatorParams p;
  p.policy = SmoothingPolicy::kLatest;
  EdgeEstimator est(p);
  EXPECT_EQ(est.estimate(), DelayMatrix::kMissing);
  EXPECT_FLOAT_EQ(est.update(10.0f), 10.0f);
  EXPECT_FLOAT_EQ(est.update(3.0f), 3.0f);
  EXPECT_FLOAT_EQ(est.estimate(), 3.0f);
}

TEST(EdgeEstimator, EwmaSeedsThenBlends) {
  EstimatorParams p;
  p.policy = SmoothingPolicy::kEwma;
  p.ewma_alpha = 0.5f;
  EdgeEstimator est(p);
  EXPECT_FLOAT_EQ(est.update(100.0f), 100.0f);  // first sample seeds
  EXPECT_FLOAT_EQ(est.update(50.0f), 75.0f);
  EXPECT_FLOAT_EQ(est.update(75.0f), 75.0f);
}

TEST(EdgeEstimator, WindowedMinEvictsOldSamples) {
  EstimatorParams p;
  p.policy = SmoothingPolicy::kWindowedMin;
  p.window = 3;
  EdgeEstimator est(p);
  EXPECT_FLOAT_EQ(est.update(30.0f), 30.0f);
  EXPECT_FLOAT_EQ(est.update(10.0f), 10.0f);  // min of {30, 10}
  EXPECT_FLOAT_EQ(est.update(20.0f), 10.0f);  // min of {30, 10, 20}
  EXPECT_FLOAT_EQ(est.update(25.0f), 10.0f);  // 30 evicted
  EXPECT_FLOAT_EQ(est.update(40.0f), 20.0f);  // 10 evicted
  EXPECT_FLOAT_EQ(est.update(50.0f), 25.0f);  // 20 evicted
}

// --- DelayStream ------------------------------------------------------------

TEST(DelayStream, AppliesSamplesSymmetricallyAndTracksDirtyHosts) {
  DelayStream stream(DelayMatrix(5));
  stream.ingest({1, 3, 42.0f, 0.0});
  EXPECT_FLOAT_EQ(stream.matrix().at(1, 3), 42.0f);
  EXPECT_FLOAT_EQ(stream.matrix().at(3, 1), 42.0f);
  EXPECT_EQ(stream.pending_dirty_hosts(), 2u);

  const Epoch ep = stream.commit_epoch();
  EXPECT_EQ(ep.index, 0u);
  EXPECT_EQ(ep.dirty_hosts, (std::vector<HostId>{1, 3}));
  EXPECT_EQ(ep.stats.samples_applied, 1u);
  EXPECT_EQ(ep.stats.became_measured, 1u);
  EXPECT_EQ(stream.pending_dirty_hosts(), 0u);
  EXPECT_EQ(stream.epochs_committed(), 1u);
}

TEST(DelayStream, IdenticalResampleStaysClean) {
  DelayStream stream(DelayMatrix(4));  // kLatest policy
  stream.ingest({0, 1, 10.0f, 0.0});
  stream.commit_epoch();
  stream.ingest({0, 1, 10.0f, 1.0});  // same value: matrix unchanged
  const Epoch ep = stream.commit_epoch();
  EXPECT_TRUE(ep.dirty_hosts.empty());
  EXPECT_EQ(ep.stats.samples_applied, 1u);
  EXPECT_EQ(ep.stats.edges_touched, 0u);
}

TEST(DelayStream, RejectsNonFiniteSamples) {
  DelayStream stream(DelayMatrix(4));
  stream.ingest({0, 1, 50.0f, 0.0});
  stream.ingest({0, 1, std::numeric_limits<float>::quiet_NaN(), 1.0});
  stream.ingest({0, 1, std::numeric_limits<float>::infinity(), 2.0});
  stream.ingest({0, 1, -std::numeric_limits<float>::infinity(), 3.0});
  const Epoch ep = stream.commit_epoch();
  EXPECT_EQ(ep.stats.rejected_nonfinite, 3u);
  EXPECT_EQ(ep.stats.rejected_self_pair, 0u);
  EXPECT_EQ(ep.stats.rejected_stale, 0u);
  EXPECT_EQ(ep.stats.samples_rejected(), 3u);
  EXPECT_FLOAT_EQ(stream.matrix().at(0, 1), 50.0f);  // untouched
  // Rejected samples must not advance the edge's timestamp watermark.
  stream.ingest({0, 1, 60.0f, 0.5});
  EXPECT_FLOAT_EQ(stream.matrix().at(0, 1), 60.0f);
}

TEST(DelayStream, RejectsSelfPairsAndStaleTimestamps) {
  DelayStream stream(DelayMatrix(4));
  stream.ingest({2, 2, 5.0f, 0.0});  // self pair
  stream.ingest({0, 1, 10.0f, 5.0});
  stream.ingest({0, 1, 99.0f, 4.0});  // older than the applied sample
  stream.ingest({0, 1, 20.0f, 5.0});  // equal timestamp is accepted
  const Epoch ep = stream.commit_epoch();
  EXPECT_EQ(ep.stats.rejected_self_pair, 1u);
  EXPECT_EQ(ep.stats.rejected_stale, 1u);
  EXPECT_EQ(ep.stats.rejected_nonfinite, 0u);
  EXPECT_EQ(ep.stats.samples_rejected(), 2u);
  EXPECT_EQ(ep.stats.samples_applied, 2u);
  EXPECT_FLOAT_EQ(stream.matrix().at(0, 1), 20.0f);
}

TEST(DelayStream, LossReportTransitionsToMissingAndClearsHistory) {
  EstimatorParams p;
  p.policy = SmoothingPolicy::kEwma;
  p.ewma_alpha = 0.5f;
  DelayStream stream(DelayMatrix(4), p);
  stream.ingest({0, 1, 100.0f, 0.0});
  stream.ingest({0, 1, DelayMatrix::kMissing, 1.0});
  EXPECT_FALSE(stream.matrix().has(0, 1));
  Epoch ep = stream.commit_epoch();
  EXPECT_EQ(ep.stats.became_missing, 1u);
  EXPECT_EQ(ep.dirty_hosts, (std::vector<HostId>{0, 1}));

  // Re-measurement after the outage seeds a fresh EWMA (no blending with
  // the pre-outage 100 ms).
  stream.ingest({0, 1, 10.0f, 2.0});
  EXPECT_FLOAT_EQ(stream.matrix().at(0, 1), 10.0f);
  ep = stream.commit_epoch();
  EXPECT_EQ(ep.stats.became_measured, 1u);
}

TEST(DelayStream, MissingReportOnMissingEdgeStaysClean) {
  DelayStream stream(DelayMatrix(4));
  stream.ingest({0, 1, DelayMatrix::kMissing, 0.0});
  const Epoch ep = stream.commit_epoch();
  EXPECT_TRUE(ep.dirty_hosts.empty());
  EXPECT_EQ(ep.stats.became_missing, 0u);
}

// --- IncrementalView --------------------------------------------------------

/// Packed views agree byte-for-byte: delay rows over the full padded
/// stride, and all mask words.
void expect_views_identical(const DelayMatrixView& got,
                            const DelayMatrixView& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.stride(), want.stride());
  ASSERT_EQ(got.mask_words(), want.mask_words());
  for (HostId i = 0; i < got.size(); ++i) {
    const float* gr = got.row(i);
    const float* wr = want.row(i);
    for (std::size_t b = 0; b < got.stride(); ++b) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(gr[b]),
                std::bit_cast<std::uint32_t>(wr[b]))
          << "row " << i << " col " << b;
    }
    for (std::size_t w = 0; w < got.mask_words(); ++w) {
      ASSERT_EQ(got.mask_row(i)[w], want.mask_row(i)[w]) << "row " << i;
    }
  }
}

TEST(IncrementalView, DirtyRowRepackMatchesFreshBuild) {
  for (const double missing : {0.0, 0.3, 0.9}) {
    DelayMatrix m = test::random_matrix(70, missing, 91);  // multi-word masks
    IncrementalView iv(m);
    Rng rng(7);
    for (int round = 0; round < 5; ++round) {
      std::vector<HostId> dirty;
      std::vector<std::uint8_t> is_dirty(m.size(), 0);
      for (int u = 0; u < 6; ++u) {
        const auto a = static_cast<HostId>(rng.uniform_index(m.size()));
        const auto b = static_cast<HostId>(rng.uniform_index(m.size()));
        if (a == b) continue;
        if (rng.bernoulli(0.25)) {
          m.set_missing(a, b);
        } else {
          m.set(a, b, static_cast<float>(rng.uniform(1.0, 400.0)));
        }
        for (const HostId h : {a, b}) {
          if (!is_dirty[h]) {
            is_dirty[h] = 1;
            dirty.push_back(h);
          }
        }
      }
      iv.apply_epoch(m, dirty);
      expect_views_identical(iv.view(), DelayMatrixView(m));
    }
    EXPECT_GT(iv.rows_repacked(), 0u);
  }
}

// --- IncrementalSeverity: the bit-identity contract -------------------------

::testing::AssertionResult severities_bit_identical(const SeverityMatrix& got,
                                                    const SeverityMatrix& want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (HostId i = 0; i < got.size(); ++i) {
    for (HostId j = 0; j < got.size(); ++j) {
      const auto g = std::bit_cast<std::uint32_t>(got.at(i, j));
      const auto w = std::bit_cast<std::uint32_t>(want.at(i, j));
      if (g != w) {
        return ::testing::AssertionFailure()
               << "severity (" << i << ", " << j << "): bits " << g
               << " != " << w << " (" << got.at(i, j) << " vs "
               << want.at(i, j) << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Replays `epochs` randomized epochs through a DelayStream +
/// IncrementalSeverity and asserts bit-identity against a from-scratch
/// rebuild after every commit. Each epoch mixes value updates, missing
/// toggles (measured -> missing and back), and repeated updates to one
/// deliberately hammered edge.
void replay_and_check(HostId n, double missing, std::uint64_t seed,
                      int epochs, SmoothingPolicy policy) {
  EstimatorParams params;
  params.policy = policy;
  params.window = 3;
  DelayStream stream(test::random_matrix(n, missing, seed), params);
  IncrementalSeverity inc(stream.matrix());
  Rng rng(seed ^ 0xabcdu);
  for (int e = 0; e < epochs; ++e) {
    const std::size_t updates = 1 + rng.uniform_index(2 * n);
    for (std::size_t u = 0; u < updates; ++u) {
      const auto a = static_cast<HostId>(rng.uniform_index(n));
      const auto b = static_cast<HostId>(rng.uniform_index(n));
      if (a == b) continue;
      const float value =
          rng.bernoulli(0.2) ? DelayMatrix::kMissing
                             : static_cast<float>(rng.uniform(1.0, 400.0));
      stream.ingest({a, b, value, double(e)});
      if (u == 0 && rng.bernoulli(0.5)) {
        // Same-edge re-update within the epoch: the estimator folds both
        // samples, the host is dirtied once.
        stream.ingest({a, b, static_cast<float>(rng.uniform(1.0, 400.0)),
                       double(e)});
      }
    }
    inc.apply_epoch(stream);
    const TivAnalyzer analyzer(stream.matrix());
    ASSERT_TRUE(
        severities_bit_identical(inc.severities(), analyzer.all_severities()))
        << "n=" << n << " missing=" << missing << " seed=" << seed
        << " epoch=" << e;
  }
}

TEST(IncrementalSeverity, BitIdenticalTinyMatrices) {
  // The ISSUE's n < 8 grid: every density x seed x policy, several epochs —
  // small enough that edge cases (empty witness sets, fully-missing rows)
  // all occur.
  for (const HostId n : {4, 5, 7}) {
    for (const double missing : {0.0, 0.3, 0.9}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        replay_and_check(n, missing, seed, 6, SmoothingPolicy::kLatest);
      }
    }
  }
}

TEST(IncrementalSeverity, BitIdenticalAcrossPolicies) {
  replay_and_check(6, 0.3, 11, 5, SmoothingPolicy::kEwma);
  replay_and_check(6, 0.3, 11, 5, SmoothingPolicy::kWindowedMin);
}

TEST(IncrementalSeverity, BitIdenticalMultiLaneMatrix) {
  // n past one mask word / several padding lanes: exercises the packed
  // stride and multi-word masks on the incremental path.
  replay_and_check(70, 0.3, 23, 4, SmoothingPolicy::kEwma);
}

TEST(IncrementalSeverity, CleanEpochRecomputesNothing) {
  DelayStream stream(test::random_matrix(10, 0.2, 3));
  IncrementalSeverity inc(stream.matrix());
  const auto stats = inc.apply_epoch(stream);  // no samples ingested
  EXPECT_EQ(stats.rows_repacked, 0u);
  EXPECT_EQ(stats.edges_recomputed, 0u);
}

TEST(IncrementalSeverity, EdgeToggleMeasuredMissingMeasured) {
  // Deterministic toggle scenario on a dense tiny matrix: severity of the
  // toggled edge and of its incident edges must follow the full rebuild
  // exactly through both transitions.
  DelayStream stream(test::random_matrix(6, 0.0, 5));
  IncrementalSeverity inc(stream.matrix());

  stream.ingest({0, 1, DelayMatrix::kMissing, 0.0});
  inc.apply_epoch(stream);
  EXPECT_TRUE(severities_bit_identical(
      inc.severities(), TivAnalyzer(stream.matrix()).all_severities()));
  EXPECT_EQ(inc.severities().at(0, 1), 0.0f);  // unmeasured edge

  stream.ingest({0, 1, 250.0f, 1.0});
  inc.apply_epoch(stream);
  EXPECT_TRUE(severities_bit_identical(
      inc.severities(), TivAnalyzer(stream.matrix()).all_severities()));
}

}  // namespace
}  // namespace tiv::stream
