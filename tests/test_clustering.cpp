#include "delayspace/clustering.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "delayspace/generate.hpp"

namespace tiv::delayspace {
namespace {

/// Two obvious blobs: nodes 0-4 mutually 10 ms apart, nodes 5-9 mutually
/// 10 ms, 200 ms across.
DelayMatrix two_blob_matrix() {
  DelayMatrix m(10);
  for (HostId i = 0; i < 10; ++i) {
    for (HostId j = i + 1; j < 10; ++j) {
      const bool same = (i < 5) == (j < 5);
      m.set(i, j, same ? 10.0f : 200.0f);
    }
  }
  return m;
}

TEST(Clustering, RecoversTwoBlobs) {
  const Clustering c = cluster_delay_space(two_blob_matrix(), {});
  ASSERT_EQ(c.num_clusters(), 2u);
  EXPECT_EQ(c.members[0].size(), 5u);
  EXPECT_EQ(c.members[1].size(), 5u);
  EXPECT_TRUE(c.noise.empty());
  // All of 0-4 share a cluster; none of them share with 5-9.
  for (HostId i = 0; i < 5; ++i) {
    EXPECT_TRUE(c.same_cluster(0, i));
    EXPECT_FALSE(c.same_cluster(i, 9));
  }
}

TEST(Clustering, MaxClustersRespected) {
  ClusteringParams p;
  p.max_clusters = 1;
  const Clustering c = cluster_delay_space(two_blob_matrix(), p);
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_EQ(c.noise.size(), 5u);
}

TEST(Clustering, SmallClustersBecomeNoise) {
  // 8 close nodes + 2 isolated outliers.
  DelayMatrix m(10);
  for (HostId i = 0; i < 10; ++i) {
    for (HostId j = i + 1; j < 10; ++j) {
      const bool core = i < 8 && j < 8;
      m.set(i, j, core ? 10.0f : 500.0f);
    }
  }
  ClusteringParams p;
  p.min_major_fraction = 0.3;  // a 2-node cluster is not major
  const Clustering c = cluster_delay_space(m, p);
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_EQ(c.members[0].size(), 8u);
  EXPECT_EQ(c.noise.size(), 2u);
  EXPECT_EQ(c.assignment[9], -1);
}

TEST(Clustering, GroupedOrderIsPermutation) {
  const Clustering c = cluster_delay_space(two_blob_matrix(), {});
  auto order = c.grouped_order();
  EXPECT_EQ(order.size(), 10u);
  std::sort(order.begin(), order.end());
  for (HostId i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Clustering, LargestClusterFirst) {
  // 6-node blob and 4-node blob.
  DelayMatrix m(10);
  for (HostId i = 0; i < 10; ++i) {
    for (HostId j = i + 1; j < 10; ++j) {
      const bool same = (i < 6) == (j < 6);
      m.set(i, j, same ? 10.0f : 300.0f);
    }
  }
  const Clustering c = cluster_delay_space(m, {});
  ASSERT_EQ(c.num_clusters(), 2u);
  EXPECT_GT(c.members[0].size(), c.members[1].size());
}

TEST(Clustering, MissingMeasurementsCountAsFar) {
  DelayMatrix m(4);
  m.set(0, 1, 5.0f);
  m.set(2, 3, 5.0f);
  // 0-2, 0-3, 1-2, 1-3 missing entirely.
  ClusteringParams p;
  p.min_major_fraction = 0.4;
  const Clustering c = cluster_delay_space(m, p);
  // Each pair forms its own 2-node cluster; they never merge through
  // missing entries.
  EXPECT_EQ(c.num_clusters(), 2u);
}

TEST(Clustering, RecoversGeneratorGroundTruth) {
  DelaySpaceParams params;
  params.topology.num_ases = 80;
  params.topology.seed = 9;
  params.hosts.num_hosts = 250;
  params.hosts.seed = 10;
  const DelaySpace ds = generate_delay_space(params);
  const Clustering c = cluster_delay_space(ds.measured, {});
  EXPECT_GE(c.num_clusters(), 2u);
  const double agreement = rand_index(c, ds.host_cluster);
  EXPECT_GT(agreement, 0.85);
}

TEST(RandIndex, PerfectAndWorstCase) {
  Clustering c;
  c.assignment = {0, 0, 1, 1};
  c.members = {{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(rand_index(c, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(rand_index(c, {5, 5, 5, 5}),
                   2.0 / 6.0);  // only the two within-pairs agree
}

TEST(RandIndex, NoiseLabelsAreNeverSameCluster) {
  Clustering c;
  c.assignment = {-1, -1};
  EXPECT_DOUBLE_EQ(rand_index(c, {-1, -1}), 1.0);  // both say "not same"
}

}  // namespace
}  // namespace tiv::delayspace
