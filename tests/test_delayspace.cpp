// DelayMatrix, the delay-space generator, dataset presets, and overlay
// shortest paths.
#include <cstdio>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "delayspace/datasets.hpp"
#include "delayspace/delay_matrix.hpp"
#include "delayspace/generate.hpp"
#include "delayspace/overlay.hpp"

namespace tiv::delayspace {
namespace {

TEST(DelayMatrix, DiagonalIsZeroAndRestMissing) {
  const DelayMatrix m(4);
  for (HostId i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(m.at(i, i), 0.0f);
    for (HostId j = 0; j < 4; ++j) {
      if (i != j) EXPECT_FALSE(m.has(i, j));
    }
  }
  EXPECT_EQ(m.measured_pair_count(), 0u);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 1.0);
}

TEST(DelayMatrix, SetIsSymmetric) {
  DelayMatrix m(3);
  m.set(0, 2, 12.5f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 12.5f);
  EXPECT_FLOAT_EQ(m.at(2, 0), 12.5f);
  EXPECT_TRUE(m.has(0, 2));
  EXPECT_EQ(m.measured_pair_count(), 1u);
}

TEST(DelayMatrix, SetMissingClears) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  m.set_missing(0, 1);
  EXPECT_FALSE(m.has(0, 1));
}

TEST(DelayMatrix, RowSpanMatchesAt) {
  DelayMatrix m(3);
  m.set(1, 0, 7.0f);
  m.set(1, 2, 9.0f);
  const auto row = m.row(1);
  EXPECT_FLOAT_EQ(row[0], 7.0f);
  EXPECT_FLOAT_EQ(row[1], 0.0f);
  EXPECT_FLOAT_EQ(row[2], 9.0f);
}

TEST(DelayMatrix, AllDelaysListsMeasuredPairsOnce) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 6.0f);
  const auto d = m.all_delays();
  ASSERT_EQ(d.size(), 2u);
}

TEST(DelayMatrix, SaveLoadRoundTrip) {
  DelayMatrix m(5);
  m.set(0, 1, 5.25f);
  m.set(2, 4, 100.5f);
  const std::string path = "/tmp/tivnet_test_matrix.txt";
  m.save(path);
  const DelayMatrix loaded = DelayMatrix::load(path);
  EXPECT_TRUE(m == loaded);
  std::filesystem::remove(path);
}

TEST(DelayMatrix, LoadRejectsMalformed) {
  const std::string path = "/tmp/tivnet_test_bad_matrix.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("3\n0 0 5.0\n", f);  // self edge
    fclose(f);
  }
  EXPECT_THROW(DelayMatrix::load(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(DelayMatrix::load("/nonexistent/file"), std::runtime_error);
}

DelaySpaceParams small_space(std::uint32_t hosts = 150) {
  DelaySpaceParams p;
  p.topology.num_ases = 60;
  p.topology.seed = 3;
  p.hosts.num_hosts = hosts;
  p.hosts.seed = 4;
  return p;
}

TEST(Generate, ProducesFullSymmetricMatrix) {
  const DelaySpace ds = generate_delay_space(small_space());
  const auto& m = ds.measured;
  EXPECT_EQ(m.size(), 150u);
  EXPECT_DOUBLE_EQ(m.missing_fraction(), 0.0);
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      EXPECT_FLOAT_EQ(m.at(i, j), m.at(j, i));
      EXPECT_GT(m.at(i, j), 0.0f);
    }
  }
}

TEST(Generate, MeasuredAtLeastOptimalWithoutArtifacts) {
  DelaySpaceParams p = small_space();
  p.hosts.under_measurement_prob = 0.0;
  const DelaySpace ds = generate_delay_space(p);
  for (HostId i = 0; i < ds.measured.size(); ++i) {
    for (HostId j = i + 1; j < ds.measured.size(); ++j) {
      EXPECT_GE(ds.measured.at(i, j), ds.optimal.at(i, j) - 1e-3f);
    }
  }
}

TEST(Generate, MeasurementArtifactsAreRareAndLow) {
  DelaySpaceParams p = small_space(400);
  p.hosts.under_measurement_prob = 1e-3;
  const DelaySpace ds = generate_delay_space(p);
  std::size_t below_bound = 0;
  std::size_t total = 0;
  for (HostId i = 0; i < ds.measured.size(); ++i) {
    for (HostId j = i + 1; j < ds.measured.size(); ++j) {
      ++total;
      below_bound += ds.measured.at(i, j) < ds.optimal.at(i, j) * 0.9f;
    }
  }
  // Artifacts occur at roughly the configured rate, never in bulk.
  EXPECT_GT(below_bound, 0u);
  EXPECT_LT(static_cast<double>(below_bound) / static_cast<double>(total),
            5e-3);
}

TEST(Generate, GroundTruthMetadataIsConsistent) {
  const DelaySpace ds = generate_delay_space(small_space());
  EXPECT_EQ(ds.host_cluster.size(), 150u);
  EXPECT_EQ(ds.host_as.size(), 150u);
  EXPECT_EQ(ds.host_access_ms.size(), 150u);
  for (double a : ds.host_access_ms) EXPECT_GT(a, 0.0);
}

TEST(Generate, SameClusterPairsAreCloserOnAverage) {
  const DelaySpace ds = generate_delay_space(small_space(200));
  double intra = 0.0;
  double cross = 0.0;
  std::size_t ni = 0;
  std::size_t nc = 0;
  for (HostId i = 0; i < ds.measured.size(); ++i) {
    for (HostId j = i + 1; j < ds.measured.size(); ++j) {
      if (ds.host_cluster[i] < 0 || ds.host_cluster[j] < 0) continue;
      if (ds.host_cluster[i] == ds.host_cluster[j]) {
        intra += ds.measured.at(i, j);
        ++ni;
      } else {
        cross += ds.measured.at(i, j);
        ++nc;
      }
    }
  }
  ASSERT_GT(ni, 0u);
  ASSERT_GT(nc, 0u);
  EXPECT_GT(cross / nc, 2.0 * intra / ni);
}

TEST(Generate, MissingFractionHonored) {
  DelaySpaceParams p = small_space();
  p.hosts.missing_fraction = 0.3;
  const DelaySpace ds = generate_delay_space(p);
  EXPECT_NEAR(ds.measured.missing_fraction(), 0.3, 0.03);
}

TEST(Generate, DeterministicForSeeds) {
  const DelaySpace a = generate_delay_space(small_space());
  const DelaySpace b = generate_delay_space(small_space());
  EXPECT_TRUE(a.measured == b.measured);
}

TEST(Generate, NoiseChangesDelays) {
  DelaySpaceParams p = small_space();
  p.hosts.measurement_noise_sigma = 0.0;
  const DelaySpace quiet = generate_delay_space(p);
  p.hosts.measurement_noise_sigma = 0.1;
  const DelaySpace noisy = generate_delay_space(p);
  EXPECT_FALSE(quiet.measured == noisy.measured);
}

TEST(Generate, IidInflationVariantAlsoLowerBounded) {
  DelaySpaceParams p = small_space();
  p.hosts.under_measurement_prob = 0.0;
  const DelaySpace ds = generate_iid_inflation(p);
  for (HostId i = 0; i < ds.measured.size(); ++i) {
    for (HostId j = i + 1; j < ds.measured.size(); ++j) {
      EXPECT_GE(ds.measured.at(i, j), ds.optimal.at(i, j) - 1e-3f);
    }
  }
}

TEST(Datasets, PresetsHaveExpectedFullSizes) {
  EXPECT_EQ(dataset_full_size(DatasetId::kDs2), 4000u);
  EXPECT_EQ(dataset_full_size(DatasetId::kMeridian), 2500u);
  EXPECT_EQ(dataset_full_size(DatasetId::kP2psim), 1740u);
  EXPECT_EQ(dataset_full_size(DatasetId::kPlanetLab), 229u);
  EXPECT_EQ(all_datasets().size(), 4u);
}

TEST(Datasets, OverrideScalesHostsAndAses) {
  const auto p = dataset_params(DatasetId::kDs2, 320);
  EXPECT_EQ(p.hosts.num_hosts, 320u);
  EXPECT_GE(p.topology.num_ases, 40u);
  const DelaySpace ds = generate_delay_space(p);
  EXPECT_EQ(ds.measured.size(), 320u);
}

TEST(Datasets, OverrideAboveFullSizeThrows) {
  // The presets stand in for measured matrices of a fixed size; upscaling
  // past the paper-scale full size is a caller bug and must fail loudly
  // in Release too (the override is reachable from CLI flags).
  EXPECT_THROW(dataset_params(DatasetId::kDs2, 4001), std::invalid_argument);
  EXPECT_THROW(dataset_params(DatasetId::kPlanetLab, 230),
               std::invalid_argument);
  EXPECT_NO_THROW(dataset_params(DatasetId::kDs2, 4000));
}

TEST(Datasets, PresetsDiffer) {
  const DelaySpace ds2 = make_dataset(DatasetId::kDs2, 100);
  const DelaySpace mer = make_dataset(DatasetId::kMeridian, 100);
  EXPECT_FALSE(ds2.measured == mer.measured);
}

TEST(Overlay, ShortestPathThroughIntermediate) {
  DelayMatrix m(3);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 2, 100.0f);  // severe TIV edge
  const OverlayPaths paths(m);
  EXPECT_FLOAT_EQ(paths.delay(0, 2), 10.0f);
  EXPECT_FLOAT_EQ(paths.delay(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(paths.detour_gain(m, 0, 2), 90.0f);
  EXPECT_FLOAT_EQ(paths.detour_gain(m, 0, 1), 0.0f);
}

TEST(Overlay, NeverExceedsDirectEdge) {
  const DelaySpace ds = generate_delay_space(small_space(120));
  const OverlayPaths paths(ds.measured);
  for (HostId i = 0; i < ds.measured.size(); ++i) {
    for (HostId j = 0; j < ds.measured.size(); ++j) {
      if (ds.measured.has(i, j)) {
        EXPECT_LE(paths.delay(i, j), ds.measured.at(i, j) + 1e-3f);
      }
    }
  }
}

TEST(Overlay, HandlesMissingDirectEdges) {
  DelayMatrix m(3);
  m.set(0, 1, 4.0f);
  m.set(1, 2, 6.0f);
  // 0-2 missing: reachable through 1.
  const OverlayPaths paths(m);
  EXPECT_FLOAT_EQ(paths.delay(0, 2), 10.0f);
}

TEST(Overlay, BlockedFwBitIdenticalToTextbookSweep) {
  // The blocked/tiled Floyd-Warshall must match an unblocked serial row
  // sweep bit-for-bit (EXPECT_EQ on floats, no tolerance): blocking changes
  // memory order only, never a computed value.
  const DelaySpace ds = generate_delay_space(small_space(150));
  const DelayMatrix& m = ds.measured;
  const std::size_t n = m.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> ref(n * n, kInf);
  for (HostId i = 0; i < n; ++i) {
    ref[static_cast<std::size_t>(i) * n + i] = 0.0f;
    for (HostId j = 0; j < n; ++j) {
      if (m.has(i, j)) ref[static_cast<std::size_t>(i) * n + j] = m.at(i, j);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const float dik = ref[i * n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const float via = dik + ref[k * n + j];
        if (via < ref[i * n + j]) ref[i * n + j] = via;
      }
    }
  }
  const OverlayPaths paths(m);
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = 0; j < n; ++j) {
      EXPECT_EQ(paths.delay(i, j), ref[static_cast<std::size_t>(i) * n + j])
          << i << " -> " << j;
    }
  }
}

TEST(Overlay, MetricSpaceNeedsNoDetours) {
  // Points on a line: delays are exact distances; no overlay path can beat
  // the direct edge.
  DelayMatrix m(4);
  const float pos[4] = {0.0f, 3.0f, 7.0f, 20.0f};
  for (HostId i = 0; i < 4; ++i) {
    for (HostId j = i + 1; j < 4; ++j) {
      m.set(i, j, std::abs(pos[i] - pos[j]));
    }
  }
  const OverlayPaths paths(m);
  for (HostId i = 0; i < 4; ++i) {
    for (HostId j = 0; j < 4; ++j) {
      if (i != j) EXPECT_FLOAT_EQ(paths.delay(i, j), m.at(i, j));
    }
  }
}

}  // namespace
}  // namespace tiv::delayspace
