// The batched masked-view edge engine and the shared duplicate-free pair
// sampler (core/edge_sampling.*, TivAnalyzer::edge_stats_batch /
// edge_severity_batch).
//
// Contracts under test:
//  - sample_measured_pairs returns distinct measured pairs and reports
//    achieved-vs-requested instead of silently under-sampling when the
//    rejection budget exhausts on a missing-heavy matrix;
//  - the batched engine's integer counts equal the scalar edge_stats
//    counts exactly, its severities are bit-identical to the
//    all_severities kernel's per-edge values, and both hold on dense,
//    30%-missing, missing-heavy, and tiny (n < 8) matrices;
//  - a caller-provided prebuilt view produces the same results as the
//    locally built one.
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/edge_sampling.hpp"
#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "matrix_test_utils.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;
using tiv::test::random_matrix;

// --- Duplicate-free sampling -----------------------------------------------

TEST(SampleMeasuredPairs, NearExhaustiveSamplingYieldsDistinctPairs) {
  // 12 hosts, dense: 66 edges. Asking for 60 of them forces the sampler to
  // reject many duplicates; every returned pair must still be distinct.
  const DelayMatrix m = random_matrix(12, 0.0, 19);
  const PairSample sample = sample_measured_pairs(m, 60, 5);
  EXPECT_EQ(sample.requested, 60u);
  EXPECT_EQ(sample.achieved(), 60u);
  EXPECT_FALSE(sample.exhausted);
  std::set<std::pair<HostId, HostId>> unique;
  for (const auto& [i, j] : sample.pairs) {
    EXPECT_LT(i, j);
    EXPECT_TRUE(m.has(i, j));
    EXPECT_TRUE(unique.insert({i, j}).second)
        << "duplicate pair (" << i << ", " << j << ")";
  }
}

TEST(SampleMeasuredPairs, MostlyMissingMatrixReportsAchievedCount) {
  // Only 5 measured edges among 780 pairs: a request for 200 must exhaust
  // the attempt budget and say so, not silently return a short vector.
  DelayMatrix m(40);
  for (HostId j = 1; j <= 5; ++j) m.set(0, j, 10.0f * j);
  const PairSample sample = sample_measured_pairs(m, 200, 7);
  EXPECT_EQ(sample.requested, 200u);
  EXPECT_LE(sample.achieved(), 5u);
  EXPECT_LT(sample.achieved(), sample.requested);
  EXPECT_TRUE(sample.exhausted);
  std::set<std::pair<HostId, HostId>> unique;
  for (const auto& [i, j] : sample.pairs) {
    EXPECT_TRUE(m.has(i, j));
    EXPECT_TRUE(unique.insert({i, j}).second);
  }
}

TEST(SampleMeasuredPairs, RequirePositiveRejectsZeroDelays) {
  DelayMatrix m(6);
  m.set(0, 1, 0.0f);  // measured but zero
  m.set(2, 3, 5.0f);
  m.set(4, 5, 7.0f);
  PairSampleOptions opt;
  opt.require_positive = true;
  const PairSample sample = sample_measured_pairs(m, 10, 3, opt);
  EXPECT_EQ(sample.achieved(), 2u);
  for (const auto& [i, j] : sample.pairs) EXPECT_GT(m.at(i, j), 0.0f);
}

TEST(SampleMeasuredPairs, TinyAndEmptyMatricesExhaustImmediately) {
  const DelayMatrix empty(0);
  const PairSample s0 = sample_measured_pairs(empty, 10, 1);
  EXPECT_EQ(s0.achieved(), 0u);
  EXPECT_TRUE(s0.exhausted);
  const DelayMatrix one(1);
  const PairSample s1 = sample_measured_pairs(one, 10, 1);
  EXPECT_EQ(s1.achieved(), 0u);
  EXPECT_TRUE(s1.exhausted);
}

TEST(SampleMeasuredPairs, MatchesSampledSeveritiesDrawSequence) {
  // The shared sampler must reproduce the exact edges sampled_severities
  // has always drawn for a given seed (it inherited that sampler).
  delayspace::DelayMatrix m = random_matrix(50, 0.2, 23);
  const TivAnalyzer analyzer(m);
  const auto samples = analyzer.sampled_severities(80, 42);
  const PairSample sample = sample_measured_pairs(m, 80, 42);
  ASSERT_EQ(samples.size(), sample.pairs.size());
  for (std::size_t e = 0; e < samples.size(); ++e) {
    EXPECT_EQ(samples[e].first, sample.pairs[e]);
  }
}

// --- Batched edge engine ----------------------------------------------------

std::vector<std::pair<HostId, HostId>> all_pairs(HostId n) {
  std::vector<std::pair<HostId, HostId>> out;
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i; j < n; ++j) out.emplace_back(i, j);  // includes i == j
  }
  return out;
}

void expect_batch_matches_scalar(const DelayMatrix& m) {
  const TivAnalyzer analyzer(m);
  const auto edges = all_pairs(m.size());
  const DelayMatrixView view(m);
  // Both the prebuilt-view path and the self-building path must agree with
  // the scalar reference.
  const auto with_view = analyzer.edge_stats_batch(edges, &view);
  const auto self_built = analyzer.edge_stats_batch(edges);
  const auto severities = analyzer.edge_severity_batch(edges, &view);
  const auto counts = analyzer.edge_violation_count_batch(edges, &view);
  ASSERT_EQ(with_view.size(), edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, c] = edges[e];
    const EdgeTivStats scalar = analyzer.edge_stats(a, c);
    const EdgeTivStats& batch = with_view[e];
    // Integer counts: exact (both the full-stats and count-only batches).
    EXPECT_EQ(batch.violation_count, scalar.violation_count)
        << "edge (" << a << ", " << c << ")";
    EXPECT_EQ(counts[e], scalar.violation_count)
        << "edge (" << a << ", " << c << ")";
    EXPECT_EQ(batch.witness_count, scalar.witness_count)
        << "edge (" << a << ", " << c << ")";
    // max_ratio terms are computed identically in both paths: exact.
    EXPECT_DOUBLE_EQ(batch.max_ratio, scalar.max_ratio);
    // Sums differ only in lane order: ~1e-15 relative.
    const double tol =
        1e-12 * std::max({1.0, std::abs(batch.severity),
                          std::abs(scalar.severity)});
    EXPECT_NEAR(batch.severity, scalar.severity, tol)
        << "edge (" << a << ", " << c << ")";
    EXPECT_NEAR(batch.mean_ratio, scalar.mean_ratio,
                1e-12 * std::max(1.0, std::abs(scalar.mean_ratio)));
    // severity-only batch equals the stats batch bit for bit (same kernel
    // lanes, same reduction).
    EXPECT_EQ(severities[e], batch.severity);
    // The self-building path (scalar fallback or local view, depending on
    // batch size) must agree on counts exactly and severity to the same
    // tolerance.
    EXPECT_EQ(self_built[e].violation_count, scalar.violation_count);
    EXPECT_EQ(self_built[e].witness_count, scalar.witness_count);
    EXPECT_NEAR(self_built[e].severity, scalar.severity, tol);
  }
}

TEST(EdgeStatsBatch, MatchesScalarDense) {
  expect_batch_matches_scalar(random_matrix(64, 0.0, 31));
}

TEST(EdgeStatsBatch, MatchesScalarThirtyPercentMissing) {
  expect_batch_matches_scalar(random_matrix(64, 0.3, 32));
}

TEST(EdgeStatsBatch, MatchesScalarMissingHeavy) {
  expect_batch_matches_scalar(random_matrix(48, 0.9, 33));
}

TEST(EdgeStatsBatch, MatchesScalarTinyMatrices) {
  for (const HostId n : {2u, 3u, 4u, 5u, 7u}) {
    expect_batch_matches_scalar(random_matrix(n, 0.2, 200 + n));
  }
}

TEST(EdgeStatsBatch, SeverityBitIdenticalToAllSeveritiesKernel) {
  // The batch kernel feeds the same accumulator lanes and reduction tree as
  // the blocked all-edges kernel, so after the same float rounding the two
  // must agree bit for bit.
  const DelayMatrix m = random_matrix(70, 0.25, 37);
  const TivAnalyzer analyzer(m);
  const DelayMatrixView view(m);
  const SeverityMatrix sev = analyzer.all_severities(&view);
  std::vector<std::pair<HostId, HostId>> edges;
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) edges.emplace_back(i, j);
  }
  const auto batch = analyzer.edge_severity_batch(edges, &view);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_EQ(static_cast<float>(batch[e]),
              sev.at(edges[e].first, edges[e].second))
        << "edge (" << edges[e].first << ", " << edges[e].second << ")";
  }
}

TEST(EdgeStatsBatch, UnmeasuredAndSelfEdgesAreZero) {
  DelayMatrix m(5);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 7.0f);
  const TivAnalyzer analyzer(m);
  const DelayMatrixView view(m);
  const std::vector<std::pair<HostId, HostId>> edges{
      {0, 2},  // unmeasured
      {3, 3},  // self
      {0, 1},  // measured
  };
  const auto batch = analyzer.edge_stats_batch(edges, &view);
  EXPECT_EQ(batch[0].witness_count, 0u);
  EXPECT_DOUBLE_EQ(batch[0].severity, 0.0);
  EXPECT_EQ(batch[1].witness_count, 0u);
  EXPECT_DOUBLE_EQ(batch[1].severity, 0.0);
  EXPECT_EQ(batch[2].witness_count,
            analyzer.edge_stats(0, 1).witness_count);
}

TEST(EdgeStatsBatch, AllSeveritiesAcceptsPrebuiltView) {
  const DelayMatrix m = random_matrix(40, 0.2, 41);
  const TivAnalyzer analyzer(m);
  const DelayMatrixView view(m);
  const SeverityMatrix with_view = analyzer.all_severities(&view);
  const SeverityMatrix self_built = analyzer.all_severities();
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      EXPECT_EQ(with_view.at(i, j), self_built.at(i, j));
    }
  }
}

// --- Sampled triangle fraction accounting -----------------------------------

TEST(TriangleFractionSampled, ReportsAchievedOnMostlyMissingMatrix) {
  // A 30-host matrix with one measured 4-clique: only 4 measurable
  // triangles among 4060. A 50k-triangle request cannot be met.
  DelayMatrix m(30);
  for (HostId i = 0; i < 4; ++i) {
    for (HostId j = i + 1; j < 4; ++j) m.set(i, j, 10.0f + i + j);
  }
  const TivAnalyzer analyzer(m);
  const auto sampled = analyzer.violating_triangle_fraction_sampled(50000, 9);
  EXPECT_EQ(sampled.requested, 50000u);
  EXPECT_LT(sampled.achieved, sampled.requested);
  EXPECT_TRUE(sampled.exhausted);
  // The fraction must still equal the double-returning wrapper exactly.
  EXPECT_EQ(sampled.fraction, analyzer.violating_triangle_fraction(50000, 9));
}

TEST(TriangleFractionSampled, FullySampledIsNotExhausted) {
  const DelayMatrix m = random_matrix(30, 0.1, 51);
  const TivAnalyzer analyzer(m);
  const auto sampled = analyzer.violating_triangle_fraction_sampled(2000, 3);
  EXPECT_EQ(sampled.achieved, 2000u);
  EXPECT_FALSE(sampled.exhausted);
  EXPECT_EQ(sampled.fraction, analyzer.violating_triangle_fraction(2000, 3));
}

}  // namespace
}  // namespace tiv::core
