// Shared test-matrix generator. One definition instead of a copy per test
// binary: a change to the delay range or missing-entry encoding must reach
// every suite at once. (Named without the test_ prefix so the tests/
// CMake glob does not turn it into a binary.)
#pragma once

#include <cstdint>

#include "delayspace/delay_matrix.hpp"
#include "util/rng.hpp"

namespace tiv::test {

/// Symmetric matrix of uniform-random RTTs in [1, 400) ms with an
/// independent per-pair missing probability.
inline delayspace::DelayMatrix random_matrix(delayspace::HostId n,
                                             double missing_fraction,
                                             std::uint64_t seed) {
  delayspace::DelayMatrix m(n);
  Rng rng(seed);
  for (delayspace::HostId i = 0; i < n; ++i) {
    for (delayspace::HostId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(missing_fraction)) continue;
      m.set(i, j, static_cast<float>(rng.uniform(1.0, 400.0)));
    }
  }
  return m;
}

}  // namespace tiv::test
