// Regression tests for the blocked, branch-free severity kernel and the
// machinery it rides on: the packed DelayMatrixView and the persistent
// thread pool's dynamic scheduling.
//
// The contract under test: all_severities (tiled, branch-free, dynamically
// scheduled) must match the scalar edge_stats reference to within 1e-6
// relative on dense and sparse matrices, including the implicit b == a /
// b == c witness exclusions and exact-equality (non-)violations.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "matrix_test_utils.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

using tiv::test::random_matrix;

void expect_matches_scalar_reference(const DelayMatrix& m) {
  const TivAnalyzer a(m);
  const SeverityMatrix blocked = a.all_severities();
  const SeverityMatrix reference = a.all_severities_reference();
  const HostId n = m.size();
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i + 1; j < n; ++j) {
      const double got = blocked.at(i, j);
      const double scalar = a.edge_stats(i, j).severity;
      const double ref = reference.at(i, j);
      const double tol = 1e-6 * std::max({1.0, std::abs(got),
                                          std::abs(scalar)});
      EXPECT_NEAR(got, scalar, tol) << "edge (" << i << ", " << j << ")";
      // Against the seed bulk kernel the match is bit-exact: identical
      // per-term arithmetic, only the summation order differs, and both
      // round through float storage.
      EXPECT_FLOAT_EQ(blocked.at(i, j), static_cast<float>(ref))
          << "edge (" << i << ", " << j << ")";
    }
  }
}

TEST(SeverityKernel, MatchesScalarReferenceDense) {
  expect_matches_scalar_reference(random_matrix(133, 0.0, 11));
}

TEST(SeverityKernel, MatchesScalarReferenceThirtyPercentMissing) {
  expect_matches_scalar_reference(random_matrix(133, 0.3, 12));
}

TEST(SeverityKernel, MatchesScalarReferenceMultithreaded) {
  set_parallel_thread_count(4);
  expect_matches_scalar_reference(random_matrix(97, 0.3, 13));
  set_parallel_thread_count(0);
}

TEST(SeverityKernel, NonMultipleOfTileAndLaneSizes) {
  // Exercise the padded tail: sizes straddling the 16-float lane/tile edge.
  for (const HostId n : {15u, 16u, 17u, 31u, 33u}) {
    expect_matches_scalar_reference(random_matrix(n, 0.2, 100 + n));
  }
}

TEST(SeverityKernel, SelfWitnessExclusion) {
  // b == a and b == c witnesses have detour exactly d_ac; counting them
  // (ratio 1.0 each) would inflate every severity by 2/n. The violating
  // edge here has a true severity computable by hand.
  DelayMatrix m(4);
  m.set(0, 1, 5.0f);
  m.set(1, 2, 5.0f);
  m.set(0, 2, 100.0f);
  m.set(0, 3, 200.0f);
  m.set(1, 3, 200.0f);
  m.set(2, 3, 200.0f);
  const SeverityMatrix sev = TivAnalyzer(m).all_severities();
  EXPECT_NEAR(sev.at(0, 2), 2.5, 1e-6);  // only witness 1: (100/10)/4
  EXPECT_FLOAT_EQ(sev.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(sev.at(0, 3), 0.0f);
}

TEST(SeverityKernel, ExactEqualityIsNotAViolation) {
  // Colinear points: every detour equals d_ac exactly. The kernel's strict
  // `detour < d_ac` must not fire on equality (float arithmetic is exact
  // for these values).
  DelayMatrix m(5);
  const float pos[5] = {0, 8, 24, 56, 120};
  for (HostId i = 0; i < 5; ++i) {
    for (HostId j = i + 1; j < 5; ++j) m.set(i, j, pos[j] - pos[i]);
  }
  const SeverityMatrix sev = TivAnalyzer(m).all_severities();
  for (HostId i = 0; i < 5; ++i) {
    for (HostId j = i + 1; j < 5; ++j) EXPECT_FLOAT_EQ(sev.at(i, j), 0.0f);
  }
}

TEST(SeverityKernel, TriangleFractionMatchesBruteForce) {
  const DelayMatrix m = random_matrix(61, 0.25, 17);
  const HostId n = m.size();
  std::size_t total = 0;
  std::size_t violating = 0;
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      for (HostId c = b + 1; c < n; ++c) {
        const float ab = m.at(a, b);
        const float bc = m.at(b, c);
        const float ac = m.at(a, c);
        if (ab < 0.0f || bc < 0.0f || ac < 0.0f) continue;
        ++total;
        violating += (ab + bc < ac || ab + ac < bc || bc + ac < ab) ? 1 : 0;
      }
    }
  }
  ASSERT_GT(total, 0u);
  const double expected =
      static_cast<double>(violating) / static_cast<double>(total);
  EXPECT_NEAR(TivAnalyzer(m).violating_triangle_fraction(), expected, 1e-12);
}

TEST(SeverityKernel, SampledSeveritiesAreDistinct) {
  // Sampling is without replacement: near-exhaustive sampling of a small
  // matrix must not return any edge twice.
  const DelayMatrix m = random_matrix(12, 0.0, 19);  // 66 edges
  const auto samples = TivAnalyzer(m).sampled_severities(60, 5);
  EXPECT_EQ(samples.size(), 60u);
  std::set<std::pair<HostId, HostId>> unique;
  for (const auto& [edge, sev] : samples) {
    EXPECT_LT(edge.first, edge.second);
    EXPECT_TRUE(unique.insert(edge).second)
        << "duplicate edge (" << edge.first << ", " << edge.second << ")";
  }
}

TEST(DelayMatrixViewTest, PackingAndMask) {
  DelayMatrix m(5);
  m.set(0, 1, 5.0f);
  m.set(0, 3, 7.0f);
  m.set(2, 3, 9.0f);
  const DelayMatrixView view(m);
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(view.stride() % DelayMatrixView::kLaneFloats, 0u);
  EXPECT_GE(view.stride(), 5u);
  // Measured entries survive; missing and padding become the sentinel; the
  // diagonal stays zero.
  EXPECT_FLOAT_EQ(view.row(0)[1], 5.0f);
  EXPECT_FLOAT_EQ(view.row(0)[3], 7.0f);
  EXPECT_FLOAT_EQ(view.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(view.row(0)[2], DelayMatrixView::kMaskedDelay);
  for (std::size_t b = 5; b < view.stride(); ++b) {
    EXPECT_FLOAT_EQ(view.row(0)[b], DelayMatrixView::kMaskedDelay);
  }
  // Mask bit b of row i <=> has(i, b); own bit never set.
  for (HostId i = 0; i < 5; ++i) {
    for (HostId b = 0; b < 5; ++b) {
      const bool bit =
          (view.mask_row(i)[b >> 6] >> (b & 63)) & 1;
      EXPECT_EQ(bit, m.has(i, b)) << "(" << i << ", " << b << ")";
    }
  }
  // witness_count(0, 3): b must have measured legs to both 0 and 3.
  // Node 1: 0-1 measured, 1-3 missing. Node 2: 0-2 missing. Node 4: none.
  EXPECT_EQ(view.witness_count(0, 3), 0u);
  // witness_count(0, 2) once 1-2 is measured: node 1 (0-1, 1-2) and node 3
  // (0-3, 2-3) both have legs to each endpoint.
  m.set(1, 2, 4.0f);
  const DelayMatrixView view2(m);
  EXPECT_EQ(view2.witness_count(0, 2), 2u);
}

TEST(DelayMatrixViewTest, RowsAreCacheLineAligned) {
  const DelayMatrix m = random_matrix(33, 0.1, 23);
  const DelayMatrixView view(m);
  for (HostId i = 0; i < m.size(); ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.row(i)) % 64, 0u);
  }
}

TEST(ParallelDynamic, CoversEveryIndexExactlyOnce) {
  set_parallel_thread_count(4);
  std::vector<std::atomic<int>> hits(1013);
  parallel_for_dynamic(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, NestedCallsRunInline) {
  set_parallel_thread_count(4);
  std::atomic<long> sum{0};
  parallel_for(8, [&](std::size_t) {
    // Must not deadlock; the nested loop runs serially on this thread.
    parallel_for_dynamic(100, 3, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<long>(i));
    });
  });
  EXPECT_EQ(sum.load(), 8 * 4950);
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, PoolSurvivesRepeatedResizing) {
  for (int round = 0; round < 20; ++round) {
    set_parallel_thread_count(1 + round % 5);
    std::atomic<long> sum{0};
    parallel_for_dynamic(500, 11, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 124750);
  }
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, ConcurrentTopLevelCallersAreSerialized) {
  // The pool's job slot is single-occupancy; simultaneous top-level loops
  // from different threads must queue, not corrupt each other's chunks.
  set_parallel_thread_count(3);
  std::atomic<long> sum_a{0};
  std::atomic<long> sum_b{0};
  std::thread other([&] {
    for (int r = 0; r < 25; ++r) {
      parallel_for_dynamic(400, 9, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) sum_a.fetch_add(1);
      });
    }
  });
  for (int r = 0; r < 25; ++r) {
    parallel_for(400, [&](std::size_t) { sum_b.fetch_add(1); });
  }
  other.join();
  EXPECT_EQ(sum_a.load(), 25 * 400);
  EXPECT_EQ(sum_b.load(), 25 * 400);
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, SmallJobsDoNotShrinkThePool) {
  // Alternating large and tiny loops must not thrash the pool: a job with
  // fewer chunks than threads leaves surplus workers idle, it does not
  // restart the pool. (Behavioral check: results stay correct and the
  // sequence completes quickly even on 1 hardware core.)
  set_parallel_thread_count(4);
  for (int r = 0; r < 50; ++r) {
    std::atomic<long> big{0};
    parallel_for_dynamic(1000, 10, [&](std::size_t b, std::size_t e) {
      big.fetch_add(static_cast<long>(e - b));
    });
    EXPECT_EQ(big.load(), 1000);
    std::atomic<long> tiny{0};
    parallel_for(2, [&](std::size_t) { tiny.fetch_add(1); });
    EXPECT_EQ(tiny.load(), 2);
  }
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, CallerThreadExceptionPropagatesCleanly) {
  set_parallel_thread_count(3);
  // An exception on the *calling* thread (workers throwing terminates by
  // contract) must unwind without poisoning the pool. The caller claims
  // chunks alongside the workers, so with 64 single-index chunks it throws
  // on some attempt with overwhelming probability.
  const auto caller = std::this_thread::get_id();
  bool threw = false;
  for (int attempt = 0; attempt < 100 && !threw; ++attempt) {
    try {
      parallel_for_dynamic(64, 1, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() == caller) {
          throw std::runtime_error("boom");
        }
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  // The pool must still dispatch parallel work correctly afterwards.
  std::atomic<long> sum{0};
  parallel_for_dynamic(300, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 300 * 299 / 2);
  set_parallel_thread_count(0);
}

TEST(ParallelDynamic, ZeroAndTinyRanges) {
  set_parallel_thread_count(3);
  int calls = 0;
  parallel_for_dynamic(0, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> ones{0};
  parallel_for_dynamic(1, 100, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    ones.fetch_add(1);
  });
  EXPECT_EQ(ones.load(), 1);
  set_parallel_thread_count(0);
}

}  // namespace
}  // namespace tiv::core
