// Euclidean control matrices: the TIV-free baseline input for Fig. 14.
#include <cmath>

#include <gtest/gtest.h>

#include "core/severity.hpp"
#include "delayspace/euclidean.hpp"

namespace tiv::delayspace {
namespace {

TEST(Euclidean, RespectsSizeAndPositivity) {
  EuclideanParams p;
  p.num_hosts = 60;
  const DelayMatrix m = euclidean_matrix(p);
  EXPECT_EQ(m.size(), 60u);
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      EXPECT_GT(m.at(i, j), 0.0f);
    }
  }
}

TEST(Euclidean, SatisfiesTriangleInequality) {
  EuclideanParams p;
  p.num_hosts = 50;
  const DelayMatrix m = euclidean_matrix(p);
  for (HostId a = 0; a < m.size(); ++a) {
    for (HostId b = a + 1; b < m.size(); ++b) {
      for (HostId c = b + 1; c < m.size(); ++c) {
        // Float rounding tolerance.
        EXPECT_GE(m.at(a, b) + m.at(b, c), m.at(a, c) * 0.999f);
        EXPECT_GE(m.at(a, b) + m.at(a, c), m.at(b, c) * 0.999f);
        EXPECT_GE(m.at(a, c) + m.at(b, c), m.at(a, b) * 0.999f);
      }
    }
  }
}

TEST(Euclidean, NoSevereTivSeverity) {
  EuclideanParams p;
  p.num_hosts = 80;
  const DelayMatrix m = euclidean_matrix(p);
  const core::TivAnalyzer analyzer(m);
  // Rounding can create epsilon violations; severity must stay negligible.
  const auto samples = analyzer.sampled_severities(500);
  for (const auto& [edge, sev] : samples) EXPECT_LT(sev, 0.01);
}

TEST(Euclidean, DeterministicAndSeedSensitive) {
  EuclideanParams p;
  p.num_hosts = 30;
  const DelayMatrix a = euclidean_matrix(p);
  const DelayMatrix b = euclidean_matrix(p);
  EXPECT_TRUE(a == b);
  p.seed ^= 0x1234;
  const DelayMatrix c = euclidean_matrix(p);
  EXPECT_FALSE(a == c);
}

TEST(Euclidean, ScaleMatchesSideLength) {
  EuclideanParams p;
  p.num_hosts = 200;
  p.side_ms = 100.0;
  p.dimension = 3;
  const DelayMatrix m = euclidean_matrix(p);
  double max_d = 0.0;
  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      max_d = std::max(max_d, static_cast<double>(m.at(i, j)));
    }
  }
  // Diameter of the cube is side * sqrt(dim).
  EXPECT_LT(max_d, 100.0 * std::sqrt(3.0) + 1e-6);
  EXPECT_GT(max_d, 80.0);
}

}  // namespace
}  // namespace tiv::delayspace
