#include "routing/policy_routing.hpp"
#include "routing/shortest_path.hpp"

#include <gtest/gtest.h>

#include "routing/graph_engine.hpp"
#include "topology/generator.hpp"

namespace tiv::routing {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::AsLink;
using topology::AsNode;
using topology::LinkKind;

AsGraph line_graph() {
  // 0 -(cust)-> 1 -(cust)-> 2, delays 10 and 20.
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kCustomerProvider, 10.0, 1.0},
      {1, 2, LinkKind::kCustomerProvider, 20.0, 1.0},
  };
  return AsGraph(nodes, links);
}

TEST(ShortestPath, LineGraphDistances) {
  const AsGraph g = line_graph();
  const auto d = shortest_paths_from(g, 0);
  EXPECT_DOUBLE_EQ(d[0].delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(d[1].delay_ms, 10.0);
  EXPECT_DOUBLE_EQ(d[2].delay_ms, 30.0);
  EXPECT_EQ(d[2].hops, 2u);
}

TEST(ShortestPath, PicksCheaperOfTwoRoutes) {
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kPeerPeer, 10.0, 1.0},
      {1, 2, LinkKind::kPeerPeer, 10.0, 1.0},
      {0, 2, LinkKind::kPeerPeer, 50.0, 1.0},
  };
  const AsGraph g(nodes, links);
  const auto d = shortest_paths_from(g, 0);
  EXPECT_DOUBLE_EQ(d[2].delay_ms, 20.0);
}

TEST(ShortestPath, UsesExperiencedDelay) {
  // Congestion x5 on the direct link makes the two-hop path cheaper.
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kPeerPeer, 10.0, 1.0},
      {1, 2, LinkKind::kPeerPeer, 10.0, 1.0},
      {0, 2, LinkKind::kPeerPeer, 15.0, 5.0},  // experienced 75
  };
  const AsGraph g(nodes, links);
  const auto d = shortest_paths_from(g, 0);
  EXPECT_DOUBLE_EQ(d[2].delay_ms, 20.0);
}

TEST(ShortestPath, UnreachableIsInfinite) {
  std::vector<AsNode> nodes(2);
  const AsGraph g(nodes, {});
  const auto d = shortest_paths_from(g, 0);
  EXPECT_FALSE(d[1].reachable());
}

TEST(ShortestPathMatrix, MatchesSingleSource) {
  const AsGraph g = generate_topology([] {
    topology::TopologyParams p;
    p.num_ases = 60;
    p.seed = 4;
    return p;
  }());
  const ShortestPathMatrix m(g);
  const auto row0 = shortest_paths_from(g, 0);
  for (AsId v = 0; v < g.size(); ++v) {
    EXPECT_DOUBLE_EQ(m.delay(0, v), row0[v].delay_ms);
  }
}

// --- Policy routing on hand-built graphs ---------------------------------

TEST(PolicyRouting, DestinationRouteIsSelf) {
  const AsGraph g = line_graph();
  const auto r = policy_routes_to(g, 0);
  EXPECT_EQ(r[0].cls, RouteClass::kCustomer);
  EXPECT_DOUBLE_EQ(r[0].delay_ms, 0.0);
}

TEST(PolicyRouting, CustomerRoutesFlowUpProviderChain) {
  const AsGraph g = line_graph();
  // Destination 0 announces up: 1 and 2 learn customer routes.
  const auto r = policy_routes_to(g, 0);
  EXPECT_EQ(r[1].cls, RouteClass::kCustomer);
  EXPECT_DOUBLE_EQ(r[1].delay_ms, 10.0);
  EXPECT_EQ(r[2].cls, RouteClass::kCustomer);
  EXPECT_DOUBLE_EQ(r[2].delay_ms, 30.0);
}

TEST(PolicyRouting, ProviderRoutesFlowDown) {
  const AsGraph g = line_graph();
  // Destination 2 (top provider): 1 and 0 reach it via provider routes.
  const auto r = policy_routes_to(g, 2);
  EXPECT_EQ(r[1].cls, RouteClass::kProvider);
  EXPECT_EQ(r[0].cls, RouteClass::kProvider);
  EXPECT_DOUBLE_EQ(r[0].delay_ms, 30.0);
}

TEST(PolicyRouting, ValleyFreeBlocksPeerTransit) {
  // 0 and 2 are customers of nothing; 0-1 peer, 1-2 peer. A 0->2 path would
  // need two peer hops (0-1-2), which valley-free forbids.
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kPeerPeer, 10.0, 1.0},
      {1, 2, LinkKind::kPeerPeer, 10.0, 1.0},
  };
  const AsGraph g(nodes, links);
  const auto r = policy_routes_to(g, 2);
  EXPECT_TRUE(r[1].reachable());
  EXPECT_FALSE(r[0].reachable());
}

TEST(PolicyRouting, PeerRouteCarriesOnlyCustomerRoutes) {
  // t1a -(peer)- t1b; c customer of t1a; d customer of t1b.
  // d's route to c: provider t1b, which learned c via peer t1a, which
  // learned c from its customer. Path d -> t1b -> t1a -> c is valley-free.
  std::vector<AsNode> nodes(4);
  constexpr AsId t1a = 0;
  constexpr AsId t1b = 1;
  constexpr AsId c = 2;
  constexpr AsId d = 3;
  std::vector<AsLink> links{
      {t1a, t1b, LinkKind::kPeerPeer, 5.0, 1.0},
      {c, t1a, LinkKind::kCustomerProvider, 3.0, 1.0},
      {d, t1b, LinkKind::kCustomerProvider, 4.0, 1.0},
  };
  const AsGraph g(nodes, links);
  const auto r = policy_routes_to(g, c);
  ASSERT_TRUE(r[d].reachable());
  EXPECT_EQ(r[d].cls, RouteClass::kProvider);
  EXPECT_DOUBLE_EQ(r[d].delay_ms, 12.0);
  EXPECT_EQ(r[d].hops, 3u);
  // t1b itself reaches c via its peer.
  EXPECT_EQ(r[t1b].cls, RouteClass::kPeer);
}

TEST(PolicyRouting, PrefersCustomerOverShorterPeerRoute) {
  // v has a customer path to dest of delay 100 and a peer path of delay 10.
  // BGP picks the customer route despite the tenfold delay difference.
  std::vector<AsNode> nodes(4);
  constexpr AsId v = 0;
  constexpr AsId cust = 1;
  constexpr AsId dest = 2;
  constexpr AsId peer = 3;
  std::vector<AsLink> links{
      {cust, v, LinkKind::kCustomerProvider, 50.0, 1.0},
      {dest, cust, LinkKind::kCustomerProvider, 50.0, 1.0},
      {v, peer, LinkKind::kPeerPeer, 5.0, 1.0},
      {dest, peer, LinkKind::kCustomerProvider, 5.0, 1.0},
  };
  const AsGraph g(nodes, links);
  const auto r = policy_routes_to(g, dest);
  ASSERT_TRUE(r[v].reachable());
  EXPECT_EQ(r[v].cls, RouteClass::kCustomer);
  EXPECT_DOUBLE_EQ(r[v].delay_ms, 100.0);
  // This preference is precisely a routing-created triangle inequality
  // violation: the direct (selected) path is 100 while a 10 ms path exists.
}

TEST(PolicyRouting, TracksExperiencedDelaySeparately) {
  std::vector<AsNode> nodes(2);
  std::vector<AsLink> links{{0, 1, LinkKind::kCustomerProvider, 10.0, 3.0}};
  const AsGraph g(nodes, links);
  const auto r = policy_routes_to(g, 0);
  EXPECT_DOUBLE_EQ(r[1].delay_ms, 10.0);
  EXPECT_DOUBLE_EQ(r[1].data_delay_ms, 30.0);
}

// --- Policy routing on generated topologies ------------------------------

class PolicyOnGenerated : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  AsGraph graph_ = generate_topology([this] {
    topology::TopologyParams p;
    p.num_ases = 100;
    p.seed = GetParam();
    return p;
  }());
};

TEST_P(PolicyOnGenerated, AllPairsReachable) {
  const PolicyRoutingMatrix m(graph_);
  for (AsId s = 0; s < graph_.size(); ++s) {
    for (AsId d = 0; d < graph_.size(); ++d) {
      EXPECT_TRUE(m.route(s, d).reachable())
          << "no valley-free route " << s << " -> " << d;
    }
  }
}

TEST_P(PolicyOnGenerated, PolicyNeverBeatsShortestPath) {
  const PolicyRoutingMatrix pm(graph_);
  const ShortestPathMatrix sm(graph_);
  for (AsId s = 0; s < graph_.size(); ++s) {
    for (AsId d = 0; d < graph_.size(); ++d) {
      if (s == d) continue;
      EXPECT_GE(pm.route(s, d).data_delay_ms, sm.delay(s, d) - 1e-9);
    }
  }
}

TEST_P(PolicyOnGenerated, ExperiencedAtLeastPropagation) {
  const PolicyRoutingMatrix pm(graph_);
  for (AsId s = 0; s < graph_.size(); ++s) {
    for (AsId d = 0; d < graph_.size(); ++d) {
      const auto& r = pm.route(s, d);
      EXPECT_GE(r.data_delay_ms, r.delay_ms - 1e-9);
    }
  }
}

TEST_P(PolicyOnGenerated, SomePathsAreInflated) {
  // The whole point of policy routing: a meaningful share of pairs use a
  // path noticeably longer than the physical shortest path.
  const PolicyRoutingMatrix pm(graph_);
  const ShortestPathMatrix sm(graph_);
  std::size_t inflated = 0;
  std::size_t total = 0;
  for (AsId s = 0; s < graph_.size(); ++s) {
    for (AsId d = s + 1; d < graph_.size(); ++d) {
      ++total;
      inflated += pm.route(s, d).data_delay_ms > 1.3 * sm.delay(s, d);
    }
  }
  EXPECT_GT(static_cast<double>(inflated) / static_cast<double>(total), 0.02);
}

TEST_P(PolicyOnGenerated, RouteClassMixIsSane) {
  const PolicyRoutingMatrix pm(graph_);
  const double cust = pm.class_fraction(RouteClass::kCustomer);
  const double peer = pm.class_fraction(RouteClass::kPeer);
  const double prov = pm.class_fraction(RouteClass::kProvider);
  EXPECT_NEAR(cust + peer + prov, 1.0, 1e-9);
  // On a stub-heavy hierarchy most selected routes climb providers.
  EXPECT_GT(prov, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyOnGenerated,
                         ::testing::Values(1ULL, 17ULL, 123ULL));

// --- Batched engine vs scalar reference ----------------------------------

/// Every batched row must be exactly equal — operator== on each field, no
/// tolerance — to the scalar reference. Both scan CSR segments in the same
/// order and pop lexicographically minimal keys, so even delay ties must
/// resolve identically.
void expect_exact_parity(const AsGraph& g) {
  const auto nodes = all_nodes(g);
  const std::size_t n = g.size();
  const auto batched_policy = policy_routes_batch(g, nodes);
  const auto batched_sssp = shortest_paths_batch(g, nodes);
  ASSERT_EQ(batched_policy.size(), n * n);
  ASSERT_EQ(batched_sssp.size(), n * n);
  for (AsId v = 0; v < n; ++v) {
    const auto scalar_policy = policy_routes_to(g, v);
    const auto scalar_sssp = shortest_paths_from(g, v);
    for (AsId u = 0; u < n; ++u) {
      const Route& b = batched_policy[static_cast<std::size_t>(v) * n + u];
      EXPECT_EQ(b.cls, scalar_policy[u].cls) << v << " -> " << u;
      EXPECT_EQ(b.hops, scalar_policy[u].hops) << v << " -> " << u;
      EXPECT_EQ(b.delay_ms, scalar_policy[u].delay_ms) << v << " -> " << u;
      EXPECT_EQ(b.data_delay_ms, scalar_policy[u].data_delay_ms)
          << v << " -> " << u;
      const PathInfo& p = batched_sssp[static_cast<std::size_t>(v) * n + u];
      EXPECT_EQ(p.delay_ms, scalar_sssp[u].delay_ms) << v << " -> " << u;
      EXPECT_EQ(p.hops, scalar_sssp[u].hops) << v << " -> " << u;
    }
  }
}

TEST(GraphEngine, SingleNodeGraph) {
  expect_exact_parity(AsGraph(std::vector<AsNode>(1), {}));
}

TEST(GraphEngine, TinyGraphs) {
  expect_exact_parity(line_graph());
  // Peer triangle with one congested edge (n = 3 < 8).
  std::vector<AsNode> nodes(3);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kPeerPeer, 10.0, 1.0},
      {1, 2, LinkKind::kPeerPeer, 10.0, 1.0},
      {0, 2, LinkKind::kPeerPeer, 15.0, 5.0},
  };
  expect_exact_parity(AsGraph(nodes, links));
}

TEST(GraphEngine, DisconnectedStubs) {
  // A small hierarchy plus two fully isolated stubs: unreachable cells must
  // agree exactly (kNone routes, infinite delays) on both sides.
  std::vector<AsNode> nodes(7);
  std::vector<AsLink> links{
      {0, 1, LinkKind::kCustomerProvider, 10.0, 1.0},
      {1, 2, LinkKind::kCustomerProvider, 20.0, 1.0},
      {3, 2, LinkKind::kCustomerProvider, 5.0, 2.0},
      {0, 3, LinkKind::kPeerPeer, 8.0, 1.0},
      // ASes 5 and 6 peer with each other but reach nobody else.
      {5, 6, LinkKind::kPeerPeer, 2.0, 1.0},
  };
  expect_exact_parity(AsGraph(nodes, links));
}

TEST(GraphEngine, GeneratedTopologiesVariedTierMixes) {
  struct Mix {
    std::uint64_t seed;
    double tier2_fraction;
    std::uint32_t tier1_per_cluster;
    double peering;
  };
  for (const Mix& mix : {Mix{5, 0.22, 2, 0.12}, Mix{29, 0.45, 1, 0.02},
                         Mix{91, 0.10, 3, 0.40}}) {
    topology::TopologyParams p;
    p.num_ases = 70;
    p.seed = mix.seed;
    p.tier2_fraction = mix.tier2_fraction;
    p.tier1_per_cluster = mix.tier1_per_cluster;
    p.tier2_peering_same_cluster = mix.peering;
    expect_exact_parity(generate_topology(p));
  }
}

TEST(GraphEngine, EmptyBatchIsEmpty) {
  const AsGraph g = line_graph();
  EXPECT_TRUE(policy_routes_batch(g, {}).empty());
  EXPECT_TRUE(shortest_paths_batch(g, {}).empty());
}

TEST(GraphEngine, SubsetRowsMatchAllPairs) {
  const AsGraph g = generate_topology([] {
    topology::TopologyParams p;
    p.num_ases = 60;
    p.seed = 11;
    return p;
  }());
  const std::vector<AsId> subset{3, 0, 41, 17};
  const ShortestPathMatrix sm_all(g);
  const ShortestPathMatrix sm_sub(g, subset);
  const PolicyRoutingMatrix pm_all(g);
  const PolicyRoutingMatrix pm_sub(g, subset);
  EXPECT_EQ(sm_all.num_sources(), g.size());
  EXPECT_EQ(sm_sub.num_sources(), subset.size());
  EXPECT_EQ(pm_sub.num_dests(), subset.size());
  for (const AsId s : subset) {
    for (AsId v = 0; v < g.size(); ++v) {
      EXPECT_EQ(sm_sub.delay(s, v), sm_all.delay(s, v));
      EXPECT_EQ(sm_sub.info(s, v).hops, sm_all.info(s, v).hops);
      EXPECT_EQ(pm_sub.route(v, s).delay_ms, pm_all.route(v, s).delay_ms);
      EXPECT_EQ(pm_sub.route(v, s).cls, pm_all.route(v, s).cls);
    }
  }
}

TEST(GraphEngine, ClassCountsMatchManualScan) {
  const AsGraph g = generate_topology([] {
    topology::TopologyParams p;
    p.num_ases = 80;
    p.seed = 23;
    return p;
  }());
  const PolicyRoutingMatrix pm(g);
  RouteClassCounts manual;
  for (AsId d = 0; d < g.size(); ++d) {
    for (AsId s = 0; s < g.size(); ++s) {
      if (s == d) continue;
      const Route& r = pm.route(s, d);
      if (r.reachable()) {
        ++manual.counts[static_cast<std::size_t>(r.cls)];
      } else {
        ++manual.unreachable;
      }
    }
  }
  const RouteClassCounts& counts = pm.class_counts();
  EXPECT_EQ(counts.counts, manual.counts);
  EXPECT_EQ(counts.unreachable, manual.unreachable);
  EXPECT_EQ(counts.reachable(), manual.reachable());
  // class_fraction reads the same counts.
  for (const RouteClass cls : {RouteClass::kCustomer, RouteClass::kPeer,
                               RouteClass::kProvider}) {
    EXPECT_DOUBLE_EQ(pm.class_fraction(cls),
                     static_cast<double>(manual.of(cls)) /
                         static_cast<double>(manual.reachable()));
  }
}

}  // namespace
}  // namespace tiv::routing
