// Tests for the out-of-core shard subsystem: TileStore round-tripping the
// packed-view representation, TileCache budget/eviction accounting, and the
// streaming severity driver's bit-identical equivalence to the in-memory
// kernel — on dense and 30%-missing matrices, across tile sizes that do and
// do not divide N, and under a tiny cache budget that forces eviction.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/shard_severity.hpp"
#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "matrix_test_utils.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;
using shard::TileCache;
using shard::TileStore;

using tiv::test::random_matrix;

/// Unique scratch path; removed by the fixture-less tests themselves.
std::string scratch_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("tiv_test_" + tag + "_" + std::to_string(::testing::UnitTest::
                                                        GetInstance()
                                                            ->random_seed()) +
           ".tiles"))
      .string();
}

void expect_streamed_matches_in_memory(const DelayMatrix& m,
                                       std::uint32_t tile_dim,
                                       std::size_t budget_bytes,
                                       bool expect_evictions) {
  const std::string path = scratch_path(
      "equiv_n" + std::to_string(m.size()) + "_t" + std::to_string(tile_dim));
  TileStore::write_matrix(path, m, tile_dim);
  const TileStore store = TileStore::open(path);
  TileCache cache(store, budget_bytes);

  const SeverityMatrix streamed = all_severities_streamed(store, cache);
  const SeverityMatrix in_memory = TivAnalyzer(m).all_severities();
  const HostId n = m.size();
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i + 1; j < n; ++j) {
      // Bit-for-bit: the streamed driver feeds the same accumulator lanes
      // in the same order as the monolithic row scan.
      EXPECT_EQ(streamed.at(i, j), in_memory.at(i, j))
          << "edge (" << i << ", " << j << ")";
    }
  }

  const double streamed_frac = violating_triangle_fraction_streamed(
      store, cache);
  const double in_memory_frac = TivAnalyzer(m).violating_triangle_fraction();
  EXPECT_EQ(streamed_frac, in_memory_frac);

  const auto stats = cache.stats();
  EXPECT_GT(stats.misses, 0u);
  // Budgets in these tests always dominate the pinned working set, so the
  // accounting invariant tightens to a hard bound.
  EXPECT_LE(stats.peak_bytes, budget_bytes);
  if (expect_evictions) EXPECT_GT(stats.evictions, 0u);
  std::filesystem::remove(path);
}

TEST(TileStore, RoundTripsPackedViewBlocks) {
  const HostId n = 37;  // does not divide the 16-wide tile
  const DelayMatrix m = random_matrix(n, 0.25, 5);
  const std::string path = scratch_path("roundtrip");
  TileStore::write_matrix(path, m, 16);
  const TileStore store = TileStore::open(path);
  EXPECT_EQ(store.size(), n);
  EXPECT_EQ(store.tile_dim(), 16u);
  EXPECT_EQ(store.tiles_per_side(), 3u);
  EXPECT_EQ(store.band_rows(0), 16u);
  EXPECT_EQ(store.band_rows(2), 5u);

  const DelayMatrixView view(m);
  std::vector<float> payload(store.payload_floats());
  std::vector<std::uint64_t> masks(store.mask_words());
  for (std::uint32_t tr = 0; tr < store.tiles_per_side(); ++tr) {
    for (std::uint32_t tc = 0; tc < store.tiles_per_side(); ++tc) {
      store.read_tile(tr, tc, payload.data(), masks.data());
      for (std::uint32_t lr = 0; lr < 16; ++lr) {
        const HostId i = tr * 16 + lr;
        for (std::uint32_t lb = 0; lb < 16; ++lb) {
          const HostId b = tc * 16 + lb;
          const float got = payload[lr * 16 + lb];
          const bool mask_bit = (masks[lr * store.mask_words_per_row() +
                                       (lb >> 6)] >>
                                 (lb & 63)) &
                                1;
          if (i >= n || b >= n) {
            // Edge-tile padding: masked payload, zero mask bits.
            EXPECT_EQ(got, DelayMatrixView::kMaskedDelay);
            EXPECT_FALSE(mask_bit);
          } else {
            EXPECT_EQ(got, view.row(i)[b]) << "(" << i << ", " << b << ")";
            EXPECT_EQ(mask_bit, m.has(i, b)) << "(" << i << ", " << b << ")";
          }
        }
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(TileStore, RejectsBadTileDim) {
  const DelayMatrix m = random_matrix(8, 0.0, 6);
  EXPECT_THROW(TileStore::write_matrix(scratch_path("bad"), m, 0),
               std::invalid_argument);
  EXPECT_THROW(TileStore::write_matrix(scratch_path("bad"), m, 24),
               std::invalid_argument);
}

TEST(TileStore, OpenRejectsMissingAndMalformed) {
  EXPECT_THROW(TileStore::open("/nonexistent/tiv_tiles"), std::runtime_error);
  const std::string path = scratch_path("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a tile store", f);
    std::fclose(f);
  }
  EXPECT_THROW(TileStore::open(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ShardSeverity, StreamedMatchesInMemoryDense) {
  // 96 divides the 16- and 32-wide grids; generous budget (no eviction
  // pressure beyond capacity).
  expect_streamed_matches_in_memory(random_matrix(96, 0.0, 11), 32,
                                    1u << 22, false);
}

TEST(ShardSeverity, StreamedMatchesInMemoryThirtyPercentMissing) {
  expect_streamed_matches_in_memory(random_matrix(96, 0.3, 12), 32,
                                    1u << 22, false);
}

TEST(ShardSeverity, TileSizeNotDividingN) {
  // 133 = 8*16 + 5: ragged last band in both 16- and 48-wide grids.
  expect_streamed_matches_in_memory(random_matrix(133, 0.3, 13), 16,
                                    1u << 22, false);
  expect_streamed_matches_in_memory(random_matrix(133, 0.2, 14), 48,
                                    1u << 22, false);
}

TEST(ShardSeverity, TinyBudgetForcesEvictionAndStaysWithinIt) {
  // 8x8 bands of 16-wide tiles; a budget of 8 tiles cannot hold the 36
  // upper-triangle band pairs' worth of working set, so the LRU must evict
  // — and the accounting must keep peak bytes within the budget.
  set_parallel_thread_count(2);
  const HostId n = 128;
  const std::uint32_t tile_dim = 16;
  const std::size_t tile_bytes =
      tile_dim * tile_dim * sizeof(float) + tile_dim * sizeof(std::uint64_t);
  expect_streamed_matches_in_memory(random_matrix(n, 0.1, 15), tile_dim,
                                    8 * tile_bytes, true);
  set_parallel_thread_count(0);
}

TEST(ShardSeverity, BudgetedAutoSelection) {
  const DelayMatrix m = random_matrix(97, 0.2, 16);
  const SeverityMatrix reference = TivAnalyzer(m).all_severities();

  // Unbounded budget: in-memory path.
  OutOfCoreReport report;
  OutOfCoreConfig in_mem;
  const SeverityMatrix s1 = all_severities_budgeted(m, in_mem, &report);
  EXPECT_FALSE(report.out_of_core);

  // Budget below the packed view: spill-and-stream, same result.
  OutOfCoreConfig ooc;
  ooc.memory_budget_bytes = packed_view_bytes(m.size()) / 4;
  ooc.tile_dim = 16;
  ooc.spill_path = scratch_path("auto");
  const SeverityMatrix s2 = all_severities_budgeted(m, ooc, &report);
  EXPECT_TRUE(report.out_of_core);
  EXPECT_GT(report.cache.misses, 0u);
  EXPECT_FALSE(std::filesystem::exists(ooc.spill_path));  // spill cleaned up

  for (HostId i = 0; i < m.size(); ++i) {
    for (HostId j = i + 1; j < m.size(); ++j) {
      EXPECT_EQ(s1.at(i, j), reference.at(i, j));
      EXPECT_EQ(s2.at(i, j), reference.at(i, j));
    }
  }

  const double f_in = violating_triangle_fraction_budgeted(m, in_mem);
  const double f_ooc = violating_triangle_fraction_budgeted(m, ooc);
  EXPECT_EQ(f_in, TivAnalyzer(m).violating_triangle_fraction());
  EXPECT_EQ(f_ooc, f_in);
}

TEST(ShardSeverity, TileReadFailurePropagatesAsException) {
  // Tile I/O runs on pool workers, where an escaped exception would
  // terminate the process; the band-pair driver must capture it and
  // rethrow on the calling thread as a catchable error.
  set_parallel_thread_count(2);
  const DelayMatrix m = random_matrix(96, 0.1, 20);
  const std::string path = scratch_path("truncated");
  TileStore::write_matrix(path, m, 16);
  const TileStore store = TileStore::open(path);
  std::filesystem::resize_file(path, 512);  // header survives, tiles gone
  TileCache cache(store, 1u << 20);
  EXPECT_THROW(all_severities_streamed(store, cache), std::runtime_error);
  std::filesystem::remove(path);
  set_parallel_thread_count(0);
}

TEST(TileStore, RepackTileIsByteIdenticalToFreshBuild) {
  // Mutate a few edges (values and missing toggles), repack exactly the
  // dirty hosts' row-band tiles in place, and demand the whole store file
  // equals a from-scratch write_matrix of the mutated matrix byte for byte
  // — tile payloads, masks, and the checksum table included.
  DelayMatrix m = random_matrix(70, 0.3, 21);  // 70 = 4*16 + 6: ragged band
  const std::string path = scratch_path("repack");
  TileStore::write_matrix(path, m, 16);

  Rng rng(99);
  std::vector<std::uint8_t> band_dirty((70 + 15) / 16, 0);
  for (int u = 0; u < 8; ++u) {
    const auto a = static_cast<HostId>(rng.uniform_index(70));
    const auto b = static_cast<HostId>(rng.uniform_index(70));
    if (a == b) continue;
    if (rng.bernoulli(0.3)) {
      m.set_missing(a, b);
    } else {
      m.set(a, b, static_cast<float>(rng.uniform(1.0, 400.0)));
    }
    band_dirty[a / 16] = 1;
    band_dirty[b / 16] = 1;
  }
  {
    auto store = TileStore::open(path, /*writable=*/true);
    EXPECT_TRUE(store.writable());
    for (std::uint32_t r = 0; r < store.tiles_per_side(); ++r) {
      if (!band_dirty[r]) continue;
      for (std::uint32_t c = 0; c < store.tiles_per_side(); ++c) {
        store.repack_tile(m, r, c);
      }
    }
  }
  const std::string fresh_path = scratch_path("repack_fresh");
  TileStore::write_matrix(fresh_path, m, 16);
  std::ifstream repacked(path, std::ios::binary);
  std::ifstream fresh(fresh_path, std::ios::binary);
  const std::vector<char> got((std::istreambuf_iterator<char>(repacked)),
                              std::istreambuf_iterator<char>());
  const std::vector<char> want((std::istreambuf_iterator<char>(fresh)),
                               std::istreambuf_iterator<char>());
  EXPECT_EQ(got, want);
  std::filesystem::remove(path);
  std::filesystem::remove(fresh_path);
}

TEST(TileStore, RepackOnReadOnlyStoreThrows) {
  const DelayMatrix m = random_matrix(16, 0.0, 22);
  const std::string path = scratch_path("repack_ro");
  TileStore::write_matrix(path, m, 16);
  auto store = TileStore::open(path);
  EXPECT_THROW(store.repack_tile(m, 0, 0), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TileStore, CorruptTileIsRejectedLoudly) {
  const DelayMatrix m = random_matrix(37, 0.2, 23);
  const std::string path = scratch_path("checksum");
  TileStore::write_matrix(path, m, 16);
  // Flip one byte inside the last tile's payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(-64, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-64, std::ios::end);
    byte ^= 0x5a;
    f.write(&byte, 1);
  }
  const TileStore store = TileStore::open(path);
  std::vector<float> payload(store.payload_floats());
  std::vector<std::uint64_t> masks(store.mask_words());
  const std::uint32_t last = store.tiles_per_side() - 1;
  EXPECT_THROW(store.read_tile(last, last, payload.data(), masks.data()),
               shard::CorruptTileError);
  // CorruptTileError is still a runtime_error for coarse-grained handlers,
  // and other tiles stay readable.
  EXPECT_THROW(store.read_tile(last, last, payload.data(), masks.data()),
               std::runtime_error);
  store.read_tile(0, 0, payload.data(), masks.data());
  std::filesystem::remove(path);
}

TEST(TileCache, InvalidateDropsResidentTileAndRereadsRepack) {
  DelayMatrix m = random_matrix(32, 0.0, 24);
  const std::string path = scratch_path("invalidate");
  TileStore::write_matrix(path, m, 16);
  auto store = TileStore::open(path, /*writable=*/true);
  TileCache cache(store, 1u << 20);

  { const auto tile = cache.acquire(0, 1); }  // load, then unpin
  m.set(1, 20, 123.0f);  // row 1 (band 0), column 20 (band 1): tile (0, 1)
  store.repack_tile(m, 0, 1);
  cache.invalidate(0, 1);

  auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.current_bytes, 0u);
  cache.invalidate(0, 1);  // absent: a no-op
  EXPECT_EQ(cache.stats().invalidations, 1u);

  const auto tile = cache.acquire(0, 1);  // re-read sees the repacked bytes
  EXPECT_EQ(tile->row(1)[4], 123.0f);     // local (1, 20-16)
  EXPECT_EQ(cache.stats().misses, 2u);
  std::filesystem::remove(path);
}

TEST(TileCache, CountsHitsMissesAndReusesResidentTiles) {
  const DelayMatrix m = random_matrix(64, 0.1, 17);
  const std::string path = scratch_path("cache");
  TileStore::write_matrix(path, m, 16);
  const TileStore store = TileStore::open(path);
  TileCache cache(store, 1u << 20);

  const auto t1 = cache.acquire(0, 0);
  const auto t2 = cache.acquire(0, 0);
  EXPECT_EQ(t1.get(), t2.get());  // same resident tile, no duplicate load
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.current_bytes, store.tile_bytes());

  cache.acquire(1, 2);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.current_bytes, 2 * store.tile_bytes());
  EXPECT_EQ(stats.peak_bytes, 2 * store.tile_bytes());
  std::filesystem::remove(path);
}

TEST(TileCache, EvictsLeastRecentlyUsedButNeverPinned) {
  const DelayMatrix m = random_matrix(64, 0.1, 18);
  const std::string path = scratch_path("evict");
  TileStore::write_matrix(path, m, 16);
  const TileStore store = TileStore::open(path);
  // Room for exactly two resident tiles.
  TileCache cache(store, 2 * store.tile_bytes());

  auto pinned = cache.acquire(0, 0);
  cache.acquire(0, 1);          // unpinned once the ref drops
  cache.acquire(0, 2);          // must evict (0, 1), not the pinned (0, 0)
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.current_bytes, cache.budget_bytes());

  const auto again = cache.acquire(0, 0);
  EXPECT_EQ(again.get(), pinned.get());  // survived eviction: was pinned
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_LE(stats.peak_bytes, cache.budget_bytes());
  std::filesystem::remove(path);
}

TEST(TileCache, PrefetchLoadsInBackground) {
  const DelayMatrix m = random_matrix(64, 0.1, 19);
  const std::string path = scratch_path("prefetch");
  TileStore::write_matrix(path, m, 16);
  const TileStore store = TileStore::open(path);
  TileCache cache(store, 1u << 20);

  cache.prefetch(3, 3);
  // acquire() waits for an in-flight background load of the same tile (or
  // loads it itself if the hint was shed) — either way the tile arrives.
  const auto tile = cache.acquire(3, 3);
  EXPECT_NE(tile.get(), nullptr);
  const DelayMatrixView view(m);
  EXPECT_EQ(tile->row(0)[1], view.row(48)[49]);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tiv::core
