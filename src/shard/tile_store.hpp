// On-disk tiled delay-matrix store — the out-of-core backing for host
// counts whose packed DelayMatrixView no longer fits in memory (the
// ROADMAP's N >= 1e5 target needs ~40 GB per float matrix).
//
// A store is the serialized form of a DelayMatrixView, cut into fixed-size
// square tiles of tile_dim x tile_dim entries (tile_dim a multiple of
// DelayMatrixView::kLaneFloats). Tile (r, c) holds the view entries for
// rows [r*T, r*T + T) x columns [c*T, c*T + T):
//
//   payload  tile_dim rows of tile_dim floats, exactly the view's packed
//            representation: missing entries are kMaskedDelay, the diagonal
//            is 0, rows/columns beyond the matrix edge are kMaskedDelay
//            padding. A loaded tile therefore drops straight into the
//            branch-free witness kernels with no fixup pass.
//   masks    per-row missing-entry bitmasks for the tile's column range:
//            ceil(tile_dim / 64) words per row, bit b set iff global entry
//            (r*T + row, c*T + b) is a usable measurement. Padding bits are
//            zero, so chunked AND+popcount witness counting over tiles sums
//            to the full-row counts.
//
// Payload precedes masks within a tile; with tile_dim % 16 == 0 both
// sections are themselves multiples of 64 bytes, so an aligned in-memory
// destination keeps every payload row cache-line aligned for the SIMD
// kernels.
//
// The file format (header/offset-index/checksum-table layout, FNV-1a
// validation on every read, in-place tile commits, fault-injection hooks)
// is shard::TileFile with a square index shape — shared with the severity
// output store, which differs only in its parameters. This store owns what
// is specific to delay matrices: the tile byte encoding above, write_matrix
// (streaming one tile-row band at a time, O(T*N) memory), and repack_tile —
// the in-place tile repair of the out-of-core streaming engine
// (src/stream/shard_stream), byte-identical to the tile a fresh
// write_matrix of the mutated matrix would produce, mirroring
// DelayMatrixView::repack_row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "delayspace/delay_matrix.hpp"
#include "shard/checksum.hpp"
#include "shard/tile_file.hpp"

namespace tiv::shard {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// Default tile edge: 64 rows x 64 cols x 4 B = 16 KiB payload per tile —
/// large enough that pread cost amortizes, small enough that a few-MB cache
/// budget holds dozens of tiles.
inline constexpr std::uint32_t kDefaultTileDim = 64;

class TileStore {
 public:
  /// Serializes `m` to `path` as a tiled store. tile_dim must be a nonzero
  /// multiple of DelayMatrixView::kLaneFloats (throws std::invalid_argument
  /// otherwise); throws std::runtime_error on I/O failure.
  static void write_matrix(const std::string& path, const DelayMatrix& m,
                           std::uint32_t tile_dim = kDefaultTileDim);

  /// Opens an existing store. Throws std::runtime_error on a missing file
  /// or a malformed/mismatched header — including, when expected_n is
  /// nonzero, a header geometry (n, tile_dim) that differs from what the
  /// caller expects. `writable` opens the file O_RDWR and enables
  /// repack_tile.
  static TileStore open(const std::string& path, bool writable = false,
                        HostId expected_n = 0,
                        std::uint32_t expected_tile_dim = 0);

  TileStore(TileStore&&) noexcept = default;
  TileStore& operator=(TileStore&&) noexcept = default;
  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  HostId size() const { return file_.size(); }
  std::uint32_t tile_dim() const { return file_.tile_dim(); }
  std::uint32_t tiles_per_side() const { return file_.tiles_per_side(); }

  /// Floats in a tile payload (tile_dim^2).
  std::size_t payload_floats() const {
    return static_cast<std::size_t>(tile_dim()) * tile_dim();
  }
  /// Bitmask words per tile row (ceil(tile_dim / 64)).
  std::size_t mask_words_per_row() const { return (tile_dim() + 63) / 64; }
  /// Bitmask words in a whole tile.
  std::size_t mask_words() const {
    return tile_dim() * mask_words_per_row();
  }
  /// Serialized tile size (payload + masks), a multiple of 64 bytes.
  std::size_t tile_bytes() const { return file_.tile_bytes(); }

  /// Rows of tile-row band r that carry real matrix rows (tile_dim except
  /// for the last band).
  std::uint32_t band_rows(std::uint32_t r) const {
    return file_.band_rows(r);
  }

  /// Byte offset of tile (r, c) in the file — for fault-injection
  /// harnesses that damage tiles on disk directly.
  std::uint64_t tile_offset(std::uint32_t r, std::uint32_t c) const {
    return file_.tile_offset(r, c);
  }

  /// Attaches (or detaches, nullptr) a deterministic fault injector to
  /// this store's reads and commits. See shard/fault_injector.hpp.
  void set_fault_injector(FaultInjector* injector) {
    file_.set_fault_injector(injector);
  }
  FaultInjector* fault_injector() const { return file_.fault_injector(); }

  /// Checksum-mismatch re-reads absorbed as transient (see
  /// TileFile::read_retries).
  std::uint64_t read_retries() const { return file_.read_retries(); }

  /// Reads tile (r, c) into caller-provided buffers: payload_floats()
  /// floats and mask_words() words. Thread-safe (positional reads). Throws
  /// std::runtime_error on I/O failure and CorruptTileError when the tile
  /// bytes do not match their stored checksum (or the tile is truncated).
  void read_tile(std::uint32_t r, std::uint32_t c, float* payload,
                 std::uint64_t* masks) const;

  /// Rewrites tile (r, c) in place from `m` (the matrix this store
  /// serialized, same size, mutated since), committing the tile bytes and
  /// its refreshed checksum — byte-identical to the tile a fresh
  /// write_matrix(m) would produce, because both go through
  /// DelayMatrixView::pack_row_segment. Requires a writable open (throws
  /// std::runtime_error otherwise). Not safe concurrently with reads of the
  /// *same* tile; the streaming engine calls it only between epochs, when
  /// no tile refs are outstanding.
  void repack_tile(const DelayMatrix& m, std::uint32_t r, std::uint32_t c);

  bool writable() const { return file_.writable(); }
  const std::string& path() const { return file_.path(); }

 private:
  TileStore() = default;

  TileFile file_;
};

}  // namespace tiv::shard
