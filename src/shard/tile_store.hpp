// On-disk tiled delay-matrix store — the out-of-core backing for host
// counts whose packed DelayMatrixView no longer fits in memory (the
// ROADMAP's N >= 1e5 target needs ~40 GB per float matrix).
//
// A store is the serialized form of a DelayMatrixView, cut into fixed-size
// square tiles of tile_dim x tile_dim entries (tile_dim a multiple of
// DelayMatrixView::kLaneFloats). Tile (r, c) holds the view entries for
// rows [r*T, r*T + T) x columns [c*T, c*T + T):
//
//   payload  tile_dim rows of tile_dim floats, exactly the view's packed
//            representation: missing entries are kMaskedDelay, the diagonal
//            is 0, rows/columns beyond the matrix edge are kMaskedDelay
//            padding. A loaded tile therefore drops straight into the
//            branch-free witness kernels with no fixup pass.
//   masks    per-row missing-entry bitmasks for the tile's column range:
//            ceil(tile_dim / 64) words per row, bit b set iff global entry
//            (r*T + row, c*T + b) is a usable measurement. Padding bits are
//            zero, so chunked AND+popcount witness counting over tiles sums
//            to the full-row counts.
//
// Every tile has the same byte size (edge tiles are padded), so the tile
// index is a flat offset table. File layout (format version 2):
//
//   [header][index: tiles_per_side^2 u64 offsets]
//   [checksums: tiles_per_side^2 u64 FNV-1a][64B pad][tile 0][tile 1]..
//
// Tiles start 64-byte aligned within the file and payload precedes masks
// within a tile; with tile_dim % 16 == 0 both sections are themselves
// multiples of 64 bytes, so an aligned in-memory destination keeps every
// payload row cache-line aligned for the SIMD kernels.
//
// Every tile carries an FNV-1a checksum over its serialized bytes
// (payload then masks), written with the tile and validated on every
// read_tile: corruption surfaces as shard::CorruptTileError instead of
// masked-delay garbage flowing into the witness kernels.
//
// Writing streams one tile-row band of the source matrix at a time (O(T*N)
// memory), so a store can be produced without ever materializing the packed
// view. Reading uses pread(2) and is safe from concurrent threads. A store
// opened writable additionally supports repack_tile — the in-place tile
// repair of the out-of-core streaming engine (src/stream/shard_stream),
// byte-identical to the tile a fresh write_matrix of the mutated matrix
// would produce, mirroring DelayMatrixView::repack_row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "shard/checksum.hpp"

namespace tiv::shard {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// Default tile edge: 64 rows x 64 cols x 4 B = 16 KiB payload per tile —
/// large enough that pread cost amortizes, small enough that a few-MB cache
/// budget holds dozens of tiles.
inline constexpr std::uint32_t kDefaultTileDim = 64;

class TileStore {
 public:
  /// Serializes `m` to `path` as a tiled store. tile_dim must be a nonzero
  /// multiple of DelayMatrixView::kLaneFloats (throws std::invalid_argument
  /// otherwise); throws std::runtime_error on I/O failure.
  static void write_matrix(const std::string& path, const DelayMatrix& m,
                           std::uint32_t tile_dim = kDefaultTileDim);

  /// Opens an existing store. Throws std::runtime_error on a missing file
  /// or a malformed/mismatched header. `writable` opens the file O_RDWR and
  /// enables repack_tile.
  static TileStore open(const std::string& path, bool writable = false);

  TileStore(TileStore&& o) noexcept;
  TileStore& operator=(TileStore&& o) noexcept;
  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;
  ~TileStore();

  HostId size() const { return n_; }
  std::uint32_t tile_dim() const { return tile_dim_; }
  std::uint32_t tiles_per_side() const { return tiles_; }

  /// Floats in a tile payload (tile_dim^2).
  std::size_t payload_floats() const {
    return static_cast<std::size_t>(tile_dim_) * tile_dim_;
  }
  /// Bitmask words per tile row (ceil(tile_dim / 64)).
  std::size_t mask_words_per_row() const { return (tile_dim_ + 63) / 64; }
  /// Bitmask words in a whole tile.
  std::size_t mask_words() const { return tile_dim_ * mask_words_per_row(); }
  /// Serialized tile size (payload + masks), a multiple of 64 bytes.
  std::size_t tile_bytes() const {
    return payload_floats() * sizeof(float) +
           mask_words() * sizeof(std::uint64_t);
  }

  /// Rows of tile-row band r that carry real matrix rows (tile_dim except
  /// for the last band).
  std::uint32_t band_rows(std::uint32_t r) const;

  /// Reads tile (r, c) into caller-provided buffers: payload_floats()
  /// floats and mask_words() words. Thread-safe (positional reads). Throws
  /// std::runtime_error on I/O failure and CorruptTileError when the tile
  /// bytes do not match their stored checksum.
  void read_tile(std::uint32_t r, std::uint32_t c, float* payload,
                 std::uint64_t* masks) const;

  /// Rewrites tile (r, c) in place from `m` (the matrix this store
  /// serialized, same size, mutated since), committing the tile bytes and
  /// its refreshed checksum — byte-identical to the tile a fresh
  /// write_matrix(m) would produce, because both go through
  /// DelayMatrixView::pack_row_segment. Requires a writable open (throws
  /// std::runtime_error otherwise). Not safe concurrently with reads of the
  /// *same* tile; the streaming engine calls it only between epochs, when
  /// no tile refs are outstanding.
  void repack_tile(const DelayMatrix& m, std::uint32_t r, std::uint32_t c);

  bool writable() const { return writable_; }
  const std::string& path() const { return path_; }

 private:
  TileStore() = default;

  std::size_t tile_index(std::uint32_t r, std::uint32_t c) const {
    return static_cast<std::size_t>(r) * tiles_ + c;
  }

  std::string path_;
  int fd_ = -1;
  bool writable_ = false;
  HostId n_ = 0;
  std::uint32_t tile_dim_ = 0;
  std::uint32_t tiles_ = 0;
  std::vector<std::uint64_t> tile_offsets_;    ///< flat index, row-major
  std::vector<std::uint64_t> tile_checksums_;  ///< FNV-1a, same indexing
};

}  // namespace tiv::shard
