// The fixed-record tile-file machinery shared by the two on-disk tile
// stores — shard::TileStore (delay-matrix input, square tile grid) and
// sink::SeverityTileStore (severity output, upper-band-triangle grid).
// One definition of the header/index/checksum-table format, fd lifecycle,
// and read/write+validate paths, so a hardening fix cannot land in one
// store and miss the other. The byte layout is exactly the PR 5 format:
//
//   [RawHeader 40B][index: tile_count u64 offsets]
//   [checksums: tile_count u64 FNV-1a][pad to 64B][tile 0][tile 1]..
//
// Stores differ only in their magic/version, their index shape (square vs
// triangular), their per-tile byte formula, and how a tile's bytes are
// split into sections (payload+masks vs payload only) — all parameters
// here, not copies of the machinery.
//
// Reliability lives at this layer, once for both stores:
//  - every read validates the chained FNV-1a over the tile's sections;
//    a mismatch OR a truncated tile body throws CorruptTileError carrying
//    the tile coordinates and store path (recoverable), while a hard pread
//    failure stays a std::runtime_error (not a data-integrity signal);
//  - an optional FaultInjector perturbs reads/commits deterministically
//    (bit-flip, EIO, torn write, fail-before-checksum) — compiled in
//    always, a single null check when disabled;
//  - open() can assert the header geometry (n, tile_dim) against the
//    geometry the caller expects, so reopening a foreign or stale file
//    fails loudly instead of serving garbage tiles.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "obs/metrics.hpp"
#include "shard/checksum.hpp"

namespace tiv::shard {

class FaultInjector;

using delayspace::HostId;

/// Which (r, c) pairs a store holds: every tile of the square grid, or
/// only the upper band triangle r <= c.
enum class TileIndexShape : std::uint8_t { kSquare, kTriangular };

/// The store-specific constants of a tile-file format. Each store defines
/// one of these (static, constant) and passes it to every TileFile call.
struct TileFileParams {
  const char* magic;   ///< exactly 8 bytes
  std::uint32_t version;
  const char* store_name;  ///< error-message prefix ("TileStore", ...)
  TileIndexShape shape;
  /// Serialized bytes of one tile as a function of tile_dim.
  std::size_t (*tile_bytes)(std::uint32_t tile_dim);
  /// Registry namespace for this store's I/O counters
  /// ("<prefix>.reads", ".read_bytes", ".read_retries", ".corrupt_tiles",
  /// ".writes", ".write_bytes" — see docs/OBSERVABILITY.md).
  const char* metric_prefix = "tile";
};

/// One section of a tile's serialized bytes (payload, masks, ...).
struct TileSection {
  void* data;
  std::size_t bytes;
};
struct ConstTileSection {
  const void* data;
  std::size_t bytes;
};

class TileFile {
 public:
  static std::size_t tile_count_for(TileIndexShape shape,
                                    std::uint32_t tiles) {
    const auto t = static_cast<std::size_t>(tiles);
    return shape == TileIndexShape::kSquare ? t * t : t * (t + 1) / 2;
  }

  /// Streams a new tile file: writes the header, the flat offset index,
  /// a checksum-table placeholder, and the alignment pad, then appends
  /// tiles in index order. finish() seeks back and commits the
  /// accumulated per-tile checksums; finish_sparse() instead records one
  /// uniform checksum for every tile and truncates the tile region into a
  /// hole (the zero-filled-create path). Destroying an unfinished Writer
  /// closes the stream without committing (error-path cleanup is the
  /// caller's concern, as before).
  class Writer {
   public:
    /// Throws std::invalid_argument unless tile_dim is a nonzero multiple
    /// of DelayMatrixView::kLaneFloats; std::runtime_error on I/O failure.
    Writer(const TileFileParams& params, const std::string& path, HostId n,
           std::uint32_t tile_dim);
    ~Writer();
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    std::uint32_t tiles_per_side() const { return tiles_; }
    std::size_t tile_count() const { return checksums_.size(); }
    std::size_t tile_bytes() const { return tile_bytes_; }

    /// Appends the next tile (sections in serialized order) and records
    /// its chained FNV-1a checksum.
    void append_tile(std::initializer_list<ConstTileSection> sections);

    /// Commits the checksums accumulated by append_tile and closes.
    void finish();

    /// Commits `uniform_checksum` for every tile, truncates the file to
    /// its full size (the unwritten tile region preads back as zeros),
    /// and closes.
    void finish_sparse(std::uint64_t uniform_checksum);

   private:
    void commit_checksums_and_close();

    const TileFileParams& params_;
    std::string path_;
    std::FILE* f_ = nullptr;
    std::uint32_t tiles_ = 0;
    std::size_t tile_bytes_ = 0;
    std::uint64_t data_offset_ = 0;
    std::vector<std::uint64_t> checksums_;
    std::size_t appended_ = 0;
  };

  /// Opens an existing tile file and validates its header, offset index,
  /// and checksum table. Throws std::runtime_error on a missing file, a
  /// malformed or foreign header, or — when expected_n is nonzero — a
  /// header geometry (n, tile_dim) that does not match what the caller
  /// requested.
  static TileFile open(const TileFileParams& params, const std::string& path,
                       bool writable, HostId expected_n = 0,
                       std::uint32_t expected_tile_dim = 0);

  TileFile() = default;
  TileFile(TileFile&& o) noexcept;
  TileFile& operator=(TileFile&& o) noexcept;
  TileFile(const TileFile&) = delete;
  TileFile& operator=(const TileFile&) = delete;
  ~TileFile();

  HostId size() const { return n_; }
  std::uint32_t tile_dim() const { return tile_dim_; }
  std::uint32_t tiles_per_side() const { return tiles_; }
  std::size_t tile_count() const { return tile_offsets_.size(); }
  std::size_t tile_bytes() const { return tile_bytes_; }
  bool writable() const { return writable_; }
  const std::string& path() const { return path_; }

  /// Rows of tile-row band r that carry real matrix rows (tile_dim except
  /// for the last band).
  std::uint32_t band_rows(std::uint32_t r) const;

  /// Flat index of tile (r, c) under the file's index shape (requires
  /// r <= c for triangular files).
  std::size_t tile_index(std::uint32_t r, std::uint32_t c) const;

  /// Byte offset of tile (r, c) within the file — stable for the file's
  /// lifetime (fixed-size tiles). Exposed for the fault-injection
  /// harnesses that corrupt tiles on disk directly.
  std::uint64_t tile_offset(std::uint32_t r, std::uint32_t c) const {
    return tile_offsets_[tile_index(r, c)];
  }

  /// Attaches (or detaches, nullptr) a fault injector. The injector must
  /// outlive the file or be detached first; calls are thread-safe.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Reads tile (r, c) into `sections` (serialized order) with positional
  /// reads — thread-safe — and validates the chained FNV-1a checksum. A
  /// mismatch is first retried with a fresh pread (up to kReadRetries
  /// times): a bit flipped in flight — bus/DMA/RAM, or the injector's
  /// read-flip — is gone on the re-read, so only *persistent* damage (rot
  /// on the platter, a torn commit) escalates. Throws CorruptTileError on
  /// a persistent mismatch or a truncated tile body, std::runtime_error on
  /// a hard I/O failure.
  void read_tile(std::uint32_t r, std::uint32_t c,
                 std::initializer_list<TileSection> sections) const;

  /// Extra read attempts after a checksum mismatch before giving up.
  static constexpr int kReadRetries = 2;

  /// Checksum-mismatch re-reads that came back clean — transient (in-
  /// flight) corruption absorbed without escalating.
  std::uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }

  /// Commits tile (r, c) in place: positional writes of `sections`, then
  /// the refreshed checksum into the table slot (disk and memory). Safe
  /// from concurrent threads for distinct tiles. Throws std::runtime_error
  /// on I/O failure or a read-only open.
  void write_tile(std::uint32_t r, std::uint32_t c,
                  std::initializer_list<ConstTileSection> sections);

 private:
  [[noreturn]] void fail(const std::string& what) const;

  const char* store_name_ = "TileFile";
  TileIndexShape shape_ = TileIndexShape::kSquare;
  std::string path_;
  int fd_ = -1;
  bool writable_ = false;
  HostId n_ = 0;
  std::uint32_t tile_dim_ = 0;
  std::uint32_t tiles_ = 0;
  std::size_t tile_bytes_ = 0;
  std::vector<std::uint64_t> tile_offsets_;    ///< flat index
  std::vector<std::uint64_t> tile_checksums_;  ///< FNV-1a, same indexing
  mutable std::atomic<std::uint64_t> read_retries_{0};
  FaultInjector* injector_ = nullptr;

  /// Registry-owned I/O telemetry, resolved once at open() from
  /// TileFileParams::metric_prefix. Pointers because registry metrics have
  /// stable addresses while a TileFile is movable; null on a
  /// default-constructed file (no I/O possible there either).
  struct IoMetrics {
    obs::Counter* reads = nullptr;
    obs::Counter* read_bytes = nullptr;
    obs::Counter* read_retries = nullptr;
    obs::Counter* corrupt_tiles = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* write_bytes = nullptr;
  };
  IoMetrics metrics_;
};

}  // namespace tiv::shard
