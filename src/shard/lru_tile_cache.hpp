// Memory-budgeted, thread-safe LRU tile-cache core shared by the
// delay-matrix input cache (shard::TileCache) and the severity output
// cache (sink::SeverityCache). One definition of the concurrency and
// accounting machinery, so a fix in one cache cannot silently miss the
// other.
//
// Concurrency model: one mutex guards the map/LRU bookkeeping; the
// caller-supplied loader (tile I/O) runs outside it, so distinct tiles
// load in parallel. A thread requesting a tile another thread is already
// loading waits on a condition variable instead of issuing a duplicate
// read (no cache stampede).
//
// Budget accounting counts every resident tile (loaded entries plus
// in-flight loads, whose bytes are reserved before the read starts).
// Eviction walks from the least recently used end, skipping entries pinned
// by an outstanding Ref (use_count > 1) — a pinned tile is never removed
// from the map, so a tile's bytes are released exactly when its entry is
// erased. The hard invariant is therefore: peak bytes <= max(budget,
// largest simultaneous pinned set).
#pragma once

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tiv::shard {

/// Per-instance accounting view. The event counts (hits, misses, ...) are
/// maintained exactly once, as obs registry metrics inside the cache
/// (docs/OBSERVABILITY.md) — this struct is the compatibility shim stats()
/// fills from them, so existing callers keep working. Note the counts read
/// zero under TIV_OBS_DISABLE; the byte accounting (current/peak) is
/// functional state (it drives eviction) and is always live.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;       ///< tiles loaded from disk (incl. prefetch)
  std::size_t evictions = 0;
  std::size_t invalidations = 0;  ///< resident tiles dropped by invalidate()
  std::size_t peak_bytes = 0;   ///< high-water mark of live tile bytes
  std::size_t current_bytes = 0;
  std::size_t prefetch_drops = 0;  ///< hints shed by the background queue

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename TileT>
class LruTileCache {
 public:
  using Ref = std::shared_ptr<const TileT>;

  /// `metric_prefix`, when given, links this instance's counters into the
  /// process metrics registry under "<prefix>.hits", ".misses",
  /// ".evictions", ".invalidations", ".current_bytes" (summed across live
  /// instances) and ".peak_bytes" (max). Unnamed caches still count, just
  /// unregistered.
  LruTileCache(std::size_t budget_bytes, std::size_t tile_footprint,
               const char* metric_prefix = nullptr)
      : budget_(budget_bytes), tile_footprint_(tile_footprint) {
    if (metric_prefix != nullptr) link_metrics(metric_prefix);
  }

  LruTileCache(const LruTileCache&) = delete;
  LruTileCache& operator=(const LruTileCache&) = delete;

  /// Returns the tile under `key`, invoking `loader()` (unlocked, may
  /// throw) to produce it on a miss. Thread-safe; blocks only while
  /// another thread is loading the same key.
  template <typename Loader>
  Ref acquire(std::uint64_t key, Loader&& loader) {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      auto it = map_.find(key);
      if (it == map_.end()) {
        return load_and_publish(key, loader, lk);
      }
      if (!it->second.loading) {
        hits_.increment();
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
        return it->second.tile;
      }
      // Another thread is reading this tile; wait for it rather than
      // duplicating the I/O. If its load failed the entry vanishes and
      // the loop retries as a fresh miss.
      loaded_cv_.wait(lk);
    }
  }

  /// Drops `key` so the next acquire re-loads it — the coherence hook
  /// after an in-place tile rewrite. Waits for an in-flight load of the
  /// key to finish (a stale read racing the rewrite must not be published
  /// past this call). Precondition: no outstanding Ref pins the tile.
  void invalidate(std::uint64_t key) {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      auto it = map_.find(key);
      if (it == map_.end()) return;
      if (it->second.loading) {
        loaded_cv_.wait(lk);
        continue;
      }
      assert(it->second.tile.use_count() == 1 &&
             "invalidating a pinned tile");
      lru_.erase(it->second.lru);
      map_.erase(it);
      current_bytes_ -= tile_footprint_;
      invalidations_.increment();
      return;
    }
  }

  /// True when `key` is resident or loading (the prefetch dedup check).
  bool contains(std::uint64_t key) const {
    std::lock_guard<std::mutex> lk(mutex_);
    return map_.count(key) != 0;
  }

  std::size_t budget_bytes() const { return budget_; }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    s.invalidations = invalidations_.value();
    std::lock_guard<std::mutex> lk(mutex_);
    s.current_bytes = current_bytes_;
    s.peak_bytes = peak_bytes_;
    return s;
  }

 private:
  struct Entry {
    Ref tile;  ///< null while loading
    bool loading = false;
    std::list<std::uint64_t>::iterator lru;  ///< valid once loaded
  };

  template <typename Loader>
  Ref load_and_publish(std::uint64_t key, Loader& loader,
                       std::unique_lock<std::mutex>& lk) {
    misses_.increment();
    evict_for_locked(tile_footprint_);
    // Reserve the bytes before dropping the lock so concurrent loaders see
    // each other's in-flight tiles in the accounting.
    current_bytes_ += tile_footprint_;
    peak_bytes_ = std::max(peak_bytes_, current_bytes_);
    // Keep a reference, not the iterator: concurrent emplaces during the
    // unlocked I/O below may rehash the map, which invalidates iterators
    // but never references, and only this thread erases entry `key`.
    Entry& entry =
        map_.emplace(key, Entry{nullptr, true, lru_.end()}).first->second;
    lk.unlock();

    Ref tile;
    try {
      tile = loader();
    } catch (...) {
      lk.lock();
      current_bytes_ -= tile_footprint_;
      map_.erase(key);
      loaded_cv_.notify_all();
      throw;
    }

    lk.lock();
    entry.tile = tile;
    entry.loading = false;
    lru_.push_front(key);
    entry.lru = lru_.begin();
    loaded_cv_.notify_all();
    return tile;
  }

  void evict_for_locked(std::size_t incoming_bytes) {
    // Walk from least recently used, skipping pinned tiles (a Ref beyond
    // the map's own keeps use_count > 1). Loading placeholders are not in
    // lru_ and so are never considered.
    auto it = lru_.end();
    while (current_bytes_ + incoming_bytes > budget_ &&
           it != lru_.begin()) {
      --it;
      auto mit = map_.find(*it);
      if (mit->second.tile.use_count() > 1) continue;  // pinned
      mit->second.tile.reset();  // frees the tile (sole owner)
      map_.erase(mit);
      it = lru_.erase(it);
      current_bytes_ -= tile_footprint_;
      evictions_.increment();
    }
  }

  void link_metrics(const char* prefix) {
    auto& reg = obs::MetricsRegistry::instance();
    using Agg = obs::MetricsRegistry::Agg;
    const std::string p(prefix);
    links_.reserve(6);
    links_.push_back(reg.link(p + ".hits", Agg::kSum,
                              [this] { return hits_.value(); }));
    links_.push_back(reg.link(p + ".misses", Agg::kSum,
                              [this] { return misses_.value(); }));
    links_.push_back(reg.link(p + ".evictions", Agg::kSum,
                              [this] { return evictions_.value(); }));
    links_.push_back(reg.link(p + ".invalidations", Agg::kSum,
                              [this] { return invalidations_.value(); }));
    // Byte levels: current sums live instances only (a destroyed cache
    // holds nothing), peak is the process-wide high-water mark.
    links_.push_back(reg.link(
        p + ".current_bytes", Agg::kSum,
        [this] {
          std::lock_guard<std::mutex> lk(mutex_);
          return static_cast<std::uint64_t>(current_bytes_);
        },
        /*retain_on_unlink=*/false));
    links_.push_back(reg.link(p + ".peak_bytes", Agg::kMax, [this] {
      std::lock_guard<std::mutex> lk(mutex_);
      return static_cast<std::uint64_t>(peak_bytes_);
    }));
  }

  const std::size_t budget_;
  const std::size_t tile_footprint_;  ///< bytes one resident tile accounts

  mutable std::mutex mutex_;
  std::condition_variable loaded_cv_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used

  // Event counts: obs registry metrics, the single point of maintenance
  // (CacheStats is a view — see stats()). Byte accounting stays plain
  // mutex-guarded state because eviction decisions read it.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter invalidations_;
  std::size_t current_bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::vector<obs::MetricsRegistry::Link> links_;
};

}  // namespace tiv::shard
