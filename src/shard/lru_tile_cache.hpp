// Memory-budgeted, thread-safe LRU tile-cache core shared by the
// delay-matrix input cache (shard::TileCache) and the severity output
// cache (sink::SeverityCache). One definition of the concurrency and
// accounting machinery, so a fix in one cache cannot silently miss the
// other.
//
// Concurrency model: one mutex guards the map/LRU bookkeeping; the
// caller-supplied loader (tile I/O) runs outside it, so distinct tiles
// load in parallel. A thread requesting a tile another thread is already
// loading waits on a condition variable instead of issuing a duplicate
// read (no cache stampede).
//
// Budget accounting counts every resident tile (loaded entries plus
// in-flight loads, whose bytes are reserved before the read starts).
// Eviction walks from the least recently used end, skipping entries pinned
// by an outstanding Ref (use_count > 1) — a pinned tile is never removed
// from the map, so a tile's bytes are released exactly when its entry is
// erased. The hard invariant is therefore: peak bytes <= max(budget,
// largest simultaneous pinned set).
#pragma once

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace tiv::shard {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;       ///< tiles loaded from disk (incl. prefetch)
  std::size_t evictions = 0;
  std::size_t invalidations = 0;  ///< resident tiles dropped by invalidate()
  std::size_t peak_bytes = 0;   ///< high-water mark of live tile bytes
  std::size_t current_bytes = 0;
  std::size_t prefetch_drops = 0;  ///< hints shed by the background queue

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename TileT>
class LruTileCache {
 public:
  using Ref = std::shared_ptr<const TileT>;

  LruTileCache(std::size_t budget_bytes, std::size_t tile_footprint)
      : budget_(budget_bytes), tile_footprint_(tile_footprint) {}

  LruTileCache(const LruTileCache&) = delete;
  LruTileCache& operator=(const LruTileCache&) = delete;

  /// Returns the tile under `key`, invoking `loader()` (unlocked, may
  /// throw) to produce it on a miss. Thread-safe; blocks only while
  /// another thread is loading the same key.
  template <typename Loader>
  Ref acquire(std::uint64_t key, Loader&& loader) {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      auto it = map_.find(key);
      if (it == map_.end()) {
        return load_and_publish(key, loader, lk);
      }
      if (!it->second.loading) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
        return it->second.tile;
      }
      // Another thread is reading this tile; wait for it rather than
      // duplicating the I/O. If its load failed the entry vanishes and
      // the loop retries as a fresh miss.
      loaded_cv_.wait(lk);
    }
  }

  /// Drops `key` so the next acquire re-loads it — the coherence hook
  /// after an in-place tile rewrite. Waits for an in-flight load of the
  /// key to finish (a stale read racing the rewrite must not be published
  /// past this call). Precondition: no outstanding Ref pins the tile.
  void invalidate(std::uint64_t key) {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      auto it = map_.find(key);
      if (it == map_.end()) return;
      if (it->second.loading) {
        loaded_cv_.wait(lk);
        continue;
      }
      assert(it->second.tile.use_count() == 1 &&
             "invalidating a pinned tile");
      lru_.erase(it->second.lru);
      map_.erase(it);
      stats_.current_bytes -= tile_footprint_;
      ++stats_.invalidations;
      return;
    }
  }

  /// True when `key` is resident or loading (the prefetch dedup check).
  bool contains(std::uint64_t key) const {
    std::lock_guard<std::mutex> lk(mutex_);
    return map_.count(key) != 0;
  }

  std::size_t budget_bytes() const { return budget_; }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    Ref tile;  ///< null while loading
    bool loading = false;
    std::list<std::uint64_t>::iterator lru;  ///< valid once loaded
  };

  template <typename Loader>
  Ref load_and_publish(std::uint64_t key, Loader& loader,
                       std::unique_lock<std::mutex>& lk) {
    ++stats_.misses;
    evict_for_locked(tile_footprint_);
    // Reserve the bytes before dropping the lock so concurrent loaders see
    // each other's in-flight tiles in the accounting.
    stats_.current_bytes += tile_footprint_;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.current_bytes);
    // Keep a reference, not the iterator: concurrent emplaces during the
    // unlocked I/O below may rehash the map, which invalidates iterators
    // but never references, and only this thread erases entry `key`.
    Entry& entry =
        map_.emplace(key, Entry{nullptr, true, lru_.end()}).first->second;
    lk.unlock();

    Ref tile;
    try {
      tile = loader();
    } catch (...) {
      lk.lock();
      stats_.current_bytes -= tile_footprint_;
      map_.erase(key);
      loaded_cv_.notify_all();
      throw;
    }

    lk.lock();
    entry.tile = tile;
    entry.loading = false;
    lru_.push_front(key);
    entry.lru = lru_.begin();
    loaded_cv_.notify_all();
    return tile;
  }

  void evict_for_locked(std::size_t incoming_bytes) {
    // Walk from least recently used, skipping pinned tiles (a Ref beyond
    // the map's own keeps use_count > 1). Loading placeholders are not in
    // lru_ and so are never considered.
    auto it = lru_.end();
    while (stats_.current_bytes + incoming_bytes > budget_ &&
           it != lru_.begin()) {
      --it;
      auto mit = map_.find(*it);
      if (mit->second.tile.use_count() > 1) continue;  // pinned
      mit->second.tile.reset();  // frees the tile (sole owner)
      map_.erase(mit);
      it = lru_.erase(it);
      stats_.current_bytes -= tile_footprint_;
      ++stats_.evictions;
    }
  }

  const std::size_t budget_;
  const std::size_t tile_footprint_;  ///< bytes one resident tile accounts

  mutable std::mutex mutex_;
  std::condition_variable loaded_cv_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  CacheStats stats_;
};

}  // namespace tiv::shard
