// Deterministic, seedable storage-fault injection for the tile stores.
//
// A FaultInjector attaches to one tile file (TileStore or
// SeverityTileStore, via set_fault_injector) and perturbs its I/O at the
// shared TileFile layer, so both stores exercise exactly the code paths
// real hardware faults would take:
//
//   bit-flip on read    one bit of the just-read tile bytes is flipped
//                       BEFORE checksum validation — the read surfaces as
//                       CorruptTileError, exactly like on-disk bit rot
//                       (the disk itself is untouched; a retry may succeed)
//   EIO on read         the pread is never issued; the read throws
//                       InjectedIoError (a std::runtime_error), the same
//                       path a failing device takes
//   torn write          a commit persists only a prefix of the tile bytes,
//                       leaves the old checksum, and throws InjectedCrash —
//                       the on-disk tile is now genuinely corrupt, as after
//                       a power cut mid-pwrite
//   fail on commit      the tile bytes land but the checksum slot is never
//                       written, and InjectedCrash is thrown — the other
//                       half of the torn-commit window
//
// The injector is compiled in always and zero-cost when absent: the hook
// sites are a single `injector_ == nullptr` test. Decisions are
// deterministic functions of (seed, per-injector operation counter), so a
// single-threaded replay reproduces the exact fault sequence; under the
// pool the counters are atomic and rates hold even though interleaving
// varies. Counters of injected faults are exposed via stats(), and the
// recovery layers report what they healed — the two sides of every
// fault-injection assertion in tests/test_fault_recovery.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace tiv::shard {

/// A simulated device error (EIO): distinct from CorruptTileError — the
/// bytes were never read, nothing to validate — but still a runtime_error
/// for coarse handlers.
struct InjectedIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A simulated process kill mid-commit. Thrown after the injector has
/// already left the on-disk state torn; test/bench harnesses catch it,
/// abandon the engine, and exercise the reopen-and-recover path.
struct InjectedCrash : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What a write hook tells TileFile to do with the pending commit.
enum class WriteFault : std::uint8_t {
  kNone,
  kTornWrite,          ///< persist a prefix of the tile bytes, then crash
  kFailBeforeChecksum  ///< persist the tile bytes, skip the checksum, crash
};

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;
    /// Every k-th read_tile has one bit flipped (0 = off). Deterministic —
    /// the soak tests' "bit-flip every k-th read" mode.
    std::uint32_t bitflip_every_kth_read = 0;
    /// Independent per-read bit-flip probability (0 = off).
    double bitflip_read_rate = 0.0;
    /// Independent per-read probability of a simulated EIO (0 = off).
    double eio_read_rate = 0.0;
    /// 1-based ordinal of the tile commit that is torn (0 = off).
    std::uint32_t torn_write_at_commit = 0;
    /// 1-based ordinal of the tile commit that dies before its checksum
    /// lands (0 = off).
    std::uint32_t fail_at_commit = 0;
  };

  struct Stats {
    std::size_t reads = 0;         ///< read_tile calls seen
    std::size_t writes = 0;        ///< write_tile calls seen
    std::size_t bitflips = 0;      ///< reads corrupted in flight
    std::size_t eio_errors = 0;    ///< reads failed as InjectedIoError
    std::size_t torn_writes = 0;   ///< commits torn mid-tile
    std::size_t commit_fails = 0;  ///< commits killed before the checksum
  };

  explicit FaultInjector(const Config& config) : config_(config) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- hooks (called by TileFile; thread-safe) -----------------------------

  /// Before the pread: may throw InjectedIoError.
  void before_read();

  /// After the pread, before checksum validation: decides whether this
  /// read's bytes get one bit flipped. When it returns true, *byte_index
  /// (in [0, tile_bytes), over the tile's serialized byte order) and *bit
  /// name the flip; TileFile applies it to the right section buffer.
  bool corrupt_read(std::size_t tile_bytes, std::size_t* byte_index,
                    unsigned* bit);

  /// Before a tile commit: what TileFile should do with it.
  WriteFault on_write();

  Stats stats() const;

 private:
  /// splitmix64 of (seed, n) — one uniform u64 per decision, so fault
  /// placement is a pure function of the operation ordinal.
  std::uint64_t mix(std::uint64_t n) const;

  Config config_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bitflips_{0};
  std::atomic<std::uint64_t> eio_errors_{0};
  std::atomic<std::uint64_t> torn_writes_{0};
  std::atomic<std::uint64_t> commit_fails_{0};
};

}  // namespace tiv::shard
