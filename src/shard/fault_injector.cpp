#include "shard/fault_injector.hpp"

#include "obs/metrics.hpp"

namespace tiv::shard {
namespace {

// Injection telemetry: process-wide counts across all injectors, so a soak
// run's metrics snapshot shows what was thrown at the storage layer
// alongside what the recovery layer absorbed. Per-instance counts stay in
// FaultInjector::stats().
obs::Counter& injected(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}
obs::Counter& injected_bitflips() {
  static obs::Counter& c = injected("fault.injected_bitflips");
  return c;
}
obs::Counter& injected_eio() {
  static obs::Counter& c = injected("fault.injected_eio");
  return c;
}
obs::Counter& injected_torn_writes() {
  static obs::Counter& c = injected("fault.injected_torn_writes");
  return c;
}
obs::Counter& injected_commit_fails() {
  static obs::Counter& c = injected("fault.injected_commit_fails");
  return c;
}

/// splitmix64 finalizer — the standard 64-bit avalanche.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t FaultInjector::mix(std::uint64_t n) const {
  return splitmix64(config_.seed ^ splitmix64(n));
}

void FaultInjector::before_read() {
  const std::uint64_t n = reads_.fetch_add(1, std::memory_order_relaxed);
  if (config_.eio_read_rate > 0.0 &&
      to_unit(mix(n ^ 0xe10ull)) < config_.eio_read_rate) {
    eio_errors_.fetch_add(1, std::memory_order_relaxed);
    injected_eio().increment();
    throw InjectedIoError("FaultInjector: injected EIO on tile read");
  }
}

bool FaultInjector::corrupt_read(std::size_t tile_bytes,
                                 std::size_t* byte_index, unsigned* bit) {
  if (tile_bytes == 0) return false;
  // reads_ was already bumped by before_read; the ordinal of THIS read is
  // the pre-bump value, recovered without a second counter.
  const std::uint64_t n = reads_.load(std::memory_order_relaxed) - 1;
  bool flip = false;
  if (config_.bitflip_every_kth_read > 0) {
    flip = (n + 1) % config_.bitflip_every_kth_read == 0;
  }
  if (!flip && config_.bitflip_read_rate > 0.0) {
    flip = to_unit(mix(n ^ 0xf11ull)) < config_.bitflip_read_rate;
  }
  if (!flip) return false;
  const std::uint64_t h = mix(n ^ 0x0b17ull);
  *byte_index = static_cast<std::size_t>(h % tile_bytes);
  *bit = static_cast<unsigned>((h >> 32) & 7);
  bitflips_.fetch_add(1, std::memory_order_relaxed);
  injected_bitflips().increment();
  return true;
}

WriteFault FaultInjector::on_write() {
  const std::uint64_t n = writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.torn_write_at_commit != 0 &&
      n == config_.torn_write_at_commit) {
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    injected_torn_writes().increment();
    return WriteFault::kTornWrite;
  }
  if (config_.fail_at_commit != 0 && n == config_.fail_at_commit) {
    commit_fails_.fetch_add(1, std::memory_order_relaxed);
    injected_commit_fails().increment();
    return WriteFault::kFailBeforeChecksum;
  }
  return WriteFault::kNone;
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bitflips = bitflips_.load(std::memory_order_relaxed);
  s.eio_errors = eio_errors_.load(std::memory_order_relaxed);
  s.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  s.commit_fails = commit_fails_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tiv::shard
