// Tile payload checksumming shared by the on-disk tile stores
// (shard::TileStore for delay-matrix input, sink::SeverityTileStore for
// severity output).
//
// FNV-1a (64-bit) over the serialized tile bytes: cheap enough to run on
// every tile read, strong enough that a torn write, bit rot, or a foreign
// file fails loudly as CorruptTileError instead of feeding garbage delays
// or severities into the analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tiv::shard {

/// A tile whose stored checksum does not match its payload — the
/// distinct error path for on-disk corruption, as opposed to the plain
/// std::runtime_error used for I/O failures (short reads, missing files).
struct CorruptTileError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds `bytes` bytes into a running FNV-1a hash. Chain calls over the
/// sections of one tile (payload, then masks) by passing the previous
/// return value as `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace tiv::shard
