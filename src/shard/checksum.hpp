// Tile payload checksumming shared by the on-disk tile stores
// (shard::TileStore for delay-matrix input, sink::SeverityTileStore for
// severity output).
//
// FNV-1a (64-bit) over the serialized tile bytes: cheap enough to run on
// every tile read, strong enough that a torn write, bit rot, or a foreign
// file fails loudly as CorruptTileError instead of feeding garbage delays
// or severities into the analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace tiv::shard {

/// A tile whose stored bytes cannot be trusted — checksum mismatch or a
/// truncated tile body — as opposed to the plain std::runtime_error used
/// for hard I/O failures (pread errno, missing files). Carries the tile
/// coordinates and the store path so a recovery layer (the self-healing
/// hooks in stream::ShardStreamEngine) can rebuild exactly the damaged
/// tile instead of giving up on the whole store.
class CorruptTileError : public std::runtime_error {
 public:
  CorruptTileError(const std::string& store_name, std::string store_path,
                   std::uint32_t r, std::uint32_t c, const std::string& why)
      : std::runtime_error(store_name + ": tile (" + std::to_string(r) +
                           ", " + std::to_string(c) + ") " + why + ": " +
                           store_path),
        path_(std::move(store_path)),
        r_(r),
        c_(c) {}

  /// Path of the store file holding the damaged tile — how a handler
  /// watching several stores tells input corruption from sink corruption.
  const std::string& path() const { return path_; }
  std::uint32_t tile_row() const { return r_; }
  std::uint32_t tile_col() const { return c_; }

 private:
  std::string path_;
  std::uint32_t r_;
  std::uint32_t c_;
};

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds `bytes` bytes into a running FNV-1a hash. Chain calls over the
/// sections of one tile (payload, then masks) by passing the previous
/// return value as `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace tiv::shard
