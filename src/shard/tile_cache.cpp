#include "shard/tile_cache.hpp"

#include <new>
#include <utility>

namespace tiv::shard {

Tile::Tile(std::uint32_t tile_dim, std::size_t payload_floats,
           std::size_t mask_words)
    : tile_dim_(tile_dim),
      words_per_row_((tile_dim + 63) / 64),
      payload_(static_cast<float*>(
          ::operator new[](payload_floats * sizeof(float), kAlignVal))),
      masks_(mask_words, 0) {}

TileCache::TileCache(const TileStore& store, std::size_t budget_bytes)
    : store_(store),
      // Footprint charged per resident tile: the serialized size. The
      // in-memory layout is identical (payload + mask words); allocator
      // slack is not modeled.
      cache_(budget_bytes, store.tile_bytes(), "cache.input"),
      drops_link_(obs::MetricsRegistry::instance().link(
          "cache.input.prefetch_drops", obs::MetricsRegistry::Agg::kSum,
          [this] { return prefetcher_.dropped(); })) {}

TileRef TileCache::acquire(std::uint32_t r, std::uint32_t c) {
  return cache_.acquire(key(r, c), [&]() -> TileRef {
    auto fresh = std::make_shared<Tile>(store_.tile_dim(),
                                        store_.payload_floats(),
                                        store_.mask_words());
    store_.read_tile(r, c, fresh->payload(), fresh->masks());
    return fresh;
  });
}

void TileCache::prefetch(std::uint32_t r, std::uint32_t c) {
  if (cache_.contains(key(r, c))) return;  // resident or already loading
  // acquire() on the I/O thread loads the tile and parks it in the map; the
  // returned pin is dropped immediately. A failed load is swallowed — a
  // prefetch is a hint, and the demand-path acquire() will surface the
  // error if it persists (an uncaught throw here would terminate, since
  // the queue's worker thread has no handler).
  prefetcher_.enqueue([this, r, c] {
    try {
      acquire(r, c);
    } catch (...) {
    }
  });
}

CacheStats TileCache::stats() const {
  CacheStats s = cache_.stats();
  s.prefetch_drops = prefetcher_.dropped();
  return s;
}

}  // namespace tiv::shard
