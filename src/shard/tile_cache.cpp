#include "shard/tile_cache.hpp"

#include <algorithm>
#include <new>
#include <utility>
#include <vector>

namespace tiv::shard {

Tile::Tile(std::uint32_t tile_dim, std::size_t payload_floats,
           std::size_t mask_words)
    : tile_dim_(tile_dim),
      words_per_row_((tile_dim + 63) / 64),
      payload_(static_cast<float*>(
          ::operator new[](payload_floats * sizeof(float), kAlignVal))),
      masks_(mask_words, 0) {}

TileCache::TileCache(const TileStore& store, std::size_t budget_bytes)
    : store_(store),
      budget_(budget_bytes),
      // Footprint charged per resident tile: the serialized size. The
      // in-memory layout is identical (payload + mask words); allocator
      // slack is not modeled.
      tile_footprint_(store.tile_bytes()) {}

TileRef TileCache::acquire(std::uint32_t r, std::uint32_t c) {
  const std::uint64_t k = key(r, c);
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    auto it = map_.find(k);
    if (it == map_.end()) {
      return load_and_publish(k, r, c, lk);
    }
    if (!it->second.loading) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.tile;
    }
    // Another thread is reading this tile from disk; wait for it rather
    // than duplicating the I/O. If its load failed the entry vanishes and
    // the loop retries as a fresh miss.
    loaded_cv_.wait(lk);
  }
}

TileRef TileCache::load_and_publish(std::uint64_t k, std::uint32_t r,
                                    std::uint32_t c,
                                    std::unique_lock<std::mutex>& lk) {
  ++stats_.misses;
  evict_for_locked(tile_footprint_);
  // Reserve the bytes before dropping the lock so concurrent loaders see
  // each other's in-flight tiles in the accounting.
  stats_.current_bytes += tile_footprint_;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.current_bytes);
  // Keep a reference, not the iterator: concurrent emplaces during the
  // unlocked I/O below may rehash the map, which invalidates iterators but
  // never references, and only this thread erases entry k.
  Entry& entry = map_.emplace(k, Entry{nullptr, true, lru_.end()})
                     .first->second;
  lk.unlock();

  TileRef tile;
  try {
    auto fresh = std::make_shared<Tile>(store_.tile_dim(),
                                        store_.payload_floats(),
                                        store_.mask_words());
    store_.read_tile(r, c, fresh->payload(), fresh->masks());
    tile = std::move(fresh);
  } catch (...) {
    lk.lock();
    stats_.current_bytes -= tile_footprint_;
    map_.erase(k);
    loaded_cv_.notify_all();
    throw;
  }

  lk.lock();
  entry.tile = tile;
  entry.loading = false;
  lru_.push_front(k);
  entry.lru = lru_.begin();
  loaded_cv_.notify_all();
  return tile;
}

void TileCache::evict_for_locked(std::size_t incoming_bytes) {
  // Walk from least recently used, skipping pinned tiles (a TileRef beyond
  // the map's own keeps use_count > 1). Loading placeholders are not in
  // lru_ and so are never considered.
  auto it = lru_.end();
  while (stats_.current_bytes + incoming_bytes > budget_ &&
         it != lru_.begin()) {
    --it;
    auto mit = map_.find(*it);
    if (mit->second.tile.use_count() > 1) continue;  // pinned
    mit->second.tile.reset();  // frees the tile (sole owner)
    map_.erase(mit);
    it = lru_.erase(it);
    stats_.current_bytes -= tile_footprint_;
    ++stats_.evictions;
  }
}

void TileCache::prefetch(std::uint32_t r, std::uint32_t c) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (map_.count(key(r, c)) != 0) return;  // resident or already loading
  }
  // acquire() on the I/O thread loads the tile and parks it in the map; the
  // returned pin is dropped immediately. A failed load is swallowed — a
  // prefetch is a hint, and the demand-path acquire() will surface the
  // error if it persists (an uncaught throw here would terminate, since
  // the queue's worker thread has no handler).
  prefetcher_.enqueue([this, r, c] {
    try {
      acquire(r, c);
    } catch (...) {
    }
  });
}

CacheStats TileCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  CacheStats s = stats_;
  s.prefetch_drops = prefetcher_.dropped();
  return s;
}

}  // namespace tiv::shard
