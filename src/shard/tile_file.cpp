#include "shard/tile_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "shard/fault_injector.hpp"

namespace tiv::shard {
namespace {

using delayspace::DelayMatrixView;

constexpr std::size_t kAlign = 64;

// Fixed-width, padding-free on-disk header (40 bytes) — the PR 5 layout,
// shared verbatim by both stores (they differ only in magic/version).
struct RawHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n;
  std::uint32_t tile_dim;
  std::uint32_t tiles;
  std::uint64_t tile_bytes;
  std::uint64_t data_offset;
};
static_assert(sizeof(RawHeader) == 40);

[[noreturn]] void fail_for(const char* store_name, const std::string& what,
                           const std::string& path) {
  throw std::runtime_error(std::string(store_name) + ": " + what + ": " +
                           path);
}

void fwrite_all(const void* data, std::size_t bytes, std::FILE* f,
                const char* store_name, const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    fail_for(store_name, "write failed", path);
  }
}

std::size_t checksum_table_offset(std::size_t tile_count) {
  return sizeof(RawHeader) + tile_count * sizeof(std::uint64_t);
}

std::uint64_t data_offset_for(std::size_t tile_count) {
  const std::size_t tables_end =
      checksum_table_offset(tile_count) + tile_count * sizeof(std::uint64_t);
  return (tables_end + kAlign - 1) / kAlign * kAlign;
}

}  // namespace

// --- Writer -----------------------------------------------------------------

TileFile::Writer::Writer(const TileFileParams& params,
                         const std::string& path, HostId n,
                         std::uint32_t tile_dim)
    : params_(params), path_(path) {
  if (tile_dim == 0 || tile_dim % DelayMatrixView::kLaneFloats != 0) {
    throw std::invalid_argument(
        std::string(params.store_name) +
        ": tile_dim must be a nonzero multiple of " +
        std::to_string(DelayMatrixView::kLaneFloats));
  }
  tiles_ = (n + tile_dim - 1) / tile_dim;
  tile_bytes_ = params.tile_bytes(tile_dim);
  const std::size_t count = tile_count_for(params.shape, tiles_);
  checksums_.assign(count, 0);
  data_offset_ = data_offset_for(count);

  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    fail_for(params.store_name, "cannot open for writing", path);
  }

  RawHeader h{};
  std::memcpy(h.magic, params.magic, sizeof(h.magic));
  h.version = params.version;
  h.n = n;
  h.tile_dim = tile_dim;
  h.tiles = tiles_;
  h.tile_bytes = tile_bytes_;
  h.data_offset = data_offset_;
  fwrite_all(&h, sizeof(h), f_, params.store_name, path_);

  std::vector<std::uint64_t> offsets(count);
  for (std::size_t t = 0; t < count; ++t) {
    offsets[t] = data_offset_ + t * tile_bytes_;
  }
  const std::size_t index_bytes = count * sizeof(std::uint64_t);
  if (count != 0) {
    fwrite_all(offsets.data(), index_bytes, f_, params.store_name, path_);
    // Checksum-table placeholder: per-tile hashes accumulate as tiles are
    // appended and are committed with one seek-back by finish().
    fwrite_all(checksums_.data(), index_bytes, f_, params.store_name, path_);
  }
  const std::vector<char> pad(
      data_offset_ - sizeof(RawHeader) - 2 * index_bytes, 0);
  if (!pad.empty()) {
    fwrite_all(pad.data(), pad.size(), f_, params.store_name, path_);
  }
}

TileFile::Writer::~Writer() {
  if (f_ != nullptr) std::fclose(f_);  // unfinished: abandon, no commit
}

void TileFile::Writer::append_tile(
    std::initializer_list<ConstTileSection> sections) {
  assert(appended_ < checksums_.size());
  std::uint64_t h = kFnvOffsetBasis;
  std::size_t bytes = 0;
  for (const ConstTileSection& s : sections) {
    fwrite_all(s.data, s.bytes, f_, params_.store_name, path_);
    h = fnv1a(s.data, s.bytes, h);
    bytes += s.bytes;
  }
  assert(bytes == tile_bytes_);
  checksums_[appended_++] = h;
}

void TileFile::Writer::commit_checksums_and_close() {
  if (!checksums_.empty()) {
    if (std::fseek(f_,
                   static_cast<long>(checksum_table_offset(checksums_.size())),
                   SEEK_SET) != 0) {
      fail_for(params_.store_name, "seek to checksum table failed", path_);
    }
    fwrite_all(checksums_.data(),
               checksums_.size() * sizeof(std::uint64_t), f_,
               params_.store_name, path_);
  }
  std::FILE* f = std::exchange(f_, nullptr);
  if (std::fclose(f) != 0) {
    fail_for(params_.store_name, "close failed", path_);
  }
}

void TileFile::Writer::finish() {
  assert(appended_ == checksums_.size());
  commit_checksums_and_close();
}

void TileFile::Writer::finish_sparse(std::uint64_t uniform_checksum) {
  assert(appended_ == 0);
  checksums_.assign(checksums_.size(), uniform_checksum);
  // The tile region becomes a hole, not tile_count physical zero writes
  // (~20 GB at the N >= 1e5 target): holes pread back as zeros, which is
  // exactly what `uniform_checksum` describes, so read behavior is
  // byte-identical while blocks materialize only as tiles are committed.
  if (std::fflush(f_) != 0) {
    fail_for(params_.store_name, "flush failed", path_);
  }
  if (::ftruncate(::fileno(f_),
                  static_cast<off_t>(data_offset_ +
                                     checksums_.size() * tile_bytes_)) != 0) {
    fail_for(params_.store_name, "truncate failed", path_);
  }
  commit_checksums_and_close();
}

// --- TileFile ---------------------------------------------------------------

void TileFile::fail(const std::string& what) const {
  fail_for(store_name_, what, path_);
}

TileFile TileFile::open(const TileFileParams& params, const std::string& path,
                        bool writable, HostId expected_n,
                        std::uint32_t expected_tile_dim) {
  const int fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (fd < 0) fail_for(params.store_name, "cannot open", path);
  TileFile f;
  f.store_name_ = params.store_name;
  f.shape_ = params.shape;
  f.path_ = path;
  f.fd_ = fd;
  f.writable_ = writable;
  {
    auto& reg = obs::MetricsRegistry::instance();
    const std::string prefix = params.metric_prefix;
    f.metrics_.reads = &reg.counter(prefix + ".reads");
    f.metrics_.read_bytes = &reg.counter(prefix + ".read_bytes");
    f.metrics_.read_retries = &reg.counter(prefix + ".read_retries");
    f.metrics_.corrupt_tiles = &reg.counter(prefix + ".corrupt_tiles");
    f.metrics_.writes = &reg.counter(prefix + ".writes");
    f.metrics_.write_bytes = &reg.counter(prefix + ".write_bytes");
  }

  RawHeader h{};
  if (::pread(fd, &h, sizeof(h), 0) != static_cast<ssize_t>(sizeof(h))) {
    f.fail("short header");
  }
  if (std::memcmp(h.magic, params.magic, sizeof(h.magic)) != 0) {
    f.fail("bad magic");
  }
  if (h.version != params.version) f.fail("unsupported version");
  if (h.tile_dim == 0 || h.tile_dim % DelayMatrixView::kLaneFloats != 0 ||
      h.tiles != (h.n + h.tile_dim - 1) / h.tile_dim) {
    f.fail("inconsistent header");
  }
  if (expected_n != 0 &&
      (h.n != expected_n || h.tile_dim != expected_tile_dim)) {
    f.fail("header geometry (n=" + std::to_string(h.n) + ", tile_dim=" +
           std::to_string(h.tile_dim) +
           ") does not match the requested store (n=" +
           std::to_string(expected_n) + ", tile_dim=" +
           std::to_string(expected_tile_dim) + ")");
  }
  f.n_ = h.n;
  f.tile_dim_ = h.tile_dim;
  f.tiles_ = h.tiles;
  f.tile_bytes_ = params.tile_bytes(h.tile_dim);
  if (h.tile_bytes != f.tile_bytes_) f.fail("tile size mismatch");

  const std::size_t count = tile_count_for(params.shape, f.tiles_);
  f.tile_offsets_.resize(count);
  f.tile_checksums_.resize(count);
  const std::size_t index_bytes = count * sizeof(std::uint64_t);
  if (count != 0) {
    if (::pread(fd, f.tile_offsets_.data(), index_bytes, sizeof(RawHeader)) !=
        static_cast<ssize_t>(index_bytes)) {
      f.fail("short index");
    }
    if (::pread(fd, f.tile_checksums_.data(), index_bytes,
                static_cast<off_t>(checksum_table_offset(count))) !=
        static_cast<ssize_t>(index_bytes)) {
      f.fail("short checksum table");
    }
  }
  return f;
}

TileFile::TileFile(TileFile&& o) noexcept
    : store_name_(o.store_name_),
      shape_(o.shape_),
      path_(std::move(o.path_)),
      fd_(std::exchange(o.fd_, -1)),
      writable_(o.writable_),
      n_(o.n_),
      tile_dim_(o.tile_dim_),
      tiles_(o.tiles_),
      tile_bytes_(o.tile_bytes_),
      tile_offsets_(std::move(o.tile_offsets_)),
      tile_checksums_(std::move(o.tile_checksums_)),
      read_retries_(o.read_retries_.load(std::memory_order_relaxed)),
      injector_(std::exchange(o.injector_, nullptr)),
      metrics_(o.metrics_) {}

TileFile& TileFile::operator=(TileFile&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    store_name_ = o.store_name_;
    shape_ = o.shape_;
    path_ = std::move(o.path_);
    fd_ = std::exchange(o.fd_, -1);
    writable_ = o.writable_;
    n_ = o.n_;
    tile_dim_ = o.tile_dim_;
    tiles_ = o.tiles_;
    tile_bytes_ = o.tile_bytes_;
    tile_offsets_ = std::move(o.tile_offsets_);
    tile_checksums_ = std::move(o.tile_checksums_);
    read_retries_.store(o.read_retries_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    injector_ = std::exchange(o.injector_, nullptr);
    metrics_ = o.metrics_;
  }
  return *this;
}

TileFile::~TileFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint32_t TileFile::band_rows(std::uint32_t r) const {
  assert(r < tiles_);
  const std::size_t base = static_cast<std::size_t>(r) * tile_dim_;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(tile_dim_, n_ - base));
}

std::size_t TileFile::tile_index(std::uint32_t r, std::uint32_t c) const {
  assert(r < tiles_ && c < tiles_);
  if (shape_ == TileIndexShape::kSquare) {
    return static_cast<std::size_t>(r) * tiles_ + c;
  }
  assert(r <= c);
  // Row r of the upper triangle starts after r full rows minus the
  // triangle above: r*tiles - r*(r-1)/2, then offset (c - r) within it.
  return static_cast<std::size_t>(r) * tiles_ -
         static_cast<std::size_t>(r) * (r - 1) / 2 + (c - r);
}

void TileFile::read_tile(std::uint32_t r, std::uint32_t c,
                         std::initializer_list<TileSection> sections) const {
  const std::size_t idx = tile_index(r, c);
  if (metrics_.reads != nullptr) {
    metrics_.reads->increment();
    metrics_.read_bytes->add(tile_bytes_);
  }
  for (int attempt = 0;; ++attempt) {
    if (injector_ != nullptr) injector_->before_read();
    std::uint64_t off = tile_offsets_[idx];
    for (const TileSection& s : sections) {
      const ssize_t got = ::pread(fd_, s.data, s.bytes,
                                  static_cast<off_t>(off));
      if (got < 0) fail("tile read failed");
      if (got != static_cast<ssize_t>(s.bytes)) {
        // A valid offset returning fewer bytes than the fixed record
        // length means the file lost its tail — data damage a re-read
        // cannot undo, so it escalates straight to the recoverable path.
        if (metrics_.corrupt_tiles != nullptr) {
          metrics_.corrupt_tiles->increment();
        }
        throw CorruptTileError(store_name_, path_, r, c, "truncated tile");
      }
      off += s.bytes;
    }
    if (injector_ != nullptr) {
      std::size_t byte = 0;
      unsigned bit = 0;
      if (injector_->corrupt_read(tile_bytes_, &byte, &bit)) {
        for (const TileSection& s : sections) {
          if (byte < s.bytes) {
            static_cast<unsigned char*>(s.data)[byte] ^=
                static_cast<unsigned char>(1u << bit);
            break;
          }
          byte -= s.bytes;
        }
      }
    }
    std::uint64_t h = kFnvOffsetBasis;
    for (const TileSection& s : sections) h = fnv1a(s.data, s.bytes, h);
    if (h == tile_checksums_[idx]) return;
    // Mismatch: a bit flipped between platter and checksum is transient —
    // a fresh pread serves clean bytes — while rot or a torn commit
    // mismatches every time. Retry a bounded number of times so only the
    // persistent kind escalates (and higher layers never pay a rebuild
    // for in-flight noise).
    if (attempt >= kReadRetries) {
      if (metrics_.corrupt_tiles != nullptr) metrics_.corrupt_tiles->increment();
      throw CorruptTileError(store_name_, path_, r, c, "checksum mismatch");
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.read_retries != nullptr) metrics_.read_retries->increment();
    // The re-read bytes count too — they hit the device again.
    if (metrics_.read_bytes != nullptr) metrics_.read_bytes->add(tile_bytes_);
  }
}

void TileFile::write_tile(std::uint32_t r, std::uint32_t c,
                          std::initializer_list<ConstTileSection> sections) {
  if (!writable_) fail("tile write on a read-only store");
  const std::size_t idx = tile_index(r, c);
  if (metrics_.writes != nullptr) {
    metrics_.writes->increment();
    metrics_.write_bytes->add(tile_bytes_);
  }
  const WriteFault fault =
      injector_ != nullptr ? injector_->on_write() : WriteFault::kNone;
  if (fault == WriteFault::kTornWrite) {
    // Persist only the first half of the tile bytes, leave the checksum
    // table untouched, and die: the on-disk tile is now genuinely torn.
    std::size_t remaining = tile_bytes_ / 2;
    std::uint64_t off = tile_offsets_[idx];
    for (const ConstTileSection& s : sections) {
      const std::size_t chunk = std::min(remaining, s.bytes);
      if (chunk != 0 &&
          ::pwrite(fd_, s.data, chunk, static_cast<off_t>(off)) !=
              static_cast<ssize_t>(chunk)) {
        fail("tile write failed");
      }
      off += s.bytes;
      remaining -= chunk;
      if (remaining == 0) break;
    }
    throw InjectedCrash(std::string(store_name_) +
                        ": injected torn write on tile (" +
                        std::to_string(r) + ", " + std::to_string(c) + ")");
  }

  std::uint64_t h = kFnvOffsetBasis;
  std::uint64_t off = tile_offsets_[idx];
  for (const ConstTileSection& s : sections) {
    if (::pwrite(fd_, s.data, s.bytes, static_cast<off_t>(off)) !=
        static_cast<ssize_t>(s.bytes)) {
      fail("tile write failed");
    }
    h = fnv1a(s.data, s.bytes, h);
    off += s.bytes;
  }
  if (fault == WriteFault::kFailBeforeChecksum) {
    // The tile bytes landed but the checksum slot never will: the table
    // still describes the old bytes, so the next read reports corruption.
    throw InjectedCrash(std::string(store_name_) +
                        ": injected crash before checksum commit on tile (" +
                        std::to_string(r) + ", " + std::to_string(c) + ")");
  }
  if (::pwrite(fd_, &h, sizeof(h),
               static_cast<off_t>(
                   checksum_table_offset(tile_checksums_.size()) +
                   idx * sizeof(std::uint64_t))) !=
      static_cast<ssize_t>(sizeof(h))) {
    fail("checksum write failed");
  }
  tile_checksums_[idx] = h;
}

}  // namespace tiv::shard
