#include "shard/tile_store.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace tiv::shard {
namespace {

using delayspace::DelayMatrixView;

std::size_t store_tile_bytes(std::uint32_t tile_dim) {
  const std::size_t payload_floats =
      static_cast<std::size_t>(tile_dim) * tile_dim;
  const std::size_t mask_words =
      static_cast<std::size_t>(tile_dim) * ((tile_dim + 63) / 64);
  return payload_floats * sizeof(float) + mask_words * sizeof(std::uint64_t);
}

constexpr TileFileParams kParams{"TIVSHRD2", 2, "TileStore",
                                 TileIndexShape::kSquare, store_tile_bytes,
                                 "shard.input"};

/// Packs tile (tr, tc) of `m` into payload/masks — the single definition of
/// a tile's bytes, shared by write_matrix and repack_tile so an in-place
/// repack is byte-identical to a fresh build.
void pack_tile(const DelayMatrix& m, std::uint32_t tile_dim, std::uint32_t tr,
               std::uint32_t tc, std::vector<float>& payload,
               std::vector<std::uint64_t>& masks) {
  const HostId n = m.size();
  const std::size_t words_per_row = (tile_dim + 63) / 64;
  payload.assign(static_cast<std::size_t>(tile_dim) * tile_dim,
                 DelayMatrixView::kMaskedDelay);
  masks.assign(tile_dim * words_per_row, 0);
  const HostId row_end =
      std::min<HostId>(n, static_cast<HostId>(tr + 1) * tile_dim);
  const HostId col_base = static_cast<HostId>(tc) * tile_dim;
  const HostId col_end = std::min<HostId>(n, col_base + tile_dim);
  for (HostId i = static_cast<HostId>(tr) * tile_dim; i < row_end; ++i) {
    const std::size_t lr = i - static_cast<HostId>(tr) * tile_dim;
    // Shared encoding definition — bit-identity with the in-memory
    // view depends on writing exactly its representation.
    DelayMatrixView::pack_row_segment(m, i, col_base, col_end,
                                      payload.data() + lr * tile_dim,
                                      masks.data() + lr * words_per_row);
  }
}

}  // namespace

void TileStore::write_matrix(const std::string& path, const DelayMatrix& m,
                             std::uint32_t tile_dim) {
  TileFile::Writer w(kParams, path, m.size(), tile_dim);
  const std::uint32_t tiles = w.tiles_per_side();
  // Stream one tile at a time, walking a tile-row band of the source so the
  // writer's working set is one tile, not the packed view.
  std::vector<float> payload;
  std::vector<std::uint64_t> masks;
  for (std::uint32_t tr = 0; tr < tiles; ++tr) {
    for (std::uint32_t tc = 0; tc < tiles; ++tc) {
      pack_tile(m, tile_dim, tr, tc, payload, masks);
      w.append_tile({{payload.data(), payload.size() * sizeof(float)},
                     {masks.data(), masks.size() * sizeof(std::uint64_t)}});
    }
  }
  w.finish();
}

TileStore TileStore::open(const std::string& path, bool writable,
                          HostId expected_n,
                          std::uint32_t expected_tile_dim) {
  TileStore s;
  s.file_ = TileFile::open(kParams, path, writable, expected_n,
                           expected_tile_dim);
  return s;
}

void TileStore::read_tile(std::uint32_t r, std::uint32_t c, float* payload,
                          std::uint64_t* masks) const {
  file_.read_tile(r, c,
                  {{payload, payload_floats() * sizeof(float)},
                   {masks, mask_words() * sizeof(std::uint64_t)}});
}

void TileStore::repack_tile(const DelayMatrix& m, std::uint32_t r,
                            std::uint32_t c) {
  if (m.size() != size()) {
    throw std::runtime_error("TileStore: repack_tile matrix size mismatch: " +
                             path());
  }
  std::vector<float> payload;
  std::vector<std::uint64_t> masks;
  pack_tile(m, tile_dim(), r, c, payload, masks);
  file_.write_tile(r, c,
                   {{payload.data(), payload.size() * sizeof(float)},
                    {masks.data(), masks.size() * sizeof(std::uint64_t)}});
}

}  // namespace tiv::shard
