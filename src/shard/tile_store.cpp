#include "shard/tile_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tiv::shard {
namespace {

using delayspace::DelayMatrixView;

constexpr char kMagic[8] = {'T', 'I', 'V', 'S', 'H', 'R', 'D', '2'};
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kAlign = 64;

// Fixed-width, padding-free on-disk header (40 bytes).
struct RawHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n;
  std::uint32_t tile_dim;
  std::uint32_t tiles;
  std::uint64_t tile_bytes;
  std::uint64_t data_offset;
};
static_assert(sizeof(RawHeader) == 40);

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("TileStore: " + what + ": " + path);
}

void fwrite_all(const void* data, std::size_t bytes, std::FILE* f,
                const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) fail("write failed", path);
}

void pwrite_all(int fd, const void* data, std::size_t bytes, off_t off,
                const std::string& path) {
  if (::pwrite(fd, data, bytes, off) != static_cast<ssize_t>(bytes)) {
    fail("write failed", path);
  }
}

/// Packs tile (tr, tc) of `m` into payload/masks — the single definition of
/// a tile's bytes, shared by write_matrix and repack_tile so an in-place
/// repack is byte-identical to a fresh build.
void pack_tile(const DelayMatrix& m, std::uint32_t tile_dim, std::uint32_t tr,
               std::uint32_t tc, std::vector<float>& payload,
               std::vector<std::uint64_t>& masks) {
  const HostId n = m.size();
  const std::size_t words_per_row = (tile_dim + 63) / 64;
  payload.assign(static_cast<std::size_t>(tile_dim) * tile_dim,
                 DelayMatrixView::kMaskedDelay);
  masks.assign(tile_dim * words_per_row, 0);
  const HostId row_end =
      std::min<HostId>(n, static_cast<HostId>(tr + 1) * tile_dim);
  const HostId col_base = static_cast<HostId>(tc) * tile_dim;
  const HostId col_end = std::min<HostId>(n, col_base + tile_dim);
  for (HostId i = static_cast<HostId>(tr) * tile_dim; i < row_end; ++i) {
    const std::size_t lr = i - static_cast<HostId>(tr) * tile_dim;
    // Shared encoding definition — bit-identity with the in-memory
    // view depends on writing exactly its representation.
    DelayMatrixView::pack_row_segment(m, i, col_base, col_end,
                                      payload.data() + lr * tile_dim,
                                      masks.data() + lr * words_per_row);
  }
}

/// FNV-1a over a tile's serialized bytes: payload section, then masks.
std::uint64_t tile_checksum(const std::vector<float>& payload,
                            const std::vector<std::uint64_t>& masks) {
  const std::uint64_t h =
      fnv1a(payload.data(), payload.size() * sizeof(float));
  return fnv1a(masks.data(), masks.size() * sizeof(std::uint64_t), h);
}

std::size_t checksum_table_offset(std::uint32_t tiles) {
  return sizeof(RawHeader) +
         static_cast<std::size_t>(tiles) * tiles * sizeof(std::uint64_t);
}

}  // namespace

void TileStore::write_matrix(const std::string& path, const DelayMatrix& m,
                             std::uint32_t tile_dim) {
  if (tile_dim == 0 || tile_dim % DelayMatrixView::kLaneFloats != 0) {
    throw std::invalid_argument(
        "TileStore::write_matrix: tile_dim must be a nonzero multiple of " +
        std::to_string(DelayMatrixView::kLaneFloats));
  }
  const HostId n = m.size();
  const std::uint32_t tiles = (n + tile_dim - 1) / tile_dim;
  const std::size_t payload_floats =
      static_cast<std::size_t>(tile_dim) * tile_dim;
  const std::size_t words_per_row = (tile_dim + 63) / 64;
  const std::size_t mask_words = tile_dim * words_per_row;
  const std::size_t tile_bytes =
      payload_floats * sizeof(float) + mask_words * sizeof(std::uint64_t);

  const std::size_t tile_count = static_cast<std::size_t>(tiles) * tiles;
  const std::size_t index_bytes = tile_count * sizeof(std::uint64_t);
  const std::size_t checksum_bytes = index_bytes;
  const std::size_t data_offset =
      ((sizeof(RawHeader) + index_bytes + checksum_bytes + kAlign - 1) /
       kAlign) *
      kAlign;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail("cannot open for writing", path);

  RawHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.n = n;
  h.tile_dim = tile_dim;
  h.tiles = tiles;
  h.tile_bytes = tile_bytes;
  h.data_offset = data_offset;
  fwrite_all(&h, sizeof(h), f, path);

  std::vector<std::uint64_t> offsets(tile_count);
  for (std::size_t t = 0; t < offsets.size(); ++t) {
    offsets[t] = data_offset + t * tile_bytes;
  }
  if (!offsets.empty()) {
    fwrite_all(offsets.data(), index_bytes, f, path);
  }
  // Checksum-table placeholder: the per-tile hashes accumulate during the
  // tile stream below and are committed with one seek-back at the end.
  std::vector<std::uint64_t> checksums(tile_count, 0);
  if (!checksums.empty()) {
    fwrite_all(checksums.data(), checksum_bytes, f, path);
  }
  const std::vector<char> pad(
      data_offset - sizeof(RawHeader) - index_bytes - checksum_bytes, 0);
  if (!pad.empty()) fwrite_all(pad.data(), pad.size(), f, path);

  // Stream one tile at a time, walking a tile-row band of the source so the
  // writer's working set is one tile, not the packed view.
  std::vector<float> payload(payload_floats);
  std::vector<std::uint64_t> masks(mask_words);
  for (std::uint32_t tr = 0; tr < tiles; ++tr) {
    for (std::uint32_t tc = 0; tc < tiles; ++tc) {
      pack_tile(m, tile_dim, tr, tc, payload, masks);
      checksums[static_cast<std::size_t>(tr) * tiles + tc] =
          tile_checksum(payload, masks);
      fwrite_all(payload.data(), payload_floats * sizeof(float), f, path);
      fwrite_all(masks.data(), mask_words * sizeof(std::uint64_t), f, path);
    }
  }
  if (!checksums.empty()) {
    if (std::fseek(f, static_cast<long>(checksum_table_offset(tiles)),
                   SEEK_SET) != 0) {
      fail("seek to checksum table failed", path);
    }
    fwrite_all(checksums.data(), checksum_bytes, f, path);
  }
  if (std::fclose(f) != 0) fail("close failed", path);
}

TileStore TileStore::open(const std::string& path, bool writable) {
  const int fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  TileStore s;
  s.path_ = path;
  s.fd_ = fd;
  s.writable_ = writable;

  RawHeader h{};
  if (::pread(fd, &h, sizeof(h), 0) != static_cast<ssize_t>(sizeof(h))) {
    fail("short header", path);
  }
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic", path);
  }
  if (h.version != kVersion) fail("unsupported version", path);
  if (h.tile_dim == 0 || h.tile_dim % DelayMatrixView::kLaneFloats != 0 ||
      h.tiles != (h.n + h.tile_dim - 1) / h.tile_dim) {
    fail("inconsistent header", path);
  }
  s.n_ = h.n;
  s.tile_dim_ = h.tile_dim;
  s.tiles_ = h.tiles;
  if (h.tile_bytes != s.tile_bytes()) fail("tile size mismatch", path);

  const std::size_t tile_count =
      static_cast<std::size_t>(s.tiles_) * s.tiles_;
  s.tile_offsets_.resize(tile_count);
  s.tile_checksums_.resize(tile_count);
  const std::size_t index_bytes = tile_count * sizeof(std::uint64_t);
  if (tile_count != 0) {
    if (::pread(fd, s.tile_offsets_.data(), index_bytes, sizeof(RawHeader)) !=
        static_cast<ssize_t>(index_bytes)) {
      fail("short index", path);
    }
    if (::pread(fd, s.tile_checksums_.data(), index_bytes,
                static_cast<off_t>(checksum_table_offset(s.tiles_))) !=
        static_cast<ssize_t>(index_bytes)) {
      fail("short checksum table", path);
    }
  }
  return s;
}

TileStore::TileStore(TileStore&& o) noexcept
    : path_(std::move(o.path_)),
      fd_(std::exchange(o.fd_, -1)),
      writable_(o.writable_),
      n_(o.n_),
      tile_dim_(o.tile_dim_),
      tiles_(o.tiles_),
      tile_offsets_(std::move(o.tile_offsets_)),
      tile_checksums_(std::move(o.tile_checksums_)) {}

TileStore& TileStore::operator=(TileStore&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    fd_ = std::exchange(o.fd_, -1);
    writable_ = o.writable_;
    n_ = o.n_;
    tile_dim_ = o.tile_dim_;
    tiles_ = o.tiles_;
    tile_offsets_ = std::move(o.tile_offsets_);
    tile_checksums_ = std::move(o.tile_checksums_);
  }
  return *this;
}

TileStore::~TileStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint32_t TileStore::band_rows(std::uint32_t r) const {
  assert(r < tiles_);
  const std::size_t base = static_cast<std::size_t>(r) * tile_dim_;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(tile_dim_, n_ - base));
}

void TileStore::read_tile(std::uint32_t r, std::uint32_t c, float* payload,
                          std::uint64_t* masks) const {
  assert(r < tiles_ && c < tiles_);
  const std::uint64_t off = tile_offsets_[tile_index(r, c)];
  const std::size_t payload_bytes = payload_floats() * sizeof(float);
  const std::size_t mask_bytes = mask_words() * sizeof(std::uint64_t);
  if (::pread(fd_, payload, payload_bytes, static_cast<off_t>(off)) !=
      static_cast<ssize_t>(payload_bytes)) {
    fail("short tile payload read", path_);
  }
  if (::pread(fd_, masks, mask_bytes,
              static_cast<off_t>(off + payload_bytes)) !=
      static_cast<ssize_t>(mask_bytes)) {
    fail("short tile mask read", path_);
  }
  const std::uint64_t got =
      fnv1a(masks, mask_bytes, fnv1a(payload, payload_bytes));
  if (got != tile_checksums_[tile_index(r, c)]) {
    throw CorruptTileError("TileStore: tile (" + std::to_string(r) + ", " +
                           std::to_string(c) + ") checksum mismatch: " +
                           path_);
  }
}

void TileStore::repack_tile(const DelayMatrix& m, std::uint32_t r,
                            std::uint32_t c) {
  assert(r < tiles_ && c < tiles_);
  if (!writable_) fail("repack_tile on a read-only store", path_);
  if (m.size() != n_) fail("repack_tile matrix size mismatch", path_);
  std::vector<float> payload;
  std::vector<std::uint64_t> masks;
  pack_tile(m, tile_dim_, r, c, payload, masks);
  const std::uint64_t sum = tile_checksum(payload, masks);

  const std::size_t idx = tile_index(r, c);
  const std::uint64_t off = tile_offsets_[idx];
  const std::size_t payload_bytes = payload.size() * sizeof(float);
  pwrite_all(fd_, payload.data(), payload_bytes, static_cast<off_t>(off),
             path_);
  pwrite_all(fd_, masks.data(), masks.size() * sizeof(std::uint64_t),
             static_cast<off_t>(off + payload_bytes), path_);
  pwrite_all(fd_, &sum, sizeof(sum),
             static_cast<off_t>(checksum_table_offset(tiles_) +
                                idx * sizeof(std::uint64_t)),
             path_);
  tile_checksums_[idx] = sum;
}

}  // namespace tiv::shard
