// Memory-budgeted, thread-safe LRU cache mapping TileStore tiles back into
// RAM as view-compatible blocks — the input-side instantiation of the
// shared LruTileCache core (shard/lru_tile_cache.hpp), which owns the
// concurrency model, stampede-free loads, pin-aware eviction, and the
// budget-accounting invariant: peak bytes <= max(budget, largest
// simultaneous pinned set). The streaming driver pins a handful of tiles
// per thread, so any sane budget dominates and stats().peak_bytes stays
// under it.
//
// What this layer adds on top of the core:
//  - the Tile block itself (64-byte-aligned payload rows + mask words,
//    ready for the branch-free witness kernels), and
//  - prefetch riding the pool-friendly util/BackgroundQueue: hints are
//    shed (not queued unboundedly, never blocking the compute thread)
//    when the I/O worker falls behind, and drain_prefetch() is the
//    quiesce point before TileStore::repack_tile rewrites tiles this
//    cache maps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "shard/lru_tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "util/background_queue.hpp"

namespace tiv::shard {

/// A tile resident in memory: the packed-view block for rows
/// [row_band*T, ..+T) x columns [col_band*T, ..+T). Payload rows are
/// 64-byte aligned (tile_dim is a multiple of 16 floats), ready for the
/// branch-free witness kernels.
class Tile {
 public:
  Tile(std::uint32_t tile_dim, std::size_t payload_floats,
       std::size_t mask_words);

  /// Payload row lr (tile-local), tile_dim floats.
  const float* row(std::size_t lr) const {
    return payload_.get() + lr * tile_dim_;
  }
  /// Bitmask row lr, mask_words_per_row words.
  const std::uint64_t* mask_row(std::size_t lr) const {
    return masks_.data() + lr * words_per_row_;
  }

  float* payload() { return payload_.get(); }
  std::uint64_t* masks() { return masks_.data(); }

 private:
  struct AlignedFree {
    void operator()(float* p) const { ::operator delete[](p, kAlignVal); }
  };
  static constexpr std::align_val_t kAlignVal{64};

  std::uint32_t tile_dim_;
  std::size_t words_per_row_;
  std::unique_ptr<float[], AlignedFree> payload_;
  std::vector<std::uint64_t> masks_;
};

using TileRef = std::shared_ptr<const Tile>;

class TileCache {
 public:
  /// The cache keeps a reference to `store`; it must outlive the cache, and
  /// the cache must outlive every TileRef it hands out.
  TileCache(const TileStore& store, std::size_t budget_bytes);

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Returns tile (r, c), loading it from the store on a miss. Thread-safe;
  /// blocks only when another thread is already loading the same tile.
  TileRef acquire(std::uint32_t r, std::uint32_t c);

  /// Hints that tile (r, c) will be needed soon: loads it into the cache on
  /// the background I/O thread. Never blocks; the hint is dropped when the
  /// I/O worker is saturated or the tile is already resident/loading.
  void prefetch(std::uint32_t r, std::uint32_t c);

  /// Discards queued prefetch hints and waits out the in-flight one — the
  /// quiesce point before TileStore::repack_tile rewrites tiles this cache
  /// maps (a prefetch read racing the rewrite could otherwise publish a
  /// torn tile or pin one across invalidate()).
  void drain_prefetch() { prefetcher_.drain(); }

  /// Drops tile (r, c) from the cache so the next acquire re-reads it from
  /// the store — the coherence hook for TileStore::repack_tile. Call after
  /// drain_prefetch(); precondition: no outstanding TileRef pins the tile
  /// (the streaming engine invalidates only between epochs, when no scan
  /// is running).
  void invalidate(std::uint32_t r, std::uint32_t c) {
    cache_.invalidate(key(r, c));
  }

  std::size_t budget_bytes() const { return cache_.budget_bytes(); }
  CacheStats stats() const;

 private:
  static std::uint64_t key(std::uint32_t r, std::uint32_t c) {
    return (static_cast<std::uint64_t>(r) << 32) | c;
  }

  const TileStore& store_;
  LruTileCache<Tile> cache_;
  BackgroundQueue prefetcher_{16};
  // Declared after prefetcher_: the link's unlink-time probe reads
  // prefetcher_.dropped(), so it must be destroyed first.
  obs::MetricsRegistry::Link drops_link_;
};

}  // namespace tiv::shard
