// Memory-budgeted, thread-safe LRU cache mapping TileStore tiles back into
// RAM as view-compatible blocks.
//
// Concurrency model: one mutex guards the map/LRU bookkeeping; tile I/O
// runs outside it, so distinct tiles load in parallel from however many
// threads the severity driver's parallel loop runs. A thread requesting a
// tile another thread is already loading waits on a condition variable
// instead of issuing a duplicate read (no cache stampede).
//
// Budget accounting counts every resident tile (loaded entries plus
// in-flight loads, whose bytes are reserved before the read starts).
// Eviction walks from the least recently used end, skipping entries pinned
// by an outstanding TileRef (use_count > 1) — a pinned tile is never
// removed from the map, so a tile's bytes are released exactly when its
// entry is erased. The hard invariant is therefore: peak bytes <=
// max(budget, largest simultaneous pinned set). The streaming driver pins
// a handful of tiles per thread, so any sane budget dominates and
// stats().peak_bytes stays under it.
//
// Prefetch rides the pool-friendly util/BackgroundQueue: hints are shed
// (not queued unboundedly, never blocking the compute thread) when the I/O
// worker falls behind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include <condition_variable>
#include <mutex>

#include "shard/tile_store.hpp"
#include "util/background_queue.hpp"

namespace tiv::shard {

/// A tile resident in memory: the packed-view block for rows
/// [row_band*T, ..+T) x columns [col_band*T, ..+T). Payload rows are
/// 64-byte aligned (tile_dim is a multiple of 16 floats), ready for the
/// branch-free witness kernels.
class Tile {
 public:
  Tile(std::uint32_t tile_dim, std::size_t payload_floats,
       std::size_t mask_words);

  /// Payload row lr (tile-local), tile_dim floats.
  const float* row(std::size_t lr) const {
    return payload_.get() + lr * tile_dim_;
  }
  /// Bitmask row lr, mask_words_per_row words.
  const std::uint64_t* mask_row(std::size_t lr) const {
    return masks_.data() + lr * words_per_row_;
  }

  float* payload() { return payload_.get(); }
  std::uint64_t* masks() { return masks_.data(); }

 private:
  struct AlignedFree {
    void operator()(float* p) const { ::operator delete[](p, kAlignVal); }
  };
  static constexpr std::align_val_t kAlignVal{64};

  std::uint32_t tile_dim_;
  std::size_t words_per_row_;
  std::unique_ptr<float[], AlignedFree> payload_;
  std::vector<std::uint64_t> masks_;
};

using TileRef = std::shared_ptr<const Tile>;

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;       ///< tiles loaded from disk (incl. prefetch)
  std::size_t evictions = 0;
  std::size_t peak_bytes = 0;   ///< high-water mark of live tile bytes
  std::size_t current_bytes = 0;
  std::size_t prefetch_drops = 0;  ///< hints shed by the background queue

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class TileCache {
 public:
  /// The cache keeps a reference to `store`; it must outlive the cache, and
  /// the cache must outlive every TileRef it hands out.
  TileCache(const TileStore& store, std::size_t budget_bytes);

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Returns tile (r, c), loading it from the store on a miss. Thread-safe;
  /// blocks only when another thread is already loading the same tile.
  TileRef acquire(std::uint32_t r, std::uint32_t c);

  /// Hints that tile (r, c) will be needed soon: loads it into the cache on
  /// the background I/O thread. Never blocks; the hint is dropped when the
  /// I/O worker is saturated or the tile is already resident/loading.
  void prefetch(std::uint32_t r, std::uint32_t c);

  std::size_t budget_bytes() const { return budget_; }
  CacheStats stats() const;

 private:
  struct Entry {
    TileRef tile;            ///< null while loading
    bool loading = false;
    std::list<std::uint64_t>::iterator lru;  ///< valid once loaded
  };

  std::uint64_t key(std::uint32_t r, std::uint32_t c) const {
    return (static_cast<std::uint64_t>(r) << 32) | c;
  }
  TileRef load_and_publish(std::uint64_t k, std::uint32_t r, std::uint32_t c,
                           std::unique_lock<std::mutex>& lk);
  void evict_for_locked(std::size_t incoming_bytes);

  const TileStore& store_;
  const std::size_t budget_;
  const std::size_t tile_footprint_;  ///< bytes one resident tile accounts

  mutable std::mutex mutex_;
  std::condition_variable loaded_cv_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  CacheStats stats_;

  BackgroundQueue prefetcher_{16};
};

}  // namespace tiv::shard
