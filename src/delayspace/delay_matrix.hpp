// Dense symmetric host-to-host round-trip delay matrix — the central data
// structure of the study. Matches the shape of the measured matrices the
// paper analyzes (p2psim, Meridian, DS^2, PlanetLab): symmetric RTTs in
// milliseconds with occasional missing measurements.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tiv::delayspace {

using HostId = std::uint32_t;

/// Symmetric n-by-n delay matrix with missing-entry support.
///
/// Storage is a full row-major float matrix: the O(N^3) TIV analyzer scans
/// whole rows, so the 2x memory cost of not using triangular storage buys
/// contiguous, branch-free inner loops. Missing measurements are kMissing
/// (negative); the diagonal is always 0.
class DelayMatrix {
 public:
  static constexpr float kMissing = -1.0f;

  DelayMatrix() = default;
  explicit DelayMatrix(HostId n);

  HostId size() const { return n_; }

  /// Measured delay in ms, or kMissing. at(i,i) == 0.
  float at(HostId i, HostId j) const { return data_[idx(i, j)]; }

  /// True when the pair has a usable measurement (i != j and not missing).
  bool has(HostId i, HostId j) const { return i != j && at(i, j) >= 0.0f; }

  /// Sets both (i,j) and (j,i). Requires i != j and (delay >= 0 or
  /// delay == kMissing).
  void set(HostId i, HostId j, float delay_ms);

  void set_missing(HostId i, HostId j) { set(i, j, kMissing); }

  /// Row i as a contiguous span (includes diagonal zero and missing
  /// sentinels) — the analyzer's hot-loop access path.
  std::span<const float> row(HostId i) const {
    return {data_.data() + static_cast<std::size_t>(i) * n_, n_};
  }

  /// Number of unordered pairs with a usable measurement.
  std::size_t measured_pair_count() const;

  /// Fraction of unordered pairs that are missing.
  double missing_fraction() const;

  /// All measured delays (unordered pairs), for distribution plots.
  std::vector<double> all_delays() const;

  /// Text serialization: first line "n", then one "i j delay" line per
  /// measured unordered pair. Load throws std::runtime_error on malformed
  /// input.
  void save(const std::string& path) const;
  static DelayMatrix load(const std::string& path);

  bool operator==(const DelayMatrix& o) const {
    return n_ == o.n_ && data_ == o.data_;
  }

 private:
  std::size_t idx(HostId i, HostId j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }

  HostId n_ = 0;
  std::vector<float> data_;
};

/// Packed read-only view of a DelayMatrix optimized for the O(N^3) witness
/// scans of the TIV analyzer.
///
/// Two transformations make the inner loop branch-free and vectorizable:
///
///  1. Missing entries (DelayMatrix::kMissing, negative) are rewritten to
///     kMaskedDelay, a huge positive sentinel. A detour through a missing
///     leg then sums to >= kMaskedDelay and can never satisfy
///     `detour < d_ac`, so the kernel needs no `d < 0` tests at all. The
///     diagonal stays 0, which likewise self-excludes the b == a / b == c
///     witnesses (their detour equals d_ac exactly, never strictly less).
///
///  2. Rows are padded to a multiple of kLaneFloats and 64-byte aligned;
///     padding lanes hold kMaskedDelay. The witness loop can therefore run
///     to stride() in full SIMD lanes with no scalar tail.
///
/// For counting (witness totals, measurable-triangle totals) the view also
/// carries a per-row missing-entry bitmask: bit b of mask_row(i) is set iff
/// (i, b) is a usable measurement (i != b and measured). The number of
/// witnesses with both legs measured for edge (a, c) is then one AND+popcount
/// sweep — b == a and b == c fall out automatically because a row's own bit
/// is never set.
///
/// The view holds a snapshot: mutate the DelayMatrix and rebuild the view —
/// or, when only a few hosts changed, repack_row the touched rows in place
/// (the streaming engine's incremental path, see src/stream/).
class DelayMatrixView {
 public:
  /// Sentinel for missing/padding entries. Large enough that any sum
  /// involving it exceeds every real RTT, small enough that sums of two
  /// stay finite in float.
  static constexpr float kMaskedDelay = 1e30f;
  /// Row padding granularity in floats (64 bytes: one cache line, one
  /// AVX-512 register).
  static constexpr std::size_t kLaneFloats = 16;

  explicit DelayMatrixView(const DelayMatrix& m);

  /// Bytes an n-host view occupies (padded delay rows + alignment slack +
  /// bitmask rows) — what budget-aware callers compare against a memory
  /// budget without building the view. Kept next to the constructor that
  /// defines the layout.
  static std::size_t bytes_for(HostId n);

  /// Packs columns [col_begin, col_end) of matrix row i into the view
  /// encoding: measured -> value + mask bit, diagonal -> 0, missing ->
  /// kMaskedDelay. out holds col_end - col_begin floats; mask bits land at
  /// segment-local index b - col_begin in words the caller has zeroed.
  /// This is the single definition of the encoding — shared by this view's
  /// constructor and shard::TileStore's tile writer, whose bit-identity
  /// contract depends on the two never diverging.
  static void pack_row_segment(const DelayMatrix& m, HostId i,
                               HostId col_begin, HostId col_end, float* out,
                               std::uint64_t* mask);

  /// Re-packs row i (delays + missing bitmask) from `m`, which must be the
  /// matrix this view was built from (same size), possibly mutated since.
  /// An edge update (a, b) changes exactly rows a and b of the packed
  /// encoding, so repacking every touched host's row brings the view back
  /// to what a from-scratch build over the mutated matrix would produce —
  /// byte-identical, padding included. O(n) per row; the incremental
  /// alternative to the O(n^2) constructor.
  void repack_row(const DelayMatrix& m, HostId i);

  // Non-copyable/movable: delays_ points into delay_storage_, so a copied
  // view would alias (then dangle with) the source's buffer.
  DelayMatrixView(const DelayMatrixView&) = delete;
  DelayMatrixView& operator=(const DelayMatrixView&) = delete;

  HostId size() const { return n_; }
  /// Padded row length in floats (multiple of kLaneFloats).
  std::size_t stride() const { return stride_; }
  /// Words per bitmask row.
  std::size_t mask_words() const { return mask_words_; }

  /// Delay row i: at(i, b) for b < size(), kMaskedDelay where missing or
  /// padding; 64-byte aligned.
  const float* row(HostId i) const { return delays_ + i * stride_; }

  /// Bit b set iff (i, b) is a usable measurement.
  const std::uint64_t* mask_row(HostId i) const {
    return masks_.data() + i * mask_words_;
  }

  /// Witnesses of edge (a, c) with both legs measured (excludes a and c
  /// themselves): popcount over the AND of the two mask rows.
  std::size_t witness_count(HostId a, HostId c) const;

 private:
  HostId n_ = 0;
  std::size_t stride_ = 0;
  std::size_t mask_words_ = 0;
  std::vector<float> delay_storage_;  ///< over-allocated for alignment
  float* delays_ = nullptr;           ///< 64-byte aligned base
  std::vector<std::uint64_t> masks_;
};

}  // namespace tiv::delayspace
