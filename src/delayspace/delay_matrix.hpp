// Dense symmetric host-to-host round-trip delay matrix — the central data
// structure of the study. Matches the shape of the measured matrices the
// paper analyzes (p2psim, Meridian, DS^2, PlanetLab): symmetric RTTs in
// milliseconds with occasional missing measurements.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tiv::delayspace {

using HostId = std::uint32_t;

/// Symmetric n-by-n delay matrix with missing-entry support.
///
/// Storage is a full row-major float matrix: the O(N^3) TIV analyzer scans
/// whole rows, so the 2x memory cost of not using triangular storage buys
/// contiguous, branch-free inner loops. Missing measurements are kMissing
/// (negative); the diagonal is always 0.
class DelayMatrix {
 public:
  static constexpr float kMissing = -1.0f;

  DelayMatrix() = default;
  explicit DelayMatrix(HostId n);

  HostId size() const { return n_; }

  /// Measured delay in ms, or kMissing. at(i,i) == 0.
  float at(HostId i, HostId j) const { return data_[idx(i, j)]; }

  /// True when the pair has a usable measurement (i != j and not missing).
  bool has(HostId i, HostId j) const { return i != j && at(i, j) >= 0.0f; }

  /// Sets both (i,j) and (j,i). Requires i != j and (delay >= 0 or
  /// delay == kMissing).
  void set(HostId i, HostId j, float delay_ms);

  void set_missing(HostId i, HostId j) { set(i, j, kMissing); }

  /// Row i as a contiguous span (includes diagonal zero and missing
  /// sentinels) — the analyzer's hot-loop access path.
  std::span<const float> row(HostId i) const {
    return {data_.data() + static_cast<std::size_t>(i) * n_, n_};
  }

  /// Number of unordered pairs with a usable measurement.
  std::size_t measured_pair_count() const;

  /// Fraction of unordered pairs that are missing.
  double missing_fraction() const;

  /// All measured delays (unordered pairs), for distribution plots.
  std::vector<double> all_delays() const;

  /// Text serialization: first line "n", then one "i j delay" line per
  /// measured unordered pair. Load throws std::runtime_error on malformed
  /// input.
  void save(const std::string& path) const;
  static DelayMatrix load(const std::string& path);

  bool operator==(const DelayMatrix& o) const {
    return n_ == o.n_ && data_ == o.data_;
  }

 private:
  std::size_t idx(HostId i, HostId j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }

  HostId n_ = 0;
  std::vector<float> data_;
};

}  // namespace tiv::delayspace
