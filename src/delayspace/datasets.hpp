// Named dataset presets standing in for the four measured matrices the
// paper analyzes. Each preset reproduces the dataset's node count and rough
// delay character; pass a node-count override to run the same character at
// a reduced scale (the figure benches default to reduced scale because the
// TIV-severity analysis is O(N^3)).
//
//   ds2_4000      DS^2 4000-host matrix  — the paper's main dataset
//   meridian_2500 Meridian 2500-host matrix — sparser regional peering,
//                 which is why its severity tail (Fig. 6) is the heaviest
//   p2psim_1740   p2psim 1740-host matrix — King measurements, mild tail
//   planetlab_229 229 PlanetLab hosts — small, academic, noisy
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "delayspace/generate.hpp"

namespace tiv::delayspace {

enum class DatasetId { kDs2, kMeridian, kP2psim, kPlanetLab };

/// All presets, in the order the paper lists them.
std::vector<DatasetId> all_datasets();

/// Human-readable name matching the paper's figure legends.
std::string dataset_name(DatasetId id);

/// Paper-scale host count of the dataset.
std::uint32_t dataset_full_size(DatasetId id);

/// Generator parameters for the preset.
///
/// num_hosts_override != 0 scales the host count DOWN from the paper-scale
/// full size; asking for more hosts than the dataset it stands in for is a
/// caller bug and throws std::invalid_argument (the override is reachable
/// from CLI flags, so it must fail loudly in Release builds too). The AS
/// count scales
/// proportionally with the override (hosts / 8; hosts / 3 for PlanetLab)
/// but is floored — at 60 ASes, 50 for PlanetLab — so that strongly
/// reduced runs keep a structurally interesting topology instead of
/// collapsing to a handful of ASes. Consequence: below ~480 hosts
/// (~150 for PlanetLab) the hosts-per-AS ratio shrinks with the override
/// rather than staying at the full-scale ratio, which thins per-AS host
/// clusters; severity *tails* are stable across scales but per-AS cluster
/// statistics are not.
DelaySpaceParams dataset_params(DatasetId id,
                                std::uint32_t num_hosts_override = 0);

/// Convenience: generate the preset's delay space.
DelaySpace make_dataset(DatasetId id, std::uint32_t num_hosts_override = 0);

}  // namespace tiv::delayspace
