#include "delayspace/overlay.hpp"

#include <algorithm>
#include <limits>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace tiv::delayspace {
namespace {

/// Rows per dynamically claimed work item of one k-iteration.
constexpr std::size_t kRowBlock = 16;
/// Columns per inner tile: a 1 KiB slice of row_k stays hot in L1 while
/// every row of the block is relaxed against it.
constexpr std::size_t kColTile = 256;

}  // namespace

OverlayPaths::OverlayPaths(const DelayMatrix& matrix) : n_(matrix.size()) {
  const obs::Span span("overlay-fw");
  const std::size_t n = n_;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  dist_.assign(n * n, kInf);
  for (HostId i = 0; i < n_; ++i) {
    dist_[static_cast<std::size_t>(i) * n + i] = 0.0f;
    const auto row = matrix.row(i);
    for (HostId j = 0; j < n_; ++j) {
      if (matrix.has(i, j)) {
        dist_[static_cast<std::size_t>(i) * n + j] = row[j];
      }
    }
  }
  // Blocked Floyd-Warshall. The k loop is sequential (each step depends on
  // the previous); within one k the update is elementwise over (i, j) with
  // row k frozen — d[k][k] == 0 and entries are non-negative, so iteration
  // k never improves row k or column k. Blocking (i, j) into row blocks and
  // column tiles therefore changes only memory order, never a computed
  // value: dist_ stays bit-identical to the unblocked row sweep (the
  // differential test in test_delayspace.cpp pins this).
  const std::size_t row_blocks = (n + kRowBlock - 1) / kRowBlock;
  for (std::size_t k = 0; k < n; ++k) {
    const float* row_k = dist_.data() + k * n;
    parallel_for_dynamic(
        row_blocks, /*grain=*/1, [&](std::size_t bb, std::size_t be) {
          for (std::size_t b = bb; b < be; ++b) {
            const std::size_t i0 = b * kRowBlock;
            const std::size_t i1 = std::min(n, i0 + kRowBlock);
            for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
              const std::size_t j1 = std::min(n, j0 + kColTile);
              for (std::size_t i = i0; i < i1; ++i) {
                float* row_i = dist_.data() + i * n;
                const float dik = row_i[k];
                if (dik == kInf) continue;
                for (std::size_t j = j0; j < j1; ++j) {
                  const float via = dik + row_k[j];
                  if (via < row_i[j]) row_i[j] = via;
                }
              }
            }
          }
        });
  }
}

float OverlayPaths::detour_gain(const DelayMatrix& matrix, HostId i,
                                HostId j) const {
  if (!matrix.has(i, j)) return 0.0f;
  return std::max(0.0f, matrix.at(i, j) - delay(i, j));
}

}  // namespace tiv::delayspace
