#include "delayspace/overlay.hpp"

#include <algorithm>
#include <limits>

#include "util/parallel.hpp"

namespace tiv::delayspace {

OverlayPaths::OverlayPaths(const DelayMatrix& matrix) : n_(matrix.size()) {
  const std::size_t n = n_;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  dist_.assign(n * n, kInf);
  for (HostId i = 0; i < n_; ++i) {
    dist_[static_cast<std::size_t>(i) * n + i] = 0.0f;
    const auto row = matrix.row(i);
    for (HostId j = 0; j < n_; ++j) {
      if (matrix.has(i, j)) {
        dist_[static_cast<std::size_t>(i) * n + j] = row[j];
      }
    }
  }
  // Floyd-Warshall. The k loop is sequential (each step depends on the
  // previous), but for a fixed k all rows are independent.
  for (std::size_t k = 0; k < n; ++k) {
    const float* row_k = dist_.data() + k * n;
    parallel_for(n, [&](std::size_t i) {
      float* row_i = dist_.data() + i * n;
      const float dik = row_i[k];
      if (dik == kInf) return;
      for (std::size_t j = 0; j < n; ++j) {
        const float via = dik + row_k[j];
        if (via < row_i[j]) row_i[j] = via;
      }
    });
  }
}

float OverlayPaths::detour_gain(const DelayMatrix& matrix, HostId i,
                                HostId j) const {
  if (!matrix.has(i, j)) return 0.0f;
  return std::max(0.0f, matrix.at(i, j) - delay(i, j));
}

}  // namespace tiv::delayspace
