#include "delayspace/euclidean.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tiv::delayspace {

DelayMatrix euclidean_matrix(const EuclideanParams& params) {
  Rng rng(params.seed);
  std::vector<std::vector<double>> points(params.num_hosts);
  for (auto& p : points) {
    p.resize(params.dimension);
    for (double& x : p) x = rng.uniform(0.0, params.side_ms);
  }
  DelayMatrix m(params.num_hosts);
  for (HostId i = 0; i < params.num_hosts; ++i) {
    for (HostId j = i + 1; j < params.num_hosts; ++j) {
      double ss = 0.0;
      for (std::uint32_t d = 0; d < params.dimension; ++d) {
        const double diff = points[i][d] - points[j][d];
        ss += diff * diff;
      }
      // A tiny floor keeps zero-delay pairs out (they carry no spring force
      // and make percentage penalties undefined).
      m.set(i, j, static_cast<float>(std::max(0.01, std::sqrt(ss))));
    }
  }
  return m;
}

}  // namespace tiv::delayspace
