#include "delayspace/datasets.hpp"

#include <algorithm>
#include <stdexcept>

namespace tiv::delayspace {

std::vector<DatasetId> all_datasets() {
  return {DatasetId::kDs2, DatasetId::kMeridian, DatasetId::kP2psim,
          DatasetId::kPlanetLab};
}

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kDs2:
      return "DS2-4000-data";
    case DatasetId::kMeridian:
      return "Meridian-2500-data";
    case DatasetId::kP2psim:
      return "p2psim-1740-data";
    case DatasetId::kPlanetLab:
      return "PlanetLab-229-data";
  }
  throw std::invalid_argument("dataset_name: bad id");
}

std::uint32_t dataset_full_size(DatasetId id) {
  switch (id) {
    case DatasetId::kDs2:
      return 4000;
    case DatasetId::kMeridian:
      return 2500;
    case DatasetId::kP2psim:
      return 1740;
    case DatasetId::kPlanetLab:
      return 229;
  }
  throw std::invalid_argument("dataset_full_size: bad id");
}

DelaySpaceParams dataset_params(DatasetId id,
                                std::uint32_t num_hosts_override) {
  // The presets stand in for measured matrices of a fixed size; an override
  // is a reduced-scale run, never an upscale (see datasets.hpp). Thrown,
  // not assert()ed: the override is reachable from bench/example CLI flags
  // and must fail loudly in Release too, like dataset_full_size above.
  if (num_hosts_override > dataset_full_size(id)) {
    throw std::invalid_argument(
        "dataset_params: num_hosts_override " +
        std::to_string(num_hosts_override) + " exceeds " + dataset_name(id) +
        " full size " + std::to_string(dataset_full_size(id)));
  }
  DelaySpaceParams p;
  const std::uint32_t hosts =
      num_hosts_override != 0 ? num_hosts_override : dataset_full_size(id);
  p.hosts.num_hosts = hosts;
  // Roughly one edge AS per 8 hosts keeps per-AS host counts realistic at
  // every scale; the floor keeps small runs structurally interesting.
  p.topology.num_ases = std::max<std::uint32_t>(60, hosts / 8);

  switch (id) {
    case DatasetId::kDs2:
      p.topology.seed = 11;
      p.hosts.seed = 12;
      break;
    case DatasetId::kMeridian:
      // Sparser regional peering -> heavier severity tail (paper Fig. 6
      // reaches severity ~20 vs DS^2's ~10).
      p.topology.seed = 21;
      p.hosts.seed = 22;
      p.topology.tier2_peering_same_cluster = 0.05;
      p.topology.tier2_peering_cross_cluster = 0.008;
      break;
    case DatasetId::kP2psim:
      // King technique measures recursive DNS servers: better-connected
      // vantage points, milder tail (Fig. 5 tops out near severity 3).
      p.topology.seed = 31;
      p.hosts.seed = 32;
      p.topology.tier2_peering_same_cluster = 0.25;
      p.topology.tier2_peering_cross_cluster = 0.03;
      p.hosts.access_log_sigma = 0.5;
      break;
    case DatasetId::kPlanetLab:
      // Small academic testbed: few ASes, noisy measurements, a handful of
      // badly-routed islands.
      p.topology.seed = 41;
      p.hosts.seed = 42;
      p.topology.num_ases = std::max<std::uint32_t>(50, hosts / 3);
      p.topology.noise_fraction = 0.08;
      p.hosts.measurement_noise_sigma = 0.05;
      break;
  }
  return p;
}

DelaySpace make_dataset(DatasetId id, std::uint32_t num_hosts_override) {
  return generate_delay_space(dataset_params(id, num_hosts_override));
}

}  // namespace tiv::delayspace
