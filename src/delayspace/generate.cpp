#include "delayspace/generate.hpp"

#include <cmath>
#include <stdexcept>

#include "routing/shortest_path.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::delayspace {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::Tier;

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic per-AS-pair anomaly multiplier (>= 1). Stateless so the
/// same (seed, pair) always yields the same factor regardless of host
/// iteration order.
double as_pair_anomaly(const HostParams& p, std::uint64_t seed, AsId a,
                       AsId b) {
  if (p.as_pair_anomaly_prob <= 0.0 || a == b) return 1.0;
  if (a > b) std::swap(a, b);
  const std::uint64_t key =
      mix64((static_cast<std::uint64_t>(a) << 32 | b) ^ mix64(seed));
  const double u0 =
      static_cast<double>(key >> 11) * 0x1.0p-53;  // uniform [0,1)
  if (u0 >= p.as_pair_anomaly_prob) return 1.0;
  double u1 = static_cast<double>(mix64(key + 1) >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double pareto =
      p.anomaly_scale / std::pow(u1, 1.0 / p.anomaly_shape);
  return std::min(p.anomaly_cap, 1.0 + pareto);
}

/// Assigns hosts to ASes and draws access delays. Host cluster label is the
/// cluster of its AS.
struct HostAttachment {
  std::vector<AsId> host_as;
  std::vector<int> host_cluster;
  std::vector<double> access_ms;
};

HostAttachment attach_hosts(const AsGraph& graph, const HostParams& p,
                            Rng& rng) {
  std::vector<AsId> eligible;
  for (AsId v = 0; v < graph.size(); ++v) {
    if (!p.edge_attachment_only || graph.node(v).tier != Tier::kTier1) {
      eligible.push_back(v);
    }
  }
  if (eligible.empty()) {
    throw std::invalid_argument("attach_hosts: no eligible ASes");
  }
  HostAttachment out;
  out.host_as.resize(p.num_hosts);
  out.host_cluster.resize(p.num_hosts);
  out.access_ms.resize(p.num_hosts);
  for (std::uint32_t h = 0; h < p.num_hosts; ++h) {
    const AsId as = eligible[rng.uniform_index(eligible.size())];
    out.host_as[h] = as;
    out.host_cluster[h] = graph.node(as).cluster;
    if (rng.bernoulli(p.satellite_access_prob)) {
      out.access_ms[h] =
          rng.uniform(p.satellite_access_min_ms, p.satellite_access_max_ms);
    } else {
      out.access_ms[h] =
          std::exp(rng.normal(p.access_log_mu, p.access_log_sigma));
    }
  }
  return out;
}

/// Builds the two host matrices given per-AS-pair delays. as_delay(a, b)
/// must be symmetric-averaged already.
template <typename AsDelayFn, typename OptDelayFn>
DelaySpace assemble(const HostAttachment& att, const HostParams& p,
                    AsDelayFn&& as_delay, OptDelayFn&& opt_delay, Rng& rng) {
  const auto n = static_cast<HostId>(att.host_as.size());
  DelaySpace ds;
  ds.measured = DelayMatrix(n);
  ds.optimal = DelayMatrix(n);
  ds.host_as = att.host_as;
  ds.host_cluster = att.host_cluster;
  ds.host_access_ms = att.access_ms;
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i + 1; j < n; ++j) {
      const double access = att.access_ms[i] + att.access_ms[j];
      double measured = access + as_delay(att.host_as[i], att.host_as[j]);
      const double optimal = access + opt_delay(att.host_as[i], att.host_as[j]);
      if (p.measurement_noise_sigma > 0.0) {
        measured *= std::exp(rng.normal(0.0, p.measurement_noise_sigma));
      }
      if (p.additive_jitter_ms > 0.0) {
        measured += std::abs(rng.normal(0.0, p.additive_jitter_ms));
      }
      // Policy paths are never shorter than shortest paths, and noise can
      // only be trusted to keep that ordering approximately; clamp so the
      // "optimal" matrix is a true lower bound.
      measured = std::max(measured, optimal);
      // Measurement artifacts bypass the physical lower bound on purpose:
      // an erroneous low sample is below what the network can deliver.
      if (p.under_measurement_prob > 0.0 &&
          rng.bernoulli(p.under_measurement_prob)) {
        measured *= rng.uniform(p.under_measurement_low, 0.5);
      }
      if (p.missing_fraction > 0.0 && rng.bernoulli(p.missing_fraction)) {
        continue;  // leave the pair missing in both matrices
      }
      ds.measured.set(i, j, static_cast<float>(measured));
      ds.optimal.set(i, j, static_cast<float>(optimal));
    }
  }
  return ds;
}

}  // namespace

DelaySpace generate_hosts_over(const AsGraph& graph,
                               const routing::PolicyRoutingMatrix& policy,
                               const HostParams& params) {
  Rng rng(params.seed);
  const HostAttachment att = attach_hosts(graph, params, rng);
  const routing::ShortestPathMatrix shortest(graph);
  auto policy_delay = [&](AsId a, AsId b) {
    if (a == b) return 0.0;
    const auto& fwd = policy.route(a, b);
    const auto& rev = policy.route(b, a);
    if (!fwd.reachable() || !rev.reachable()) {
      // The generator guarantees reachability (stubs always have provider
      // chains to the peered tier-1 core); an unreachable pair means the
      // topology is malformed.
      throw std::logic_error("generate_hosts_over: unreachable AS pair");
    }
    const double base = (fwd.data_delay_ms + rev.data_delay_ms) / 2.0;
    const double factor = as_pair_anomaly(params, params.seed, a, b);
    if (factor <= 1.0) return base;
    return std::min(base * factor,
                    std::max(base, params.anomaly_max_delay_ms));
  };
  auto optimal_delay = [&](AsId a, AsId b) {
    return a == b ? 0.0 : shortest.delay(a, b);
  };
  return assemble(att, params, policy_delay, optimal_delay, rng);
}

DelaySpace generate_delay_space(const DelaySpaceParams& params) {
  const AsGraph graph = topology::generate_topology(params.topology);
  const routing::PolicyRoutingMatrix policy(graph);
  return generate_hosts_over(graph, policy, params.hosts);
}

DelaySpace generate_iid_inflation(const DelaySpaceParams& params,
                                  double inflation_pareto_shape) {
  const AsGraph graph = topology::generate_topology(params.topology);
  Rng rng(params.hosts.seed);
  const HostAttachment att = attach_hosts(graph, params.hosts, rng);
  const routing::ShortestPathMatrix shortest(graph);
  // Every pair is inflated independently of the topology: Pareto(1, shape),
  // so most pairs see mild inflation and a heavy tail sees large inflation.
  auto optimal_delay = [&](AsId a, AsId b) {
    return a == b ? 0.0 : shortest.delay(a, b);
  };
  Rng inflation_rng = rng.split();
  auto inflated_delay = [&](AsId a, AsId b) {
    return optimal_delay(a, b) *
           inflation_rng.pareto(1.0, inflation_pareto_shape);
  };
  return assemble(att, params.hosts, inflated_delay, optimal_delay, rng);
}

}  // namespace tiv::delayspace
