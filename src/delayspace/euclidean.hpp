// Artificial Euclidean delay matrices — TIV-free control inputs. The paper
// uses one in Fig. 14 to show idealized Meridian is near-perfect when the
// triangle inequality actually holds.
#pragma once

#include <cstdint>

#include "delayspace/delay_matrix.hpp"

namespace tiv::delayspace {

struct EuclideanParams {
  HostId num_hosts = 1000;
  std::uint32_t dimension = 5;
  /// Hosts are uniform in [0, side_ms]^dimension, so delays span roughly
  /// [0, side_ms * sqrt(dimension)].
  double side_ms = 150.0;
  std::uint64_t seed = 61;
};

/// Generates pairwise Euclidean distances between random points. The result
/// satisfies the triangle inequality exactly (up to float rounding).
DelayMatrix euclidean_matrix(const EuclideanParams& params = {});

}  // namespace tiv::delayspace
