// Overlay (detour) shortest paths over a measured delay matrix: the best
// multi-hop path through other hosts. For an edge that violates the triangle
// inequality, the overlay shortest path is strictly shorter than the direct
// edge — Fig. 8 plots this length distribution, and the gap is the detour-
// routing gain a TIV-aware overlay can harvest.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"

namespace tiv::delayspace {

/// All-pairs shortest overlay paths (blocked Floyd-Warshall over a flat
/// float buffer: sequential k, row-block x column-tile relaxation in
/// parallel — bit-identical to the textbook row sweep). Missing direct
/// measurements are treated as absent edges; a pair is still reachable
/// through intermediate hosts. O(N^3) time, O(N^2) space.
class OverlayPaths {
 public:
  explicit OverlayPaths(const DelayMatrix& matrix);

  /// Shortest overlay delay (<= direct delay whenever the direct edge
  /// exists; may pass through any number of intermediate hosts).
  float delay(HostId i, HostId j) const {
    return dist_[static_cast<std::size_t>(i) * n_ + j];
  }

  /// Direct minus overlay delay; > 0 means a detour beats the direct path.
  float detour_gain(const DelayMatrix& matrix, HostId i, HostId j) const;

  std::size_t size() const { return n_; }

 private:
  HostId n_ = 0;
  std::vector<float> dist_;
};

}  // namespace tiv::delayspace
