#include "delayspace/delay_matrix.hpp"

#include <bit>
#include <cassert>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tiv::delayspace {

DelayMatrix::DelayMatrix(HostId n) : n_(n) {
  data_.assign(static_cast<std::size_t>(n) * n, kMissing);
  for (HostId i = 0; i < n; ++i) data_[idx(i, i)] = 0.0f;
}

void DelayMatrix::set(HostId i, HostId j, float delay_ms) {
  assert(i < n_ && j < n_ && i != j);
  assert(delay_ms >= 0.0f || delay_ms == kMissing);
  data_[idx(i, j)] = delay_ms;
  data_[idx(j, i)] = delay_ms;
}

std::size_t DelayMatrix::measured_pair_count() const {
  std::size_t count = 0;
  for (HostId i = 0; i < n_; ++i) {
    for (HostId j = i + 1; j < n_; ++j) count += has(i, j);
  }
  return count;
}

double DelayMatrix::missing_fraction() const {
  if (n_ < 2) return 0.0;
  const auto total = static_cast<double>(n_) * (n_ - 1) / 2.0;
  return 1.0 - static_cast<double>(measured_pair_count()) / total;
}

std::vector<double> DelayMatrix::all_delays() const {
  std::vector<double> out;
  out.reserve(measured_pair_count());
  for (HostId i = 0; i < n_; ++i) {
    for (HostId j = i + 1; j < n_; ++j) {
      if (has(i, j)) out.push_back(at(i, j));
    }
  }
  return out;
}

void DelayMatrix::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("DelayMatrix::save: cannot open " + path);
  out << n_ << '\n';
  for (HostId i = 0; i < n_; ++i) {
    for (HostId j = i + 1; j < n_; ++j) {
      if (has(i, j)) out << i << ' ' << j << ' ' << at(i, j) << '\n';
    }
  }
  if (!out) throw std::runtime_error("DelayMatrix::save: write failed");
}

DelayMatrix DelayMatrix::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("DelayMatrix::load: cannot open " + path);
  HostId n = 0;
  if (!(in >> n)) throw std::runtime_error("DelayMatrix::load: bad header");
  DelayMatrix m(n);
  HostId i = 0;
  HostId j = 0;
  float d = 0.0f;
  while (in >> i >> j >> d) {
    if (i >= n || j >= n || i == j || d < 0.0f) {
      std::ostringstream msg;
      msg << "DelayMatrix::load: bad entry " << i << ' ' << j << ' ' << d;
      throw std::runtime_error(msg.str());
    }
    m.set(i, j, d);
  }
  if (!in.eof()) throw std::runtime_error("DelayMatrix::load: parse error");
  return m;
}

namespace {

std::size_t view_stride(HostId n) {
  const std::size_t stride =
      ((static_cast<std::size_t>(n) + DelayMatrixView::kLaneFloats - 1) /
       DelayMatrixView::kLaneFloats) *
      DelayMatrixView::kLaneFloats;
  return stride == 0 ? DelayMatrixView::kLaneFloats : stride;
}

std::size_t view_mask_words(HostId n) {
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  return words == 0 ? 1 : words;
}

}  // namespace

std::size_t DelayMatrixView::bytes_for(HostId n) {
  return (static_cast<std::size_t>(n) * view_stride(n) + kLaneFloats) *
             sizeof(float) +
         static_cast<std::size_t>(n) * view_mask_words(n) *
             sizeof(std::uint64_t);
}

DelayMatrixView::DelayMatrixView(const DelayMatrix& m) : n_(m.size()) {
  stride_ = view_stride(n_);
  mask_words_ = view_mask_words(n_);

  // 64-byte-aligned delay rows; std::vector gives no alignment guarantee
  // beyond alignof(float), so over-allocate and align the base by hand.
  // Aligning the base to the padding granularity is what makes *every* row
  // start 64-byte aligned (stride_ is a multiple of kLaneFloats).
  static_assert(kLaneFloats * sizeof(float) == 64,
                "row alignment contract assumes 64-byte lanes");
  delay_storage_.assign(static_cast<std::size_t>(n_) * stride_ + kLaneFloats,
                        kMaskedDelay);
  auto addr = reinterpret_cast<std::uintptr_t>(delay_storage_.data());
  const std::size_t misalign =
      (addr / sizeof(float)) % kLaneFloats == 0
          ? 0
          : kLaneFloats - (addr / sizeof(float)) % kLaneFloats;
  delays_ = delay_storage_.data() + misalign;

  masks_.assign(static_cast<std::size_t>(n_) * mask_words_, 0);
  for (HostId i = 0; i < n_; ++i) {
    pack_row_segment(m, i, 0, n_, delays_ + i * stride_,
                     masks_.data() + i * mask_words_);
    // padding columns [n_, stride_) already hold kMaskedDelay
  }
}

void DelayMatrixView::pack_row_segment(const DelayMatrix& m, HostId i,
                                       HostId col_begin, HostId col_end,
                                       float* out, std::uint64_t* mask) {
  const auto row = m.row(i);
  for (HostId b = col_begin; b < col_end; ++b) {
    const std::size_t lb = b - col_begin;
    const float d = row[b];
    if (b == i) {
      out[lb] = 0.0f;  // diagonal: keeps the b==a/b==c self-exclusion trick
    } else if (d >= 0.0f) {
      out[lb] = d;
      mask[lb >> 6] |= std::uint64_t{1} << (lb & 63);
    } else {
      out[lb] = kMaskedDelay;
    }
  }
}

void DelayMatrixView::repack_row(const DelayMatrix& m, HostId i) {
  assert(m.size() == n_ && i < n_);
  // pack_row_segment only ORs mask bits in, so clear the row's words first;
  // padding columns [n_, stride_) hold kMaskedDelay from construction and
  // are never written by either path, so they stay byte-identical to a
  // fresh build.
  std::uint64_t* mask = masks_.data() + i * mask_words_;
  for (std::size_t w = 0; w < mask_words_; ++w) mask[w] = 0;
  pack_row_segment(m, i, 0, n_, delays_ + i * stride_, mask);
}

std::size_t DelayMatrixView::witness_count(HostId a, HostId c) const {
  const std::uint64_t* ma = mask_row(a);
  const std::uint64_t* mc = mask_row(c);
  std::size_t count = 0;
  for (std::size_t w = 0; w < mask_words_; ++w) {
    count += static_cast<std::size_t>(std::popcount(ma[w] & mc[w]));
  }
  return count;
}

}  // namespace tiv::delayspace
