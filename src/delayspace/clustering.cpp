#include "delayspace/clustering.hpp"

#include <algorithm>
#include <cassert>

namespace tiv::delayspace {

std::vector<HostId> Clustering::grouped_order() const {
  std::vector<HostId> order;
  order.reserve(assignment.size());
  for (const auto& cluster : members) {
    order.insert(order.end(), cluster.begin(), cluster.end());
  }
  order.insert(order.end(), noise.begin(), noise.end());
  return order;
}

Clustering cluster_delay_space(const DelayMatrix& matrix,
                               const ClusteringParams& params) {
  const HostId n = matrix.size();
  const auto thresh = static_cast<float>(params.threshold_ms);
  std::vector<bool> assigned(n, false);
  Clustering out;
  out.assignment.assign(n, -1);

  const auto min_size = static_cast<std::size_t>(
      params.min_major_fraction * static_cast<double>(n));

  for (std::uint32_t c = 0; c < params.max_clusters; ++c) {
    // Seed: unassigned node with the most unassigned close neighbors.
    HostId best_seed = n;
    std::size_t best_count = 0;
    for (HostId i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      std::size_t count = 0;
      const auto row = matrix.row(i);
      for (HostId j = 0; j < n; ++j) {
        if (!assigned[j] && j != i && row[j] >= 0.0f && row[j] < thresh) {
          ++count;
        }
      }
      if (count > best_count || best_seed == n) {
        best_count = count;
        best_seed = i;
      }
    }
    if (best_seed == n || best_count + 1 < std::max<std::size_t>(min_size, 2)) {
      break;  // no remaining major cluster
    }
    std::vector<HostId> cluster{best_seed};
    const auto seed_row = matrix.row(best_seed);
    for (HostId j = 0; j < n; ++j) {
      if (!assigned[j] && j != best_seed && seed_row[j] >= 0.0f &&
          seed_row[j] < thresh) {
        cluster.push_back(j);
      }
    }
    for (HostId m : cluster) assigned[m] = true;
    out.members.push_back(std::move(cluster));
  }

  // Largest cluster first, then fill assignments and the noise bucket.
  std::sort(out.members.begin(), out.members.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  for (std::size_t c = 0; c < out.members.size(); ++c) {
    for (HostId m : out.members[c]) out.assignment[m] = static_cast<int>(c);
  }
  for (HostId i = 0; i < n; ++i) {
    if (!assigned[i]) out.noise.push_back(i);
  }
  return out;
}

double rand_index(const Clustering& clustering,
                  const std::vector<int>& truth_labels) {
  const std::size_t n = clustering.assignment.size();
  assert(truth_labels.size() == n);
  if (n < 2) return 1.0;
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_found = clustering.assignment[i] >= 0 &&
                              clustering.assignment[i] ==
                                  clustering.assignment[j];
      const bool same_truth =
          truth_labels[i] >= 0 && truth_labels[i] == truth_labels[j];
      agree += same_found == same_truth;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace tiv::delayspace
