// Major-cluster extraction from a delay matrix, following the approach of
// the DS^2 study [35]: nodes whose mutual delays are small form continental
// clusters; everything that joins no major cluster is the "noise cluster".
// Used to reproduce Fig. 3 (severity-by-cluster matrix) and Fig. 8 (fraction
// of within-cluster edges vs delay).
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"

namespace tiv::delayspace {

struct ClusteringParams {
  /// Two nodes are "close" when their delay is below this.
  double threshold_ms = 55.0;
  /// Extract at most this many major clusters (the paper uses 3).
  std::uint32_t max_clusters = 3;
  /// A cluster smaller than this fraction of all nodes is not major; its
  /// nodes fall into the noise cluster.
  double min_major_fraction = 0.04;
};

struct Clustering {
  /// Cluster index per node, largest cluster first; -1 = noise cluster.
  std::vector<int> assignment;
  /// Members per major cluster, ordered by descending size.
  std::vector<std::vector<HostId>> members;
  /// Noise-cluster members.
  std::vector<HostId> noise;

  std::size_t num_clusters() const { return members.size(); }
  bool same_cluster(HostId a, HostId b) const {
    return assignment[a] >= 0 && assignment[a] == assignment[b];
  }

  /// Node order for the Fig. 3 matrix rendering: cluster 0 members, then
  /// cluster 1, ..., then noise.
  std::vector<HostId> grouped_order() const;
};

/// Greedy seed-and-grow clustering: repeatedly seed a cluster at the
/// unassigned node with the most unassigned close neighbors and absorb all
/// unassigned nodes within the threshold of the seed. Deterministic.
/// Missing measurements count as "far".
Clustering cluster_delay_space(const DelayMatrix& matrix,
                               const ClusteringParams& params = {});

/// Agreement between a clustering and ground-truth labels, as the fraction
/// of node pairs on which the two partitions agree (Rand index). Labels < 0
/// are noise; noise-noise pairs count as same-cluster in neither partition.
double rand_index(const Clustering& clustering,
                  const std::vector<int>& truth_labels);

}  // namespace tiv::delayspace
