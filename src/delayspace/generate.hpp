// Synthetic Internet delay-space generator.
//
// Composition: an AS-level topology (topology/), valley-free policy routing
// over it (routing/), hosts attached to edge ASes with heavy-tailed access
// delays, and multiplicative measurement noise. The measured host RTT is
//
//   d(i,j) = access_i + access_j
//          + (policy_delay(as_i -> as_j) + policy_delay(as_j -> as_i)) / 2
//          [ * lognormal noise ]
//
// The forward/reverse average keeps the matrix symmetric (the paper works
// with symmetric RTT matrices) while still reflecting route asymmetry.
// Alongside the measured matrix the generator returns the policy-free
// shortest-path matrix — the "what routing could have achieved" baseline
// whose gap to the measured matrix is the root cause of every TIV — plus
// ground-truth cluster labels for validating the clustering module.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "routing/policy_routing.hpp"
#include "topology/as_graph.hpp"
#include "topology/generator.hpp"

namespace tiv::delayspace {

struct HostParams {
  std::uint32_t num_hosts = 1000;

  /// Access-link delay: exp(Normal(mu, sigma)) ms per host. The defaults
  /// give a ~1.5 ms median with a DSL-like tail.
  double access_log_mu = 0.4;
  double access_log_sigma = 0.7;

  /// Fraction of hosts on satellite/dialup access with a delay drawn
  /// uniformly from [satellite_access_min_ms, satellite_access_max_ms].
  /// Their edges all carry a large additive constant, which (a) stretches
  /// the delay range toward the ~1000 ms the measured datasets reach and
  /// (b) produces the §2.1 edge class that is violated by *many* witnesses
  /// at near-1 triangulation ratios.
  double satellite_access_prob = 0.01;
  double satellite_access_min_ms = 150.0;
  double satellite_access_max_ms = 300.0;

  /// Multiplicative measurement noise sigma (lognormal, applied once per
  /// unordered pair). 0 disables noise.
  double measurement_noise_sigma = 0.02;

  /// Additive per-pair jitter (half-normal, ms): last-mile queueing and
  /// server load that is idiosyncratic to the pair. Negligible on long
  /// paths but a large *relative* effect on the few-ms edges that decide
  /// nearest-neighbor questions. Off by default: it raises the marginal-
  /// violation rate noticeably; see EXPERIMENTS.md (Fig. 15 discussion).
  double additive_jitter_ms = 0.0;

  /// Fraction of unordered pairs recorded as missing measurements.
  double missing_fraction = 0.0;

  /// AS-pair routing pathologies: with this probability an (ordered-
  /// normalized) AS pair's policy route is persistently broken — loops,
  /// misconfigured MEDs, satellite backup paths — multiplying its
  /// experienced delay by 1 + Pareto(anomaly_scale, anomaly_shape), capped
  /// at anomaly_cap. Every host pair homed to the two ASes shares the
  /// anomaly, so the effect is structural, not i.i.d. noise. These are the
  /// edges that reach the extreme TIV severities the measured datasets
  /// exhibit (a ~500 ms edge whose detours through most witnesses are
  /// ~60 ms).
  double as_pair_anomaly_prob = 0.012;
  double anomaly_scale = 1.0;
  double anomaly_shape = 1.1;
  double anomaly_cap = 12.0;
  /// The anomalous delay itself is additionally capped at this value, so a
  /// x12 anomaly on an already-long transcontinental path cannot produce
  /// multi-second RTTs the measured datasets do not contain.
  double anomaly_max_delay_ms = 1000.0;

  /// Measurement artifacts: with this (small) probability a host pair's
  /// recorded delay is drastically under-measured — King-style datasets
  /// contain such erroneous low samples. An under-measured edge A-B turns
  /// node B into a "magic" witness that certifies extreme-ratio violations
  /// for otherwise quiet A-C edges; these are the paper's §2.1 edges whose
  /// mean triangulation ratio is huge while they cause fewer than 3
  /// violations.
  double under_measurement_prob = 3e-4;
  /// Artifact multiplier is uniform in [under_measurement_low, 0.5].
  double under_measurement_low = 0.05;

  /// Hosts attach only to stub/tier-2 ASes when true (tier-1 ASes host no
  /// end systems, as in reality).
  bool edge_attachment_only = true;

  std::uint64_t seed = 7;
};

struct DelaySpaceParams {
  topology::TopologyParams topology;
  HostParams hosts;
};

/// A generated delay space with its ground truth.
struct DelaySpace {
  DelayMatrix measured;  ///< policy-routed RTTs (what systems observe)
  DelayMatrix optimal;   ///< policy-free shortest-path RTTs (ground truth)
  std::vector<int> host_cluster;           ///< continent per host (or kNoiseCluster)
  std::vector<topology::AsId> host_as;     ///< attachment AS per host
  std::vector<double> host_access_ms;      ///< access delay per host
};

/// Generates a delay space. Deterministic in the seeds carried by params.
/// Throws std::invalid_argument on unsatisfiable parameters.
DelaySpace generate_delay_space(const DelaySpaceParams& params);

/// Variant that reuses an existing topology + routing solution (used by the
/// generator ablation bench to hold the substrate fixed while swapping the
/// inflation mechanism).
DelaySpace generate_hosts_over(const topology::AsGraph& graph,
                               const routing::PolicyRoutingMatrix& policy,
                               const HostParams& params);

/// Ablation baseline: i.i.d. multiplicative inflation over the *optimal*
/// delays instead of policy routing. Produces TIVs with unrealistically
/// regular severity-vs-length structure; see bench_ablation_generator.
DelaySpace generate_iid_inflation(const DelaySpaceParams& params,
                                  double inflation_pareto_shape = 2.5);

}  // namespace tiv::delayspace
