#include "stream/incremental_severity.hpp"

#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace tiv::stream {

using core::TivAnalyzer;

IncrementalSeverity::IncrementalSeverity(const DelayMatrix& matrix)
    : view_(matrix),
      severities_(TivAnalyzer(matrix).all_severities(&view_.view())) {}

IncrementalSeverity::ApplyStats IncrementalSeverity::apply_epoch(
    const DelayMatrix& matrix, std::span<const HostId> dirty_hosts) {
  ApplyStats stats;
  if (dirty_hosts.empty()) return stats;
  obs::Span span("view-repair");
  view_.apply_epoch(matrix, dirty_hosts);
  stats.rows_repacked = dirty_hosts.size();

  // Every edge incident to a dirty host, each unordered pair once: (h, x)
  // for all x, skipped when x is itself dirty and precedes h (that pair was
  // emitted as (x, h)). Unmeasured pairs are included on purpose — an edge
  // that transitioned measured -> missing this epoch must have its stale
  // severity overwritten with the 0 the batch returns for it, exactly what
  // a from-scratch rebuild would leave there.
  const HostId n = matrix.size();
  std::vector<std::uint8_t> dirty(n, 0);
  for (const HostId h : dirty_hosts) dirty[h] = 1;
  std::vector<std::pair<HostId, HostId>> edges;
  edges.reserve(dirty_hosts.size() * (n - 1));
  for (const HostId h : dirty_hosts) {
    for (HostId x = 0; x < n; ++x) {
      if (x == h || (dirty[x] && x < h)) continue;
      edges.emplace_back(h, x);
    }
  }
  stats.edges_recomputed = edges.size();

  // edge_severity_batch with an explicit view runs witness_ratio_accumulate
  // over the full padded stride and witness_ratio_reduce — the identical
  // float sequence the all_severities kernel produces for that edge — and
  // SeverityMatrix::set stores the same float cast, so each repaired cell
  // is bit-identical to a full rebuild's.
  const TivAnalyzer analyzer(matrix);
  const std::vector<double> sevs =
      analyzer.edge_severity_batch(edges, &view_.view());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    severities_.set(edges[e].first, edges[e].second,
                    static_cast<float>(sevs[e]));
  }
  return stats;
}

}  // namespace tiv::stream
