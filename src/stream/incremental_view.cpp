#include "stream/incremental_view.hpp"

#include "util/parallel.hpp"

namespace tiv::stream {

void IncrementalView::apply_epoch(const DelayMatrix& matrix,
                                  std::span<const HostId> dirty_hosts) {
  // Row repacks are independent; epochs large enough to matter (bulk churn,
  // initial backfill) spread across the pool, tiny ones stay cheap because
  // parallel_for degenerates to the calling thread.
  parallel_for(dirty_hosts.size(), [&](std::size_t k) {
    view_.repack_row(matrix, dirty_hosts[k]);
  });
  rows_repacked_ += dirty_hosts.size();
}

}  // namespace tiv::stream
