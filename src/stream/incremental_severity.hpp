// Dirty-edge severity maintenance — the streaming engine's O(n^3) ->
// O(dirty * n^2) reduction.
//
// sev(x, y) depends on d(x, y) and on the witness legs d(x, w), d(w, y).
// The entry d(a, b) therefore appears in sev(x, y) iff a or b is an
// endpoint of (x, y): as the edge's own delay when {x, y} == {a, b}, or as
// a witness leg through w == b (resp. w == a) when x or y equals a (resp.
// b). An epoch that perturbed the host set H thus invalidates exactly the
// edges incident to H — |H| * (n - 1) of them, deduplicated — and every
// other severity is untouched.
//
// Those edges are recomputed through TivAnalyzer::edge_severity_batch
// against the incrementally repacked view. That path runs the same
// witness_ratio_accumulate / witness_ratio_reduce lanes over the same
// packed rows as the from-scratch all_severities kernel, so the maintained
// matrix is *bit-identical* to a full rebuild after every epoch — asserted
// by tests/test_stream_engine.cpp over randomized update sequences.
#pragma once

#include <cstdint>
#include <span>

#include "core/severity.hpp"
#include "stream/delay_stream.hpp"
#include "stream/incremental_view.hpp"

namespace tiv::stream {

using core::SeverityMatrix;

class IncrementalSeverity {
 public:
  /// Accounting for one apply_epoch call.
  struct ApplyStats {
    std::size_t rows_repacked = 0;
    std::size_t edges_recomputed = 0;  ///< 0 for a clean epoch
  };

  /// Packs the view and computes the full severity matrix once — the only
  /// O(n^3) step; every epoch after is proportional to the churn.
  explicit IncrementalSeverity(const DelayMatrix& matrix);

  /// Current severities, synchronized to the last applied epoch.
  const SeverityMatrix& severities() const { return severities_; }
  const DelayMatrixView& view() const { return view_.view(); }

  /// Repairs view and severities after an epoch that dirtied
  /// `dirty_hosts` (sorted, distinct — what DelayStream::commit_epoch
  /// returns). `matrix` must be the stream's mutated matrix.
  ApplyStats apply_epoch(const DelayMatrix& matrix,
                         std::span<const HostId> dirty_hosts);

  /// Convenience: commit the stream's pending epoch and apply it.
  ApplyStats apply_epoch(DelayStream& stream) {
    const Epoch epoch = stream.commit_epoch();
    return apply_epoch(stream.matrix(), epoch.dirty_hosts);
  }

 private:
  IncrementalView view_;
  SeverityMatrix severities_;
};

}  // namespace tiv::stream
