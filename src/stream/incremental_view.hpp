// Epoch-synchronized packed view: dirty-row repacking instead of the full
// O(n^2) DelayMatrixView rebuild.
//
// The packed encoding is row-local — an edge update (a, b) changes exactly
// rows a and b (delays and missing bitmask) — so repairing the view after
// an epoch costs O(dirty_hosts * n) row repacks. The repacked view is
// byte-identical to a from-scratch DelayMatrixView over the mutated matrix
// (repack_row reuses pack_row_segment, the single definition of the
// encoding), which is what lets the incremental severity layer keep its
// bit-identity contract.
#pragma once

#include <cstdint>
#include <span>

#include "delayspace/delay_matrix.hpp"

namespace tiv::stream {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

class IncrementalView {
 public:
  /// Packs the full view once (the O(n^2) cost paid a single time).
  explicit IncrementalView(const DelayMatrix& matrix) : view_(matrix) {}

  /// The packed view, valid between apply_epoch calls. Safe to hand to
  /// TivAnalyzer batch calls and the witness kernels.
  const DelayMatrixView& view() const { return view_; }

  /// Repacks the rows of `dirty_hosts` from `matrix` (the same matrix this
  /// view tracks, mutated since the last sync). O(dirty * n).
  void apply_epoch(const DelayMatrix& matrix,
                   std::span<const HostId> dirty_hosts);

  /// Lifetime row-repack counter (bench/diagnostic: incremental work done
  /// vs the n rows a full rebuild would pack per epoch).
  std::uint64_t rows_repacked() const { return rows_repacked_; }

 private:
  DelayMatrixView view_;
  std::uint64_t rows_repacked_ = 0;
};

}  // namespace tiv::stream
