#include "stream/shard_stream.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/shard_severity.hpp"
#include "obs/trace.hpp"
#include "shard/fault_injector.hpp"
#include "stream/epoch_manifest.hpp"

namespace tiv::stream {
namespace {

obs::Counter& engine_epochs_applied() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("engine.epochs_applied");
  return c;
}
obs::Counter& engine_tiles_repacked() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("engine.input_tiles_repacked");
  return c;
}
obs::Counter& engine_sink_tiles_committed() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter(
      "engine.severity_tiles_committed");
  return c;
}
obs::Counter& engine_edges_recomputed() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("engine.edges_recomputed");
  return c;
}
obs::Histogram& engine_epoch_ns() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("engine.epoch_ns");
  return h;
}

std::string derive_path(const std::string& configured, const char* tag) {
  if (!configured.empty()) return configured;
  static std::atomic<unsigned> counter{0};
  const auto name = std::string("tiv_shard_stream_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)) + ".tiles";
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Ceiling on heal/retry actions per engine operation: generous enough for
/// a soak run's worth of injected faults inside one repair pass, small
/// enough that persistent unhealable damage (or an injector so hot the
/// heal path itself never completes) fails loudly instead of spinning.
constexpr int kMaxRecoveryActions = 256;

}  // namespace

ShardStreamEngine::ShardStreamEngine(const delayspace::DelayMatrix& initial,
                                     ShardStreamConfig config)
    : config_(std::move(config)) {
  config_.input_path = derive_path(config_.input_path, "in");
  config_.sink_path = derive_path(config_.sink_path, "sev");
  // The destructor never runs for a partially-constructed engine, so a
  // failure after the spill files appear (disk full during the sink
  // create, an I/O error in the initial build) must clean them up here —
  // they are matrix-sized, and keep_files promised removal.
  struct SpillGuard {
    const ShardStreamConfig& config;
    bool armed = true;
    ~SpillGuard() {
      if (!armed || config.keep_files) return;
      std::error_code ec;  // best-effort, fds may still be open (POSIX ok)
      std::filesystem::remove(config.input_path, ec);
      std::filesystem::remove(config.sink_path, ec);
    }
  } guard{config_};

  shard::TileStore::write_matrix(config_.input_path, initial,
                                 config_.tile_dim);
  input_ = shard::TileStore::open(config_.input_path, /*writable=*/true);
  input_cache_.emplace(*input_, config_.input_budget_bytes);
  sink::SeverityTileStore::create(config_.sink_path, initial.size(),
                                  config_.tile_dim);
  sink_ = sink::SeverityTileStore::open(config_.sink_path,
                                        /*writable=*/true);
  sink_cache_.emplace(*sink_, config_.output_budget_bytes);
  core::all_severities_to_sink(*input_, *input_cache_, *sink_);
  guard.armed = false;
  link_recovery_metrics();
}

ShardStreamEngine::ShardStreamEngine(RecoverTag,
                                     const delayspace::DelayMatrix& matrix,
                                     ShardStreamConfig config)
    : config_(std::move(config)), source_(&matrix) {
  if (config_.input_path.empty() || config_.sink_path.empty()) {
    throw std::invalid_argument(
        "ShardStreamEngine::recover: input_path and sink_path must name the "
        "existing store files");
  }
  // Geometry-checked opens: a foreign or stale file (different n or
  // tile_dim than this engine expects) is rejected here instead of
  // serving garbage tiles later.
  input_ = shard::TileStore::open(config_.input_path, /*writable=*/true,
                                  matrix.size(), config_.tile_dim);
  input_cache_.emplace(*input_, config_.input_budget_bytes);
  sink_ = sink::SeverityTileStore::open(config_.sink_path, /*writable=*/true,
                                        matrix.size(), config_.tile_dim);
  sink_cache_.emplace(*sink_, config_.output_budget_bytes);

  link_recovery_metrics();

  const auto manifest =
      EpochManifest::load(EpochManifest::path_for(config_.sink_path));
  if (!manifest.has_value()) return;  // clean shutdown (or torn manifest
                                      // write — stores untouched either way)

  obs::Span span("recovery-action");
  // Torn epoch: only the journaled tiles are suspect. Re-repack every
  // journaled input tile from the post-epoch matrix (idempotent for the
  // ones that did land), then rebuild every journaled sink tile from the
  // now-consistent input store — the full-build one-tile driver, so each
  // converges to exactly the bytes the completed epoch would have written.
  for (const auto& [r, c] : manifest->input_tiles) {
    input_->repack_tile(matrix, r, c);
    input_cache_->invalidate(r, c);
  }
  for (const auto& [r, c] : manifest->sink_tiles) {
    with_recovery([&, r = r, c = c] {
      core::rebuild_sink_tile(*input_, *input_cache_, *sink_, r, c);
      return 0;
    });
    sink_cache_->invalidate(r, c);
  }
  EpochManifest::clear(EpochManifest::path_for(config_.sink_path));
  epochs_applied_ = manifest->generation;
  recovery_.torn_epochs_replayed.increment();
}

void ShardStreamEngine::link_recovery_metrics() {
  auto& reg = obs::MetricsRegistry::instance();
  using Agg = obs::MetricsRegistry::Agg;
  RecoveryCounters& r = recovery_;
  r.links.reserve(4);
  r.links.push_back(
      reg.link("engine.recovery.input_tiles_recovered", Agg::kSum,
               [&r] { return r.input_tiles_recovered.value(); }));
  r.links.push_back(
      reg.link("engine.recovery.sink_tiles_recovered", Agg::kSum,
               [&r] { return r.sink_tiles_recovered.value(); }));
  r.links.push_back(reg.link("engine.recovery.io_retries", Agg::kSum,
                             [&r] { return r.io_retries.value(); }));
  r.links.push_back(
      reg.link("engine.recovery.torn_epochs_replayed", Agg::kSum,
               [&r] { return r.torn_epochs_replayed.value(); }));
}

ShardStreamEngine ShardStreamEngine::recover(
    const delayspace::DelayMatrix& matrix, ShardStreamConfig config) {
  return ShardStreamEngine(RecoverTag{}, matrix, std::move(config));
}

ShardStreamEngine::~ShardStreamEngine() {
  if (config_.keep_files) return;
  // Best-effort cleanup; the stores' fds close in the member destructors
  // after this body (unlink-while-open is fine on POSIX).
  std::error_code ec;
  std::filesystem::remove(config_.input_path, ec);
  std::filesystem::remove(config_.sink_path, ec);
  std::filesystem::remove(EpochManifest::path_for(config_.sink_path), ec);
}

void ShardStreamEngine::heal(const shard::CorruptTileError& e) {
  obs::Span span("recovery-action");
  const std::uint32_t r = e.tile_row();
  const std::uint32_t c = e.tile_col();
  if (e.path() == sink_->path()) {
    // A sink tile is pure function of the input store: rebuild its band
    // pair from scratch — bit-identical to what a full build would write.
    core::rebuild_sink_tile(*input_, *input_cache_, *sink_, r, c);
    sink_cache_->invalidate(r, c);
    recovery_.sink_tiles_recovered.increment();
    return;
  }
  if (e.path() == input_->path() && source_ != nullptr) {
    // The live matrix (DelayStream keeps it in RAM) is the ground truth
    // for input tiles; repack is byte-identical to a fresh build.
    input_->repack_tile(*source_, r, c);
    input_cache_->invalidate(r, c);
    recovery_.input_tiles_recovered.increment();
    return;
  }
  throw e;  // foreign store, or input damage with no repair source
}

template <typename Fn>
auto ShardStreamEngine::with_recovery(Fn&& fn) -> decltype(fn()) {
  int actions = 0;
  for (;;) {
    try {
      return fn();
    } catch (shard::CorruptTileError e) {
      // Heal the named tile, then retry the operation. The heal itself
      // reads tiles and can trip over *another* corrupt tile (or an
      // injected I/O error): heal innermost-first and let the outer retry
      // find whatever is still broken. InjectedCrash is never caught —
      // a simulated kill must propagate to the harness.
      for (;;) {
        if (++actions > kMaxRecoveryActions) throw;
        try {
          heal(e);
          break;
        } catch (const shard::CorruptTileError& inner) {
          e = inner;
        } catch (const shard::InjectedIoError&) {
          recovery_.io_retries.increment();
        }
      }
    } catch (const shard::InjectedIoError&) {
      if (++actions > kMaxRecoveryActions) throw;
      recovery_.io_retries.increment();
    }
  }
}

float ShardStreamEngine::severity(HostId a, HostId b) {
  return with_recovery([&] { return sink_cache_->at(a, b); });
}

void ShardStreamEngine::severity_row(HostId a, std::span<float> out) {
  with_recovery([&] {
    sink_cache_->read_row(a, out);
    return 0;
  });
}

ShardStreamEngine::EpochStats ShardStreamEngine::apply_epoch(
    const delayspace::DelayMatrix& matrix,
    std::span<const HostId> dirty_hosts) {
  EpochStats stats;
  if (matrix.size() != input_->size()) {
    throw std::invalid_argument(
        "ShardStreamEngine::apply_epoch: matrix size changed");
  }
  if (dirty_hosts.empty()) return stats;

  obs::Span epoch_span("epoch");
  const auto epoch_t0 = obs::kEnabled ? obs::SpanTracer::now_ns() : 0;

  const std::uint32_t T = input_->tile_dim();
  const std::uint32_t bands = input_->tiles_per_side();
  std::vector<std::uint8_t> band_dirty(bands, 0);
  for (const HostId h : dirty_hosts) band_dirty[h / T] = 1;

  // `matrix` is the ground truth while this epoch applies: make it the
  // repair source so corrupt input tiles heal mid-epoch too (restored on
  // exit — the caller may not guarantee it outlives the engine).
  struct SourceScope {
    ShardStreamEngine& engine;
    const delayspace::DelayMatrix* saved;
    ~SourceScope() { engine.source_ = saved; }
  } scope{*this, source_};
  source_ = &matrix;

  // 0. Quiesce the prefetcher: hints left over from the previous band-pair
  // scan must not read tiles concurrently with the repacks below (a racing
  // read could pin a tile across invalidate(), or observe a torn write).
  input_cache_->drain_prefetch();

  // 1. Journal the epoch before the first in-place write: the input tiles
  // about to be repacked and the superset of sink tiles that can hold a
  // dirty edge. A kill anywhere past this point leaves a manifest naming
  // every possibly-torn tile; recover() replays exactly those (replaying
  // an untouched one is an idempotent rewrite of identical bytes).
  EpochManifest manifest;
  manifest.generation = epochs_applied_ + 1;
  for (std::uint32_t b = 0; b < bands; ++b) {
    if (!band_dirty[b]) continue;
    for (std::uint32_t c = 0; c < bands; ++c) {
      if (band_dirty[c]) manifest.input_tiles.emplace_back(b, c);
    }
  }
  for (std::uint32_t bi = 0; bi < bands; ++bi) {
    for (std::uint32_t bj = bi; bj < bands; ++bj) {
      if (band_dirty[bi] || band_dirty[bj]) {
        manifest.sink_tiles.emplace_back(bi, bj);
      }
    }
  }
  const std::string manifest_path =
      EpochManifest::path_for(sink_->path());
  manifest.write(manifest_path);

  // 2. Input repair. A changed entry (x, y) requires edge (x, y) updated,
  // and DelayStream dirties both endpoints — so a tile can only have
  // changed when BOTH its row band and its column band hold a dirty host.
  // The changed input tiles are precisely dirty_bands x dirty_bands;
  // repack each in place and drop any cached copy so the severity pass
  // below reads the post-epoch bytes. Tiles with one clean side are
  // byte-identical to a fresh build already and are not touched.
  {
    obs::Span repack_span("tile-repack");
    for (const auto& [b, c] : manifest.input_tiles) {
      input_->repack_tile(matrix, b, c);
      input_cache_->invalidate(b, c);
      ++stats.input_tiles_repacked;
    }
  }

  // 3. Severity repair: recompute the edges incident to dirty hosts and
  // commit the affected sink tiles. Self-healing: a corrupt tile hit by
  // the repair scan is rebuilt and the repair retried (recommitting a
  // tile the aborted attempt already wrote is idempotent).
  const core::SinkRepairStats repair = with_recovery([&] {
    return core::repair_severities_to_sink(*input_, *input_cache_, *sink_,
                                           dirty_hosts);
  });
  stats.severity_tiles_committed = repair.tiles_committed;
  stats.edges_recomputed = repair.edges_recomputed;

  {
    obs::Span commit_span("sink-commit");
    // 4. Sink-cache coherence: drop every cached severity tile that can
    // contain a dirty edge (a superset of the tiles actually rewritten —
    // re-reading an unchanged tile is just a cold read).
    for (const auto& [bi, bj] : manifest.sink_tiles) {
      sink_cache_->invalidate(bi, bj);
    }

    // 5. Commit point: both stores are consistent, drop the journal.
    EpochManifest::clear(manifest_path);
  }
  ++epochs_applied_;
  engine_epochs_applied().increment();
  engine_tiles_repacked().add(stats.input_tiles_repacked);
  engine_sink_tiles_committed().add(stats.severity_tiles_committed);
  engine_edges_recomputed().add(stats.edges_recomputed);
  if (obs::kEnabled) {
    engine_epoch_ns().record(obs::SpanTracer::now_ns() - epoch_t0);
  }
  return stats;
}

}  // namespace tiv::stream
