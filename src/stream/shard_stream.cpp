#include "stream/shard_stream.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/shard_severity.hpp"

namespace tiv::stream {
namespace {

std::string derive_path(const std::string& configured, const char* tag) {
  if (!configured.empty()) return configured;
  static std::atomic<unsigned> counter{0};
  const auto name = std::string("tiv_shard_stream_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)) + ".tiles";
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

ShardStreamEngine::ShardStreamEngine(const delayspace::DelayMatrix& initial,
                                     ShardStreamConfig config)
    : config_(std::move(config)) {
  config_.input_path = derive_path(config_.input_path, "in");
  config_.sink_path = derive_path(config_.sink_path, "sev");
  // The destructor never runs for a partially-constructed engine, so a
  // failure after the spill files appear (disk full during the sink
  // create, an I/O error in the initial build) must clean them up here —
  // they are matrix-sized, and keep_files promised removal.
  struct SpillGuard {
    const ShardStreamConfig& config;
    bool armed = true;
    ~SpillGuard() {
      if (!armed || config.keep_files) return;
      std::error_code ec;  // best-effort, fds may still be open (POSIX ok)
      std::filesystem::remove(config.input_path, ec);
      std::filesystem::remove(config.sink_path, ec);
    }
  } guard{config_};

  shard::TileStore::write_matrix(config_.input_path, initial,
                                 config_.tile_dim);
  input_ = shard::TileStore::open(config_.input_path, /*writable=*/true);
  input_cache_.emplace(*input_, config_.input_budget_bytes);
  sink::SeverityTileStore::create(config_.sink_path, initial.size(),
                                  config_.tile_dim);
  sink_ = sink::SeverityTileStore::open(config_.sink_path,
                                        /*writable=*/true);
  sink_cache_.emplace(*sink_, config_.output_budget_bytes);
  core::all_severities_to_sink(*input_, *input_cache_, *sink_);
  guard.armed = false;
}

ShardStreamEngine::~ShardStreamEngine() {
  if (config_.keep_files) return;
  // Best-effort cleanup; the stores' fds close in the member destructors
  // after this body (unlink-while-open is fine on POSIX).
  std::error_code ec;
  std::filesystem::remove(config_.input_path, ec);
  std::filesystem::remove(config_.sink_path, ec);
}

ShardStreamEngine::EpochStats ShardStreamEngine::apply_epoch(
    const delayspace::DelayMatrix& matrix,
    std::span<const HostId> dirty_hosts) {
  EpochStats stats;
  if (matrix.size() != input_->size()) {
    throw std::invalid_argument(
        "ShardStreamEngine::apply_epoch: matrix size changed");
  }
  if (dirty_hosts.empty()) return stats;

  const std::uint32_t T = input_->tile_dim();
  const std::uint32_t bands = input_->tiles_per_side();
  std::vector<std::uint8_t> band_dirty(bands, 0);
  for (const HostId h : dirty_hosts) band_dirty[h / T] = 1;

  // 0. Quiesce the prefetcher: hints left over from the previous band-pair
  // scan must not read tiles concurrently with the repacks below (a racing
  // read could pin a tile across invalidate(), or observe a torn write).
  input_cache_->drain_prefetch();

  // 1. Input repair. A changed entry (x, y) requires edge (x, y) updated,
  // and DelayStream dirties both endpoints — so a tile can only have
  // changed when BOTH its row band and its column band hold a dirty host.
  // The changed input tiles are precisely dirty_bands x dirty_bands;
  // repack each in place and drop any cached copy so the severity pass
  // below reads the post-epoch bytes. Tiles with one clean side are
  // byte-identical to a fresh build already and are not touched.
  for (std::uint32_t b = 0; b < bands; ++b) {
    if (!band_dirty[b]) continue;
    for (std::uint32_t c = 0; c < bands; ++c) {
      if (!band_dirty[c]) continue;
      input_->repack_tile(matrix, b, c);
      input_cache_->invalidate(b, c);
      ++stats.input_tiles_repacked;
    }
  }

  // 2. Severity repair: recompute the edges incident to dirty hosts and
  // commit the affected sink tiles.
  const core::SinkRepairStats repair = core::repair_severities_to_sink(
      *input_, *input_cache_, *sink_, dirty_hosts);
  stats.severity_tiles_committed = repair.tiles_committed;
  stats.edges_recomputed = repair.edges_recomputed;

  // 3. Sink-cache coherence: drop every cached severity tile that can
  // contain a dirty edge (a superset of the tiles actually rewritten —
  // re-reading an unchanged tile is just a cold read).
  for (std::uint32_t bi = 0; bi < bands; ++bi) {
    for (std::uint32_t bj = bi; bj < bands; ++bj) {
      if (band_dirty[bi] || band_dirty[bj]) sink_cache_->invalidate(bi, bj);
    }
  }
  return stats;
}

}  // namespace tiv::stream
