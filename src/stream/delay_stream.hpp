// Online measurement ingestion — the mutable front end of the streaming
// TIV engine.
//
// The static analyzers (severity kernel, edge engine, detour router) all
// treat the DelayMatrix as an immutable snapshot; WangZN07's second half is
// about TIVs *over time* (the Fig. 10 three-node traces, Fig. 11 severity
// oscillation, the Figs. 20-25 ratio alerts over a live embedding). This
// header is the missing layer between the two: a DelayStream owns a mutable
// DelayMatrix, absorbs batches of raw (a, b, delay, timestamp) samples
// through per-edge smoothing estimators, and tracks exactly which hosts
// were perturbed since the last epoch commit so the incremental consumers
// (IncrementalView, IncrementalSeverity in this directory) can repair their
// derived state in O(dirty * n) instead of rebuilding in O(n^2)/O(n^3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "obs/metrics.hpp"

namespace tiv::stream {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// One raw measurement. A finite delay_ms < 0 (conventionally
/// DelayMatrix::kMissing) reports a *lost* measurement: the edge's
/// estimator history is discarded and the matrix entry transitions to
/// missing — the measured->missing direction of churn the dynamic-neighbor
/// experiments exercise. Non-finite delays (NaN, +-inf) are rejected as
/// producer bugs and only counted.
struct DelaySample {
  HostId a = 0;
  HostId b = 0;
  float delay_ms = 0.0f;
  double timestamp = 0.0;  ///< seconds; per-edge stale samples are dropped
};

/// How raw samples of one edge are folded into its matrix estimate.
enum class SmoothingPolicy {
  kLatest,       ///< estimate = most recent sample
  kEwma,         ///< estimate = alpha * sample + (1 - alpha) * estimate
  kWindowedMin,  ///< estimate = min of the last `window` samples (the
                 ///< Vivaldi-style low-pass that rejects queueing spikes)
};

struct EstimatorParams {
  SmoothingPolicy policy = SmoothingPolicy::kLatest;
  float ewma_alpha = 0.25f;  ///< weight of the newest sample (kEwma)
  std::uint32_t window = 8;  ///< ring capacity (kWindowedMin), >= 1
};

/// Per-edge smoothing state. kLatest carries no history; kEwma one float;
/// kWindowedMin a fixed-capacity ring of the most recent samples. A
/// DelayStream materializes one lazily per edge on first sample and drops
/// it again on a loss report, so idle edges cost nothing.
class EdgeEstimator {
 public:
  explicit EdgeEstimator(const EstimatorParams& params);

  /// Folds one measured sample (>= 0) in and returns the new estimate.
  float update(float sample_ms);

  /// Current estimate; DelayMatrix::kMissing before the first update.
  float estimate() const { return estimate_; }

 private:
  EstimatorParams params_;
  float estimate_ = DelayMatrix::kMissing;
  std::vector<float> ring_;     ///< kWindowedMin only
  std::uint32_t ring_next_ = 0;
  std::uint32_t ring_count_ = 0;
};

/// Per-epoch ingestion accounting. A view: the stream maintains these as
/// cumulative obs registry metrics ("stream.samples_applied", ...) and
/// commit_epoch reports the delta since the previous commit, so every
/// count is kept exactly once (docs/OBSERVABILITY.md). Counts read zero
/// under TIV_OBS_DISABLE.
struct EpochStats {
  std::size_t samples_applied = 0;  ///< accepted into an estimator
  /// Rejection breakdown — which guard fired. The registry keeps the
  /// aggregate "stream.samples_rejected" as a second link over the same
  /// three counters, so dashboards keyed on the old name keep working.
  std::size_t rejected_self_pair = 0;  ///< a == b or an out-of-range host id
  std::size_t rejected_stale = 0;      ///< older than the edge's newest sample
  std::size_t rejected_nonfinite = 0;  ///< NaN / +-inf delay (producer bug)
  std::size_t edges_touched = 0;       ///< matrix-changing updates (an edge
                                       ///< re-updated in-epoch counts each time)
  std::size_t became_measured = 0;     ///< missing -> measured transitions
  std::size_t became_missing = 0;      ///< measured -> missing transitions

  /// Aggregate view over the rejection breakdown.
  std::size_t samples_rejected() const {
    return rejected_self_pair + rejected_stale + rejected_nonfinite;
  }
};

/// A sealed epoch: the sorted distinct hosts whose matrix rows changed,
/// plus the ingestion stats. This is the unit the incremental consumers
/// synchronize on.
struct Epoch {
  std::uint64_t index = 0;
  std::vector<HostId> dirty_hosts;  ///< ascending, distinct
  EpochStats stats;
};

/// Batched ingestion of delay samples into a mutable matrix.
///
/// Epoch model: ingest() any number of batches, then commit_epoch() to seal
/// the accumulated perturbation into an Epoch. A host enters the dirty set
/// only when an update actually changed its matrix row (a repeated
/// latest-sample of the identical value, or an EWMA that rounds to the same
/// float, stays clean), so steady-state traffic yields near-empty epochs.
///
/// Out-of-order protection: a sample older than the newest timestamp
/// already applied to its edge is rejected (counted, not applied) — the
/// arrival-order hazard of a real ingest fan-in.
class DelayStream {
 public:
  explicit DelayStream(DelayMatrix initial, EstimatorParams params = {});

  const DelayMatrix& matrix() const { return matrix_; }
  const EstimatorParams& estimator_params() const { return params_; }

  void ingest(const DelaySample& sample);
  void ingest(std::span<const DelaySample> batch);

  /// Hosts perturbed since the last commit (unsorted, distinct).
  std::size_t pending_dirty_hosts() const { return dirty_hosts_.size(); }
  /// Epochs sealed so far; the next commit returns index epochs_committed().
  std::uint64_t epochs_committed() const { return epoch_; }

  /// Seals the current epoch: returns the sorted dirty-host set and stats,
  /// then clears both for the next epoch.
  Epoch commit_epoch();

 private:
  static std::uint64_t edge_key(HostId i, HostId j) {
    if (i > j) std::swap(i, j);
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }
  void mark_dirty(HostId h);

  /// Cumulative ingestion counters, linked into the metrics registry under
  /// "stream.*". Heap-allocated so the stream stays movable while the
  /// registry links keep probing stable addresses.
  struct IngestCounters {
    obs::Counter samples_applied;
    obs::Counter rejected_self_pair;
    obs::Counter rejected_stale;
    obs::Counter rejected_nonfinite;
    obs::Counter edges_touched;
    obs::Counter became_measured;
    obs::Counter became_missing;
    std::vector<obs::MetricsRegistry::Link> links;
  };
  /// Current cumulative counter values as a stats struct.
  EpochStats cumulative_stats() const;

  DelayMatrix matrix_;
  EstimatorParams params_;
  std::unordered_map<std::uint64_t, EdgeEstimator> estimators_;
  std::unordered_map<std::uint64_t, double> last_timestamp_;
  std::vector<HostId> dirty_hosts_;       ///< distinct, insertion order
  std::vector<std::uint8_t> host_dirty_;  ///< membership bitmap for the above
  std::unique_ptr<IngestCounters> counters_;
  EpochStats committed_base_;  ///< cumulative totals at the last commit
  std::uint64_t epoch_ = 0;
};

}  // namespace tiv::stream
