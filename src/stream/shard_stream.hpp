// Out-of-core live TIV pipeline — the dirty-epoch streaming engine
// (src/stream/) married to the tile stores (src/shard/ input,
// src/sink/ output).
//
// IncrementalSeverity keeps the packed view and the severity matrix in
// RAM; past the memory budget neither fits. A ShardStreamEngine holds both
// on disk and repairs both incrementally after every committed epoch:
//
//   1. An epoch's dirty-host set maps to dirty *input* tiles: an edge
//      update (a, b) changes exactly packed rows a and b and dirties both
//      endpoints, so a changed tile has a dirty host in its row band AND
//      in its column band — the dirty tiles are precisely
//      dirty_bands x dirty_bands. Each is rewritten in place with
//      TileStore::repack_tile (byte-identical to a fresh build, the
//      tile-granular mirror of DelayMatrixView::repack_row) and dropped
//      from the tile cache (the dirty-tile invalidation rule).
//   2. Only the edges incident to dirty hosts are recomputed, through the
//      same band-pair streaming driver as the full out-of-core build
//      (core/shard_severity), and only the sink tiles containing such
//      edges are rewritten and committed with fresh checksums.
//
// After every epoch the sink contents are *bit-identical* to the in-memory
// DelayStream -> IncrementalSeverity -> all_severities path over the same
// mutated matrix (gtest-enforced in tests/test_shard_stream.cpp), while
// tracked memory stays within the configured input + output cache budgets
// (worker-local O(tile^2) scratch excluded, as everywhere in the streaming
// driver).
//
// Survivability (docs/RELIABILITY.md):
//
//   - Every tile read validates its checksum; a corrupt tile surfaces as
//     shard::CorruptTileError carrying the store path and coordinates, and
//     the engine *self-heals* instead of failing the query: a corrupt sink
//     tile is rebuilt from its band pair of the (trusted) input store, a
//     corrupt input tile is repacked from the attached live matrix
//     (attach_source), and the interrupted operation retries. Healed-tile
//     counts are in recovery_stats().
//   - Epoch commits are crash-safe: apply_epoch journals the tiles it is
//     about to rewrite (stream/epoch_manifest) before the first in-place
//     write and clears the journal after the last. recover() reopens the
//     stores of a killed process, replays exactly the journaled tiles, and
//     converges to the state the completed epoch would have produced —
//     bit-identical to the in-memory path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_cache.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"

namespace tiv::shard {
class FaultInjector;
}

namespace tiv::stream {

struct ShardStreamConfig {
  /// Spill paths for the input tile store and the severity sink; "" derives
  /// unique names under the system temp directory.
  std::string input_path;
  std::string sink_path;
  std::uint32_t tile_dim = shard::kDefaultTileDim;
  /// Byte budgets for the two tile caches — the engine's tracked memory.
  std::size_t input_budget_bytes = std::size_t{4} << 20;
  std::size_t output_budget_bytes = std::size_t{4} << 20;
  /// Keep the on-disk stores when the engine is destroyed (default:
  /// removed, like the budgeted analyzers' spill files). Crash-recovery
  /// harnesses set this so the files of a "killed" engine survive for
  /// recover().
  bool keep_files = false;
};

class ShardStreamEngine {
 public:
  /// Accounting for one apply_epoch call.
  struct EpochStats {
    std::size_t input_tiles_repacked = 0;
    std::size_t severity_tiles_committed = 0;
    std::size_t edges_recomputed = 0;
  };

  /// Cumulative self-healing accounting, per store. A view over the
  /// engine's obs registry metrics ("engine.recovery.*" — maintained
  /// exactly once, see docs/OBSERVABILITY.md); counts read zero under
  /// TIV_OBS_DISABLE.
  struct RecoveryStats {
    /// Input tiles repacked from the attached source matrix after failing
    /// their checksum.
    std::size_t input_tiles_recovered = 0;
    /// Sink tiles rebuilt from their band pair after failing their
    /// checksum.
    std::size_t sink_tiles_recovered = 0;
    /// Operations retried after a (transient) injected/device read error.
    std::size_t io_retries = 0;
    /// Torn epochs found and replayed by recover().
    std::size_t torn_epochs_replayed = 0;
    /// Checksum mismatches absorbed by a clean re-read at the tile-file
    /// layer (transient in-flight corruption; never reached the heal
    /// path). Per store — see shard::TileFile::read_retries.
    std::uint64_t input_read_retries = 0;
    std::uint64_t sink_read_retries = 0;
  };

  /// Spills `initial` to the input tile store, creates the severity sink,
  /// and runs the full out-of-core build once — the only O(n^3) step;
  /// every epoch after is proportional to the churn.
  explicit ShardStreamEngine(const delayspace::DelayMatrix& initial,
                             ShardStreamConfig config = {});
  ~ShardStreamEngine();

  ShardStreamEngine(const ShardStreamEngine&) = delete;
  ShardStreamEngine& operator=(const ShardStreamEngine&) = delete;

  /// Reopens the stores a previous engine (same paths in `config`) left on
  /// disk — after a crash or a clean shutdown with keep_files. Rejects a
  /// file whose header geometry does not match (matrix.size(),
  /// config.tile_dim). If a torn epoch manifest is present, replays it:
  /// the journaled input tiles are repacked from `matrix` (which must be
  /// the *post-epoch* matrix — DelayStream mutates it before apply_epoch
  /// runs) and the journaled sink tiles are rebuilt from the repaired
  /// input store, converging bit-identically to the completed epoch. The
  /// matrix is retained as the attached source (see attach_source) and
  /// must outlive the engine.
  static ShardStreamEngine recover(const delayspace::DelayMatrix& matrix,
                                   ShardStreamConfig config);

  /// Repairs input tiles and sink severities after an epoch that dirtied
  /// `dirty_hosts` (ascending, distinct — what DelayStream::commit_epoch
  /// returns). `matrix` must be the stream's mutated matrix (same size as
  /// at construction). Crash-safe: the tiles about to be rewritten are
  /// journaled first, so a kill anywhere inside is recoverable via
  /// recover().
  EpochStats apply_epoch(const delayspace::DelayMatrix& matrix,
                         std::span<const HostId> dirty_hosts);

  /// Convenience: commit the stream's pending epoch and apply it.
  EpochStats apply_epoch(DelayStream& stream) {
    const Epoch epoch = stream.commit_epoch();
    return apply_epoch(stream.matrix(), epoch.dirty_hosts);
  }

  HostId size() const { return input_->size(); }
  std::uint32_t tile_dim() const { return input_->tile_dim(); }

  /// Attaches the live delay matrix as the repair source for corrupt
  /// *input* tiles (DelayStream keeps the full matrix in RAM; only the
  /// packed view and the severities are out-of-core). Without a source,
  /// input corruption outside apply_epoch is unrecoverable and rethrows.
  /// The matrix must outlive the engine or be detached (nullptr) first.
  void attach_source(const delayspace::DelayMatrix* matrix) {
    source_ = matrix;
  }

  /// Severity of edge (a, b), read through the budgeted sink cache —
  /// synchronized to the last applied epoch. Self-heals corrupt tiles
  /// (see RecoveryStats).
  float severity(HostId a, HostId b);
  /// Severity row a (size() floats) through the sink cache. Self-healing.
  void severity_row(HostId a, std::span<float> out);

  /// Epochs applied so far (the generation number journaled by the next
  /// epoch is epochs_applied() + 1).
  std::uint64_t epochs_applied() const { return epochs_applied_; }

  shard::CacheStats input_cache_stats() const { return input_cache_->stats(); }
  shard::CacheStats output_cache_stats() const {
    return sink_cache_->stats();
  }
  RecoveryStats recovery_stats() const {
    RecoveryStats s;
    s.input_tiles_recovered = recovery_.input_tiles_recovered.value();
    s.sink_tiles_recovered = recovery_.sink_tiles_recovered.value();
    s.io_retries = recovery_.io_retries.value();
    s.torn_epochs_replayed = recovery_.torn_epochs_replayed.value();
    s.input_read_retries = input_->read_retries();
    s.sink_read_retries = sink_->read_retries();
    return s;
  }
  const std::string& input_path() const { return input_->path(); }
  const std::string& sink_path() const { return sink_->path(); }

  /// Attach deterministic fault injectors (shard/fault_injector.hpp) to
  /// the two stores — the hook the soak tests and the recovery bench use.
  /// Injectors must outlive the engine or be detached (nullptr) first.
  void set_input_fault_injector(shard::FaultInjector* injector) {
    input_->set_fault_injector(injector);
  }
  void set_sink_fault_injector(shard::FaultInjector* injector) {
    sink_->set_fault_injector(injector);
  }

 private:
  struct RecoverTag {};
  ShardStreamEngine(RecoverTag, const delayspace::DelayMatrix& matrix,
                    ShardStreamConfig config);

  /// Recovery accounting: obs counters linked into the registry under
  /// "engine.recovery.*" (the engine never moves — recover() relies on
  /// guaranteed elision — so probes into these members stay valid).
  struct RecoveryCounters {
    obs::Counter input_tiles_recovered;
    obs::Counter sink_tiles_recovered;
    obs::Counter io_retries;
    obs::Counter torn_epochs_replayed;
    std::vector<obs::MetricsRegistry::Link> links;
  };
  void link_recovery_metrics();

  /// Runs `fn`, healing CorruptTileError (rebuild/repack the named tile)
  /// and retrying transient injected I/O errors, up to a bounded number of
  /// recovery actions. Rethrows what it cannot heal.
  template <typename Fn>
  auto with_recovery(Fn&& fn) -> decltype(fn());

  /// Heals one corrupt tile named by `e`, routing by store path: sink
  /// tiles rebuild from the input store, input tiles repack from the
  /// attached source. Rethrows `e` when it cannot (unknown path, no
  /// source).
  void heal(const shard::CorruptTileError& e);

  ShardStreamConfig config_;
  // Declaration order is lifetime order: caches hold references into their
  // stores and are destroyed first (reverse order).
  std::optional<shard::TileStore> input_;
  std::optional<shard::TileCache> input_cache_;
  std::optional<sink::SeverityTileStore> sink_;
  std::optional<sink::SeverityCache> sink_cache_;
  const delayspace::DelayMatrix* source_ = nullptr;
  std::uint64_t epochs_applied_ = 0;
  RecoveryCounters recovery_;
};

}  // namespace tiv::stream
