// Out-of-core live TIV pipeline — the dirty-epoch streaming engine
// (src/stream/) married to the tile stores (src/shard/ input,
// src/sink/ output).
//
// IncrementalSeverity keeps the packed view and the severity matrix in
// RAM; past the memory budget neither fits. A ShardStreamEngine holds both
// on disk and repairs both incrementally after every committed epoch:
//
//   1. An epoch's dirty-host set maps to dirty *input* tiles: an edge
//      update (a, b) changes exactly packed rows a and b and dirties both
//      endpoints, so a changed tile has a dirty host in its row band AND
//      in its column band — the dirty tiles are precisely
//      dirty_bands x dirty_bands. Each is rewritten in place with
//      TileStore::repack_tile (byte-identical to a fresh build, the
//      tile-granular mirror of DelayMatrixView::repack_row) and dropped
//      from the tile cache (the dirty-tile invalidation rule).
//   2. Only the edges incident to dirty hosts are recomputed, through the
//      same band-pair streaming driver as the full out-of-core build
//      (core/shard_severity), and only the sink tiles containing such
//      edges are rewritten and committed with fresh checksums.
//
// After every epoch the sink contents are *bit-identical* to the in-memory
// DelayStream -> IncrementalSeverity -> all_severities path over the same
// mutated matrix (gtest-enforced in tests/test_shard_stream.cpp), while
// tracked memory stays within the configured input + output cache budgets
// (worker-local O(tile^2) scratch excluded, as everywhere in the streaming
// driver).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_cache.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"

namespace tiv::stream {

struct ShardStreamConfig {
  /// Spill paths for the input tile store and the severity sink; "" derives
  /// unique names under the system temp directory.
  std::string input_path;
  std::string sink_path;
  std::uint32_t tile_dim = shard::kDefaultTileDim;
  /// Byte budgets for the two tile caches — the engine's tracked memory.
  std::size_t input_budget_bytes = std::size_t{4} << 20;
  std::size_t output_budget_bytes = std::size_t{4} << 20;
  /// Keep the on-disk stores when the engine is destroyed (default:
  /// removed, like the budgeted analyzers' spill files).
  bool keep_files = false;
};

class ShardStreamEngine {
 public:
  /// Accounting for one apply_epoch call.
  struct EpochStats {
    std::size_t input_tiles_repacked = 0;
    std::size_t severity_tiles_committed = 0;
    std::size_t edges_recomputed = 0;
  };

  /// Spills `initial` to the input tile store, creates the severity sink,
  /// and runs the full out-of-core build once — the only O(n^3) step;
  /// every epoch after is proportional to the churn.
  explicit ShardStreamEngine(const delayspace::DelayMatrix& initial,
                             ShardStreamConfig config = {});
  ~ShardStreamEngine();

  ShardStreamEngine(const ShardStreamEngine&) = delete;
  ShardStreamEngine& operator=(const ShardStreamEngine&) = delete;

  /// Repairs input tiles and sink severities after an epoch that dirtied
  /// `dirty_hosts` (ascending, distinct — what DelayStream::commit_epoch
  /// returns). `matrix` must be the stream's mutated matrix (same size as
  /// at construction).
  EpochStats apply_epoch(const delayspace::DelayMatrix& matrix,
                         std::span<const HostId> dirty_hosts);

  /// Convenience: commit the stream's pending epoch and apply it.
  EpochStats apply_epoch(DelayStream& stream) {
    const Epoch epoch = stream.commit_epoch();
    return apply_epoch(stream.matrix(), epoch.dirty_hosts);
  }

  HostId size() const { return input_->size(); }
  std::uint32_t tile_dim() const { return input_->tile_dim(); }

  /// Severity of edge (a, b), read through the budgeted sink cache —
  /// synchronized to the last applied epoch.
  float severity(HostId a, HostId b) { return sink_cache_->at(a, b); }
  /// Severity row a (size() floats) through the sink cache.
  void severity_row(HostId a, std::span<float> out) {
    sink_cache_->read_row(a, out);
  }

  shard::CacheStats input_cache_stats() const { return input_cache_->stats(); }
  shard::CacheStats output_cache_stats() const {
    return sink_cache_->stats();
  }
  const std::string& input_path() const { return input_->path(); }
  const std::string& sink_path() const { return sink_->path(); }

 private:
  ShardStreamConfig config_;
  // Declaration order is lifetime order: caches hold references into their
  // stores and are destroyed first (reverse order).
  std::optional<shard::TileStore> input_;
  std::optional<shard::TileCache> input_cache_;
  std::optional<sink::SeverityTileStore> sink_;
  std::optional<sink::SeverityCache> sink_cache_;
};

}  // namespace tiv::stream
