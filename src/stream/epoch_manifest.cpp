#include "stream/epoch_manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "shard/checksum.hpp"

namespace tiv::stream {
namespace {

constexpr char kMagic[8] = {'T', 'I', 'V', 'E', 'P', 'O', 'C', '1'};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("EpochManifest: " + what + ": " + path);
}

void append(std::vector<unsigned char>& buf, const void* data,
            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + bytes);
}

void append_pairs(
    std::vector<unsigned char>& buf,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& tiles) {
  for (const auto& [r, c] : tiles) {
    append(buf, &r, sizeof(r));
    append(buf, &c, sizeof(c));
  }
}

}  // namespace

void EpochManifest::write(const std::string& path) const {
  std::vector<unsigned char> buf;
  buf.reserve(sizeof(kMagic) + sizeof(generation) + 2 * sizeof(std::uint32_t) +
              (input_tiles.size() + sink_tiles.size()) * 8 +
              sizeof(std::uint64_t));
  append(buf, kMagic, sizeof(kMagic));
  append(buf, &generation, sizeof(generation));
  const auto ic = static_cast<std::uint32_t>(input_tiles.size());
  const auto sc = static_cast<std::uint32_t>(sink_tiles.size());
  append(buf, &ic, sizeof(ic));
  append(buf, &sc, sizeof(sc));
  append_pairs(buf, input_tiles);
  append_pairs(buf, sink_tiles);
  const std::uint64_t sum = shard::fnv1a(buf.data(), buf.size());
  append(buf, &sum, sizeof(sum));

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open for writing", path);
  const bool ok =
      ::write(fd, buf.data(), buf.size()) ==
          static_cast<ssize_t>(buf.size()) &&
      ::fsync(fd) == 0;  // must be durable BEFORE the first in-place write
  if (::close(fd) != 0 || !ok) fail("write failed", path);
}

std::optional<EpochManifest> EpochManifest::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    fail("cannot open", path);
  }
  std::vector<unsigned char> buf;
  unsigned char chunk[4096];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof(chunk))) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  ::close(fd);
  if (got < 0) fail("read failed", path);

  // Anything malformed — short file, bad magic, counts that overrun, or a
  // checksum mismatch — is a manifest whose own write tore, i.e. the crash
  // happened before any store mutation: report "clean".
  const std::size_t fixed = sizeof(kMagic) + sizeof(std::uint64_t) +
                            2 * sizeof(std::uint32_t);
  if (buf.size() < fixed + sizeof(std::uint64_t)) return std::nullopt;
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint64_t sum = 0;
  std::memcpy(&sum, buf.data() + buf.size() - sizeof(sum), sizeof(sum));
  if (shard::fnv1a(buf.data(), buf.size() - sizeof(sum)) != sum) {
    return std::nullopt;
  }

  EpochManifest m;
  std::size_t off = sizeof(kMagic);
  std::memcpy(&m.generation, buf.data() + off, sizeof(m.generation));
  off += sizeof(m.generation);
  std::uint32_t ic = 0;
  std::uint32_t sc = 0;
  std::memcpy(&ic, buf.data() + off, sizeof(ic));
  off += sizeof(ic);
  std::memcpy(&sc, buf.data() + off, sizeof(sc));
  off += sizeof(sc);
  if (buf.size() !=
      fixed + (static_cast<std::size_t>(ic) + sc) * 8 + sizeof(sum)) {
    return std::nullopt;
  }
  auto read_pairs =
      [&](std::uint32_t count,
          std::vector<std::pair<std::uint32_t, std::uint32_t>>& tiles) {
        tiles.reserve(count);
        for (std::uint32_t t = 0; t < count; ++t) {
          std::uint32_t r = 0;
          std::uint32_t c = 0;
          std::memcpy(&r, buf.data() + off, sizeof(r));
          off += sizeof(r);
          std::memcpy(&c, buf.data() + off, sizeof(c));
          off += sizeof(c);
          tiles.emplace_back(r, c);
        }
      };
  read_pairs(ic, m.input_tiles);
  read_pairs(sc, m.sink_tiles);
  return m;
}

void EpochManifest::clear(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    fail("cannot remove", path);
  }
}

}  // namespace tiv::stream
