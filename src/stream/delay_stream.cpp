#include "stream/delay_stream.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.hpp"

namespace tiv::stream {

EdgeEstimator::EdgeEstimator(const EstimatorParams& params) : params_(params) {
  if (params_.policy == SmoothingPolicy::kWindowedMin) {
    ring_.assign(std::max<std::uint32_t>(params_.window, 1), 0.0f);
  }
}

float EdgeEstimator::update(float sample_ms) {
  assert(sample_ms >= 0.0f);
  switch (params_.policy) {
    case SmoothingPolicy::kLatest:
      estimate_ = sample_ms;
      break;
    case SmoothingPolicy::kEwma:
      estimate_ = estimate_ < 0.0f
                      ? sample_ms  // first sample seeds the average
                      : params_.ewma_alpha * sample_ms +
                            (1.0f - params_.ewma_alpha) * estimate_;
      break;
    case SmoothingPolicy::kWindowedMin: {
      ring_[ring_next_] = sample_ms;
      ring_next_ = (ring_next_ + 1) % static_cast<std::uint32_t>(ring_.size());
      ring_count_ = std::min<std::uint32_t>(
          ring_count_ + 1, static_cast<std::uint32_t>(ring_.size()));
      float best = ring_[0];
      for (std::uint32_t k = 1; k < ring_count_; ++k) {
        best = std::min(best, ring_[k]);
      }
      estimate_ = best;
      break;
    }
  }
  return estimate_;
}

DelayStream::DelayStream(DelayMatrix initial, EstimatorParams params)
    : matrix_(std::move(initial)),
      params_(params),
      host_dirty_(matrix_.size(), 0),
      counters_(std::make_unique<IngestCounters>()) {
  auto& reg = obs::MetricsRegistry::instance();
  using Agg = obs::MetricsRegistry::Agg;
  IngestCounters& c = *counters_;
  c.links.reserve(8);
  c.links.push_back(reg.link("stream.samples_applied", Agg::kSum,
                             [&c] { return c.samples_applied.value(); }));
  c.links.push_back(reg.link("stream.rejected_self_pair", Agg::kSum,
                             [&c] { return c.rejected_self_pair.value(); }));
  c.links.push_back(reg.link("stream.rejected_stale", Agg::kSum,
                             [&c] { return c.rejected_stale.value(); }));
  c.links.push_back(reg.link("stream.rejected_nonfinite", Agg::kSum,
                             [&c] { return c.rejected_nonfinite.value(); }));
  // Aggregate view: kSum links under one name add up, so the historical
  // "stream.samples_rejected" metric stays exact without a fourth counter.
  c.links.push_back(reg.link("stream.samples_rejected", Agg::kSum, [&c] {
    return c.rejected_self_pair.value() + c.rejected_stale.value() +
           c.rejected_nonfinite.value();
  }));
  c.links.push_back(reg.link("stream.edges_touched", Agg::kSum,
                             [&c] { return c.edges_touched.value(); }));
  c.links.push_back(reg.link("stream.became_measured", Agg::kSum,
                             [&c] { return c.became_measured.value(); }));
  c.links.push_back(reg.link("stream.became_missing", Agg::kSum,
                             [&c] { return c.became_missing.value(); }));
}

void DelayStream::mark_dirty(HostId h) {
  if (!host_dirty_[h]) {
    host_dirty_[h] = 1;
    dirty_hosts_.push_back(h);
  }
}

void DelayStream::ingest(const DelaySample& sample) {
  const HostId n = matrix_.size();
  // Non-finite delays are producer bugs, not loss reports: a NaN that
  // reached the EWMA would poison every later blend, and an inf entry
  // would read as measured to the scalar analyzers but masked to the
  // packed view — the exact divergence the engine's bit-identity contract
  // forbids.
  if (sample.a == sample.b || sample.a >= n || sample.b >= n) {
    counters_->rejected_self_pair.increment();
    return;
  }
  if (!std::isfinite(sample.delay_ms)) {
    counters_->rejected_nonfinite.increment();
    return;
  }
  const std::uint64_t key = edge_key(sample.a, sample.b);
  // Out-of-order guard: an edge's samples must arrive with non-decreasing
  // timestamps; a stale straggler is dropped rather than rewinding the
  // estimate. Equal timestamps are accepted (same-batch re-measurement).
  auto [ts_it, first_sample] = last_timestamp_.try_emplace(key, sample.timestamp);
  if (!first_sample) {
    if (sample.timestamp < ts_it->second) {
      counters_->rejected_stale.increment();
      return;
    }
    ts_it->second = sample.timestamp;
  }
  counters_->samples_applied.increment();

  const float old = matrix_.at(sample.a, sample.b);
  if (sample.delay_ms < 0.0f) {
    // Loss report: drop the smoothing history so a later re-measurement
    // starts fresh instead of averaging against pre-outage state.
    estimators_.erase(key);
    if (old >= 0.0f) {
      matrix_.set_missing(sample.a, sample.b);
      counters_->became_missing.increment();
      counters_->edges_touched.increment();
      mark_dirty(sample.a);
      mark_dirty(sample.b);
    }
    return;
  }

  auto [est_it, inserted] = estimators_.try_emplace(key, params_);
  const float estimate = est_it->second.update(sample.delay_ms);
  if (old < 0.0f) counters_->became_measured.increment();
  // Dirty only on an actual matrix change: a repeated identical estimate
  // keeps the epoch clean and the incremental consumers idle.
  if (old < 0.0f || estimate != old) {
    matrix_.set(sample.a, sample.b, estimate);
    counters_->edges_touched.increment();
    mark_dirty(sample.a);
    mark_dirty(sample.b);
  }
}

void DelayStream::ingest(std::span<const DelaySample> batch) {
  obs::Span span("ingest");
  for (const DelaySample& s : batch) ingest(s);
}

EpochStats DelayStream::cumulative_stats() const {
  EpochStats s;
  const IngestCounters& c = *counters_;
  s.samples_applied = c.samples_applied.value();
  s.rejected_self_pair = c.rejected_self_pair.value();
  s.rejected_stale = c.rejected_stale.value();
  s.rejected_nonfinite = c.rejected_nonfinite.value();
  s.edges_touched = c.edges_touched.value();
  s.became_measured = c.became_measured.value();
  s.became_missing = c.became_missing.value();
  return s;
}

Epoch DelayStream::commit_epoch() {
  Epoch out;
  out.index = epoch_++;
  // The epoch's stats are the registry counters' advance since the last
  // commit — the counters are the single source of truth.
  const EpochStats cur = cumulative_stats();
  out.stats.samples_applied = cur.samples_applied - committed_base_.samples_applied;
  out.stats.rejected_self_pair =
      cur.rejected_self_pair - committed_base_.rejected_self_pair;
  out.stats.rejected_stale = cur.rejected_stale - committed_base_.rejected_stale;
  out.stats.rejected_nonfinite =
      cur.rejected_nonfinite - committed_base_.rejected_nonfinite;
  out.stats.edges_touched = cur.edges_touched - committed_base_.edges_touched;
  out.stats.became_measured = cur.became_measured - committed_base_.became_measured;
  out.stats.became_missing = cur.became_missing - committed_base_.became_missing;
  committed_base_ = cur;
  obs::MetricsRegistry::instance().counter("stream.epochs_committed")
      .increment();
  out.dirty_hosts = std::move(dirty_hosts_);
  std::sort(out.dirty_hosts.begin(), out.dirty_hosts.end());
  for (const HostId h : out.dirty_hosts) host_dirty_[h] = 0;
  dirty_hosts_.clear();
  return out;
}

}  // namespace tiv::stream
