// Crash-consistency journal for the out-of-core epoch commit.
//
// ShardStreamEngine::apply_epoch mutates both store files in place:
// dirty input tiles are repacked, then dirty sink tiles are rewritten. A
// process death mid-batch leaves tiles half-committed — each one is caught
// later by its checksum, but without a journal the *set* of suspect tiles
// is unknown, so recovery would mean re-validating (or rebuilding) every
// tile of both stores.
//
// The manifest is a tiny write-ahead record fixing that set. Protocol:
//
//   1. before the first in-place write of an epoch, write
//      `<sink path>.epoch` listing the epoch's generation number, every
//      input tile about to be repacked, and every sink tile about to be
//      rewritten; fsync it;
//   2. apply the in-place writes (any order, any parallelism);
//   3. remove the manifest — the commit point.
//
// On open, a present manifest means a torn epoch: exactly the journaled
// tiles are suspect; everything else is bit-exact (fixed-size tiles at
// stable offsets — an in-place tile write touches no other tile's bytes).
// ShardStreamEngine::recover() repacks the journaled input tiles from the
// post-epoch matrix and rebuilds the journaled sink tiles from the repaired
// input store, converging to exactly the state a completed epoch would have
// produced. A manifest that fails its own checksum means the crash happened
// during step 1, before any store mutation — the stores are clean and the
// torn manifest is simply discarded.
//
// Format (little-endian, FNV-1a trailer over everything before it):
//
//   [magic "TIVEPOC1"][u64 generation]
//   [u32 input_count][u32 sink_count][input r,c u32 pairs...][sink pairs...]
//   [u64 fnv1a]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tiv::stream {

struct EpochManifest {
  /// Monotone epoch counter (the engine's epochs_applied + 1 at write
  /// time) — lets recovery and tests tell *which* epoch tore.
  std::uint64_t generation = 0;
  /// Input-store tiles the epoch repacks in place, as (r, c).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> input_tiles;
  /// Sink tiles the epoch rewrites in place, as (r, c), r <= c.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sink_tiles;

  /// Durably writes the manifest to `path` (write + fsync; rename-free —
  /// a torn manifest is detected by its checksum and means "no mutation
  /// happened yet"). Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  /// Loads the manifest at `path`. nullopt when the file does not exist OR
  /// exists but fails its checksum (a crash during manifest write — the
  /// stores are untouched, so there is nothing to recover). Throws
  /// std::runtime_error only on hard I/O errors.
  static std::optional<EpochManifest> load(const std::string& path);

  /// Removes the manifest — the epoch's commit point. Missing file is fine
  /// (idempotent); other unlink failures throw std::runtime_error.
  static void clear(const std::string& path);

  /// The manifest path used for a given sink store path.
  static std::string path_for(const std::string& sink_path) {
    return sink_path + ".epoch";
  }
};

}  // namespace tiv::stream
