// Meridian (Wong et al., SIGCOMM 2005): closest-neighbor selection by
// concentric delay rings and recursive online probing, simulated over a
// measured delay matrix.
//
// Each Meridian node organizes other Meridian nodes into rings of
// exponentially increasing radii — ring i spans [alpha*s^(i-1), alpha*s^i)
// with at most k members per ring. A "closest node to target T" query
// measures d(current, T), asks the ring members whose delay to the current
// node lies within [(1-beta)d, (1+beta)d] to probe T, and forwards the query
// to the best prober; with the acceptance threshold enabled, the query stops
// when no member improves on beta*d.
//
// Two extension hooks implement the paper's §5.3 TIV-aware variant without a
// second query engine:
//   * a delay predictor + (ts, tl) thresholds trigger dual ring placement
//     for members whose prediction ratio flags a likely severe TIV;
//   * the same predictor lets a stalled query re-select ring members around
//     the *predicted* target delay and restart once per hop.
// An edge filter hook implements the §4.3 severity-filter strawman (edges
// excluded from ring construction).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "util/rng.hpp"

namespace tiv::meridian {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// Optional delay predictor (e.g. Vivaldi Euclidean distance). Must return
/// a nonnegative estimate for any host pair.
using DelayPredictor = std::function<double(HostId, HostId)>;

/// Optional edge filter: true = the (meridian node, member) edge must not be
/// used for ring construction.
using EdgeFilter = std::function<bool(HostId, HostId)>;

struct MeridianParams {
  double alpha = 1.0;           ///< innermost ring outer radius (ms)
  double s = 2.0;               ///< multiplicative ring growth factor
  std::uint32_t num_rings = 11; ///< rings per node (paper's normal setting)
  std::uint32_t ring_capacity = 16;  ///< k members per ring
  double beta = 0.5;            ///< acceptance threshold
  bool use_termination = true;  ///< false = idealized no-termination mode

  /// TIV-alert integration (all optional):
  DelayPredictor predictor;     ///< delay estimates for the alert mechanism
  double ts = 0.6;              ///< alert when prediction ratio < ts
  double tl = 2.0;              ///< or > tl (stretched edges)
  bool adjust_rings = false;    ///< dual placement of alerted members
  bool restart_on_alert = false;  ///< predicted-delay query restart

  EdgeFilter edge_filter;       ///< §4.3 strawman: drop edges from rings

  std::uint64_t seed = 5;
};

/// One entry of a node's ring structure.
struct RingEntry {
  HostId member = 0;
  float placement_delay = 0.0f;  ///< delay used to choose the ring
  std::uint8_t ring = 0;         ///< 1-based ring index
};

struct QueryResult {
  HostId chosen = 0;        ///< closest Meridian node found
  double chosen_delay = 0;  ///< its measured delay to the target
  std::uint32_t probes = 0; ///< on-demand delay measurements performed
  std::uint32_t hops = 0;   ///< query forwarding steps
  bool restarted = false;   ///< a TIV-alert restart fired during the query
};

class MeridianOverlay {
 public:
  /// Builds ring structures for `nodes` (the Meridian overlay members) over
  /// the matrix. Ring membership candidates are the other overlay nodes, in
  /// seeded random order. The matrix must outlive the overlay.
  MeridianOverlay(const DelayMatrix& matrix, std::vector<HostId> nodes,
                  const MeridianParams& params);
  /// Deleted: the overlay keeps a reference to the matrix; a temporary
  /// would dangle.
  MeridianOverlay(DelayMatrix&&, std::vector<HostId>, const MeridianParams&) =
      delete;

  const std::vector<HostId>& nodes() const { return nodes_; }
  const MeridianParams& params() const { return params_; }

  /// Ring entries of an overlay node (overlay index, not host id).
  const std::vector<RingEntry>& rings_of(std::size_t overlay_index) const {
    return rings_[overlay_index];
  }

  /// Overlay index of a host id, or nullopt if the host is not a Meridian
  /// node.
  std::optional<std::size_t> overlay_index(HostId node) const;

  /// Resolves a "closest node to target" query starting at the given
  /// overlay node. The target may be any host in the matrix.
  QueryResult find_closest(HostId target, HostId start_node) const;

  /// Convenience: starts at a seeded-random overlay node, as clients do.
  QueryResult find_closest(HostId target, Rng& rng) const;

  /// The true closest overlay node to the target (brute force) — the
  /// baseline for percentage-penalty evaluation. Skips nodes without a
  /// measurement to the target; target itself is skipped too.
  std::pair<HostId, double> optimal_node(HostId target) const;

  /// Ring occupancy histogram: entries[r] = total members placed in ring r
  /// across all nodes (1-based; index 0 unused). Used to demonstrate the
  /// §4.3 ring under-population effect.
  std::vector<std::size_t> ring_occupancy() const;

 private:
  std::uint8_t ring_index(double delay) const;
  void build_rings();

  const DelayMatrix& matrix_;
  std::vector<HostId> nodes_;
  MeridianParams params_;
  std::vector<std::vector<RingEntry>> rings_;  // per overlay node
};

}  // namespace tiv::meridian
