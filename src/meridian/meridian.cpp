#include "meridian/meridian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace tiv::meridian {

MeridianOverlay::MeridianOverlay(const DelayMatrix& matrix,
                                 std::vector<HostId> nodes,
                                 const MeridianParams& params)
    : matrix_(matrix), nodes_(std::move(nodes)), params_(params) {
  if (nodes_.size() < 2) {
    throw std::invalid_argument("MeridianOverlay: need at least 2 nodes");
  }
  if (params_.alpha <= 0 || params_.s <= 1.0 || params_.num_rings == 0 ||
      params_.beta <= 0 || params_.beta >= 1) {
    throw std::invalid_argument("MeridianOverlay: bad ring parameters");
  }
  if ((params_.adjust_rings || params_.restart_on_alert) &&
      !params_.predictor) {
    throw std::invalid_argument(
        "MeridianOverlay: TIV-alert features require a predictor");
  }
  build_rings();
}

std::uint8_t MeridianOverlay::ring_index(double delay) const {
  // Ring i (1-based) spans [alpha*s^(i-1), alpha*s^i); delays below alpha
  // fall into ring 1 and delays beyond the outermost ring into the last.
  if (delay < params_.alpha) return 1;
  const auto i = static_cast<std::int64_t>(
      1 + std::floor(std::log(delay / params_.alpha) / std::log(params_.s)));
  return static_cast<std::uint8_t>(
      std::clamp<std::int64_t>(i + 1, 1, params_.num_rings));
}

void MeridianOverlay::build_rings() {
  rings_.resize(nodes_.size());
  Rng rng(params_.seed);
  for (std::size_t vi = 0; vi < nodes_.size(); ++vi) {
    const HostId v = nodes_[vi];
    // Seeded random candidate order: with bounded ring capacity the first
    // arrivals win the slots, as in a deployment where gossip order is
    // arbitrary.
    std::vector<HostId> candidates;
    candidates.reserve(nodes_.size() - 1);
    for (HostId m : nodes_) {
      if (m != v) candidates.push_back(m);
    }
    rng.shuffle(candidates);

    std::vector<std::uint32_t> occupancy(params_.num_rings + 1, 0);
    std::vector<std::uint32_t> adjusted(params_.num_rings + 1, 0);
    // Alert-driven second placements draw from a small separate budget per
    // ring: enough for the paper's "a ring member may be placed into two
    // rings" adjustment, bounded so the extra probing stays at a few
    // percent (the paper reports ~5-6% more on-demand probes).
    const std::uint32_t dual_budget =
        std::max<std::uint32_t>(1, params_.ring_capacity / 8);
    auto try_place = [&](HostId m, double placement_delay, bool is_adjusted) {
      const std::uint8_t r = ring_index(placement_delay);
      auto& used = is_adjusted ? adjusted[r] : occupancy[r];
      const std::uint32_t limit =
          is_adjusted ? dual_budget : params_.ring_capacity;
      if (used >= limit) return;
      // Skip duplicate (member, ring) placements from the dual-placement
      // path.
      for (const RingEntry& e : rings_[vi]) {
        if (e.member == m && e.ring == r) return;
      }
      rings_[vi].push_back({m, static_cast<float>(placement_delay), r});
      ++used;
    };

    for (HostId m : candidates) {
      if (!matrix_.has(v, m)) continue;
      if (params_.edge_filter && params_.edge_filter(v, m)) continue;
      const double measured = matrix_.at(v, m);
      try_place(m, measured, /*is_adjusted=*/false);
      if (params_.adjust_rings && measured > 0) {
        const double predicted = params_.predictor(v, m);
        const double ratio = predicted / measured;
        if (ratio < params_.ts || ratio > params_.tl) {
          // Alerted edge: the member is also placed where the *predicted*
          // delay says it belongs, so a shrunk (severe-TIV) edge cannot
          // hide the member from the rings a query will consult.
          try_place(m, predicted, /*is_adjusted=*/true);
        }
      }
    }
    std::sort(rings_[vi].begin(), rings_[vi].end(),
              [](const RingEntry& a, const RingEntry& b) {
                return a.placement_delay < b.placement_delay;
              });
  }
}

std::optional<std::size_t> MeridianOverlay::overlay_index(HostId node) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) return i;
  }
  return std::nullopt;
}

std::pair<HostId, double> MeridianOverlay::optimal_node(HostId target) const {
  HostId best = nodes_.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (HostId m : nodes_) {
    if (m == target || !matrix_.has(m, target)) continue;
    const double d = matrix_.at(m, target);
    if (d < best_d) {
      best_d = d;
      best = m;
    }
  }
  return {best, best_d};
}

QueryResult MeridianOverlay::find_closest(HostId target,
                                          HostId start_node) const {
  const auto start_idx = overlay_index(start_node);
  if (!start_idx) {
    throw std::invalid_argument("find_closest: start is not an overlay node");
  }

  QueryResult result;
  std::unordered_set<HostId> probed;  // hosts that already measured target
  std::unordered_set<HostId> visited; // overlay nodes the query passed

  auto probe = [&](HostId node) -> double {
    if (node == target || !matrix_.has(node, target)) {
      return std::numeric_limits<double>::infinity();
    }
    if (!probed.insert(node).second) return matrix_.at(node, target);
    ++result.probes;
    return matrix_.at(node, target);
  };

  std::size_t current = *start_idx;
  double d_cur = probe(nodes_[current]);
  result.chosen = nodes_[current];
  result.chosen_delay = d_cur;
  visited.insert(nodes_[current]);

  // The client keeps the best node seen anywhere in the query.
  auto consider = [&](HostId node, double d) {
    if (d < result.chosen_delay) {
      result.chosen = node;
      result.chosen_delay = d;
    }
  };

  while (std::isfinite(d_cur)) {
    // Ring members within the acceptance window probe the target.
    const double lo = (1.0 - params_.beta) * d_cur;
    const double hi = (1.0 + params_.beta) * d_cur;
    HostId next = 0;
    double next_d = std::numeric_limits<double>::infinity();
    auto probe_window = [&](double w_lo, double w_hi) {
      for (const RingEntry& e : rings_[current]) {
        if (e.placement_delay < w_lo) continue;
        if (e.placement_delay > w_hi) break;  // entries sorted by delay
        const double d = probe(e.member);
        if (!std::isfinite(d)) continue;
        consider(e.member, d);
        if (d < next_d && !visited.count(e.member)) {
          next_d = d;
          next = e.member;
        }
      }
    };
    probe_window(lo, hi);

    bool forward = false;
    if (std::isfinite(next_d)) {
      if (!params_.use_termination) {
        forward = next_d < d_cur;  // idealized: any strict improvement
      } else {
        forward = next_d <= params_.beta * d_cur;
      }
    }

    if (!forward && params_.restart_on_alert && params_.use_termination) {
      // The query would stop here. If the edge (current, target) raises a
      // TIV alert — its predicted delay is much smaller than measured — the
      // measured delay is probably inflated by a violation, so re-center
      // the member window on the predicted delay and try once more.
      const double predicted = params_.predictor(nodes_[current], target);
      if (d_cur > 0 && predicted / d_cur < params_.ts) {
        result.restarted = true;
        probe_window((1.0 - params_.beta) * predicted,
                     (1.0 + params_.beta) * predicted);
        if (std::isfinite(next_d) && next_d < d_cur) forward = true;
      }
    }

    if (!forward) break;
    visited.insert(next);
    ++result.hops;
    current = *overlay_index(next);
    d_cur = next_d;
  }
  return result;
}

QueryResult MeridianOverlay::find_closest(HostId target, Rng& rng) const {
  // Clients pick a random entry point; re-draw if we land on the target
  // itself (a Meridian node never asks itself for its own closest peer).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const HostId start = nodes_[rng.uniform_index(nodes_.size())];
    if (start != target) return find_closest(target, start);
  }
  throw std::runtime_error("find_closest: cannot pick a start node");
}

std::vector<std::size_t> MeridianOverlay::ring_occupancy() const {
  std::vector<std::size_t> occ(params_.num_rings + 1, 0);
  for (const auto& rings : rings_) {
    for (const RingEntry& e : rings) ++occ[e.ring];
  }
  return occ;
}

}  // namespace tiv::meridian
