// Ring-membership misplacement analysis (paper Fig. 13).
//
// For an ordered pair (Ni, Nj) at delay d_ij, consider the nodes within
// beta*d_ij of Nj — with the triangle inequality these would all lie within
// [(1-beta) d_ij, (1+beta) d_ij] of Ni and hence in the ring window a query
// through Ni consults. Every such node whose delay to Ni falls outside the
// window is a placement error a real Meridian ring structure cannot avoid.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "util/stats.hpp"

namespace tiv::meridian {

struct MisplacementParams {
  double beta = 0.5;
  double bin_width_ms = 10.0;
  double max_delay_ms = 1000.0;
  /// Sample this many distinct ordered (Ni, Nj) pairs, without replacement
  /// (0 = all pairs; the full scan is O(N^3)). Near-exhaustive sampling may
  /// return fewer pairs than asked (duplicates consume retry attempts).
  std::size_t sample_pairs = 0;
  std::uint64_t seed = 13;
};

/// Returns the binned series: x = d_ij, y = fraction of Nj's beta-ball that
/// would be misplaced in Ni's rings. Pairs whose beta-ball is empty are
/// skipped. Parallelized.
std::vector<Bin> misplacement_series(const delayspace::DelayMatrix& matrix,
                                     const MisplacementParams& params);

/// Overall misplacement fraction across all sampled pairs (used by tests
/// and the in-text claims bench).
double misplacement_fraction(const delayspace::DelayMatrix& matrix,
                             const MisplacementParams& params);

}  // namespace tiv::meridian
