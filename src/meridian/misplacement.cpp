#include "meridian/misplacement.hpp"

#include <unordered_set>

#include "delayspace/delay_matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::meridian {
namespace {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

struct PairResult {
  double d_ij = 0.0;
  double misplaced_fraction = 0.0;
  bool valid = false;
};

// Ring scan over the packed view's masked rows instead of raw
// DelayMatrix::get branches: missing entries are kMaskedDelay (huge), so
// "in Nj's beta-ball" (d_jk <= ball) excludes missing and padding columns
// with no sign test, and a missing d_ik lands outside [lo, hi] on the high
// side — the loop body is branch-free and runs the padded stride in full
// lanes. The two self-columns the branchy scan skipped are corrected in
// O(1) afterwards: k == j always enters the ball (view diagonal is 0) but
// sits exactly at d_ij within [lo, hi]; k == i enters only when
// d_ij <= ball (beta >= 1) and its d_ik = 0 is then inside [lo, hi] too
// (lo <= 0), so both corrections only ever decrement in_ball. Produces
// exactly the counts of evaluate_pair_scalar below.
PairResult evaluate_pair(const DelayMatrixView& view, HostId i, HostId j,
                         double beta) {
  PairResult out;
  const double d_ij = view.row(i)[j];
  if (d_ij >= DelayMatrixView::kMaskedDelay || d_ij <= 0) return out;
  const double ball = beta * d_ij;
  const double lo = (1.0 - beta) * d_ij;
  const double hi = (1.0 + beta) * d_ij;
  const float* row_j = view.row(j);
  const float* row_i = view.row(i);
  const std::size_t stride = view.stride();
  std::size_t in_ball = 0;
  std::size_t misplaced = 0;
  for (std::size_t k = 0; k < stride; ++k) {
    const double d_jk = row_j[k];
    const bool in = d_jk <= ball;
    const double d_ik = row_i[k];
    const bool mis = in & ((d_ik < lo) | (d_ik > hi));
    in_ball += in;
    misplaced += mis;
  }
  // k == j: d_jj = 0 enters the ball (whenever the ball is non-degenerate),
  // and its d_ij is never misplaced.
  if (ball >= 0.0) --in_ball;
  // k == i enters the ball only when d_ij <= ball, i.e. beta >= 1; then
  // lo = (1-beta)*d_ij <= 0 < hi, so its d_ii = 0 was never misplaced and
  // only in_ball needs the correction.
  if (d_ij <= ball) --in_ball;
  if (in_ball == 0) return out;
  out.d_ij = d_ij;
  out.misplaced_fraction =
      static_cast<double>(misplaced) / static_cast<double>(in_ball);
  out.valid = true;
  return out;
}

/// The branchy per-pair scan: no setup cost, right for a handful of
/// sampled pairs where packing the O(N^2) view would dominate.
PairResult evaluate_pair_scalar(const DelayMatrix& matrix, HostId i,
                                HostId j, double beta) {
  PairResult out;
  if (!matrix.has(i, j)) return out;
  const double d_ij = matrix.at(i, j);
  if (d_ij <= 0) return out;
  const double ball = beta * d_ij;
  const double lo = (1.0 - beta) * d_ij;
  const double hi = (1.0 + beta) * d_ij;
  const auto row_j = matrix.row(j);
  const auto row_i = matrix.row(i);
  std::size_t in_ball = 0;
  std::size_t misplaced = 0;
  for (HostId k = 0; k < matrix.size(); ++k) {
    if (k == i || k == j) continue;
    const float d_jk = row_j[k];
    if (d_jk < 0.0f || d_jk > ball) continue;
    ++in_ball;
    const float d_ik = row_i[k];
    if (d_ik < 0.0f || d_ik < lo || d_ik > hi) ++misplaced;
  }
  if (in_ball == 0) return out;
  out.d_ij = d_ij;
  out.misplaced_fraction =
      static_cast<double>(misplaced) / static_cast<double>(in_ball);
  out.valid = true;
  return out;
}

std::vector<PairResult> evaluate_all(const DelayMatrix& matrix,
                                     const MisplacementParams& params) {
  const HostId n = matrix.size();
  std::vector<std::pair<HostId, HostId>> pairs;
  if (params.sample_pairs == 0) {
    pairs.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = 0; j < n; ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
  } else {
    Rng rng(params.seed);
    pairs.reserve(params.sample_pairs);
    // Without replacement (ordered pairs): a duplicate draw would double-
    // count its pair in the fraction/series averages — the same estimator
    // skew PR 1 removed from sampled_severities. Duplicates consume
    // attempts, so near-exhaustive sampling may return fewer pairs rather
    // than loop forever.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(params.sample_pairs * 2);
    std::size_t attempts = 0;
    while (pairs.size() < params.sample_pairs &&
           attempts < params.sample_pairs * 20) {
      ++attempts;
      const auto i = static_cast<HostId>(rng.uniform_index(n));
      const auto j = static_cast<HostId>(rng.uniform_index(n));
      if (i == j || !matrix.has(i, j)) continue;
      const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) |
                                static_cast<std::uint64_t>(j);
      if (!seen.insert(key).second) continue;  // duplicate ordered pair
      pairs.emplace_back(i, j);
    }
  }
  std::vector<PairResult> results(pairs.size());
  // The packed view costs an O(N^2) build that only pays for itself when
  // enough per-pair scans amortize it (same guard as sampled_severities);
  // a small sampled run takes the zero-setup scalar scan instead. The two
  // paths produce identical counts.
  if (pairs.size() * 4 >= n) {
    const DelayMatrixView view(matrix);
    parallel_for(pairs.size(), [&](std::size_t p) {
      results[p] =
          evaluate_pair(view, pairs[p].first, pairs[p].second, params.beta);
    });
  } else {
    parallel_for(pairs.size(), [&](std::size_t p) {
      results[p] = evaluate_pair_scalar(matrix, pairs[p].first,
                                        pairs[p].second, params.beta);
    });
  }
  return results;
}

}  // namespace

std::vector<Bin> misplacement_series(const DelayMatrix& matrix,
                                     const MisplacementParams& params) {
  BinnedSeries series(0.0, params.max_delay_ms, params.bin_width_ms);
  for (const PairResult& r : evaluate_all(matrix, params)) {
    if (r.valid) series.add(r.d_ij, r.misplaced_fraction);
  }
  return series.bins();
}

double misplacement_fraction(const DelayMatrix& matrix,
                             const MisplacementParams& params) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const PairResult& r : evaluate_all(matrix, params)) {
    if (r.valid) {
      sum += r.misplaced_fraction;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace tiv::meridian
