#include "meridian/misplacement.hpp"

#include <atomic>
#include <mutex>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::meridian {
namespace {

using delayspace::DelayMatrix;
using delayspace::HostId;

struct PairResult {
  double d_ij = 0.0;
  double misplaced_fraction = 0.0;
  bool valid = false;
};

PairResult evaluate_pair(const DelayMatrix& matrix, HostId i, HostId j,
                         double beta) {
  PairResult out;
  if (!matrix.has(i, j)) return out;
  const double d_ij = matrix.at(i, j);
  if (d_ij <= 0) return out;
  const double ball = beta * d_ij;
  const double lo = (1.0 - beta) * d_ij;
  const double hi = (1.0 + beta) * d_ij;
  const auto row_j = matrix.row(j);
  const auto row_i = matrix.row(i);
  std::size_t in_ball = 0;
  std::size_t misplaced = 0;
  for (HostId k = 0; k < matrix.size(); ++k) {
    if (k == i || k == j) continue;
    const float d_jk = row_j[k];
    if (d_jk < 0.0f || d_jk > ball) continue;
    ++in_ball;
    const float d_ik = row_i[k];
    if (d_ik < 0.0f || d_ik < lo || d_ik > hi) ++misplaced;
  }
  if (in_ball == 0) return out;
  out.d_ij = d_ij;
  out.misplaced_fraction =
      static_cast<double>(misplaced) / static_cast<double>(in_ball);
  out.valid = true;
  return out;
}

std::vector<PairResult> evaluate_all(const DelayMatrix& matrix,
                                     const MisplacementParams& params) {
  const HostId n = matrix.size();
  std::vector<std::pair<HostId, HostId>> pairs;
  if (params.sample_pairs == 0) {
    pairs.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = 0; j < n; ++j) {
        if (i != j) pairs.emplace_back(i, j);
      }
    }
  } else {
    Rng rng(params.seed);
    pairs.reserve(params.sample_pairs);
    std::size_t attempts = 0;
    while (pairs.size() < params.sample_pairs &&
           attempts < params.sample_pairs * 20) {
      ++attempts;
      const auto i = static_cast<HostId>(rng.uniform_index(n));
      const auto j = static_cast<HostId>(rng.uniform_index(n));
      if (i != j && matrix.has(i, j)) pairs.emplace_back(i, j);
    }
  }
  std::vector<PairResult> results(pairs.size());
  parallel_for(pairs.size(), [&](std::size_t p) {
    results[p] =
        evaluate_pair(matrix, pairs[p].first, pairs[p].second, params.beta);
  });
  return results;
}

}  // namespace

std::vector<Bin> misplacement_series(const DelayMatrix& matrix,
                                     const MisplacementParams& params) {
  BinnedSeries series(0.0, params.max_delay_ms, params.bin_width_ms);
  for (const PairResult& r : evaluate_all(matrix, params)) {
    if (r.valid) series.add(r.d_ij, r.misplaced_fraction);
  }
  return series.bins();
}

double misplacement_fraction(const DelayMatrix& matrix,
                             const MisplacementParams& params) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const PairResult& r : evaluate_all(matrix, params)) {
    if (r.valid) {
      sum += r.misplaced_fraction;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace tiv::meridian
