#include "util/background_queue.hpp"

#include <utility>

namespace tiv {

BackgroundQueue::~BackgroundQueue() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    tasks_.clear();  // pending hints are worthless once the owner dies
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool BackgroundQueue::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stop_) return false;
    if (tasks_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    tasks_.push_back(std::move(task));
    if (!started_) {
      started_ = true;
      worker_ = std::thread([this] { worker_loop(); });
    }
  }
  cv_.notify_one();
  return true;
}

std::size_t BackgroundQueue::dropped() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return dropped_;
}

void BackgroundQueue::drain() {
  std::unique_lock<std::mutex> lk(mutex_);
  tasks_.clear();  // queued hints are stale by definition at a drain point
  idle_cv_.wait(lk, [&] { return !running_; });
}

void BackgroundQueue::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !tasks_.empty(); });
    if (stop_) return;
    auto task = std::move(tasks_.front());
    tasks_.pop_front();
    running_ = true;
    lk.unlock();
    task();  // runs unlocked; exceptions would terminate, like pool workers
    lk.lock();
    running_ = false;
    idle_cv_.notify_all();
  }
}

}  // namespace tiv
