#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace tiv {
namespace {

std::atomic<std::size_t> g_thread_override{0};

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace

std::size_t parallel_thread_count() {
  const std::size_t o = g_thread_override.load(std::memory_order_relaxed);
  return o != 0 ? o : hardware_threads();
}

void set_parallel_thread_count(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = std::min(parallel_thread_count(), n);
  if (workers <= 1) {
    body(0, n);
    return;
  }
  // Static contiguous partition: iterations in this codebase are uniform
  // enough (rows of a matrix) that work stealing would not pay for itself.
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (auto& t : threads) t.join();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace tiv
