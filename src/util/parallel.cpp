#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tiv {
namespace {

// Pool telemetry (docs/OBSERVABILITY.md). Function-local statics: resolved
// once, then each update is a relaxed sharded add.
obs::Counter& pool_jobs() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("pool.jobs");
  return c;
}
obs::Counter& pool_chunks_claimed() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("pool.chunks_claimed");
  return c;
}
obs::Counter& pool_idle_ns() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("pool.idle_ns");
  return c;
}
obs::Gauge& pool_threads() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("pool.threads");
  return g;
}
obs::Histogram& pool_job_ns() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("pool.job_ns");
  return h;
}

std::atomic<std::size_t> g_thread_override{0};

// True while this thread is executing loop iterations (worker or caller).
// Nested parallel calls from such a thread run inline: the pool's job slot
// is single-occupancy, and a worker blocking on a sub-job would deadlock.
thread_local bool t_in_parallel_region = false;

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Persistent worker pool. One job is resident at a time; the calling thread
/// participates, so a pool sized for T-way parallelism holds T-1 threads.
/// Workers sleep on a condition variable between jobs and claim work in
/// [begin, begin + grain) chunks from an atomic counter — the same mechanism
/// serves static partitions (grain = ceil(n / threads)) and dynamic
/// balancing (small caller-chosen grain).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void run(std::size_t n, std::size_t grain,
           const std::function<void(std::size_t, std::size_t)>& body) {
    // The job slot is single-occupancy: concurrent top-level callers queue
    // here (the seed's spawn-per-call design was naturally safe to call
    // from several threads at once; this keeps that property). Same-thread
    // re-entry cannot reach this point — nested calls run inline via
    // t_in_parallel_region.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      // Size the pool from the configured width, not this job's chunk
      // count: with atomic chunk claiming, surplus workers wake, claim
      // nothing, and ack. The pool therefore only shrinks when
      // set_parallel_thread_count lowers the target — never because one
      // small job came through (a restart-shrink per small job would cost
      // more than the spawn-per-call design this replaced).
      resize_locked(lk, parallel_thread_count() - 1);
      job_body_ = &body;
      job_n_ = n;
      job_grain_ = grain;
      next_.store(0, std::memory_order_relaxed);
      pending_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    pool_jobs().increment();
    const auto job_t0 =
        obs::kEnabled ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
    {
      // The caller is a full participant. The guard marks it as inside a
      // parallel region (nested calls from body run inline) and — even if
      // body throws on this thread — waits for the workers, which hold a
      // reference to `body`, to finish draining before run() unwinds.
      JobGuard guard(*this);
      drain();
    }
    if (obs::kEnabled) {
      pool_job_ns().record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - job_t0)
              .count()));
    }
  }

 private:
  ThreadPool() = default;

  /// Caller-side completion guard: restores the nesting flag and joins the
  /// job barrier on every exit path, including exceptional unwinding.
  class JobGuard {
   public:
    explicit JobGuard(ThreadPool& pool) : pool_(pool) {
      t_in_parallel_region = true;
    }
    ~JobGuard() {
      t_in_parallel_region = false;
      std::unique_lock<std::mutex> lk(pool_.mutex_);
      pool_.done_cv_.wait(lk, [&] { return pool_.pending_ == 0; });
      pool_.job_body_ = nullptr;
    }

   private:
    ThreadPool& pool_;
  };

  ~ThreadPool() {
    std::unique_lock<std::mutex> lk(mutex_);
    stop_all_locked(lk);
  }

  // Claims chunks until the job's iteration space is exhausted.
  void drain() {
    const std::size_t n = job_n_;
    const std::size_t grain = job_grain_;
    const auto& body = *job_body_;
    std::size_t claimed = 0;
    for (;;) {
      const std::size_t begin =
          next_.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      ++claimed;
      body(begin, std::min(begin + grain, n));
    }
    // One add for the whole drain, not one per chunk — the claim loop is
    // the hot path of parallel_for_dynamic with small grains.
    if (claimed != 0) pool_chunks_claimed().add(claimed);
  }

  void worker_loop(std::uint64_t seen_generation) {
    t_in_parallel_region = true;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      const auto idle_t0 =
          obs::kEnabled ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
      work_cv_.wait(lk, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (obs::kEnabled) {
        pool_idle_ns().add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle_t0)
                .count()));
      }
      if (stop_) return;
      seen_generation = generation_;
      lk.unlock();
      drain();
      lk.lock();
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }

  // Grows or shrinks to `target` resident workers. Shrinking restarts the
  // pool (rare: only when set_parallel_thread_count lowers the count), so
  // the worker loop never needs per-thread retirement logic.
  void resize_locked(std::unique_lock<std::mutex>& lk, std::size_t target) {
    if (workers_.size() == target) return;
    if (workers_.size() > target) stop_all_locked(lk);
    workers_.reserve(target);
    while (workers_.size() < target) {
      workers_.emplace_back(
          [this, gen = generation_] { worker_loop(gen); });
    }
    // Workers plus the participating caller.
    pool_threads().set(static_cast<std::int64_t>(workers_.size()) + 1);
  }

  // Joins every worker. Expects mutex_ held via lk; reacquires it before
  // returning.
  void stop_all_locked(std::unique_lock<std::mutex>& lk) {
    stop_ = true;
    lk.unlock();
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
    lk.lock();
    stop_ = false;
  }

  std::mutex run_mutex_;  ///< serializes top-level jobs
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;

  // Job slot (valid while pending_ > 0 or the caller is draining).
  const std::function<void(std::size_t, std::size_t)>* job_body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  std::atomic<std::size_t> next_{0};
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

void dispatch(std::size_t n, std::size_t grain,
              const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t threads =
      std::min(parallel_thread_count(), (n + grain - 1) / grain);
  if (threads <= 1 || t_in_parallel_region) {
    body(0, n);
    return;
  }
  ThreadPool::instance().run(n, grain, body);
}

}  // namespace

std::size_t parallel_thread_count() {
  const std::size_t o = g_thread_override.load(std::memory_order_relaxed);
  return o != 0 ? o : hardware_threads();
}

void set_parallel_thread_count(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  // Static contiguous partition: one chunk per thread.
  const std::size_t threads = std::max<std::size_t>(parallel_thread_count(), 1);
  dispatch(n, (n + threads - 1) / threads, body);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

void parallel_for_dynamic(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  dispatch(n, grain, body);
}

}  // namespace tiv
