// Data-parallel loops over a persistent worker pool.
//
// The pool is created lazily on the first parallel call and reused for every
// subsequent one: dispatch is a condition-variable wakeup plus an atomic
// chunk counter, not a spawn/join of fresh std::threads per call (the seed
// design), so the per-call overhead is microseconds instead of the ~100 us a
// thread spawn costs. That matters because the O(N^3) TIV analyzer issues a
// parallel section per matrix and the delay-space generators issue several
// per generation.
//
// Scheduling comes in two flavors:
//  - parallel_for / parallel_for_chunks: contiguous static ranges, one per
//    worker. Right for uniform per-iteration cost (rows of a rectangular
//    matrix).
//  - parallel_for_dynamic: fixed-size chunks claimed from an atomic counter.
//    Right for skewed cost (triangular loops, per-edge work that varies),
//    where a static partition leaves the first worker with several times the
//    work of the last.
#pragma once

#include <cstddef>
#include <functional>

namespace tiv {

/// Number of threads a parallel loop will use, including the calling thread
/// (>= 1).
std::size_t parallel_thread_count();

/// Overrides the thread count; 0 restores the hardware default. Intended for
/// tests and for benchmarks that want single-threaded baselines. The pool
/// resizes lazily on the next parallel call.
void set_parallel_thread_count(std::size_t n);

/// Runs body(i) for every i in [0, n), distributing iterations over worker
/// threads in contiguous chunks. Blocks until all iterations complete.
///
/// body must be safe to invoke concurrently for distinct i. An exception
/// thrown by body on a pool worker terminates the process; one thrown on the
/// calling thread propagates after the workers finish draining (the analyzer
/// loops are noexcept in practice). Nested parallel calls from inside body
/// run serially inline — they do not deadlock the pool — and concurrent
/// top-level calls from different threads are serialized, never corrupted.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) is called on contiguous ranges. Lower
/// dispatch overhead for very cheap per-iteration work.
void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Dynamically scheduled variant: ranges [begin, begin + grain) are claimed
/// from a shared atomic counter, so threads that finish early keep pulling
/// work. Use for skewed workloads (e.g. the triangular (a, c) pair loop of
/// the severity engine). grain trades scheduling overhead against balance;
/// it is clamped to >= 1. Same concurrency/exception contract as
/// parallel_for.
void parallel_for_dynamic(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace tiv
