// Minimal data-parallel loop used by the O(N^3) TIV-severity analyzer and the
// delay-space generators. A full task system is unnecessary: every parallel
// section in this codebase is a single balanced loop over independent rows.
#pragma once

#include <cstddef>
#include <functional>

namespace tiv {

/// Number of worker threads parallel_for will use (>= 1).
std::size_t parallel_thread_count();

/// Overrides the worker count; 0 restores the hardware default. Intended for
/// tests and for benchmarks that want single-threaded baselines.
void set_parallel_thread_count(std::size_t n);

/// Runs body(i) for every i in [0, n), distributing iterations over worker
/// threads in contiguous chunks. Blocks until all iterations complete.
///
/// body must be safe to invoke concurrently for distinct i. Exceptions thrown
/// by body terminate the process (the analyzer loops are noexcept in
/// practice; propagating the first exception would add complexity with no
/// consumer).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) is called on contiguous ranges. Lower
/// dispatch overhead for very cheap per-iteration work.
void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace tiv
