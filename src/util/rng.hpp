// Deterministic, splittable random number generation.
//
// All experiments in this repository are seeded so every figure is exactly
// reproducible run-to-run. Rng wraps xoshiro256** (public-domain algorithm by
// Blackman & Vigna) seeded through SplitMix64, which is both fast and has
// well-understood statistical quality — std::mt19937_64 would also work but
// its 2.5 KB state makes cheap value-semantic copies (used by split()) less
// attractive.
#pragma once

#include <cstdint>
#include <vector>

namespace tiv {

/// xoshiro256** pseudo random generator with convenience distributions.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Derives an independent generator. The child stream is decorrelated from
  /// the parent by hashing the parent's next output with a distinct constant.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0. Heavy-tailed;
  /// used to model routing-inflation outliers.
  double pareto(double xm, double alpha);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm).
  /// Requires k <= n. Result is unsorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tiv
