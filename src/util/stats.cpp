#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tiv {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.p10 = percentile_sorted(values, 10);
  s.median = percentile_sorted(values, 50);
  s.p90 = percentile_sorted(values, 90);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(ss / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_most(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  return percentile_sorted(sorted_, q * 100.0);
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  points = std::min(points, sorted_.size());
  out.reserve(points);
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < points; ++i) {
    // Spread indices evenly, always ending on the final order statistic.
    const std::size_t idx =
        (points == 1) ? sorted_.size() - 1
                      : i * (sorted_.size() - 1) / (points - 1);
    out.emplace_back(sorted_[idx], static_cast<double>(idx + 1) / n);
  }
  return out;
}

BinnedSeries::BinnedSeries(double x_min, double x_max, double bin_width)
    : x_min_(x_min), bin_width_(bin_width) {
  assert(bin_width > 0 && x_max > x_min);
  const auto n =
      static_cast<std::size_t>(std::ceil((x_max - x_min) / bin_width));
  ys_.resize(std::max<std::size_t>(n, 1));
}

void BinnedSeries::add(double x, double y) {
  auto idx = static_cast<std::ptrdiff_t>((x - x_min_) / bin_width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(ys_.size()) - 1);
  ys_[static_cast<std::size_t>(idx)].push_back(y);
}

void BinnedSeries::add_all(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) add(xs[i], ys[i]);
}

std::vector<Bin> BinnedSeries::bins() const {
  std::vector<Bin> out;
  for (std::size_t i = 0; i < ys_.size(); ++i) {
    if (ys_[i].empty()) continue;
    std::vector<double> v = ys_[i];
    std::sort(v.begin(), v.end());
    Bin b;
    b.x_center = x_min_ + (static_cast<double>(i) + 0.5) * bin_width_;
    b.count = v.size();
    b.p10 = percentile_sorted(v, 10);
    b.median = percentile_sorted(v, 50);
    b.p90 = percentile_sorted(v, 90);
    double sum = 0.0;
    for (double y : v) sum += y;
    b.mean = sum / static_cast<double>(v.size());
    out.push_back(b);
  }
  return out;
}

void ErrorAccumulator::add(double predicted, double actual) {
  abs_.push_back(std::abs(predicted - actual));
  if (actual > 0) rel_.push_back(std::abs(predicted - actual) / actual);
}

Summary ErrorAccumulator::absolute_error() const { return summarize(abs_); }
Summary ErrorAccumulator::relative_error() const { return summarize(rel_); }

}  // namespace tiv
