// Pool-friendly background task queue for overlapping I/O with compute.
//
// The parallel pool in util/parallel is single-occupancy: a worker that
// blocked on disk reads would stall every compute chunk behind it, and a
// nested parallel call runs inline anyway. Prefetching therefore needs its
// own (tiny) execution resource. BackgroundQueue is that resource: one
// dedicated thread draining a bounded FIFO of fire-and-forget tasks.
//
// Design points that keep it pool-friendly:
//  - Enqueue never blocks: when the queue is full the task is dropped and
//    enqueue returns false. A prefetch is a hint — the consumer will load
//    the data on demand if the hint was shed — so compute threads (which
//    may themselves be pool workers) never wait on the I/O thread.
//  - One worker thread, started lazily on first enqueue, so constructing a
//    queue that is never used (e.g. prefetch disabled) costs nothing.
//  - The destructor drains nothing: pending tasks are discarded, the
//    in-flight task (if any) is completed. Callers must ensure any state a
//    task touches outlives the queue (TileCache owns its queue and destroys
//    it first).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace tiv {

class BackgroundQueue {
 public:
  /// capacity bounds the number of queued-but-not-started tasks; further
  /// enqueues are shed (return false) until the worker catches up.
  explicit BackgroundQueue(std::size_t capacity = 16) : capacity_(capacity) {}

  BackgroundQueue(const BackgroundQueue&) = delete;
  BackgroundQueue& operator=(const BackgroundQueue&) = delete;

  ~BackgroundQueue();

  /// Schedules task on the worker thread. Returns false (task not run) when
  /// the queue is at capacity or shutting down. Never blocks beyond the
  /// internal mutex.
  bool enqueue(std::function<void()> task);

  /// Tasks shed because the queue was full (monotonic; for stats/tests).
  std::size_t dropped() const;

  /// Discards every queued-but-not-started task and waits for the
  /// in-flight task (if any) to finish. On return the worker is idle and
  /// no task enqueued before the call will run — the quiesce point callers
  /// need before mutating state that queued tasks read (e.g. repacking
  /// tiles a prefetch hint might still be loading). Tasks enqueued
  /// concurrently with drain are not waited for.
  void drain();

 private:
  void worker_loop();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::thread worker_;
  bool started_ = false;
  bool stop_ = false;
  bool running_ = false;  ///< a task is executing outside the lock
  std::size_t dropped_ = 0;
};

}  // namespace tiv
