// Tiny command-line flag parser shared by the benchmark and example binaries.
// Supports --key=value, --key value, and bare boolean --key forms. Unknown
// flags are an error so typos in experiment sweeps fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tiv {

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input (e.g.
  /// "--" prefix missing, or a value flag at the end without a value).
  Flags(int argc, const char* const* argv);

  /// True if the flag was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  /// Bare "--name" and "--name=true/1/yes" are true; "--name=false/0/no" is
  /// false. Throws on other values.
  bool get_bool(const std::string& name, bool def) const;

  /// Names that were parsed but never queried — call at the end of main to
  /// reject typos. Returns the unknown names.
  std::vector<std::string> unconsumed() const;

  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

/// Throws std::invalid_argument listing any flag that was never queried.
void reject_unknown_flags(const Flags& flags);

}  // namespace tiv
