#include "util/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace tiv {
namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::has(const std::string& name) const {
  consumed_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got: " + it->second);
  }
}

double Flags::get_double(const std::string& name, double def) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects a number, got: " + it->second);
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name +
                              " expects a boolean, got: " + v);
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

void reject_unknown_flags(const Flags& flags) {
  const auto unknown = flags.unconsumed();
  if (unknown.empty()) return;
  std::string msg = "unknown flag(s):";
  for (const auto& name : unknown) msg += " --" + name;
  throw std::invalid_argument(msg);
}

}  // namespace tiv
