#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tiv {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees the xoshiro state is never all-zero.
  for (auto& s : s_) s = splitmix64(seed);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() {
  // Mixing with a distinct odd constant decorrelates the child stream from
  // the parent's own future outputs.
  return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection method: unbiased and division-free on
  // the hot path.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
    bool seen = false;
    for (std::uint32_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace tiv
