// Descriptive statistics used throughout the experiment harnesses:
// percentiles, empirical CDFs, and the "binned error-bar series" that most
// of the paper's figures are built from (median + 10th/90th percentile per
// fixed-width x bin).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace tiv {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p10 = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

/// p-th percentile (p in [0,100]) by linear interpolation between order
/// statistics. Returns NaN for an empty sample. Copies and sorts internally.
double percentile(std::vector<double> values, double p);

/// Percentile over already-sorted data (ascending). No copy.
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Full summary of a sample. Returns a zero summary for empty input.
Summary summarize(std::vector<double> values);

/// Empirical cumulative distribution function of a sample.
///
/// Supports the two query directions the figures need: F(x) for plotting a
/// CDF curve, and the inverse quantile for reading off "percentage of tests
/// with penalty below X".
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> values);

  /// Fraction of samples <= x.
  double fraction_at_most(double x) const;

  /// q-th quantile, q in [0,1].
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  const std::vector<double>& sorted_values() const { return sorted_; }

  /// Evenly spaced (value, cumulative fraction) points for printing a curve.
  /// Returns at most `points` rows, always including min and max.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// One x-bin of a BinnedSeries.
struct Bin {
  double x_center = 0.0;
  std::size_t count = 0;
  double p10 = std::numeric_limits<double>::quiet_NaN();
  double median = std::numeric_limits<double>::quiet_NaN();
  double p90 = std::numeric_limits<double>::quiet_NaN();
  double mean = std::numeric_limits<double>::quiet_NaN();
};

/// Fixed-width binning of (x, y) points, reporting 10th/median/90th
/// percentiles of y per bin — the paper's error-bar plot format (Figs. 4-8,
/// 11, 13, 19).
class BinnedSeries {
 public:
  /// Bins span [x_min, x_max) with the given width. Points outside the span
  /// are clamped into the first/last bin.
  BinnedSeries(double x_min, double x_max, double bin_width);

  void add(double x, double y);
  void add_all(const std::vector<double>& xs, const std::vector<double>& ys);

  /// Percentile bins, skipping empty ones.
  std::vector<Bin> bins() const;

  std::size_t bin_count() const { return ys_.size(); }

 private:
  double x_min_;
  double bin_width_;
  std::vector<std::vector<double>> ys_;
};

/// Mean absolute and relative error accumulators used by the embedding
/// evaluations.
class ErrorAccumulator {
 public:
  /// Records a (predicted, actual) pair; actual <= 0 contributes only to the
  /// absolute error (relative error would be undefined).
  void add(double predicted, double actual);

  Summary absolute_error() const;   ///< |predicted - actual|
  Summary relative_error() const;   ///< |predicted - actual| / actual
  std::size_t count() const { return abs_.size(); }

 private:
  std::vector<double> abs_;
  std::vector<double> rel_;
};

}  // namespace tiv
