// Aligned-column table printing for the figure-regeneration benches. Every
// bench prints the same rows/series the paper's figure plots, as plain text
// (and optionally CSV) so runs can be diffed and re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tiv {

/// Accumulates rows of stringified cells and prints them with padded,
/// left-aligned columns. Cell counts may vary per row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 4);

  /// Pretty text with a header underline.
  void print(std::ostream& os) const;

  /// Comma-separated (no quoting — cells in this codebase never contain
  /// commas).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to "-" for NaN.
std::string format_double(double v, int precision = 4);

/// Prints an "=== title ===" section banner used by the bench binaries.
void print_section(std::ostream& os, const std::string& title);

}  // namespace tiv
