#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tiv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format_double(v, precision));
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string format_double(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace tiv
