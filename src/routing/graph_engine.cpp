#include "routing/graph_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace tiv::routing {
namespace {

using topology::AsGraph;
using topology::AsId;

// ---------------------------------------------------------------------------
// Telemetry. References resolved once; hot loops accumulate into plain
// locals and flush per chunk (one relaxed add per counter per chunk).

struct RoutingMetrics {
  obs::Counter& sources_run;
  obs::Counter& heap_pops;
  obs::Counter& edges_relaxed;
  obs::Counter& scratch_allocs;
  obs::Histogram& batch_ns;

  static RoutingMetrics& get() {
    static RoutingMetrics m{
        obs::MetricsRegistry::instance().counter("routing.sources_run"),
        obs::MetricsRegistry::instance().counter("routing.heap_pops"),
        obs::MetricsRegistry::instance().counter("routing.edges_relaxed"),
        obs::MetricsRegistry::instance().counter("routing.scratch_allocs"),
        obs::MetricsRegistry::instance().histogram("routing.batch_ns"),
    };
    return m;
  }
};

struct LocalCounts {
  std::uint64_t sources_run = 0;
  std::uint64_t heap_pops = 0;
  std::uint64_t edges_relaxed = 0;
  std::uint64_t scratch_allocs = 0;

  void flush() const {
    RoutingMetrics& m = RoutingMetrics::get();
    if (sources_run) m.sources_run.add(sources_run);
    if (heap_pops) m.heap_pops.add(heap_pops);
    if (edges_relaxed) m.edges_relaxed.add(edges_relaxed);
    if (scratch_allocs) m.scratch_allocs.add(scratch_allocs);
  }
};

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// ---------------------------------------------------------------------------
// Scratch. Min-heap over caller-owned storage using the exact
// push_heap/pop_heap-with-greater protocol of std::priority_queue, so the
// pop sequence is identical to the scalar reference's queue even before
// noting that all enqueued keys are distinct (pushes happen only on strict
// improvement, and every key embeds the node id).

template <typename K>
class MinHeap {
 public:
  void clear() { items_.clear(); }  // keeps capacity
  bool empty() const { return items_.empty(); }

  void push(const K& k) {
    items_.push_back(k);
    std::push_heap(items_.begin(), items_.end(), std::greater<>{});
  }
  /// Bulk seeding: append without restoring the heap property, then heapify
  /// once with make_heap (O(n) vs n log n repeated pushes). Because every
  /// enqueued key is distinct, pop order is value-determined and unchanged.
  void push_raw(const K& k) { items_.push_back(k); }
  void heapify() { std::make_heap(items_.begin(), items_.end(), std::greater<>{}); }
  K pop() {
    std::pop_heap(items_.begin(), items_.end(), std::greater<>{});
    const K k = items_.back();
    items_.pop_back();
    return k;
  }

  std::size_t capacity() const { return items_.capacity(); }

 private:
  std::vector<K> items_;
};

/// Fixed-width bitset over reusable words (clearing is a memset of
/// ceil(n/64) words, not n bool writes).
class DoneBits {
 public:
  /// Returns the number of allocations performed (0 or 1).
  std::uint64_t ensure(std::size_t n) {
    const std::size_t words = (n + 63) / 64;
    if (words <= words_.size()) return 0;
    const bool grew = words > words_.capacity();
    words_.resize(words);
    return grew ? 1 : 0;
  }
  void reset(std::size_t n) {
    std::fill_n(words_.data(), (n + 63) / 64, std::uint64_t{0});
  }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

 private:
  std::vector<std::uint64_t> words_;
};

template <typename T>
std::uint64_t ensure_lane(std::vector<T>& lane, std::size_t n) {
  if (n <= lane.size()) return 0;
  const bool grew = n > lane.capacity();
  lane.resize(n);
  return grew ? 1 : 0;
}

// Lexicographic priority key for the policy Dijkstra phases; must order
// exactly like the scalar reference's Key (std::tie over cls/hops/delay/
// node).
struct PolicyKey {
  std::uint8_t cls;
  std::uint32_t hops;
  double delay;
  AsId node;

  bool operator>(const PolicyKey& o) const {
    return std::tie(cls, hops, delay, node) >
           std::tie(o.cls, o.hops, o.delay, o.node);
  }
};

using SsspKey = std::pair<double, AsId>;  // (delay, node)

struct SsspWorkspace {
  MinHeap<SsspKey> heap;

  std::uint64_t ensure(std::size_t) { return 0; }  // rows live in `out`
};

struct PolicyWorkspace {
  std::vector<Route> cust;  ///< phase-1 customer routes
  MinHeap<PolicyKey> heap;
  DoneBits done;

  std::uint64_t ensure(std::size_t n) {
    return ensure_lane(cust, n) + done.ensure(n);
  }
};

SsspWorkspace& sssp_workspace() {
  thread_local SsspWorkspace ws;
  return ws;
}

PolicyWorkspace& policy_workspace() {
  thread_local PolicyWorkspace ws;
  return ws;
}

// ---------------------------------------------------------------------------
// Kernels. Each writes one row of the flat output buffer and must produce
// results exactly equal (== on every field) to the scalar references in
// shortest_path.cpp / policy_routing.cpp: same segment scan order
// (providers, customers, peers — the seed's adjacent() order), same
// improvement predicates, same heap discipline.

void relax_segment_sssp(const AsGraph::Segment& seg, double d,
                        std::uint32_t hops_next, PathInfo* dist,
                        MinHeap<SsspKey>& heap, LocalCounts& c) {
  for (std::uint32_t i = 0; i < seg.count; ++i) {
    const double nd = d + seg.data_delay_ms[i];
    const AsId w = seg.neighbor[i];
    if (nd < dist[w].delay_ms) {
      dist[w] = {nd, hops_next};
      heap.push({nd, w});
    }
  }
  c.edges_relaxed += seg.count;
}

void sssp_one(const AsGraph& graph, AsId src, PathInfo* dist,
              SsspWorkspace& ws, LocalCounts& c) {
  const std::size_t n = graph.size();
  std::fill_n(dist, n, PathInfo{});
  dist[src] = {0.0, 0};
  ws.heap.clear();
  ws.heap.push({0.0, src});
  while (!ws.heap.empty()) {
    const auto [d, v] = ws.heap.pop();
    ++c.heap_pops;
    if (d > dist[v].delay_ms) continue;  // stale entry
    // Role-oblivious: one contiguous lane scan over all of v's entries
    // (same order as the providers/customers/peers runs back to back).
    relax_segment_sssp(graph.neighbors(v), d, dist[v].hops + 1, dist, ws.heap,
                       c);
  }
  ++c.sources_run;
}

void policy_one(const AsGraph& graph, AsId dest, Route* best,
                PolicyWorkspace& ws, LocalCounts& c) {
  const std::size_t n = graph.size();
  Route* cust = ws.cust.data();

  // Phase 1: customer routes, flowing up provider chains from dest.
  std::fill_n(cust, n, Route{});
  cust[dest] = {RouteClass::kCustomer, 0, 0.0, 0.0};
  ws.heap.clear();
  ws.heap.push({0, 0, 0.0, dest});
  ws.done.reset(n);
  while (!ws.heap.empty()) {
    const PolicyKey k = ws.heap.pop();
    ++c.heap_pops;
    if (ws.done.test(k.node)) continue;
    ws.done.set(k.node);
    const AsGraph::Segment prov = graph.providers(k.node);
    const double base_data = cust[k.node].data_delay_ms;
    for (std::uint32_t i = 0; i < prov.count; ++i) {
      const Route cand{RouteClass::kCustomer, k.hops + 1,
                       k.delay + prov.delay_ms[i],
                       base_data + prov.data_delay_ms[i]};
      const AsId w = prov.neighbor[i];
      if (cand.better_than(cust[w])) {
        cust[w] = cand;
        ws.heap.push({0, cand.hops, cand.delay_ms, w});
      }
    }
    c.edges_relaxed += prov.count;
  }

  // Phase 2 + 3 seeds: best of customer route and peer route per AS
  // (a peer exports only customer-learned routes).
  std::copy_n(cust, n, best);
  for (AsId v = 0; v < n; ++v) {
    const AsGraph::Segment peers = graph.peers(v);
    for (std::uint32_t i = 0; i < peers.count; ++i) {
      const Route& via = cust[peers.neighbor[i]];
      if (!via.reachable()) continue;
      const Route cand{RouteClass::kPeer, via.hops + 1,
                       via.delay_ms + peers.delay_ms[i],
                       via.data_delay_ms + peers.data_delay_ms[i]};
      if (cand.better_than(best[v])) best[v] = cand;
    }
    c.edges_relaxed += peers.count;
  }

  // Phase 3: provider routes flow down to customers.
  ws.heap.clear();
  for (AsId v = 0; v < n; ++v) {
    if (best[v].reachable()) {
      ws.heap.push_raw({static_cast<std::uint8_t>(best[v].cls), best[v].hops,
                        best[v].delay_ms, v});
    }
  }
  ws.heap.heapify();
  ws.done.reset(n);
  while (!ws.heap.empty()) {
    const PolicyKey k = ws.heap.pop();
    ++c.heap_pops;
    if (ws.done.test(k.node)) continue;
    // Skip stale queue entries (a better route was settled meanwhile).
    const Route& cur = best[k.node];
    if (static_cast<std::uint8_t>(cur.cls) != k.cls || cur.hops != k.hops ||
        cur.delay_ms != k.delay) {
      continue;
    }
    ws.done.set(k.node);
    const AsGraph::Segment custs = graph.customers(k.node);
    for (std::uint32_t i = 0; i < custs.count; ++i) {
      const Route cand{RouteClass::kProvider, cur.hops + 1,
                       cur.delay_ms + custs.delay_ms[i],
                       cur.data_delay_ms + custs.data_delay_ms[i]};
      const AsId w = custs.neighbor[i];
      if (cand.better_than(best[w])) {
        best[w] = cand;
        ws.heap.push({static_cast<std::uint8_t>(cand.cls), cand.hops,
                      cand.delay_ms, w});
      }
    }
    c.edges_relaxed += custs.count;
  }
  ++c.sources_run;
}

// Shared driver shell: dynamic scheduling over rows, one reusable
// per-thread workspace, per-chunk telemetry flush (heap growth inside the
// chunk shows up as a capacity delta and counts as one scratch alloc).
template <typename Workspace, typename Kernel>
void run_batch(std::size_t rows, Workspace& (*workspace)(), Kernel&& kernel) {
  const auto start = std::chrono::steady_clock::now();
  parallel_for_dynamic(rows, /*grain=*/1,
                       [&](std::size_t begin, std::size_t end) {
                         Workspace& ws = workspace();
                         LocalCounts c;
                         const std::size_t heap_cap = ws.heap.capacity();
                         for (std::size_t r = begin; r < end; ++r) {
                           kernel(r, ws, c);
                         }
                         if (ws.heap.capacity() != heap_cap) {
                           ++c.scratch_allocs;
                         }
                         c.flush();
                       });
  RoutingMetrics::get().batch_ns.record(elapsed_ns(start));
}

}  // namespace

void shortest_paths_batch(const AsGraph& graph,
                          const std::vector<AsId>& sources, PathInfo* out) {
  const obs::Span span("sssp-batch");
  const std::size_t n = graph.size();
  run_batch<SsspWorkspace>(
      sources.size(), &sssp_workspace,
      [&](std::size_t r, SsspWorkspace& ws, LocalCounts& c) {
        sssp_one(graph, sources[r], out + r * n, ws, c);
      });
}

std::vector<PathInfo> shortest_paths_batch(
    const AsGraph& graph, const std::vector<AsId>& sources) {
  std::vector<PathInfo> out(sources.size() * graph.size());
  shortest_paths_batch(graph, sources, out.data());
  return out;
}

void policy_routes_batch(const AsGraph& graph,
                         const std::vector<AsId>& dests, Route* out) {
  const obs::Span span("policy-batch");
  const std::size_t n = graph.size();
  run_batch<PolicyWorkspace>(
      dests.size(), &policy_workspace,
      [&](std::size_t r, PolicyWorkspace& ws, LocalCounts& c) {
        c.scratch_allocs += ws.ensure(n);
        policy_one(graph, dests[r], out + r * n, ws, c);
      });
}

std::vector<Route> policy_routes_batch(const AsGraph& graph,
                                       const std::vector<AsId>& dests) {
  std::vector<Route> out(dests.size() * graph.size());
  policy_routes_batch(graph, dests, out.data());
  return out;
}

std::vector<AsId> all_nodes(const AsGraph& graph) {
  std::vector<AsId> ids(graph.size());
  std::iota(ids.begin(), ids.end(), AsId{0});
  return ids;
}

}  // namespace tiv::routing
