#include "routing/policy_routing.hpp"

#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>

#include "routing/graph_engine.hpp"
#include "util/parallel.hpp"

namespace tiv::routing {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::Role;

// Lexicographic priority key for Dijkstra over routes.
struct Key {
  std::uint8_t cls;
  std::uint32_t hops;
  double delay;
  AsId node;

  bool operator>(const Key& o) const {
    return std::tie(cls, hops, delay, node) >
           std::tie(o.cls, o.hops, o.delay, o.node);
  }
};

using MinQueue = std::priority_queue<Key, std::vector<Key>, std::greater<>>;

/// One parallel pass over the flat route buffer: per-chunk local totals,
/// one atomic merge per chunk (self cells src == dest excluded).
RouteClassCounts count_classes(const std::vector<Route>& cells, std::size_t n,
                               const std::vector<AsId>& dests) {
  std::array<std::atomic<std::uint64_t>, 4> totals{};
  if (n != 0) {
    parallel_for_dynamic(
        dests.size(), /*grain=*/1, [&](std::size_t begin, std::size_t end) {
          std::array<std::uint64_t, 4> local{};
          for (std::size_t r = begin; r < end; ++r) {
            const AsId dest = dests[r];
            const Route* row = cells.data() + r * n;
            for (std::size_t src = 0; src < n; ++src) {
              if (src == dest) continue;
              ++local[static_cast<std::size_t>(row[src].cls)];
            }
          }
          for (std::size_t i = 0; i < totals.size(); ++i) {
            totals[i].fetch_add(local[i], std::memory_order_relaxed);
          }
        });
  }
  RouteClassCounts counts;
  for (std::size_t i = 0; i < counts.counts.size(); ++i) {
    counts.counts[i] = totals[i].load(std::memory_order_relaxed);
  }
  counts.unreachable = totals[3].load(std::memory_order_relaxed);
  return counts;
}

}  // namespace

// Scalar reference implementation — three phases, each a monotone
// lexicographic Dijkstra. The batched engine (routing/graph_engine.cpp)
// must reproduce these rows exactly; keep the two in lockstep when
// touching either.
//
//  1. Customer routes. A route reaches v "from below" through a chain of
//     provider->customer steps ending at dest. Announcements flow up the
//     provider chains: dest announces to its providers; an AS whose selected
//     route is customer-learned re-announces to *its* providers. Because
//     class dominates the decision process, any AS with a customer route
//     selects its best customer route, so the propagation is a Dijkstra over
//     customer->provider edges keyed by (hops, delay).
//
//  2. Peer routes. v may use peer p's route only if p's selected route is
//     customer-learned (export rule), i.e. p has a phase-1 route. One
//     relaxation step, no propagation (a peer-learned route is never
//     exported to another peer or provider).
//
//  3. Provider routes. A provider exports its selected route — of any class
//     — to its customers. best[] therefore satisfies
//        best[v] = min(best_cust[v], best_peer[v],
//                      min over providers w of extend(best[w]))
//     which is again a Dijkstra: seed the queue with the phase-1/2 routes,
//     pop the globally best route, and relax downhill to customers with
//     class forced to kProvider. Extension strictly increases the
//     (class, hops, delay) key, so settled nodes are final.
std::vector<Route> policy_routes_to(const AsGraph& graph, AsId dest) {
  const std::size_t n = graph.size();
  std::vector<Route> cust(n);  // best customer-learned route per AS

  // Phase 1: customer routes, flowing up provider chains from dest.
  {
    MinQueue pq;
    cust[dest] = {RouteClass::kCustomer, 0, 0.0, 0.0};
    pq.push({0, 0, 0.0, dest});
    std::vector<bool> done(n, false);
    while (!pq.empty()) {
      const Key k = pq.top();
      pq.pop();
      if (done[k.node]) continue;
      done[k.node] = true;
      for (const auto& adj : graph.adjacent(k.node)) {
        if (adj.role != Role::kToProvider) continue;  // only announce upward
        const Route cand{RouteClass::kCustomer, k.hops + 1,
                         k.delay + adj.delay_ms,
                         cust[k.node].data_delay_ms + adj.data_delay_ms};
        if (cand.better_than(cust[adj.neighbor])) {
          cust[adj.neighbor] = cand;
          pq.push({0, cand.hops, cand.delay_ms, adj.neighbor});
        }
      }
    }
  }

  // Phase 2 + 3 seeds: best of customer route and peer route per AS.
  std::vector<Route> best = cust;
  for (AsId v = 0; v < n; ++v) {
    for (const auto& adj : graph.adjacent(v)) {
      if (adj.role != Role::kToPeer) continue;
      const Route& via = cust[adj.neighbor];
      if (!via.reachable()) continue;  // peer only exports customer routes
      const Route cand{RouteClass::kPeer, via.hops + 1,
                       via.delay_ms + adj.delay_ms,
                       via.data_delay_ms + adj.data_delay_ms};
      if (cand.better_than(best[v])) best[v] = cand;
    }
  }

  // Phase 3: provider routes flow down to customers.
  {
    MinQueue pq;
    for (AsId v = 0; v < n; ++v) {
      if (best[v].reachable()) {
        pq.push({static_cast<std::uint8_t>(best[v].cls), best[v].hops,
                 best[v].delay_ms, v});
      }
    }
    std::vector<bool> done(n, false);
    while (!pq.empty()) {
      const Key k = pq.top();
      pq.pop();
      if (done[k.node]) continue;
      // Skip stale queue entries (a better route was settled meanwhile).
      const Route& cur = best[k.node];
      if (static_cast<std::uint8_t>(cur.cls) != k.cls || cur.hops != k.hops ||
          cur.delay_ms != k.delay) {
        continue;
      }
      done[k.node] = true;
      for (const auto& adj : graph.adjacent(k.node)) {
        if (adj.role != Role::kToCustomer) continue;  // export downhill only
        const Route cand{RouteClass::kProvider, cur.hops + 1,
                         cur.delay_ms + adj.delay_ms,
                         cur.data_delay_ms + adj.data_delay_ms};
        if (cand.better_than(best[adj.neighbor])) {
          best[adj.neighbor] = cand;
          pq.push({static_cast<std::uint8_t>(cand.cls), cand.hops,
                   cand.delay_ms, adj.neighbor});
        }
      }
    }
  }
  return best;
}

PolicyRoutingMatrix::PolicyRoutingMatrix(const AsGraph& graph)
    : n_(graph.size()), cells_(graph.size() * graph.size()) {
  const std::vector<AsId> dests = all_nodes(graph);
  policy_routes_batch(graph, dests, cells_.data());
  class_counts_ = count_classes(cells_, n_, dests);
}

PolicyRoutingMatrix::PolicyRoutingMatrix(const AsGraph& graph,
                                         std::vector<AsId> dests)
    : n_(graph.size()),
      cells_(dests.size() * graph.size()),
      row_index_(graph.size(), std::numeric_limits<std::uint32_t>::max()) {
  for (std::size_t r = 0; r < dests.size(); ++r) {
    row_index_[dests[r]] = static_cast<std::uint32_t>(r);
  }
  policy_routes_batch(graph, dests, cells_.data());
  class_counts_ = count_classes(cells_, n_, dests);
}

}  // namespace tiv::routing
