// Valley-free (Gao-Rexford) interdomain policy routing.
//
// BGP route selection and export are modeled faithfully at the AS level:
//
//   selection:  customer-learned > peer-learned > provider-learned routes,
//               then fewest AS hops, then lowest delay (tie-break);
//   export:     an AS exports its *selected* route to customers always, and
//               to peers/providers only when that route was learned from a
//               customer (or is its own prefix).
//
// The permitted paths are therefore exactly the valley-free paths
// (uphill customer->provider steps, at most one peer step, then downhill),
// and — crucially for this study — the selected path is often much longer
// than the shortest physical path, because a customer route is preferred
// over a shorter peer or provider route. Running this protocol over the
// synthetic topology is what injects realistic triangle inequality
// violations into the generated delay space.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "topology/as_graph.hpp"

namespace tiv::routing {

/// Which neighbor class a route was learned from (BGP local preference).
enum class RouteClass : std::uint8_t {
  kCustomer = 0,  ///< learned from a customer (or own prefix) — most preferred
  kPeer = 1,
  kProvider = 2,
  kNone = 3,  ///< destination unreachable under policy
};

struct Route {
  RouteClass cls = RouteClass::kNone;
  std::uint32_t hops = 0;
  /// Propagation delay of the selected path (the metric routing optimizes
  /// after class and hop count).
  double delay_ms = std::numeric_limits<double>::infinity();
  /// Experienced delay of the same path including link congestion — what a
  /// measurement between the endpoints would observe. Routing never
  /// consults this value.
  double data_delay_ms = std::numeric_limits<double>::infinity();

  bool reachable() const { return cls != RouteClass::kNone; }

  /// BGP decision order: class, then AS-path length, then delay.
  bool better_than(const Route& o) const {
    if (cls != o.cls) return cls < o.cls;
    if (hops != o.hops) return hops < o.hops;
    return delay_ms < o.delay_ms;
  }
};

/// Computes the selected route from every AS toward one destination.
/// O(E log V); see the .cpp for the three-phase algorithm. This is the
/// scalar reference the batched engine (routing/graph_engine.hpp) is
/// differentially tested against.
std::vector<Route> policy_routes_to(const topology::AsGraph& graph,
                                    topology::AsId dest);

/// Ordered-pair route-class totals of a routing matrix, accumulated in one
/// parallel pass at construction (self pairs src == dest excluded).
struct RouteClassCounts {
  /// counts[c] for c in {kCustomer, kPeer, kProvider} — selected-route
  /// class of each reachable ordered pair.
  std::array<std::uint64_t, 3> counts{};
  std::uint64_t unreachable = 0;

  std::uint64_t reachable() const {
    return counts[0] + counts[1] + counts[2];
  }
  std::uint64_t of(RouteClass cls) const {
    return counts[static_cast<std::size_t>(cls)];
  }
};

/// Policy routes toward a set of destinations (all of them by default),
/// stored as one flat row-major buffer of num_dests() x size() cells and
/// built by the batched multi-destination engine.
class PolicyRoutingMatrix {
 public:
  /// All-pairs: one row per destination AS, row index == destination id.
  explicit PolicyRoutingMatrix(const topology::AsGraph& graph);
  /// Destination subset: rows follow `dests` order; accessors accept the
  /// original AS ids. Scenario harnesses can route toward thousands of
  /// destinations without materializing all pairs.
  PolicyRoutingMatrix(const topology::AsGraph& graph,
                      std::vector<topology::AsId> dests);

  /// Selected route from src when the destination is dest.
  const Route& route(topology::AsId src, topology::AsId dest) const {
    return cells_[row_of(dest) * n_ + src];
  }
  double delay(topology::AsId src, topology::AsId dest) const {
    return route(src, dest).delay_ms;
  }
  /// Full row of one destination (size() entries, indexed by source).
  const Route* row(topology::AsId dest) const {
    return cells_.data() + row_of(dest) * n_;
  }

  /// Number of ASes in the underlying graph (columns per row).
  std::size_t size() const { return n_; }
  /// Number of materialized destination rows (== size() for all-pairs).
  std::size_t num_dests() const { return cells_.size() / (n_ ? n_ : 1); }

  /// Route-class totals over the materialized rows, computed once at
  /// construction (the generator ablation bench reads these directly
  /// instead of re-scanning per class).
  const RouteClassCounts& class_counts() const { return class_counts_; }

  /// Fraction of ordered reachable pairs whose selected route has the given
  /// class — a quick structural sanity check (most routes on a healthy
  /// hierarchy are provider or peer routes). O(1): reads class_counts().
  double class_fraction(RouteClass cls) const {
    const std::uint64_t reachable = class_counts_.reachable();
    if (reachable == 0 || cls == RouteClass::kNone) return 0.0;
    return static_cast<double>(class_counts_.of(cls)) /
           static_cast<double>(reachable);
  }

 private:
  std::size_t row_of(topology::AsId dest) const {
    return row_index_.empty() ? dest : row_index_[dest];
  }

  std::size_t n_ = 0;
  std::vector<Route> cells_;  ///< row-major num_dests x n, [dest][src]
  /// Destination id -> row. Empty for all-pairs (identity).
  std::vector<std::uint32_t> row_index_;
  RouteClassCounts class_counts_;
};

}  // namespace tiv::routing
