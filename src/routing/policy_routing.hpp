// Valley-free (Gao-Rexford) interdomain policy routing.
//
// BGP route selection and export are modeled faithfully at the AS level:
//
//   selection:  customer-learned > peer-learned > provider-learned routes,
//               then fewest AS hops, then lowest delay (tie-break);
//   export:     an AS exports its *selected* route to customers always, and
//               to peers/providers only when that route was learned from a
//               customer (or is its own prefix).
//
// The permitted paths are therefore exactly the valley-free paths
// (uphill customer->provider steps, at most one peer step, then downhill),
// and — crucially for this study — the selected path is often much longer
// than the shortest physical path, because a customer route is preferred
// over a shorter peer or provider route. Running this protocol over the
// synthetic topology is what injects realistic triangle inequality
// violations into the generated delay space.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/as_graph.hpp"

namespace tiv::routing {

/// Which neighbor class a route was learned from (BGP local preference).
enum class RouteClass : std::uint8_t {
  kCustomer = 0,  ///< learned from a customer (or own prefix) — most preferred
  kPeer = 1,
  kProvider = 2,
  kNone = 3,  ///< destination unreachable under policy
};

struct Route {
  RouteClass cls = RouteClass::kNone;
  std::uint32_t hops = 0;
  /// Propagation delay of the selected path (the metric routing optimizes
  /// after class and hop count).
  double delay_ms = std::numeric_limits<double>::infinity();
  /// Experienced delay of the same path including link congestion — what a
  /// measurement between the endpoints would observe. Routing never
  /// consults this value.
  double data_delay_ms = std::numeric_limits<double>::infinity();

  bool reachable() const { return cls != RouteClass::kNone; }

  /// BGP decision order: class, then AS-path length, then delay.
  bool better_than(const Route& o) const {
    if (cls != o.cls) return cls < o.cls;
    if (hops != o.hops) return hops < o.hops;
    return delay_ms < o.delay_ms;
  }
};

/// Computes the selected route from every AS toward one destination.
/// O(E log V); see the .cpp for the three-phase algorithm.
std::vector<Route> policy_routes_to(const topology::AsGraph& graph,
                                    topology::AsId dest);

/// All-pairs policy routing matrix, parallelized over destinations.
class PolicyRoutingMatrix {
 public:
  explicit PolicyRoutingMatrix(const topology::AsGraph& graph);

  /// Selected route from src when the destination is dest.
  const Route& route(topology::AsId src, topology::AsId dest) const {
    return to_dest_[dest][src];
  }
  double delay(topology::AsId src, topology::AsId dest) const {
    return route(src, dest).delay_ms;
  }
  std::size_t size() const { return to_dest_.size(); }

  /// Fraction of ordered reachable pairs whose selected route has the given
  /// class — a quick structural sanity check (most routes on a healthy
  /// hierarchy are provider or peer routes).
  double class_fraction(RouteClass cls) const;

 private:
  std::vector<std::vector<Route>> to_dest_;  // [dest][src]
};

}  // namespace tiv::routing
