#include "routing/shortest_path.hpp"

#include <cstdint>
#include <limits>
#include <queue>
#include <utility>

#include "routing/graph_engine.hpp"

namespace tiv::routing {

using topology::AsGraph;
using topology::AsId;

// Scalar reference implementation. The batched engine
// (routing/graph_engine.cpp) must reproduce these rows exactly; keep the
// two in lockstep when touching either.
std::vector<PathInfo> shortest_paths_from(const AsGraph& graph, AsId src) {
  std::vector<PathInfo> dist(graph.size());
  using Item = std::pair<double, AsId>;  // (delay, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = {0.0, 0};
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v].delay_ms) continue;  // stale entry
    for (const auto& adj : graph.adjacent(v)) {
      // Experienced delay: the best physically achievable path including
      // congestion, i.e. what an ideal (policy-free, congestion-aware)
      // routing could deliver.
      const double nd = d + adj.data_delay_ms;
      if (nd < dist[adj.neighbor].delay_ms) {
        dist[adj.neighbor] = {nd, dist[v].hops + 1};
        pq.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

ShortestPathMatrix::ShortestPathMatrix(const AsGraph& graph)
    : n_(graph.size()), cells_(graph.size() * graph.size()) {
  shortest_paths_batch(graph, all_nodes(graph), cells_.data());
}

ShortestPathMatrix::ShortestPathMatrix(const AsGraph& graph,
                                       std::vector<AsId> sources)
    : n_(graph.size()),
      cells_(sources.size() * graph.size()),
      row_index_(graph.size(), std::numeric_limits<std::uint32_t>::max()) {
  for (std::size_t r = 0; r < sources.size(); ++r) {
    row_index_[sources[r]] = static_cast<std::uint32_t>(r);
  }
  shortest_paths_batch(graph, sources, cells_.data());
}

}  // namespace tiv::routing
