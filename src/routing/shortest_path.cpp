#include "routing/shortest_path.hpp"

#include <queue>

#include "util/parallel.hpp"

namespace tiv::routing {

using topology::AsGraph;
using topology::AsId;

std::vector<PathInfo> shortest_paths_from(const AsGraph& graph, AsId src) {
  std::vector<PathInfo> dist(graph.size());
  using Item = std::pair<double, AsId>;  // (delay, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = {0.0, 0};
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v].delay_ms) continue;  // stale entry
    for (const auto& adj : graph.adjacent(v)) {
      // Experienced delay: the best physically achievable path including
      // congestion, i.e. what an ideal (policy-free, congestion-aware)
      // routing could deliver.
      const double nd = d + adj.data_delay_ms;
      if (nd < dist[adj.neighbor].delay_ms) {
        dist[adj.neighbor] = {nd, dist[v].hops + 1};
        pq.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

ShortestPathMatrix::ShortestPathMatrix(const AsGraph& graph) {
  rows_.resize(graph.size());
  parallel_for(graph.size(), [&](std::size_t src) {
    rows_[src] = shortest_paths_from(graph, static_cast<AsId>(src));
  });
}

}  // namespace tiv::routing
