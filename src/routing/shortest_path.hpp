// Policy-oblivious shortest paths over the AS graph. These are the
// "speed-of-light" delays the Internet would achieve if routing ignored
// business relationships; the gap between these and the policy-routing
// delays is exactly what creates triangle inequality violations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/as_graph.hpp"

namespace tiv::routing {

struct PathInfo {
  double delay_ms = std::numeric_limits<double>::infinity();
  std::uint32_t hops = 0;

  bool reachable() const {
    return delay_ms != std::numeric_limits<double>::infinity();
  }
};

/// Single-source Dijkstra minimizing delay (hops recorded along the chosen
/// path, used for diagnostics). This is the scalar reference the batched
/// engine (routing/graph_engine.hpp) is differentially tested against.
std::vector<PathInfo> shortest_paths_from(const topology::AsGraph& graph,
                                          topology::AsId src);

/// Shortest delays from a set of sources (all of them by default), stored
/// as one flat row-major buffer of num_sources() x size() cells and built
/// by the batched multi-source engine.
class ShortestPathMatrix {
 public:
  /// All-pairs: one row per AS, row index == source id.
  explicit ShortestPathMatrix(const topology::AsGraph& graph);
  /// Source subset: rows follow `sources` order; accessors accept the
  /// original AS ids. Routing thousands of sources over a large topology
  /// no longer materializes all pairs.
  ShortestPathMatrix(const topology::AsGraph& graph,
                     std::vector<topology::AsId> sources);

  double delay(topology::AsId a, topology::AsId b) const {
    return cells_[row_of(a) * n_ + b].delay_ms;
  }
  const PathInfo& info(topology::AsId a, topology::AsId b) const {
    return cells_[row_of(a) * n_ + b];
  }
  /// Full row of one source (size() entries), for bulk consumers.
  const PathInfo* row(topology::AsId a) const {
    return cells_.data() + row_of(a) * n_;
  }

  /// Number of ASes in the underlying graph (columns per row).
  std::size_t size() const { return n_; }
  /// Number of materialized source rows (== size() for all-pairs).
  std::size_t num_sources() const { return cells_.size() / (n_ ? n_ : 1); }

 private:
  std::size_t row_of(topology::AsId a) const {
    return row_index_.empty() ? a : row_index_[a];
  }

  std::size_t n_ = 0;
  std::vector<PathInfo> cells_;  ///< row-major num_sources x n
  /// Source id -> row. Empty for all-pairs (identity); for subsets,
  /// unmapped sources hold kNoRow and accessing them is undefined.
  std::vector<std::uint32_t> row_index_;
};

}  // namespace tiv::routing
