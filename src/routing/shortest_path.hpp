// Policy-oblivious shortest paths over the AS graph. These are the
// "speed-of-light" delays the Internet would achieve if routing ignored
// business relationships; the gap between these and the policy-routing
// delays is exactly what creates triangle inequality violations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/as_graph.hpp"

namespace tiv::routing {

struct PathInfo {
  double delay_ms = std::numeric_limits<double>::infinity();
  std::uint32_t hops = 0;

  bool reachable() const {
    return delay_ms != std::numeric_limits<double>::infinity();
  }
};

/// Single-source Dijkstra minimizing delay (hops recorded along the chosen
/// path, used for diagnostics).
std::vector<PathInfo> shortest_paths_from(const topology::AsGraph& graph,
                                          topology::AsId src);

/// All-pairs shortest delays, parallelized over sources.
class ShortestPathMatrix {
 public:
  explicit ShortestPathMatrix(const topology::AsGraph& graph);

  double delay(topology::AsId a, topology::AsId b) const {
    return rows_[a][b].delay_ms;
  }
  const PathInfo& info(topology::AsId a, topology::AsId b) const {
    return rows_[a][b];
  }
  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::vector<PathInfo>> rows_;
};

}  // namespace tiv::routing
