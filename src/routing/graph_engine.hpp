// Batched parallel graph engine over the CSR AsGraph.
//
// The seed routing code ran one allocating Dijkstra per source on a pool
// thread: every source paid a fresh dist vector, done vector<bool>, and
// priority_queue backing store (~5 allocations per source), and the
// adjacency scan branched on the role of every entry. The batched drivers
// here run many sources under parallel_for_dynamic with one reusable
// per-thread workspace — dist/hops/route lanes, a done bitset, and manual
// binary-heap storage that keep their capacity across sources and batches,
// so after the first batch at a given graph size the engine performs zero
// per-source heap allocations. The policy phases scan exactly the CSR role
// segment they need (providers, peers, customers) with no branch.
//
// Parity contract: for the same graph, every batched row is exactly equal
// (operator== on delay/hops/class, bitwise for the doubles) to the kept
// scalar reference (`shortest_paths_from`, `policy_routes_to`). Both sides
// pop (key, node) lexicographically and scan segments in the same order,
// so even delay ties resolve identically. The differential tests in
// tests/test_routing.cpp and bench_graph_engine's parity cross-check
// enforce this.
//
// Telemetry (docs/OBSERVABILITY.md): counters routing.sources_run,
// routing.heap_pops, routing.edges_relaxed, routing.scratch_allocs (lane or
// heap growth — zero once warm), histogram routing.batch_ns, and tracer
// spans sssp-batch / policy-batch around each driver call.
#pragma once

#include <cstddef>
#include <vector>

#include "routing/policy_routing.hpp"
#include "routing/shortest_path.hpp"
#include "topology/as_graph.hpp"

namespace tiv::routing {

/// Multi-source Dijkstra minimizing experienced delay (same semantics as
/// shortest_paths_from). Row r of `out` — out[r * graph.size() + v] — is
/// the path info from sources[r] to v. `out` must hold
/// sources.size() * graph.size() entries. Parallel over sources.
void shortest_paths_batch(const topology::AsGraph& graph,
                          const std::vector<topology::AsId>& sources,
                          PathInfo* out);

/// Convenience overload returning a freshly allocated flat row-major
/// buffer (sources.size() rows of graph.size()).
std::vector<PathInfo> shortest_paths_batch(
    const topology::AsGraph& graph,
    const std::vector<topology::AsId>& sources);

/// Multi-destination valley-free policy routing (same semantics as
/// policy_routes_to). Row r of `out` — out[r * graph.size() + v] — is the
/// selected route from v toward dests[r]. `out` must hold
/// dests.size() * graph.size() entries. Parallel over destinations.
void policy_routes_batch(const topology::AsGraph& graph,
                         const std::vector<topology::AsId>& dests,
                         Route* out);

/// Convenience overload returning a freshly allocated flat row-major
/// buffer (dests.size() rows of graph.size()).
std::vector<Route> policy_routes_batch(
    const topology::AsGraph& graph,
    const std::vector<topology::AsId>& dests);

/// All node ids of `graph` in order — the all-pairs source/dest set.
std::vector<topology::AsId> all_nodes(const topology::AsGraph& graph);

}  // namespace tiv::routing
