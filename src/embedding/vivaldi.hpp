// Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM 2004),
// simulated over a measured delay matrix exactly as the paper's §3/§4/§5
// experiments do.
//
// Each node holds a d-dimensional Euclidean coordinate and a confidence
// weight. One simulation tick = every node probes one of its neighbors and
// applies the adaptive spring update. With triangle-inequality-violating
// inputs the spring system cannot reach zero energy, which manifests as the
// endless coordinate oscillation the paper quantifies (Figs. 10-11); the
// trackers in trackers.hpp observe it.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "embedding/coords.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tiv::embedding {

struct VivaldiParams {
  std::uint32_t dimension = 5;   ///< the paper uses a 5-D Euclidean space
  double ce = 0.25;              ///< confidence adaptation gain
  double cc = 0.25;              ///< coordinate adaptation gain
  std::uint32_t neighbors_per_node = 32;  ///< paper's neighbor-set size
  double initial_error = 1.0;
  /// Initial coordinates are uniform in [-init_radius, init_radius]^d; a
  /// small nonzero radius avoids the all-coincident cold start.
  double init_radius = 1.0;

  /// Height vectors (Dabek et al. §2.6): each node carries a nonnegative
  /// height h modelling its access-link delay, and the predicted delay is
  /// ||x_i - x_j|| + h_i + h_j. Heights absorb the large additive constants
  /// of satellite/dialup hosts that a plain Euclidean space cannot place.
  bool use_height = false;
  double min_height = 0.1;  ///< heights never drop below this (ms)

  std::uint64_t seed = 3;
};

/// A full-system Vivaldi simulation.
class VivaldiSystem {
 public:
  /// Neighbor sets are sampled uniformly among hosts with a measured delay
  /// to the node. The matrix reference must outlive the system.
  VivaldiSystem(const delayspace::DelayMatrix& matrix,
                const VivaldiParams& params);
  /// Deleted: the system keeps a reference to the matrix; a temporary would
  /// dangle.
  VivaldiSystem(delayspace::DelayMatrix&&, const VivaldiParams&) = delete;

  std::size_t size() const { return coords_.size(); }
  const VivaldiParams& params() const { return params_; }
  const delayspace::DelayMatrix& matrix() const { return matrix_; }

  const Vec& coord(delayspace::HostId i) const { return coords_[i]; }
  double node_error(delayspace::HostId i) const { return errors_[i]; }
  /// Height of node i (0 when heights are disabled).
  double height(delayspace::HostId i) const {
    return heights_.empty() ? 0.0 : heights_[i];
  }

  const std::vector<delayspace::HostId>& neighbors(
      delayspace::HostId i) const {
    return neighbors_[i];
  }
  /// Replaces a node's neighbor set (dynamic-neighbor Vivaldi uses this).
  /// Neighbors without a measured delay are rejected with
  /// std::invalid_argument.
  void set_neighbors(delayspace::HostId i,
                     std::vector<delayspace::HostId> neighbors);

  /// One simulation second: every node probes one random neighbor and
  /// applies the spring update. Returns the per-node displacement magnitudes
  /// of this tick (index = host id) — callers aggregate movement-speed
  /// statistics from it.
  const std::vector<double>& tick();

  /// Runs `seconds` ticks.
  void run(std::uint32_t seconds);

  std::uint64_t ticks_elapsed() const { return ticks_; }

  /// Delay estimate between any two nodes: Euclidean distance, plus both
  /// heights when height vectors are enabled.
  double predicted(delayspace::HostId i, delayspace::HostId j) const {
    const double d = distance(coords_[i], coords_[j]);
    return heights_.empty() ? d : d + heights_[i] + heights_[j];
  }

  /// predicted / measured — the TIV-alert signal. Returns NaN when the pair
  /// has no measurement or the measured delay is zero.
  double prediction_ratio(delayspace::HostId i, delayspace::HostId j) const;

  /// Absolute/relative embedding error over all measured pairs (or a random
  /// sample of `sample_pairs` pairs when nonzero — the full scan is O(N^2)).
  ErrorAccumulator snapshot_error(std::size_t sample_pairs = 0) const;

 private:
  void update_node(delayspace::HostId i, delayspace::HostId j);

  const delayspace::DelayMatrix& matrix_;
  VivaldiParams params_;
  std::vector<Vec> coords_;
  std::vector<double> heights_;  ///< empty unless params_.use_height
  std::vector<double> errors_;
  std::vector<std::vector<delayspace::HostId>> neighbors_;
  std::vector<double> last_movement_;
  Rng rng_;
  std::uint64_t ticks_ = 0;
};

}  // namespace tiv::embedding
