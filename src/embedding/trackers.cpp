#include "embedding/trackers.hpp"

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

namespace tiv::embedding {

using delayspace::HostId;

EdgeErrorTrace::EdgeErrorTrace(std::vector<Edge> edges)
    : edges_(std::move(edges)), traces_(edges_.size()) {}

void EdgeErrorTrace::observe(const VivaldiSystem& system) {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto [i, j] = edges_[e];
    traces_[e].push_back(system.predicted(i, j) - system.matrix().at(i, j));
  }
}

OscillationTracker::OscillationTracker(std::vector<Edge> edges)
    : edges_(std::move(edges)),
      min_(edges_.size(), std::numeric_limits<double>::infinity()),
      max_(edges_.size(), -std::numeric_limits<double>::infinity()) {}

OscillationTracker::OscillationTracker(const delayspace::DelayMatrix& matrix,
                                       std::size_t max_edges,
                                       std::uint64_t seed) {
  const HostId n = matrix.size();
  const std::size_t total = matrix.measured_pair_count();
  if (total <= max_edges) {
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = i + 1; j < n; ++j) {
        if (matrix.has(i, j)) edges_.emplace_back(i, j);
      }
    }
  } else {
    Rng rng(seed);
    edges_.reserve(max_edges);
    std::size_t attempts = 0;
    while (edges_.size() < max_edges && attempts < max_edges * 30) {
      ++attempts;
      auto i = static_cast<HostId>(rng.uniform_index(n));
      auto j = static_cast<HostId>(rng.uniform_index(n));
      if (i == j || !matrix.has(i, j)) continue;
      if (i > j) std::swap(i, j);
      edges_.emplace_back(i, j);
    }
    // Duplicate sampled edges are harmless: both entries track the same
    // min/max and yield the same range.
  }
  min_.assign(edges_.size(), std::numeric_limits<double>::infinity());
  max_.assign(edges_.size(), -std::numeric_limits<double>::infinity());
}

void OscillationTracker::observe(const VivaldiSystem& system) {
  observed_ = true;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const double p = system.predicted(edges_[e].first, edges_[e].second);
    min_[e] = std::min(min_[e], p);
    max_[e] = std::max(max_[e], p);
  }
}

std::vector<OscillationTracker::Range> OscillationTracker::ranges(
    const delayspace::DelayMatrix& matrix) const {
  std::vector<Range> out;
  if (!observed_) return out;
  out.reserve(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    Range r;
    r.edge = edges_[e];
    r.measured_ms = matrix.at(edges_[e].first, edges_[e].second);
    r.range_ms = max_[e] - min_[e];
    out.push_back(r);
  }
  return out;
}

void MovementRecorder::record(const std::vector<double>& tick_movement) {
  movements_.insert(movements_.end(), tick_movement.begin(),
                    tick_movement.end());
}

Summary MovementRecorder::speed_summary() const { return summarize(movements_); }

}  // namespace tiv::embedding
