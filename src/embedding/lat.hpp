// Localized Adjustment Term (Lee et al., SIGMETRICS 2006) — one of the two
// strawman TIV accommodations the paper evaluates in §4.2.
//
// Each node x keeps its Euclidean coordinate c_x plus a scalar adjustment
// e_x, set to half the average signed residual against a sample set S of
// measured nodes:
//
//   e_x = sum_{y in S} (d_xy - dhat_xy) / (2 |S|)
//
// and the adjusted prediction is dhat'_xy = ||c_x - c_y|| + e_x + e_y. The
// adjustments can model non-Euclidean effects (a chronically shrunk node
// pushes all its predictions up) but, as Fig. 16 shows, they barely help
// nearest-neighbor selection.
#pragma once

#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "embedding/vivaldi.hpp"

namespace tiv::embedding {

class LatAdjustment {
 public:
  /// Computes adjustments from the system's current coordinates, sampling
  /// each node's residuals against its own Vivaldi neighbor set (the
  /// measurements a deployed node actually has).
  explicit LatAdjustment(const VivaldiSystem& system);

  double adjustment(delayspace::HostId x) const { return e_[x]; }

  /// Adjusted prediction; never below 0.
  double predicted(const VivaldiSystem& system, delayspace::HostId i,
                   delayspace::HostId j) const;

 private:
  std::vector<double> e_;
};

}  // namespace tiv::embedding
