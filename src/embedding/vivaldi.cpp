#include "embedding/vivaldi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tiv::embedding {

using delayspace::HostId;

VivaldiSystem::VivaldiSystem(const delayspace::DelayMatrix& matrix,
                             const VivaldiParams& params)
    : matrix_(matrix), params_(params), rng_(params.seed) {
  const HostId n = matrix.size();
  if (params_.dimension == 0) {
    throw std::invalid_argument("VivaldiSystem: dimension must be >= 1");
  }
  coords_.reserve(n);
  for (HostId i = 0; i < n; ++i) {
    Vec v(params_.dimension);
    for (std::size_t d = 0; d < params_.dimension; ++d) {
      v[d] = rng_.uniform(-params_.init_radius, params_.init_radius);
    }
    coords_.push_back(std::move(v));
  }
  if (params_.use_height) heights_.assign(n, params_.min_height);
  errors_.assign(n, params_.initial_error);
  last_movement_.assign(n, 0.0);

  // Random neighbor sets among measurable peers.
  neighbors_.resize(n);
  for (HostId i = 0; i < n; ++i) {
    std::vector<HostId> candidates;
    candidates.reserve(n - 1);
    for (HostId j = 0; j < n; ++j) {
      if (matrix.has(i, j)) candidates.push_back(j);
    }
    const auto want = std::min<std::size_t>(params_.neighbors_per_node,
                                            candidates.size());
    if (want == candidates.size()) {
      neighbors_[i] = std::move(candidates);
    } else {
      const auto picks = rng_.sample_without_replacement(
          static_cast<std::uint32_t>(candidates.size()),
          static_cast<std::uint32_t>(want));
      neighbors_[i].reserve(want);
      for (auto p : picks) neighbors_[i].push_back(candidates[p]);
    }
  }
}

void VivaldiSystem::set_neighbors(HostId i, std::vector<HostId> neighbors) {
  for (HostId j : neighbors) {
    if (!matrix_.has(i, j)) {
      throw std::invalid_argument(
          "VivaldiSystem::set_neighbors: pair has no measurement");
    }
  }
  neighbors_[i] = std::move(neighbors);
}

void VivaldiSystem::update_node(HostId i, HostId j) {
  const double rtt = matrix_.at(i, j);
  if (rtt <= 0.0) return;  // zero-delay pairs carry no spring force
  const bool height = !heights_.empty();
  const double euclid = distance(coords_[i], coords_[j]);
  const double dist =
      height ? euclid + heights_[i] + heights_[j] : euclid;

  // Confidence-weighted adaptive timestep (Dabek et al. §2.5).
  const double w = errors_[i] + errors_[j] > 0.0
                       ? errors_[i] / (errors_[i] + errors_[j])
                       : 0.5;
  const double sample_error = std::abs(dist - rtt) / rtt;
  const double alpha = params_.ce * w;
  errors_[i] = alpha * sample_error + (1.0 - alpha) * errors_[i];

  // Unit vector from j toward i; random direction when coincident so
  // coincident nodes can separate. With height vectors the difference
  // [x_i - x_j, h_i + h_j] has norm euclid + h_i + h_j, and the height
  // component of the unit vector pushes the node's height up or down with
  // the same spring force (Dabek et al. §2.6).
  Vec dir = coords_[i] - coords_[j];
  const double norm = dir.norm();
  if (norm > 1e-12) {
    dir *= 1.0 / norm;
  } else {
    for (std::size_t d = 0; d < dir.dim(); ++d) dir[d] = rng_.normal();
    const double n2 = dir.norm();
    dir *= n2 > 1e-12 ? 1.0 / n2 : 0.0;
  }
  const double delta = params_.cc * w;
  const double force = delta * (rtt - dist);
  if (height) {
    // Share the displacement between the Euclidean part and the height in
    // proportion to their contribution to the distance. The share is
    // floored: with Dabek's exact u-vector a height starting near zero
    // receives ~zero force and can never bootstrap, so a fixed minimum
    // fraction of the spring force always reaches the height.
    constexpr double kMinHeightShare = 0.1;
    const double total = std::max(dist, 1e-9);
    const double h_share =
        std::max(kMinHeightShare, (heights_[i] + heights_[j]) / total);
    const Vec move = force * (1.0 - h_share) * dir;
    coords_[i] += move;
    const double h_move = force * h_share;
    heights_[i] = std::max(params_.min_height, heights_[i] + h_move);
    last_movement_[i] += move.norm() + std::abs(h_move);
  } else {
    const Vec move = force * dir;
    coords_[i] += move;
    last_movement_[i] += move.norm();
  }
}

const std::vector<double>& VivaldiSystem::tick() {
  std::fill(last_movement_.begin(), last_movement_.end(), 0.0);
  for (HostId i = 0; i < size(); ++i) {
    const auto& nbrs = neighbors_[i];
    if (nbrs.empty()) continue;
    update_node(i, nbrs[rng_.uniform_index(nbrs.size())]);
  }
  ++ticks_;
  return last_movement_;
}

void VivaldiSystem::run(std::uint32_t seconds) {
  for (std::uint32_t s = 0; s < seconds; ++s) tick();
}

double VivaldiSystem::prediction_ratio(HostId i, HostId j) const {
  if (!matrix_.has(i, j)) return std::numeric_limits<double>::quiet_NaN();
  const double measured = matrix_.at(i, j);
  if (measured <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return predicted(i, j) / measured;
}

ErrorAccumulator VivaldiSystem::snapshot_error(std::size_t sample_pairs) const {
  ErrorAccumulator acc;
  const HostId n = matrix_.size();
  if (sample_pairs == 0) {
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = i + 1; j < n; ++j) {
        if (matrix_.has(i, j)) acc.add(predicted(i, j), matrix_.at(i, j));
      }
    }
    return acc;
  }
  Rng rng(0xace5);  // fixed: snapshots must be comparable across calls
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < sample_pairs && attempts < sample_pairs * 20) {
    ++attempts;
    const auto i = static_cast<HostId>(rng.uniform_index(n));
    const auto j = static_cast<HostId>(rng.uniform_index(n));
    if (i == j || !matrix_.has(i, j)) continue;
    acc.add(predicted(i, j), matrix_.at(i, j));
    ++added;
  }
  return acc;
}

}  // namespace tiv::embedding
