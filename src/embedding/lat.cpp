#include "embedding/lat.hpp"

#include <algorithm>

namespace tiv::embedding {

using delayspace::HostId;

LatAdjustment::LatAdjustment(const VivaldiSystem& system) {
  const auto n = static_cast<HostId>(system.size());
  e_.assign(n, 0.0);
  for (HostId x = 0; x < n; ++x) {
    const auto& sample = system.neighbors(x);
    if (sample.empty()) continue;
    double sum = 0.0;
    for (HostId y : sample) {
      sum += system.matrix().at(x, y) - system.predicted(x, y);
    }
    e_[x] = sum / (2.0 * static_cast<double>(sample.size()));
  }
}

double LatAdjustment::predicted(const VivaldiSystem& system, HostId i,
                                HostId j) const {
  return std::max(0.0, system.predicted(i, j) + e_[i] + e_[j]);
}

}  // namespace tiv::embedding
