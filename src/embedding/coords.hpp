// Small dense vectors for network coordinates. Dimensionality is a runtime
// parameter (the paper uses 5-D; the ablation bench sweeps 2-9), so this is
// a thin wrapper over std::vector<double> with the handful of operations the
// embedding algorithms need.
#pragma once

#include <cstddef>
#include <vector>

namespace tiv::embedding {

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t dim) : v_(dim, 0.0) {}
  explicit Vec(std::vector<double> values) : v_(std::move(values)) {}

  std::size_t dim() const { return v_.size(); }
  double operator[](std::size_t i) const { return v_[i]; }
  double& operator[](std::size_t i) { return v_[i]; }

  Vec& operator+=(const Vec& o);
  Vec& operator-=(const Vec& o);
  Vec& operator*=(double s);

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }

  double norm() const;
  double dot(const Vec& o) const;

  const std::vector<double>& values() const { return v_; }

 private:
  std::vector<double> v_;
};

/// Euclidean distance between coordinates of equal dimension.
double distance(const Vec& a, const Vec& b);

}  // namespace tiv::embedding
