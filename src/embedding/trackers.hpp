// Observers for a running VivaldiSystem:
//
//   EdgeErrorTrace       per-tick signed error of named edges (Fig. 10);
//   OscillationTracker   max-min range of predicted delays per edge over a
//                        simulation window (Fig. 11);
//   MovementRecorder     per-(node, tick) displacement magnitudes — the
//                        paper's "movement speed per step" statistic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "embedding/vivaldi.hpp"
#include "util/stats.hpp"

namespace tiv::embedding {

/// Records (tick, signed error = predicted - measured) per tracked edge.
class EdgeErrorTrace {
 public:
  using Edge = std::pair<delayspace::HostId, delayspace::HostId>;

  explicit EdgeErrorTrace(std::vector<Edge> edges);

  /// Samples the system's current state; call once per tick.
  void observe(const VivaldiSystem& system);

  const std::vector<Edge>& edges() const { return edges_; }
  /// Error trace of the e-th tracked edge, one value per observe() call.
  const std::vector<double>& trace(std::size_t e) const { return traces_[e]; }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<double>> traces_;
};

/// Tracks min/max predicted delay per tracked edge; the oscillation range of
/// an edge is max - min over the observation window.
class OscillationTracker {
 public:
  using Edge = std::pair<delayspace::HostId, delayspace::HostId>;

  /// Tracks the given edges explicitly.
  explicit OscillationTracker(std::vector<Edge> edges);

  /// Tracks up to max_edges random measured edges of the matrix (all of them
  /// when the matrix is small enough).
  OscillationTracker(const delayspace::DelayMatrix& matrix,
                     std::size_t max_edges, std::uint64_t seed = 99);

  void observe(const VivaldiSystem& system);

  struct Range {
    Edge edge;
    double measured_ms = 0.0;  ///< filled by ranges(matrix)
    double range_ms = 0.0;     ///< max - min predicted over the window
  };

  /// Oscillation ranges with measured delays attached.
  std::vector<Range> ranges(const delayspace::DelayMatrix& matrix) const;

  std::size_t edge_count() const { return edges_.size(); }

 private:
  std::vector<Edge> edges_;
  std::vector<double> min_;
  std::vector<double> max_;
  bool observed_ = false;
};

/// Accumulates every per-node displacement of every tick.
class MovementRecorder {
 public:
  /// Appends the displacement vector returned by VivaldiSystem::tick().
  void record(const std::vector<double>& tick_movement);

  /// Summary over all (node, tick) displacements (median ~1.6 ms/step and
  /// 90th percentile ~6.2 ms/step in the paper's DS^2 run).
  Summary speed_summary() const;

  std::size_t sample_count() const { return movements_.size(); }

 private:
  std::vector<double> movements_;
};

}  // namespace tiv::embedding
