#include "embedding/coords.hpp"

#include <cassert>
#include <cmath>

namespace tiv::embedding {

Vec& Vec::operator+=(const Vec& o) {
  assert(dim() == o.dim());
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += o.v_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& o) {
  assert(dim() == o.dim());
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= o.v_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& x : v_) x *= s;
  return *this;
}

double Vec::norm() const {
  double ss = 0.0;
  for (double x : v_) ss += x * x;
  return std::sqrt(ss);
}

double Vec::dot(const Vec& o) const {
  assert(dim() == o.dim());
  double s = 0.0;
  for (std::size_t i = 0; i < v_.size(); ++i) s += v_[i] * o.v_[i];
  return s;
}

double distance(const Vec& a, const Vec& b) {
  assert(a.dim() == b.dim());
  double ss = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss);
}

}  // namespace tiv::embedding
