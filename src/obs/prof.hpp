// Span-attributed sampling self-profiler (docs/OBSERVABILITY.md).
//
// A SpanProfiler owns one timer-driven sampler thread. Every tick
// (default 97 Hz — a prime, so the sampler cannot phase-lock with
// periodic pipeline work) it walks the SpanStack per-thread current-span
// registry and, for each thread with an active span, accumulates the
// span *path* ("epoch;band-pair-stream") into a sample map. The result
// is the same attribution a stack profiler gives, but over the pipeline's
// instrumented phases instead of machine frames — and because the read
// side is two ordered atomic loads per thread, the cost to the profiled
// threads is two relaxed stores per Span, nothing per sample.
//
// The accumulated Profile exports as:
//   write_collapsed   collapsed-stack text ("epoch;sink-commit 42" per
//                     line) — feed to flamegraph.pl / speedscope / inferno
//   write_json        one JSON object with the run's sampling stats, a
//                     flat per-path table carrying {self, total} sample
//                     counts, and the hierarchical tree
//
// Overhead, measured end-to-end on bench_shard_stream at 97 Hz, is below
// 1% (numbers in docs/OBSERVABILITY.md): the sampler thread does O(active
// threads) loads and one hash-map bump per tick, and the hot path's extra
// work is the SpanStack push/pop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace tiv::obs {

/// Accumulated sampling profile. Plain data: copyable, mergeable by the
/// caller, serializable.
struct Profile {
  double hz = 0.0;               ///< configured sampling rate
  std::uint64_t ticks = 0;       ///< sampler wakeups
  std::uint64_t samples = 0;     ///< (tick, thread) observations with an active span
  std::uint64_t idle_ticks = 0;  ///< wakeups where no thread had an active span
  std::size_t threads_seen = 0;  ///< high-water mark of span-stack slots in use

  /// Sample counts keyed by semicolon-joined span path, outermost frame
  /// first ("epoch;tile-repack").
  std::map<std::string, std::uint64_t> by_path;

  struct PathStat {
    std::uint64_t self = 0;   ///< samples exactly at this path
    std::uint64_t total = 0;  ///< samples at this path or any descendant
  };
  /// Per-path self/total rollup. Ancestor paths that never took a direct
  /// sample appear with self = 0, so the hierarchy is complete.
  std::map<std::string, PathStat> path_stats() const;

  /// Collapsed-stack text: one "path count" line per sampled path.
  void write_collapsed(std::ostream& out) const;
  /// {"hz":...,"ticks":...,"samples":...,"idle_ticks":...,
  ///  "threads_seen":...,"paths":[{"path":...,"self":...,"total":...}],
  ///  "tree":{"name":"<root>","self":0,"total":N,"children":[...]}}
  void write_json(std::ostream& out) const;
};

/// The sampler. start() enables SpanStack publishing and spawns the
/// sampler thread; stop() (idempotent, implied by destruction) joins it
/// and disables publishing. One profiler at a time — publishing is a
/// process-global switch.
class SpanProfiler {
 public:
  struct Options {
    double hz = 97.0;  ///< sampling rate; clamped to [1, 10000]
  };

  SpanProfiler() : SpanProfiler(Options()) {}
  explicit SpanProfiler(Options opts);
  ~SpanProfiler();

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  void start();
  void stop();
  bool running() const;

  /// Snapshot of the accumulated profile (thread-safe; callable while
  /// running — the sampler yields the lock between ticks).
  Profile profile() const;

 private:
  void run();

  Options opts_;
  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  Profile prof_;
  std::thread sampler_;
  bool stopping_ = false;
};

}  // namespace tiv::obs
