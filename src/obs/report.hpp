// Periodic metrics snapshot reporter — the JSONL emitter behind
// `outcore_monitor --metrics-out` and the future service /stats endpoint.
//
// Each line is one self-contained JSON object:
//
//   {"seq":3,"elapsed_ms":3021,"label":"round-3",
//    "counters":{...},"gauges":{...},"histograms":{...}}
//
// where counters/histograms are *deltas since the previous line* (set
// Options::cumulative for running totals) and gauges are current levels.
// Lines come from report_now() (the monitor calls it per round) or from an
// optional background thread ticking every Options::interval.
//
// The reporter also renders the registry in Prometheus text exposition
// format (write_prometheus) — cumulative totals, `tiv_`-prefixed
// underscore-sanitized names, log2 histogram buckets as the standard
// cumulative `_bucket{le="..."}` series.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace tiv::obs {

namespace prom {
/// Prometheus metric-name sanitization: every character outside
/// [a-zA-Z0-9_:] (the registry uses dots) becomes '_', and the result
/// gains a "tiv_" prefix ("pool.chunks_claimed" -> "tiv_pool_chunks_claimed").
std::string metric_name(std::string_view name);
/// HELP-line escaping: backslash and newline per the exposition format.
std::string escape_help(std::string_view s);
}  // namespace prom

class SnapshotReporter {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};  ///< background tick period
    bool cumulative = false;  ///< running totals instead of per-line deltas
    bool dense_histograms = false;  ///< fixed 65-entry bucket arrays instead
                                    ///< of the sparse occupied-bucket object
  };

  /// Emits to `out`, which must outlive the reporter. Callers that want a
  /// file own the ofstream themselves (same pattern as JsonArrayWriter).
  explicit SnapshotReporter(std::ostream& out) : SnapshotReporter(out, Options()) {}
  SnapshotReporter(std::ostream& out, Options opts);
  ~SnapshotReporter();

  SnapshotReporter(const SnapshotReporter&) = delete;
  SnapshotReporter& operator=(const SnapshotReporter&) = delete;

  /// Emits one line now (thread-safe; serialized with the background
  /// thread's ticks).
  void report_now(std::string_view label = {});

  /// Starts/stops the interval-driven background emitter. stop() is
  /// idempotent and implied by destruction; the final stop emits nothing
  /// (callers wanting a closing line call report_now first).
  void start();
  void stop();

  /// Renders a fresh registry snapshot to `out` in Prometheus text
  /// exposition format (always cumulative — scrapers do their own rate()).
  /// Independent of the JSONL stream and its delta baseline.
  static void write_prometheus(std::ostream& out);
  /// Renders an existing snapshot (for tests and delta views).
  static void write_prometheus(std::ostream& out, const MetricsSnapshot& snap);

 private:
  void emit_locked(std::string_view label);

  std::ostream& out_;
  Options opts_;
  std::mutex mutex_;
  MetricsSnapshot last_;  ///< baseline for delta lines
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;

  std::condition_variable stop_cv_;
  std::thread ticker_;
  bool stopping_ = false;
};

}  // namespace tiv::obs
