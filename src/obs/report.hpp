// Periodic metrics snapshot reporter — the JSONL emitter behind
// `outcore_monitor --metrics-out` and the future service /stats endpoint.
//
// Each line is one self-contained JSON object:
//
//   {"seq":3,"elapsed_ms":3021,"label":"round-3",
//    "counters":{...},"gauges":{...},"histograms":{...}}
//
// where counters/histograms are *deltas since the previous line* (set
// Options::cumulative for running totals) and gauges are current levels.
// Lines come from report_now() (the monitor calls it per round) or from an
// optional background thread ticking every Options::interval.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace tiv::obs {

class SnapshotReporter {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};  ///< background tick period
    bool cumulative = false;  ///< running totals instead of per-line deltas
  };

  /// Emits to `out`, which must outlive the reporter. Callers that want a
  /// file own the ofstream themselves (same pattern as JsonArrayWriter).
  explicit SnapshotReporter(std::ostream& out) : SnapshotReporter(out, Options()) {}
  SnapshotReporter(std::ostream& out, Options opts);
  ~SnapshotReporter();

  SnapshotReporter(const SnapshotReporter&) = delete;
  SnapshotReporter& operator=(const SnapshotReporter&) = delete;

  /// Emits one line now (thread-safe; serialized with the background
  /// thread's ticks).
  void report_now(std::string_view label = {});

  /// Starts/stops the interval-driven background emitter. stop() is
  /// idempotent and implied by destruction; the final stop emits nothing
  /// (callers wanting a closing line call report_now first).
  void start();
  void stop();

 private:
  void emit_locked(std::string_view label);

  std::ostream& out_;
  Options opts_;
  std::mutex mutex_;
  MetricsSnapshot last_;  ///< baseline for delta lines
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;

  std::condition_variable stop_cv_;
  std::thread ticker_;
  bool stopping_ = false;
};

}  // namespace tiv::obs
