// Process-wide telemetry metrics — the always-on observability core
// (docs/OBSERVABILITY.md).
//
// Three metric kinds, all safe to update from any thread with no
// coordination beyond a relaxed atomic add:
//
//   Counter    monotonic event count (pool.chunks_claimed, cache.*.hits)
//   Gauge      point-in-time level (pool.threads)
//   Histogram  log2-bucketed latency/size distribution (engine.epoch_ns)
//
// Hot-path cost model: a Counter::add is one relaxed fetch_add on a
// per-thread-shard cache line — no lock, no false sharing between the
// pool's workers. Registration (MetricsRegistry::counter("name")) takes a
// mutex and is meant to happen once, at construction or via a
// function-local static; hot loops hold the returned reference.
//
// Snapshot model: MetricsRegistry::snapshot() merges the shards of every
// registered metric into a MetricsSnapshot — plain maps, comparable and
// subtractable (delta_since) and serializable as JSON. Snapshots are
// consistent per metric, not across metrics (no stop-the-world).
//
// Caller-owned sources: subsystems that keep their own counters (a cache
// instance's hits, an engine's recovery counts) link them into the
// registry with link() — the snapshot aggregates live instances (sum or
// max) and folds the final value of a destroyed instance into a retained
// base, so registry totals never go backwards when an engine is torn
// down. This is how CacheStats/RecoveryStats stay per-instance views
// while every count is maintained exactly once (satellite: no parallel
// hand-rolled accumulation).
//
// TIV_OBS_DISABLE compiles the update paths to no-ops (registry and
// snapshot machinery stay; every count reads zero) — the baseline build
// for the overhead measurements in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tiv::obs {

#ifdef TIV_OBS_DISABLE
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Number of per-thread shards a Counter/Histogram spreads its updates
/// over. Threads hash to a shard by a stable per-thread ordinal, so up to
/// kShards threads update distinct cache lines.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
inline std::uint32_t thread_shard() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

/// Monotonic event counter. Default-constructed at zero; add() is wait-free
/// and value() sums the shards (racing adds may or may not be included —
/// exact once updaters quiesce).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) {
#ifndef TIV_OBS_DISABLE
    cells_[thread_shard()].v.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void increment() { add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Point-in-time level. set/add are relaxed atomics on one cell — gauges
/// are updated from slow paths (pool resize), not hot loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) {
#ifndef TIV_OBS_DISABLE
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t delta) {
#ifndef TIV_OBS_DISABLE
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  /// Raises the gauge to `v` if above the current value (high-water marks).
  void max_of(std::int64_t v) {
#ifndef TIV_OBS_DISABLE
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Merged view of one histogram: bucket b counts values in
/// [bucket_lower_bound(b), bucket_lower_bound(b + 1)).
struct HistogramSnapshot {
  /// Bucket count: value 0 -> bucket 0, otherwise bucket = bit_width(v)
  /// (so bucket b >= 1 spans [2^(b-1), 2^b)). 64-bit values need
  /// bit_width up to 64, hence 65 buckets.
  static constexpr std::size_t kBucketCount = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBucketCount> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// containing log2 bucket.
  double quantile(double q) const;
};

/// Log2-bucket histogram for latencies (ns) and sizes (bytes). record() is
/// a bit_width plus two relaxed adds on the caller's shard.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = HistogramSnapshot::kBucketCount;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static constexpr unsigned bucket_of(std::uint64_t v) {
    return static_cast<unsigned>(std::bit_width(v));  // 0 -> 0, else 1..64
  }
  /// Smallest value landing in bucket b (inclusive lower edge); the
  /// exclusive upper edge of the last bucket saturates to uint64 max.
  static constexpr std::uint64_t bucket_lower_bound(unsigned b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t v) {
#ifndef TIV_OBS_DISABLE
    Cell& c = cells_[thread_shard()];
    c.count[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  HistogramSnapshot snapshot() const;

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kBucketCount> count{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Rendering options for MetricsSnapshot JSON.
struct MetricsJsonOptions {
  /// Histogram buckets render sparsely by default — an object keyed by
  /// the occupied buckets' lower bounds ({"buckets":{"8":3,"64":1}}),
  /// which keeps a mostly-idle metric's delta line a few bytes instead
  /// of 65 zeros. Dense mode emits the fixed-shape 65-entry array
  /// ({"buckets":[0,0,3,...]}) for consumers that index by position.
  bool dense_histograms = false;
};

/// One merged snapshot of every registered metric. Plain data: compare,
/// subtract, serialize.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters/histograms as increments since `base` (names absent from
  /// base count from zero; regressions clamp at zero). Gauges stay
  /// point-in-time values.
  MetricsSnapshot delta_since(const MetricsSnapshot& base) const;

  using JsonOptions = MetricsJsonOptions;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with per-histogram count/sum/mean/p50/p90/p99 and sparse (default)
  /// or dense log2 buckets.
  void write_json(std::ostream& out, const JsonOptions& opts = {}) const;
  /// The same fields without the surrounding braces, for embedding in a
  /// larger object (the JSONL reporter's per-line records).
  void write_json_fields(std::ostream& out, const JsonOptions& opts = {}) const;
};

/// The process-wide registry. Metrics are created on first lookup and live
/// for the process (stable addresses — hot paths cache the reference).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// How a linked caller-owned source combines with live siblings under
  /// the same name (and, for kSum, with the retained base of destroyed
  /// instances).
  enum class Agg : std::uint8_t { kSum, kMax };

  /// RAII handle for one linked source; unlinks on destruction. Movable so
  /// owners can keep a vector<Link>.
  class Link {
   public:
    Link() = default;
    Link(Link&& o) noexcept : reg_(o.reg_), id_(o.id_) { o.reg_ = nullptr; }
    Link& operator=(Link&& o) noexcept {
      if (this != &o) {
        release();
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
      }
      return *this;
    }
    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;
    ~Link() { release(); }

   private:
    friend class MetricsRegistry;
    Link(MetricsRegistry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
    void release();

    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Links a caller-owned value source under `name`. snapshot() reports
  /// the aggregate of all live links with that name (plus any owned
  /// counter of the same name). When a kSum link dies with
  /// `retain_on_unlink`, its final probed value folds into a retained base
  /// so the reported total is monotonic across instance lifetimes. The
  /// probe runs under the registry mutex at snapshot time: it must not
  /// call back into the registry, but may take the owner's own locks.
  Link link(std::string name, Agg agg, std::function<std::uint64_t()> probe,
            bool retain_on_unlink = true);

  MetricsSnapshot snapshot() const;

 private:
  MetricsRegistry() = default;

  struct LinkEntry {
    std::string name;
    Agg agg = Agg::kSum;
    std::function<std::uint64_t()> probe;
    bool retain = true;
  };

  void unlink(std::uint64_t id);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  struct Retained {
    std::uint64_t value = 0;
    Agg agg = Agg::kSum;
  };

  std::map<std::uint64_t, LinkEntry> links_;
  std::map<std::string, Retained> retained_;  ///< folded bases of dead links
  std::uint64_t next_link_id_ = 1;
};

}  // namespace tiv::obs
