// Epoch span tracing — bounded-ring phase timing for the live pipeline
// (docs/OBSERVABILITY.md).
//
// A Span is an RAII phase marker: construction stamps a steady-clock
// start, destruction records (name, thread, start, duration) into the
// attached SpanTracer's ring buffer. The instrumented phase names are the
// pipeline's stages:
//
//   epoch                 one ShardStreamEngine::apply_epoch call
//   ├─ ingest             DelayStream::ingest(batch)   (precedes the epoch)
//   ├─ view-repair        IncrementalSeverity view repair (in-memory path)
//   ├─ tile-repack        dirty input tiles rewritten in place
//   ├─ band-pair-stream   the streaming severity driver (build or repair)
//   └─ sink-commit        sink cache invalidation + manifest clear
//   recovery-action       one heal (tile rebuild/repack) or replay
//
// Attachment mirrors shard::FaultInjector: a process-global tracer pointer,
// null by default — a detached Span costs one null test and no clock
// reads. Ring slots are claimed with a relaxed fetch_add, so spans from
// pool workers record concurrently; when the ring wraps, the oldest spans
// are overwritten (dropped() reports how many).
//
// The buffer dumps as Chrome trace_event JSON (write_chrome_trace) loadable
// in about://tracing or https://ui.perfetto.dev — nested spans on one
// thread render as a flame graph because RAII guarantees containment.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"

namespace tiv::obs {

struct TraceEvent {
  const char* name = "";   ///< phase name; must outlive the tracer (literals)
  std::uint32_t tid = 0;   ///< dense per-thread ordinal (not the OS tid)
  std::uint64_t start_ns = 0;  ///< steady clock, process-relative
  std::uint64_t dur_ns = 0;
};

class SpanTracer {
 public:
  /// `capacity` is rounded up to a power of two (slot index = claim mod
  /// capacity with one multiply-free mask).
  explicit SpanTracer(std::size_t capacity = 1 << 14);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;
  ~SpanTracer();

  /// Records one completed span. Thread-safe, wait-free (one fetch_add).
  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns);

  std::size_t capacity() const { return ring_.size(); }
  /// Total record() calls (including overwritten ones).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Spans lost to ring wraparound.
  std::uint64_t dropped() const {
    const auto n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  /// The retained spans, oldest first. Valid once writers have quiesced
  /// (between epochs / after a run) — concurrent record() calls may tear
  /// the slots they are overwriting.
  std::vector<TraceEvent> events() const;

  /// Sum of durations of retained spans named `name` (C-string compare).
  std::uint64_t total_ns(const char* name) const;
  /// Number of retained spans named `name`.
  std::size_t count(const char* name) const;

  /// Forgets all recorded spans. Caller must ensure no concurrent record().
  void clear() { next_.store(0, std::memory_order_relaxed); }

  /// Dumps the retained spans as a Chrome trace_event JSON document
  /// ({"traceEvents":[...]}; "X" complete events, microsecond timestamps)
  /// for about://tracing / Perfetto.
  void write_chrome_trace(std::ostream& out) const;

  /// Attaches `tracer` as the process-global span sink (nullptr detaches).
  /// Spans already open keep the tracer they captured at construction, so
  /// detach only when the pipeline is quiescent.
  static void attach(SpanTracer* tracer) {
    current_.store(tracer, std::memory_order_release);
  }
  static SpanTracer* current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Steady-clock nanoseconds relative to the first use in this process.
  static std::uint64_t now_ns();
  /// Dense ordinal of the calling thread (stable for the thread's life).
  static std::uint32_t thread_ordinal();

 private:
  static std::atomic<SpanTracer*> current_;

  std::vector<TraceEvent> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

/// Per-thread current-span registry — the sampling profiler's read surface
/// (src/obs/prof.hpp).
///
/// When publishing is enabled (SpanProfiler::start flips it), every Span
/// additionally pushes its name onto the calling thread's slot — a fixed
/// array of name pointers plus an atomic depth — and pops it on
/// destruction. A sampler thread can then read any slot's current span
/// path with two ordered loads and no locks: depth (acquire) then the
/// name pointers below it (relaxed). Names must be string literals (the
/// same rule TraceEvent already imposes), so a racing read can at worst
/// see a frame from a neighbouring moment — sampling noise — never a
/// dangling pointer.
///
/// Like the tracer and FaultInjector, the detached state costs one relaxed
/// load per Span; only the owner thread ever writes its slot's depth, so
/// push/pop need no read-modify-write.
class SpanStack {
 public:
  static constexpr std::size_t kMaxDepth = 16;   ///< frames kept per thread
  static constexpr std::size_t kMaxThreads = 64; ///< profiled-thread slots

  struct alignas(64) Slot {
    std::atomic<std::uint32_t> depth{0};
    std::array<std::atomic<const char*>, kMaxDepth> names{};
  };

  static bool publishing() {
    return publishing_.load(std::memory_order_relaxed);
  }
  /// Enables/disables Span push/pop publication. Spans already open keep
  /// the slot pointer they captured, so their pops stay balanced across a
  /// disable.
  static void set_publishing(bool on) {
    publishing_.store(on, std::memory_order_release);
  }

  /// The calling thread's slot, assigned on first use (nullptr once
  /// kMaxThreads threads hold one — those threads go unprofiled).
  static Slot* slot();

  /// Slots handed out so far (sampler iteration bound). A slot stays
  /// valid for the process lifetime once assigned.
  static std::size_t slots_in_use();
  static const Slot& slot_at(std::size_t i);

  /// Owner-thread push/pop. Deeper-than-kMaxDepth nesting still counts
  /// depth (so pops balance) but records no name; readers clamp.
  static void push(Slot& s, const char* name) {
    const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
    if (d < kMaxDepth) s.names[d].store(name, std::memory_order_relaxed);
    s.depth.store(d + 1, std::memory_order_release);
  }
  static void pop(Slot& s) {
    const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
    s.depth.store(d > 0 ? d - 1 : 0, std::memory_order_release);
  }

  /// Sampler-side read of one slot's current path, innermost frame last.
  /// Returns the frame count (clamped to kMaxDepth; 0 = thread idle).
  static std::uint32_t read(const Slot& s,
                            std::array<const char*, kMaxDepth>& frames) {
    std::uint32_t d = s.depth.load(std::memory_order_acquire);
    if (d > kMaxDepth) d = kMaxDepth;
    for (std::uint32_t i = 0; i < d; ++i) {
      frames[i] = s.names[i].load(std::memory_order_relaxed);
    }
    return d;
  }

 private:
  static std::atomic<bool> publishing_;
};

/// RAII phase span. Captures the attached tracer at construction (so an
/// attach/detach mid-span is safe) and records on destruction; when the
/// profiler has span-stack publishing enabled, also pushes onto the
/// thread's SpanStack slot. Compiled to nothing under TIV_OBS_DISABLE.
class Span {
 public:
  explicit Span(const char* name)
#ifndef TIV_OBS_DISABLE
      : tracer_(SpanTracer::current()), name_(name) {
    if (tracer_ != nullptr) start_ns_ = SpanTracer::now_ns();
    if (SpanStack::publishing()) {
      slot_ = SpanStack::slot();
      if (slot_ != nullptr) SpanStack::push(*slot_, name);
    }
  }
#else
  {
    (void)name;
  }
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
#ifndef TIV_OBS_DISABLE
    if (slot_ != nullptr) SpanStack::pop(*slot_);
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_ns_, SpanTracer::now_ns());
    }
#endif
  }

 private:
#ifndef TIV_OBS_DISABLE
  SpanTracer* tracer_ = nullptr;
  SpanStack::Slot* slot_ = nullptr;
  const char* name_ = "";
  std::uint64_t start_ns_ = 0;
#endif
};

}  // namespace tiv::obs
