#include "obs/prof.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/trace.hpp"

namespace tiv::obs {
namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out << '\\';
    out << ch;
  }
  out << '"';
}

/// Hierarchical rollup node, built from the flat path map.
struct TreeNode {
  std::uint64_t self = 0;
  std::uint64_t total = 0;
  std::map<std::string, TreeNode> children;
};

void write_tree(std::ostream& out, const std::string& name,
                const TreeNode& node) {
  out << "{\"name\":";
  write_json_string(out, name);
  out << ",\"self\":" << node.self << ",\"total\":" << node.total;
  if (!node.children.empty()) {
    out << ",\"children\":[";
    bool first = true;
    for (const auto& [child_name, child] : node.children) {
      if (!first) out << ",";
      first = false;
      write_tree(out, child_name, child);
    }
    out << "]";
  }
  out << "}";
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> frames;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep = path.find(';', start);
    if (sep == std::string::npos) {
      frames.push_back(path.substr(start));
      return frames;
    }
    frames.push_back(path.substr(start, sep - start));
    start = sep + 1;
  }
}

}  // namespace

std::map<std::string, Profile::PathStat> Profile::path_stats() const {
  std::map<std::string, PathStat> stats;
  for (const auto& [path, count] : by_path) {
    stats[path].self += count;
    // Every prefix (split at frame boundaries) absorbs the sample into
    // its total — "epoch;tile-repack" counts toward "epoch" too.
    for (std::size_t sep = path.find(';'); sep != std::string::npos;
         sep = path.find(';', sep + 1)) {
      stats[path.substr(0, sep)].total += count;
    }
    stats[path].total += count;
  }
  return stats;
}

void Profile::write_collapsed(std::ostream& out) const {
  for (const auto& [path, count] : by_path) {
    out << path << " " << count << "\n";
  }
}

void Profile::write_json(std::ostream& out) const {
  char hz_buf[32];
  std::snprintf(hz_buf, sizeof(hz_buf), "%.3f", hz);
  out << "{\"hz\":" << hz_buf << ",\"ticks\":" << ticks
      << ",\"samples\":" << samples << ",\"idle_ticks\":" << idle_ticks
      << ",\"threads_seen\":" << threads_seen << ",\"paths\":[";
  const auto stats = path_stats();
  bool first = true;
  for (const auto& [path, stat] : stats) {
    if (!first) out << ",";
    first = false;
    out << "{\"path\":";
    write_json_string(out, path);
    out << ",\"self\":" << stat.self << ",\"total\":" << stat.total << "}";
  }
  out << "],\"tree\":";
  TreeNode root;
  root.total = samples;
  for (const auto& [path, count] : by_path) {
    TreeNode* node = &root;
    for (const std::string& frame : split_path(path)) {
      node = &node->children[frame];
      node->total += count;
    }
    node->self += count;
  }
  write_tree(out, "<root>", root);
  out << "}\n";
}

SpanProfiler::SpanProfiler(Options opts) : opts_(opts) {
  opts_.hz = std::clamp(opts_.hz, 1.0, 10000.0);
}

SpanProfiler::~SpanProfiler() { stop(); }

bool SpanProfiler::running() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return sampler_.joinable();
}

void SpanProfiler::start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (sampler_.joinable()) return;  // idempotent
  stopping_ = false;
  prof_.hz = opts_.hz;
  SpanStack::set_publishing(true);
  sampler_ = std::thread([this] { run(); });
}

void SpanProfiler::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!sampler_.joinable()) return;  // idempotent
    stopping_ = true;
  }
  stop_cv_.notify_all();
  sampler_.join();  // joinable() is false from here — running() reads that
  SpanStack::set_publishing(false);
}

Profile SpanProfiler::profile() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return prof_;
}

void SpanProfiler::run() {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / opts_.hz));
  std::array<const char*, SpanStack::kMaxDepth> frames{};
  std::string path;
  auto next = clock::now() + period;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    if (stop_cv_.wait_until(lk, next, [this] { return stopping_; })) return;
    // Catch up rather than burst if a tick overran its slot (the wall
    // clock, not the tick count, carries the rate).
    const auto now = clock::now();
    next = now < next + period ? next + period : now + period;

    ++prof_.ticks;
    const std::size_t used = SpanStack::slots_in_use();
    prof_.threads_seen = std::max(prof_.threads_seen, used);
    bool any_active = false;
    for (std::size_t t = 0; t < used; ++t) {
      const std::uint32_t depth = SpanStack::read(SpanStack::slot_at(t),
                                                  frames);
      if (depth == 0) continue;
      any_active = true;
      path.clear();
      for (std::uint32_t i = 0; i < depth; ++i) {
        if (i != 0) path += ';';
        path += frames[i];
      }
      ++prof_.by_path[path];
      ++prof_.samples;
    }
    if (!any_active) ++prof_.idle_ticks;
  }
}

}  // namespace tiv::obs
