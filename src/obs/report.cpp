#include "obs/report.hpp"

namespace tiv::obs {

namespace prom {

std::string metric_name(std::string_view name) {
  std::string out = "tiv_";
  out.reserve(out.size() + name.size());
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace prom

SnapshotReporter::SnapshotReporter(std::ostream& out, Options opts)
    : out_(out), opts_(opts), start_time_(std::chrono::steady_clock::now()) {}

SnapshotReporter::~SnapshotReporter() { stop(); }

void SnapshotReporter::report_now(std::string_view label) {
  std::lock_guard<std::mutex> lk(mutex_);
  emit_locked(label);
}

void SnapshotReporter::emit_locked(std::string_view label) {
  const MetricsSnapshot now = MetricsRegistry::instance().snapshot();
  const MetricsSnapshot line = opts_.cumulative ? now : now.delta_since(last_);
  last_ = now;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_time_);
  out_ << "{\"seq\":" << seq_++ << ",\"elapsed_ms\":" << elapsed.count();
  if (!label.empty()) {
    out_ << ",\"label\":\"";
    for (char ch : label) {
      if (ch == '"' || ch == '\\') out_ << '\\';
      out_ << ch;
    }
    out_ << "\"";
  }
  out_ << ",";
  MetricsSnapshot::JsonOptions jopts;
  jopts.dense_histograms = opts_.dense_histograms;
  line.write_json_fields(out_, jopts);
  out_ << "}\n";
  out_.flush();
}

void SnapshotReporter::write_prometheus(std::ostream& out) {
  write_prometheus(out, MetricsRegistry::instance().snapshot());
}

void SnapshotReporter::write_prometheus(std::ostream& out,
                                        const MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom::metric_name(name);
    out << "# HELP " << n << " " << prom::escape_help(name) << "\n";
    out << "# TYPE " << n << " counter\n";
    out << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom::metric_name(name);
    out << "# HELP " << n << " " << prom::escape_help(name) << "\n";
    out << "# TYPE " << n << " gauge\n";
    out << n << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom::metric_name(name);
    out << "# HELP " << n << " " << prom::escape_help(name) << "\n";
    out << "# TYPE " << n << " histogram\n";
    // Cumulative bucket series. Bucket b holds values in
    // [bucket_lower_bound(b), bucket_lower_bound(b+1)), so its inclusive
    // upper edge — the `le` label — is 2^b - 1 (0 for bucket 0). Empty
    // buckets are skipped: the cumulative count is unchanged there, and
    // the exposition format permits sparse bucket sets as long as +Inf
    // closes the series.
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
      if (h.buckets[b] == 0) continue;
      cum += h.buckets[b];
      const std::uint64_t le =
          b == 0 ? 0 : (Histogram::bucket_lower_bound(b) - 1) * 2 + 1;
      out << n << "_bucket{le=\"" << le << "\"} " << cum << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.count << "\n";
  }
}

void SnapshotReporter::start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (ticker_.joinable()) return;
  stopping_ = false;
  ticker_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      if (stop_cv_.wait_for(lk, opts_.interval, [&] { return stopping_; })) {
        return;
      }
      emit_locked({});
    }
  });
}

void SnapshotReporter::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!ticker_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  ticker_.join();
}

}  // namespace tiv::obs
