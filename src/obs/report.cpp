#include "obs/report.hpp"

namespace tiv::obs {

SnapshotReporter::SnapshotReporter(std::ostream& out, Options opts)
    : out_(out), opts_(opts), start_time_(std::chrono::steady_clock::now()) {}

SnapshotReporter::~SnapshotReporter() { stop(); }

void SnapshotReporter::report_now(std::string_view label) {
  std::lock_guard<std::mutex> lk(mutex_);
  emit_locked(label);
}

void SnapshotReporter::emit_locked(std::string_view label) {
  const MetricsSnapshot now = MetricsRegistry::instance().snapshot();
  const MetricsSnapshot line = opts_.cumulative ? now : now.delta_since(last_);
  last_ = now;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_time_);
  out_ << "{\"seq\":" << seq_++ << ",\"elapsed_ms\":" << elapsed.count();
  if (!label.empty()) {
    out_ << ",\"label\":\"";
    for (char ch : label) {
      if (ch == '"' || ch == '\\') out_ << '\\';
      out_ << ch;
    }
    out_ << "\"";
  }
  out_ << ",";
  line.write_json_fields(out_);
  out_ << "}\n";
  out_.flush();
}

void SnapshotReporter::start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (ticker_.joinable()) return;
  stopping_ = false;
  ticker_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      if (stop_cv_.wait_for(lk, opts_.interval, [&] { return stopping_; })) {
        return;
      }
      emit_locked({});
    }
  });
}

void SnapshotReporter::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!ticker_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  ticker_.join();
}

}  // namespace tiv::obs
