#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace tiv::obs {
namespace {

/// JSON string escaping for metric names (conservative: names are
/// dot-separated identifiers, but a stray quote must not break the doc).
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out << '\\';
    out << ch;
  }
  out << '"';
}

void write_histogram_json(std::ostream& out, const HistogramSnapshot& h,
                          const MetricsSnapshot::JsonOptions& opts) {
  out << "{\"count\":" << h.count << ",\"sum\":" << h.sum
      << ",\"mean\":" << h.mean() << ",\"p50\":" << h.quantile(0.50)
      << ",\"p90\":" << h.quantile(0.90) << ",\"p99\":" << h.quantile(0.99)
      << ",\"buckets\":";
  if (opts.dense_histograms) {
    out << "[";
    for (std::size_t b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
      if (b != 0) out << ",";
      out << h.buckets[b];
    }
    out << "]";
  } else {
    // Sparse: only occupied buckets, keyed by inclusive lower bound.
    out << "{";
    bool first = true;
    for (unsigned b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << Histogram::bucket_lower_bound(b) << "\":" << h.buckets[b];
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value (1-based), then walk buckets to find it.
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBucketCount; ++b) {
    if (buckets[b] == 0) continue;
    const auto next = seen + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const auto lo = static_cast<double>(Histogram::bucket_lower_bound(b));
      const double hi =
          b + 1 < kBucketCount
              ? static_cast<double>(Histogram::bucket_lower_bound(b + 1))
              : lo * 2.0;
      // Linear interpolation by the rank's position within the bucket.
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen = next;
  }
  return static_cast<double>(
      Histogram::bucket_lower_bound(kBucketCount - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (const Cell& c : cells_) {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      const auto n = c.count[b].load(std::memory_order_relaxed);
      s.buckets[b] += n;
      s.count += n;
    }
    s.sum += c.sum.load(std::memory_order_relaxed);
  }
  return s;
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& base) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = base.counters.find(name);
    const std::uint64_t b = it == base.counters.end() ? 0 : it->second;
    d.counters[name] = v >= b ? v - b : 0;
  }
  d.gauges = gauges;  // levels, not increments
  for (const auto& [name, h] : histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      d.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& bh = it->second;
    HistogramSnapshot dh;
    dh.count = h.count >= bh.count ? h.count - bh.count : 0;
    dh.sum = h.sum >= bh.sum ? h.sum - bh.sum : 0;
    for (std::size_t b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
      dh.buckets[b] =
          h.buckets[b] >= bh.buckets[b] ? h.buckets[b] - bh.buckets[b] : 0;
    }
    d.histograms[name] = dh;
  }
  return d;
}

void MetricsSnapshot::write_json_fields(std::ostream& out,
                                        const JsonOptions& opts) const {
  out << "\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":";
    write_histogram_json(out, h, opts);
  }
  out << "}";
}

void MetricsSnapshot::write_json(std::ostream& out,
                                 const JsonOptions& opts) const {
  out << "{";
  write_json_fields(out, opts);
  out << "}";
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked so metrics registered from static-destruction-order-unlucky
  // contexts (thread_local teardown, other singletons) stay valid.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Link MetricsRegistry::link(
    std::string name, Agg agg, std::function<std::uint64_t()> probe,
    bool retain_on_unlink) {
  std::lock_guard<std::mutex> lk(mutex_);
  const std::uint64_t id = next_link_id_++;
  links_.emplace(id,
                 LinkEntry{std::move(name), agg, std::move(probe),
                           retain_on_unlink});
  return Link(this, id);
}

void MetricsRegistry::unlink(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = links_.find(id);
  if (it == links_.end()) return;
  const LinkEntry& e = it->second;
  if (e.retain) {
    const std::uint64_t v = e.probe();
    Retained& base = retained_[e.name];
    base.agg = e.agg;
    base.value = e.agg == Agg::kSum ? base.value + v : std::max(base.value, v);
  }
  links_.erase(it);
}

void MetricsRegistry::Link::release() {
  if (reg_ != nullptr) {
    reg_->unlink(id_);
    reg_ = nullptr;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  // Retained bases of destroyed linked sources, then the live links on top.
  for (const auto& [name, base] : retained_) {
    std::uint64_t& slot = s.counters[name];
    slot = base.agg == Agg::kSum ? slot + base.value
                                 : std::max(slot, base.value);
  }
  for (const auto& [id, e] : links_) {
    const std::uint64_t v = e.probe();
    std::uint64_t& slot = s.counters[e.name];
    slot = e.agg == Agg::kSum ? slot + v : std::max(slot, v);
  }
  return s;
}

}  // namespace tiv::obs
