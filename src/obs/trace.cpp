#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <ostream>

namespace tiv::obs {

std::atomic<SpanTracer*> SpanTracer::current_{nullptr};
std::atomic<bool> SpanStack::publishing_{false};

namespace {

/// Process-global slot table. Leaked-static storage (like the metrics
/// registry) so a slot pointer cached by a thread_local stays valid
/// through static destruction.
struct SlotTable {
  std::array<SpanStack::Slot, SpanStack::kMaxThreads> slots;
  std::atomic<std::size_t> next{0};
};

SlotTable& slot_table() {
  static SlotTable* table = new SlotTable();
  return *table;
}

}  // namespace

SpanStack::Slot* SpanStack::slot() {
  thread_local Slot* const slot = []() -> Slot* {
    SlotTable& t = slot_table();
    const std::size_t i = t.next.fetch_add(1, std::memory_order_relaxed);
    return i < kMaxThreads ? &t.slots[i] : nullptr;
  }();
  return slot;
}

std::size_t SpanStack::slots_in_use() {
  return std::min(slot_table().next.load(std::memory_order_acquire),
                  kMaxThreads);
}

const SpanStack::Slot& SpanStack::slot_at(std::size_t i) {
  return slot_table().slots[i];
}

std::uint64_t SpanTracer::now_ns() {
  using clock = std::chrono::steady_clock;
  // Process-relative epoch so trace timestamps start near zero (Chrome's
  // viewer handles absolute steady-clock values, but small numbers keep
  // the JSON compact and the timeline readable).
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

std::uint32_t SpanTracer::thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ord =
      next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

SpanTracer::SpanTracer(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(capacity == 0 ? 1 : capacity);
  ring_.resize(cap);
  mask_ = cap - 1;
}

SpanTracer::~SpanTracer() {
  // Self-detach so a tracer destroyed while attached cannot dangle.
  SpanTracer* self = this;
  current_.compare_exchange_strong(self, nullptr,
                                   std::memory_order_acq_rel);
}

void SpanTracer::record(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) {
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& e = ring_[slot & mask_];
  e.name = name;
  e.tid = thread_ordinal();
  e.start_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
}

std::vector<TraceEvent> SpanTracer::events() const {
  const std::uint64_t n = recorded();
  std::vector<TraceEvent> out;
  if (n == 0) return out;
  const std::size_t kept =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, ring_.size()));
  out.reserve(kept);
  // Oldest retained slot first: when wrapped, that is slot `n mod cap`
  // (the slot the next record would overwrite).
  const std::uint64_t first = n > ring_.size() ? n - ring_.size() : 0;
  for (std::uint64_t i = first; i < n; ++i) out.push_back(ring_[i & mask_]);
  return out;
}

std::uint64_t SpanTracer::total_ns(const char* name) const {
  std::uint64_t sum = 0;
  for (const TraceEvent& e : events()) {
    if (std::strcmp(e.name, name) == 0) sum += e.dur_ns;
  }
  return sum;
}

std::size_t SpanTracer::count(const char* name) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events()) {
    if (std::strcmp(e.name, name) == 0) ++n;
  }
  return n;
}

void SpanTracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events()) {
    if (!first) out << ",\n";
    first = false;
    // Complete ("X") events; ts/dur are microseconds (double).
    out << "{\"name\":\"" << e.name
        << "\",\"cat\":\"tiv\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << static_cast<double>(e.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3 << "}";
  }
  out << "]}\n";
}

}  // namespace tiv::obs
