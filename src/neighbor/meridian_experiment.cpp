#include "neighbor/meridian_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::neighbor {

using delayspace::HostId;

MeridianExperimentResult run_meridian_experiment(
    const delayspace::DelayMatrix& matrix,
    const MeridianExperimentParams& params) {
  if (params.num_meridian_nodes >= matrix.size()) {
    throw std::invalid_argument(
        "run_meridian_experiment: overlay must leave room for clients");
  }
  MeridianExperimentResult result;
  std::vector<double> penalties;
  std::uint64_t optimal_found = 0;

  Rng rng(params.seed);
  for (std::uint32_t r = 0; r < params.runs; ++r) {
    const auto picks = rng.sample_without_replacement(
        matrix.size(), params.num_meridian_nodes);
    std::vector<HostId> overlay_nodes(picks.begin(), picks.end());
    std::sort(overlay_nodes.begin(), overlay_nodes.end());
    meridian::MeridianParams mp = params.meridian;
    mp.seed = params.seed ^ (0x9e37ULL * (r + 1));
    const meridian::MeridianOverlay overlay(matrix, overlay_nodes,
                                            std::move(mp));

    std::vector<bool> is_overlay(matrix.size(), false);
    for (HostId m : overlay_nodes) is_overlay[m] = true;

    // Pre-draw each client's entry node so queries can run in parallel
    // with deterministic results.
    struct ClientQuery {
      HostId client;
      HostId start;
    };
    std::vector<ClientQuery> queries;
    for (HostId client = 0; client < matrix.size(); ++client) {
      if (is_overlay[client]) continue;
      queries.push_back(
          {client,
           overlay_nodes[rng.uniform_index(overlay_nodes.size())]});
    }

    struct QueryOutcome {
      double penalty = std::numeric_limits<double>::quiet_NaN();
      std::uint32_t probes = 0;
      bool restarted = false;
      bool optimal = false;
      bool valid = false;
    };
    std::vector<QueryOutcome> outcomes(queries.size());
    parallel_for(queries.size(), [&](std::size_t q) {
      const auto [client, start] = queries[q];
      const auto [opt_node, opt_delay] = overlay.optimal_node(client);
      if (!std::isfinite(opt_delay) || opt_delay <= 0.0) return;
      const meridian::QueryResult qr = overlay.find_closest(client, start);
      QueryOutcome& o = outcomes[q];
      o.probes = qr.probes;
      o.restarted = qr.restarted;
      if (!matrix.has(client, qr.chosen)) return;
      o.penalty =
          (matrix.at(client, qr.chosen) - opt_delay) * 100.0 / opt_delay;
      o.optimal = qr.chosen == opt_node ||
                  matrix.at(client, qr.chosen) <= opt_delay;
      o.valid = true;
    });
    for (const QueryOutcome& o : outcomes) {
      result.total_probes += o.probes;
      if (!o.valid) continue;
      ++result.total_queries;
      penalties.push_back(o.penalty);
      result.restarted_queries += o.restarted;
      optimal_found += o.optimal;
    }
  }
  result.penalties = Cdf(std::move(penalties));
  result.fraction_optimal_found =
      result.total_queries == 0
          ? 0.0
          : static_cast<double>(optimal_found) /
                static_cast<double>(result.total_queries);
  return result;
}

}  // namespace tiv::neighbor
