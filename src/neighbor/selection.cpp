#include "neighbor/selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::neighbor {

double percentage_penalty(const DelayMatrix& matrix, HostId client,
                          HostId selected,
                          const std::vector<HostId>& candidates) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  if (!matrix.has(client, selected)) return kNan;
  double optimal = std::numeric_limits<double>::infinity();
  for (HostId c : candidates) {
    if (c == client || !matrix.has(client, c)) continue;
    optimal = std::min(optimal, static_cast<double>(matrix.at(client, c)));
  }
  if (!std::isfinite(optimal) || optimal <= 0.0) return kNan;
  const double selected_delay = matrix.at(client, selected);
  return (selected_delay - optimal) * 100.0 / optimal;
}

SelectionExperiment::SelectionExperiment(const DelayMatrix& matrix,
                                         const SelectionParams& params)
    : matrix_(matrix) {
  if (params.num_candidates >= matrix.size()) {
    throw std::invalid_argument(
        "SelectionExperiment: candidates must leave room for clients");
  }
  Rng rng(params.seed);
  for (std::uint32_t r = 0; r < params.runs; ++r) {
    const auto picks =
        rng.sample_without_replacement(matrix.size(), params.num_candidates);
    std::vector<HostId> set(picks.begin(), picks.end());
    std::sort(set.begin(), set.end());
    candidate_sets_.push_back(std::move(set));
  }
}

Cdf SelectionExperiment::run_with_chooser(const Chooser& chooser) const {
  std::vector<double> penalties;
  for (const auto& candidates : candidate_sets_) {
    std::vector<bool> is_candidate(matrix_.size(), false);
    for (HostId c : candidates) is_candidate[c] = true;

    // Clients are independent; evaluate them in parallel per run.
    std::vector<double> run_penalties(matrix_.size(),
                                      std::numeric_limits<double>::quiet_NaN());
    parallel_for(matrix_.size(), [&](std::size_t client) {
      if (is_candidate[client]) return;
      const HostId selected =
          chooser(static_cast<HostId>(client), candidates);
      run_penalties[client] = percentage_penalty(
          matrix_, static_cast<HostId>(client), selected, candidates);
    });
    for (double p : run_penalties) {
      if (!std::isnan(p)) penalties.push_back(p);
    }
  }
  return Cdf(std::move(penalties));
}

Cdf SelectionExperiment::run(const Predictor& predictor) const {
  return run_with_chooser(
      [&predictor](HostId client, const std::vector<HostId>& candidates) {
        HostId best = candidates.front();
        double best_pred = std::numeric_limits<double>::infinity();
        for (HostId c : candidates) {
          if (c == client) continue;
          const double p = predictor(client, c);
          if (p < best_pred) {
            best_pred = p;
            best = c;
          }
        }
        return best;
      });
}

}  // namespace tiv::neighbor
