// Meridian closest-neighbor experiment (paper §4.1): a random subset of
// hosts forms the Meridian overlay, the rest are clients issuing one
// "closest overlay node to me" query each from a random entry node. Reports
// the percentage-penalty CDF cumulated over runs plus probe accounting —
// the paper's TIV-alert results (Figs. 24-25) hinge on the probe overhead
// staying within a few percent.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "meridian/meridian.hpp"
#include "util/stats.hpp"

namespace tiv::neighbor {

struct MeridianExperimentParams {
  std::uint32_t num_meridian_nodes = 2000;
  std::uint32_t runs = 5;
  std::uint64_t seed = 99;
  meridian::MeridianParams meridian;  ///< ring + query configuration
};

struct MeridianExperimentResult {
  Cdf penalties;
  std::uint64_t total_probes = 0;
  std::uint64_t total_queries = 0;
  std::uint64_t restarted_queries = 0;
  double fraction_optimal_found = 0.0;  ///< queries that found the true best

  double probes_per_query() const {
    return total_queries == 0 ? 0.0
                              : static_cast<double>(total_probes) /
                                    static_cast<double>(total_queries);
  }
};

/// Runs the experiment. The meridian params (including any TIV-alert
/// predictor) are shared by all runs; node subsets differ per run.
MeridianExperimentResult run_meridian_experiment(
    const delayspace::DelayMatrix& matrix,
    const MeridianExperimentParams& params);

}  // namespace tiv::neighbor
