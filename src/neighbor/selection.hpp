// Closest-neighbor-selection experiment harness (paper §4.1 methodology).
//
// A random subset of hosts act as candidates, every remaining host is a
// client, and each client selects the candidate its delay-prediction scheme
// says is nearest. The figure of merit is the percentage penalty
//
//   (delay_to_selected - delay_to_optimal) * 100 / delay_to_optimal
//
// cumulated over several runs with fresh candidate subsets. All of the
// paper's §4/§5 CDFs (Figs. 15-18, 23) are instances of this harness with
// different predictors.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "util/stats.hpp"

namespace tiv::neighbor {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// Estimated delay between two hosts; the experiment selects the candidate
/// minimizing this.
using Predictor = std::function<double(HostId, HostId)>;

/// Full custom chooser: returns the selected candidate.
using Chooser =
    std::function<HostId(HostId client, const std::vector<HostId>&)>;

struct SelectionParams {
  std::uint32_t num_candidates = 200;
  std::uint32_t runs = 5;  ///< fresh random candidate subset each run
  std::uint64_t seed = 77;
};

/// Percentage penalty of choosing `selected` instead of the true closest
/// candidate. Returns NaN when it cannot be evaluated (no measured delay to
/// the selected candidate, or a zero optimal delay).
double percentage_penalty(const DelayMatrix& matrix, HostId client,
                          HostId selected,
                          const std::vector<HostId>& candidates);

class SelectionExperiment {
 public:
  SelectionExperiment(const DelayMatrix& matrix, const SelectionParams& params);
  /// Deleted: the experiment keeps a reference; a temporary would dangle.
  SelectionExperiment(DelayMatrix&&, const SelectionParams&) = delete;

  /// Penalties cumulated over all runs, one entry per (run, client) test.
  Cdf run(const Predictor& predictor) const;
  Cdf run_with_chooser(const Chooser& chooser) const;

  /// The candidate subsets used (one per run) — exposed so schemes that
  /// need per-run state (e.g. Meridian overlays) can mirror the splits.
  const std::vector<std::vector<HostId>>& candidate_sets() const {
    return candidate_sets_;
  }

 private:
  const DelayMatrix& matrix_;
  std::vector<std::vector<HostId>> candidate_sets_;
};

}  // namespace tiv::neighbor
