// IDES (Mao & Saul, IMC 2004) — the matrix-factorization coordinate system
// the paper evaluates as a strawman in §4.2.
//
// Each node i carries an outgoing vector x_i and an incoming vector y_i; the
// predicted delay is the inner product x_i . y_j. Because an inner product
// is not a metric, IDES *can* represent triangle inequality violations —
// the question Fig. 15 answers is whether that capacity helps neighbor
// selection (it does not).
//
// Architecture follows the IDES paper: a set of landmark nodes measures the
// full landmark-to-landmark submatrix, which is factorized (SVD or NMF);
// every other host then solves two small least-squares problems against the
// landmark vectors using only its own measurements to the landmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "matfact/matrix.hpp"

namespace tiv::matfact {

struct IdesParams {
  std::size_t rank = 10;           ///< coordinate dimensionality
  std::size_t num_landmarks = 32;  ///< landmark set size
  enum class Method { kSvd, kNmf } method = Method::kSvd;
  std::uint64_t seed = 23;
};

class Ides {
 public:
  /// Builds coordinates for every host in the matrix. Landmarks are chosen
  /// uniformly at random. Throws std::invalid_argument when the matrix is
  /// smaller than the landmark count or rank > num_landmarks.
  Ides(const delayspace::DelayMatrix& matrix, const IdesParams& params);

  /// Predicted delay x_i . y_j, clamped to >= 0.
  double predicted(delayspace::HostId i, delayspace::HostId j) const;

  const std::vector<delayspace::HostId>& landmarks() const {
    return landmarks_;
  }
  std::size_t rank() const { return rank_; }

 private:
  std::size_t rank_;
  std::vector<delayspace::HostId> landmarks_;
  Matrix out_;  ///< n x rank outgoing vectors
  Matrix in_;   ///< n x rank incoming vectors
};

}  // namespace tiv::matfact
