#include "matfact/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tiv::matfact {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), d_(rows * cols, fill) {}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double ss = 0.0;
  for (std::size_t i = 0; i < d_.size(); ++i) {
    const double d = d_[i] - other.d_[i];
    ss += d * d;
  }
  return std::sqrt(ss);
}

double Matrix::frobenius_norm() const {
  double ss = 0.0;
  for (double v : d_) ss += v * v;
  return std::sqrt(ss);
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-14) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double s = b[r];
    for (std::size_t c = r + 1; c < n; ++c) s -= a.at(r, c) * x[c];
    x[r] = s / a.at(r, r);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double ridge) {
  assert(a.rows() >= a.cols() && b.size() == a.rows());
  const std::size_t k = a.cols();
  Matrix ata(k, k);
  std::vector<double> atb(k, 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      const double ari = a.at(r, i);
      if (ari == 0.0) continue;
      atb[i] += ari * b[r];
      for (std::size_t j = 0; j < k; ++j) ata.at(i, j) += ari * a.at(r, j);
    }
  }
  for (std::size_t i = 0; i < k; ++i) ata.at(i, i) += ridge;
  return solve_linear(std::move(ata), std::move(atb));
}

}  // namespace tiv::matfact
