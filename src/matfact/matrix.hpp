// Small dense row-major matrices for the factorization algorithms (IDES
// landmark matrices are at most a few hundred square; a general BLAS is not
// warranted).
#pragma once

#include <cstddef>
#include <vector>

namespace tiv::matfact {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double at(std::size_t r, std::size_t c) const { return d_[r * cols_ + c]; }
  double& at(std::size_t r, std::size_t c) { return d_[r * cols_ + c]; }

  Matrix transposed() const;

  /// this * other. Dimension mismatch is a programming error (asserted).
  Matrix multiply(const Matrix& other) const;

  /// Frobenius norm of (this - other).
  double frobenius_distance(const Matrix& other) const;
  double frobenius_norm() const;

  const std::vector<double>& data() const { return d_; }
  std::vector<double>& data() { return d_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> d_;
};

/// Solves the square linear system A x = b by Gaussian elimination with
/// partial pivoting. Throws std::runtime_error when A is (numerically)
/// singular. A is n-by-n, b has n entries.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Solves the least-squares problem min ||A x - b||_2 for tall A (rows >=
/// cols) via the normal equations with Tikhonov damping `ridge` (keeps the
/// k-by-k system well-posed even with nearly collinear landmark vectors).
std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double ridge = 1e-9);

}  // namespace tiv::matfact
