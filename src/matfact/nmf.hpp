// Non-negative matrix factorization by Lee-Seung multiplicative updates —
// the alternative factorization backend IDES proposes (delay matrices are
// non-negative, so NMF-based coordinates can never predict negative delays).
#pragma once

#include <cstdint>

#include "matfact/matrix.hpp"

namespace tiv::matfact {

struct NmfParams {
  std::size_t rank = 10;
  std::size_t max_iters = 200;
  /// Stop when the relative Frobenius improvement of one iteration drops
  /// below this.
  double rel_tolerance = 1e-5;
  std::uint64_t seed = 17;
};

struct NmfResult {
  Matrix w;  ///< rows x rank, non-negative
  Matrix h;  ///< rank x cols, non-negative
  double final_error = 0.0;  ///< ||A - WH||_F
  std::size_t iterations = 0;
};

/// Factorizes non-negative A ~= W H. Entries of A must be >= 0 (asserted in
/// debug builds, negative entries clamped to 0 otherwise).
NmfResult nmf(const Matrix& a, const NmfParams& params = {});

}  // namespace tiv::matfact
