#include "matfact/ides.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "matfact/nmf.hpp"
#include "matfact/svd.hpp"
#include "util/rng.hpp"

namespace tiv::matfact {

using delayspace::HostId;

Ides::Ides(const delayspace::DelayMatrix& matrix, const IdesParams& params)
    : rank_(params.rank) {
  const HostId n = matrix.size();
  if (params.num_landmarks > n) {
    throw std::invalid_argument("Ides: more landmarks than hosts");
  }
  if (params.rank > params.num_landmarks) {
    throw std::invalid_argument("Ides: rank exceeds landmark count");
  }
  const std::size_t l = params.num_landmarks;

  Rng rng(params.seed);
  const auto picks = rng.sample_without_replacement(
      n, static_cast<std::uint32_t>(l));
  landmarks_.assign(picks.begin(), picks.end());
  std::sort(landmarks_.begin(), landmarks_.end());

  // Landmark-to-landmark delay submatrix; missing entries are patched with
  // the landmark-set median (rare, and the factorization tolerates it).
  Matrix d(l, l);
  std::vector<double> present;
  for (std::size_t a = 0; a < l; ++a) {
    for (std::size_t b = 0; b < l; ++b) {
      if (a != b && matrix.has(landmarks_[a], landmarks_[b])) {
        const double v = matrix.at(landmarks_[a], landmarks_[b]);
        d.at(a, b) = v;
        present.push_back(v);
      }
    }
  }
  std::nth_element(present.begin(), present.begin() + present.size() / 2,
                   present.end());
  const double median =
      present.empty() ? 0.0 : present[present.size() / 2];
  for (std::size_t a = 0; a < l; ++a) {
    for (std::size_t b = 0; b < l; ++b) {
      if (a != b && !matrix.has(landmarks_[a], landmarks_[b])) {
        d.at(a, b) = median;
      }
    }
  }

  // Factorize D ~= Xl * Yl^T with rank k.
  Matrix xl(l, rank_);  // landmark outgoing vectors
  Matrix yl(l, rank_);  // landmark incoming vectors
  if (params.method == IdesParams::Method::kSvd) {
    const SvdResult svd = jacobi_svd(d);
    // Split the singular values symmetrically: X = U sqrt(S), Y = V sqrt(S).
    for (std::size_t r = 0; r < l; ++r) {
      for (std::size_t c = 0; c < rank_; ++c) {
        const double s = std::sqrt(svd.sigma[c]);
        xl.at(r, c) = svd.u.at(r, c) * s;
        yl.at(r, c) = svd.v.at(r, c) * s;
      }
    }
  } else {
    NmfParams np;
    np.rank = rank_;
    np.seed = params.seed ^ 0x5eedULL;
    const NmfResult f = nmf(d, np);
    for (std::size_t r = 0; r < l; ++r) {
      for (std::size_t c = 0; c < rank_; ++c) {
        xl.at(r, c) = f.w.at(r, c);
        yl.at(r, c) = f.h.at(c, r);
      }
    }
  }

  // Every host solves two least-squares fits against the landmark vectors:
  //   out_i : min || Yl * out_i - d(i, landmarks) ||   (outgoing)
  //   in_i  : min || Xl * in_i  - d(landmarks, i) ||   (incoming)
  // The matrix is symmetric so both right-hand sides coincide, but we keep
  // the two fits separate as in IDES (they differ when rows are dropped).
  out_ = Matrix(n, rank_);
  in_ = Matrix(n, rank_);
  for (HostId i = 0; i < n; ++i) {
    // Landmarks this host can measure.
    std::vector<std::size_t> rows;
    for (std::size_t a = 0; a < l; ++a) {
      if (landmarks_[a] == i || matrix.has(i, landmarks_[a])) {
        rows.push_back(a);
      }
    }
    if (rows.size() < rank_) {
      // Too few measurements to fit: fall back to zero vectors (predicts 0).
      continue;
    }
    Matrix ay(rows.size(), rank_);
    Matrix ax(rows.size(), rank_);
    std::vector<double> b(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t a = rows[r];
      b[r] = landmarks_[a] == i ? 0.0 : matrix.at(i, landmarks_[a]);
      for (std::size_t c = 0; c < rank_; ++c) {
        ay.at(r, c) = yl.at(a, c);
        ax.at(r, c) = xl.at(a, c);
      }
    }
    const auto oi = solve_least_squares(ay, b);
    const auto ii = solve_least_squares(ax, b);
    for (std::size_t c = 0; c < rank_; ++c) {
      out_.at(i, c) = oi[c];
      in_.at(i, c) = ii[c];
    }
  }
  // Landmarks use their factorization vectors directly (exact on D).
  for (std::size_t a = 0; a < l; ++a) {
    for (std::size_t c = 0; c < rank_; ++c) {
      out_.at(landmarks_[a], c) = xl.at(a, c);
      in_.at(landmarks_[a], c) = yl.at(a, c);
    }
  }
}

double Ides::predicted(HostId i, HostId j) const {
  double s = 0.0;
  for (std::size_t c = 0; c < rank_; ++c) {
    s += out_.at(i, c) * in_.at(j, c);
  }
  return std::max(0.0, s);
}

}  // namespace tiv::matfact
