// Singular value decomposition via the one-sided Jacobi method. Chosen over
// Golub-Kahan because it is compact, numerically robust, and the matrices we
// decompose (IDES landmark matrices) are small and square-ish, where Jacobi
// is competitive.
#pragma once

#include "matfact/matrix.hpp"

namespace tiv::matfact {

struct SvdResult {
  Matrix u;                     ///< rows x rank, orthonormal columns
  std::vector<double> sigma;    ///< singular values, descending
  Matrix v;                     ///< cols x rank, orthonormal columns

  /// Reconstructs U * diag(sigma) * V^T truncated to `rank` components
  /// (0 = all).
  Matrix reconstruct(std::size_t rank = 0) const;
};

/// Computes the thin SVD of a (rows >= cols required; transpose first
/// otherwise). Sweeps until all column pairs are orthogonal to `tol`
/// relative accuracy or `max_sweeps` is hit.
SvdResult jacobi_svd(const Matrix& a, double tol = 1e-12,
                     std::size_t max_sweeps = 60);

}  // namespace tiv::matfact
