#include "matfact/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace tiv::matfact {

Matrix SvdResult::reconstruct(std::size_t rank) const {
  const std::size_t k = rank == 0 ? sigma.size() : std::min(rank, sigma.size());
  Matrix out(u.rows(), v.rows());
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < u.rows(); ++i) {
      const double us = u.at(i, c) * sigma[c];
      if (us == 0.0) continue;
      for (std::size_t j = 0; j < v.rows(); ++j) {
        out.at(i, j) += us * v.at(j, c);
      }
    }
  }
  return out;
}

SvdResult jacobi_svd(const Matrix& a, double tol, std::size_t max_sweeps) {
  assert(a.rows() >= a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix u = a;            // working copy; columns are rotated in place
  Matrix v(n, n);          // accumulated right rotations
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  // One-sided Jacobi: rotate column pairs (p, q) of U until mutually
  // orthogonal; V accumulates the same rotations.
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0;
        double aqq = 0.0;
        double apq = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
          const double up = u.at(r, p);
          const double uq = u.at(r, q);
          app += up * up;
          aqq += uq * uq;
          apq += up * uq;
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        // Jacobi rotation zeroing the (p,q) inner product.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t r = 0; r < m; ++r) {
          const double up = u.at(r, p);
          const double uq = u.at(r, q);
          u.at(r, p) = c * up - s * uq;
          u.at(r, q) = s * up + c * uq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v.at(r, p);
          const double vq = v.at(r, q);
          v.at(r, p) = c * vp - s * vq;
          v.at(r, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values are the column norms of the rotated U.
  SvdResult res;
  res.sigma.assign(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double ss = 0.0;
    for (std::size_t r = 0; r < m; ++r) ss += u.at(r, c) * u.at(r, c);
    res.sigma[c] = std::sqrt(ss);
  }

  // Sort descending, permuting U and V columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return res.sigma[x] > res.sigma[y];
  });
  Matrix us(m, n);
  Matrix vs(n, n);
  std::vector<double> sig(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t src = order[c];
    sig[c] = res.sigma[src];
    const double inv = sig[c] > 1e-300 ? 1.0 / sig[c] : 0.0;
    for (std::size_t r = 0; r < m; ++r) us.at(r, c) = u.at(r, src) * inv;
    for (std::size_t r = 0; r < n; ++r) vs.at(r, c) = v.at(r, src);
  }
  res.u = std::move(us);
  res.v = std::move(vs);
  res.sigma = std::move(sig);
  return res;
}

}  // namespace tiv::matfact
