#include "matfact/nmf.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace tiv::matfact {

NmfResult nmf(const Matrix& a_in, const NmfParams& params) {
  Matrix a = a_in;
  for (double& v : a.data()) v = std::max(v, 0.0);

  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = params.rank;
  constexpr double kEps = 1e-9;  // keeps denominators strictly positive

  Rng rng(params.seed);
  // Scale the random init so W*H starts in the magnitude range of A.
  double mean = 0.0;
  for (double v : a.data()) mean += v;
  mean /= static_cast<double>(a.data().size());
  const double scale =
      std::sqrt(std::max(mean, kEps) / static_cast<double>(k));

  NmfResult res;
  res.w = Matrix(m, k);
  res.h = Matrix(k, n);
  for (double& v : res.w.data()) v = scale * rng.uniform(0.1, 1.0);
  for (double& v : res.h.data()) v = scale * rng.uniform(0.1, 1.0);

  double prev_err = a.frobenius_norm();
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // H <- H .* (W^T A) ./ (W^T W H)
    {
      const Matrix wt = res.w.transposed();
      const Matrix wta = wt.multiply(a);
      const Matrix wtwh = wt.multiply(res.w).multiply(res.h);
      for (std::size_t i = 0; i < res.h.data().size(); ++i) {
        res.h.data()[i] *= wta.data()[i] / (wtwh.data()[i] + kEps);
      }
    }
    // W <- W .* (A H^T) ./ (W H H^T)
    {
      const Matrix ht = res.h.transposed();
      const Matrix aht = a.multiply(ht);
      const Matrix whht = res.w.multiply(res.h.multiply(ht));
      for (std::size_t i = 0; i < res.w.data().size(); ++i) {
        res.w.data()[i] *= aht.data()[i] / (whht.data()[i] + kEps);
      }
    }
    res.iterations = it + 1;
    const double err = a.frobenius_distance(res.w.multiply(res.h));
    if (prev_err > 0.0 && (prev_err - err) / prev_err < params.rel_tolerance) {
      prev_err = err;
      break;
    }
    prev_err = err;
  }
  res.final_error = prev_err;
  return res;
}

}  // namespace tiv::matfact
