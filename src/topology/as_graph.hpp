// AS-level Internet topology: nodes are autonomous systems with a geographic
// position, a tier, and a cluster (continent) id; links carry propagation
// delays and Gao-Rexford business relationships (customer-provider or
// peer-peer). The routing module computes valley-free policy paths over this
// graph; the delayspace module attaches end hosts to it.
#pragma once

#include <cstdint>
#include <vector>

namespace tiv::topology {

using AsId = std::uint32_t;

enum class Tier : std::uint8_t {
  kTier1,  ///< global transit core; tier-1s peer in a full mesh
  kTier2,  ///< regional providers; customers of tier-1s
  kStub,   ///< edge networks; customers of tier-2s (or tier-1s)
};

enum class LinkKind : std::uint8_t {
  kCustomerProvider,  ///< a pays b for transit (a = customer, b = provider)
  kPeerPeer,          ///< settlement-free peering
};

struct AsNode {
  int cluster = 0;  ///< continent index; kNoiseCluster for unclustered nodes
  Tier tier = Tier::kStub;
  double x = 0.0;  ///< geographic position (abstract units; see generator)
  double y = 0.0;
};

/// Cluster id used for nodes that belong to no major continent cluster
/// (satellite links, isolated islands) — the paper's "noise cluster".
inline constexpr int kNoiseCluster = -1;

struct AsLink {
  AsId a = 0;  ///< customer for kCustomerProvider links
  AsId b = 0;  ///< provider for kCustomerProvider links
  LinkKind kind = LinkKind::kPeerPeer;
  double delay_ms = 0.0;  ///< one-way propagation delay of the link
  /// Congestion/inefficiency multiplier (>= 1). The *experienced* delay of
  /// the link is delay_ms * congestion, but BGP route selection only sees
  /// the propagation delay — real interdomain routing is congestion-
  /// oblivious, which is one of the mechanisms behind severe TIVs.
  double congestion = 1.0;
};

/// How a link looks from one endpoint's perspective.
enum class Role : std::uint8_t { kToProvider, kToCustomer, kToPeer };

/// One adjacency entry of a node.
struct Adjacency {
  AsId neighbor = 0;
  Role role = Role::kToPeer;
  double delay_ms = 0.0;       ///< propagation delay (what routing sees)
  double data_delay_ms = 0.0;  ///< experienced delay (delay_ms * congestion)
};

/// Immutable AS graph with per-node adjacency lists.
///
/// Invariants (checked by validate()): link endpoints are in range and
/// distinct, delays are positive, and the customer-provider relation is
/// acyclic (no AS is, transitively, its own provider).
class AsGraph {
 public:
  AsGraph(std::vector<AsNode> nodes, std::vector<AsLink> links);

  std::size_t size() const { return nodes_.size(); }
  const AsNode& node(AsId v) const { return nodes_[v]; }
  const std::vector<AsNode>& nodes() const { return nodes_; }
  const std::vector<AsLink>& links() const { return links_; }

  /// All neighbors of v with the relationship seen from v's side.
  const std::vector<Adjacency>& adjacent(AsId v) const { return adj_[v]; }

  /// Number of links in which v is the customer / provider / a peer.
  std::size_t provider_count(AsId v) const;
  std::size_t customer_count(AsId v) const;
  std::size_t peer_count(AsId v) const;

  /// Throws std::logic_error when a structural invariant is broken. Intended
  /// for generator tests; generated graphs always pass.
  void validate() const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<AsLink> links_;
  std::vector<std::vector<Adjacency>> adj_;
};

}  // namespace tiv::topology
