// AS-level Internet topology: nodes are autonomous systems with a geographic
// position, a tier, and a cluster (continent) id; links carry propagation
// delays and Gao-Rexford business relationships (customer-provider or
// peer-peer). The routing module computes valley-free policy paths over this
// graph; the delayspace module attaches end hosts to it.
//
// Storage is a flat CSR (compressed sparse row) adjacency, role-segmented
// per node: the entries of node v occupy [offset_[v], offset_[v+1]) in three
// contiguous runs — providers, then customers, then peers — across separate
// structure-of-arrays lanes (neighbor_, delay_ms_, data_delay_ms_). The
// three policy-routing phases each scan exactly one segment with no role
// branch, and role counts are O(1) segment widths instead of per-call scans.
// adjacent(v) remains source-compatible with the seed vector-of-Adjacency
// API via a lightweight iterable view.
#pragma once

#include <cstdint>
#include <iterator>
#include <vector>

namespace tiv::topology {

using AsId = std::uint32_t;

enum class Tier : std::uint8_t {
  kTier1,  ///< global transit core; tier-1s peer in a full mesh
  kTier2,  ///< regional providers; customers of tier-1s
  kStub,   ///< edge networks; customers of tier-2s (or tier-1s)
};

enum class LinkKind : std::uint8_t {
  kCustomerProvider,  ///< a pays b for transit (a = customer, b = provider)
  kPeerPeer,          ///< settlement-free peering
};

struct AsNode {
  int cluster = 0;  ///< continent index; kNoiseCluster for unclustered nodes
  Tier tier = Tier::kStub;
  double x = 0.0;  ///< geographic position (abstract units; see generator)
  double y = 0.0;
};

/// Cluster id used for nodes that belong to no major continent cluster
/// (satellite links, isolated islands) — the paper's "noise cluster".
inline constexpr int kNoiseCluster = -1;

struct AsLink {
  AsId a = 0;  ///< customer for kCustomerProvider links
  AsId b = 0;  ///< provider for kCustomerProvider links
  LinkKind kind = LinkKind::kPeerPeer;
  double delay_ms = 0.0;  ///< one-way propagation delay of the link
  /// Congestion/inefficiency multiplier (>= 1). The *experienced* delay of
  /// the link is delay_ms * congestion, but BGP route selection only sees
  /// the propagation delay — real interdomain routing is congestion-
  /// oblivious, which is one of the mechanisms behind severe TIVs.
  double congestion = 1.0;
};

/// How a link looks from one endpoint's perspective.
enum class Role : std::uint8_t { kToProvider, kToCustomer, kToPeer };

/// One adjacency entry of a node (materialized from the CSR lanes).
struct Adjacency {
  AsId neighbor = 0;
  Role role = Role::kToPeer;
  double delay_ms = 0.0;       ///< propagation delay (what routing sees)
  double data_delay_ms = 0.0;  ///< experienced delay (delay_ms * congestion)
};

/// Immutable AS graph with role-segmented CSR adjacency.
///
/// Invariants (checked by validate()): link endpoints are in range and
/// distinct, delays are positive, the customer-provider relation is acyclic
/// (no AS is, transitively, its own provider), and the CSR arrays are
/// exactly the segment layout the links imply.
class AsGraph {
 public:
  AsGraph(std::vector<AsNode> nodes, std::vector<AsLink> links);

  std::size_t size() const { return nodes_.size(); }
  const AsNode& node(AsId v) const { return nodes_[v]; }
  const std::vector<AsNode>& nodes() const { return nodes_; }
  const std::vector<AsLink>& links() const { return links_; }

  /// One role segment of a node's adjacency: `count` parallel-lane entries.
  /// The batched routing engine consumes these directly; relative order
  /// within a segment is link insertion order (stable across rebuilds).
  struct Segment {
    const AsId* neighbor = nullptr;
    const double* delay_ms = nullptr;
    const double* data_delay_ms = nullptr;
    std::uint32_t count = 0;
  };
  Segment providers(AsId v) const {
    return segment(offset_[v], cust_begin_[v]);
  }
  Segment customers(AsId v) const {
    return segment(cust_begin_[v], peer_begin_[v]);
  }
  Segment peers(AsId v) const { return segment(peer_begin_[v], offset_[v + 1]); }
  /// Every entry of v as one segment (the three role runs are contiguous),
  /// for role-oblivious consumers like the shortest-path engine.
  Segment neighbors(AsId v) const { return segment(offset_[v], offset_[v + 1]); }

  /// Iterable view over all adjacency entries of one node, in segment order
  /// (providers, customers, peers). Source-compatible with the seed
  /// vector<Adjacency> API: range-for, size(), operator[].
  class AdjacencyView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Adjacency;
      using difference_type = std::ptrdiff_t;
      using pointer = const Adjacency*;
      using reference = Adjacency;

      iterator(const AsGraph* g, AsId v, std::uint32_t i)
          : g_(g), v_(v), i_(i) {}
      Adjacency operator*() const { return g_->entry(v_, i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++i_;
        return old;
      }
      bool operator==(const iterator& o) const { return i_ == o.i_; }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const AsGraph* g_;
      AsId v_;
      std::uint32_t i_;
    };

    AdjacencyView(const AsGraph* g, AsId v) : g_(g), v_(v) {}
    iterator begin() const { return {g_, v_, g_->offset_[v_]}; }
    iterator end() const { return {g_, v_, g_->offset_[v_ + 1]}; }
    std::size_t size() const {
      return g_->offset_[v_ + 1] - g_->offset_[v_];
    }
    bool empty() const { return size() == 0; }
    Adjacency operator[](std::size_t i) const {
      return g_->entry(v_,
                       g_->offset_[v_] + static_cast<std::uint32_t>(i));
    }

   private:
    const AsGraph* g_;
    AsId v_;
  };

  /// All neighbors of v with the relationship seen from v's side.
  AdjacencyView adjacent(AsId v) const { return {this, v}; }

  /// Number of links in which v is the customer / provider / a peer.
  /// O(1): segment widths precomputed at build time.
  std::size_t provider_count(AsId v) const {
    return cust_begin_[v] - offset_[v];
  }
  std::size_t customer_count(AsId v) const {
    return peer_begin_[v] - cust_begin_[v];
  }
  std::size_t peer_count(AsId v) const {
    return offset_[v + 1] - peer_begin_[v];
  }
  std::size_t degree(AsId v) const { return offset_[v + 1] - offset_[v]; }

  /// Throws std::logic_error when a structural invariant is broken. Intended
  /// for generator tests; generated graphs always pass.
  void validate() const;

 private:
  Segment segment(std::uint32_t begin, std::uint32_t end) const {
    return {neighbor_.data() + begin, delay_ms_.data() + begin,
            data_delay_ms_.data() + begin, end - begin};
  }
  /// Materializes entry i (a CSR index inside v's range) of node v.
  Adjacency entry(AsId v, std::uint32_t i) const {
    Role role = Role::kToPeer;
    if (i < cust_begin_[v]) {
      role = Role::kToProvider;
    } else if (i < peer_begin_[v]) {
      role = Role::kToCustomer;
    }
    return {neighbor_[i], role, delay_ms_[i], data_delay_ms_[i]};
  }

  std::vector<AsNode> nodes_;
  std::vector<AsLink> links_;

  // CSR arrays. Node v's entries are [offset_[v], offset_[v+1]), split as
  //   providers [offset_[v], cust_begin_[v])
  //   customers [cust_begin_[v], peer_begin_[v])
  //   peers     [peer_begin_[v], offset_[v+1])
  std::vector<std::uint32_t> offset_;      ///< size n+1
  std::vector<std::uint32_t> cust_begin_;  ///< size n
  std::vector<std::uint32_t> peer_begin_;  ///< size n
  std::vector<AsId> neighbor_;
  std::vector<double> delay_ms_;
  std::vector<double> data_delay_ms_;
};

}  // namespace tiv::topology
