#include "topology/as_graph.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace tiv::topology {
namespace {

/// The directed half-entries a link contributes: (node, role) twice.
struct HalfEntry {
  AsId node;
  Role role;
};

std::pair<HalfEntry, HalfEntry> link_halves(const AsLink& l) {
  if (l.kind == LinkKind::kCustomerProvider) {
    return {{l.a, Role::kToProvider}, {l.b, Role::kToCustomer}};
  }
  return {{l.a, Role::kToPeer}, {l.b, Role::kToPeer}};
}

}  // namespace

AsGraph::AsGraph(std::vector<AsNode> nodes, std::vector<AsLink> links)
    : nodes_(std::move(nodes)), links_(std::move(links)) {
  const obs::Span span("graph-build");
  const std::size_t n = nodes_.size();

  // Pass 1: per-(node, role) counts. Also the only place endpoints are
  // range-checked, before any array is sized from them.
  std::vector<std::uint32_t> prov_count(n, 0);
  std::vector<std::uint32_t> cust_count(n, 0);
  std::vector<std::uint32_t> peer_count(n, 0);
  for (const AsLink& l : links_) {
    if (l.a >= n || l.b >= n) {
      throw std::out_of_range("AsGraph: link endpoint out of range");
    }
    const auto [ha, hb] = link_halves(l);
    for (const HalfEntry& h : {ha, hb}) {
      switch (h.role) {
        case Role::kToProvider:
          ++prov_count[h.node];
          break;
        case Role::kToCustomer:
          ++cust_count[h.node];
          break;
        case Role::kToPeer:
          ++peer_count[h.node];
          break;
      }
    }
  }

  // Segment boundaries: providers, customers, peers contiguous per node.
  offset_.resize(n + 1);
  cust_begin_.resize(n);
  peer_begin_.resize(n);
  std::uint32_t at = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offset_[v] = at;
    cust_begin_[v] = at + prov_count[v];
    peer_begin_[v] = cust_begin_[v] + cust_count[v];
    at = peer_begin_[v] + peer_count[v];
  }
  offset_[n] = at;

  // Pass 2: stable fill (within a segment, entries keep link order — the
  // seed's push_back order, so the adjacent() view is order-compatible).
  neighbor_.resize(at);
  delay_ms_.resize(at);
  data_delay_ms_.resize(at);
  std::vector<std::uint32_t> cursor_prov(offset_.begin(), offset_.end() - 1);
  std::vector<std::uint32_t> cursor_cust = cust_begin_;
  std::vector<std::uint32_t> cursor_peer = peer_begin_;
  for (const AsLink& l : links_) {
    const double data = l.delay_ms * l.congestion;
    const auto [ha, hb] = link_halves(l);
    const AsId other[2] = {l.b, l.a};
    const HalfEntry halves[2] = {ha, hb};
    for (int side = 0; side < 2; ++side) {
      const HalfEntry& h = halves[side];
      std::uint32_t* cursor = nullptr;
      switch (h.role) {
        case Role::kToProvider:
          cursor = &cursor_prov[h.node];
          break;
        case Role::kToCustomer:
          cursor = &cursor_cust[h.node];
          break;
        case Role::kToPeer:
          cursor = &cursor_peer[h.node];
          break;
      }
      const std::uint32_t slot = (*cursor)++;
      neighbor_[slot] = other[side];
      delay_ms_[slot] = l.delay_ms;
      data_delay_ms_[slot] = data;
    }
  }
}

void AsGraph::validate() const {
  const std::size_t n = nodes_.size();
  for (const AsLink& l : links_) {
    if (l.a == l.b) throw std::logic_error("AsGraph: self link");
    if (!(l.delay_ms > 0)) {
      throw std::logic_error("AsGraph: non-positive link delay");
    }
    if (!(l.congestion >= 1.0)) {
      throw std::logic_error("AsGraph: congestion multiplier below 1");
    }
  }

  // CSR segment invariants: boundaries monotone and in range, total entry
  // count = two per link, and the arrays byte-for-byte what the links imply
  // (a rebuild must reproduce them — catches any drift between links_ and
  // the packed lanes).
  if (offset_.size() != n + 1 || cust_begin_.size() != n ||
      peer_begin_.size() != n) {
    throw std::logic_error("AsGraph: CSR index arrays have wrong size");
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (offset_[v] > cust_begin_[v] || cust_begin_[v] > peer_begin_[v] ||
        peer_begin_[v] > offset_[v + 1]) {
      throw std::logic_error("AsGraph: CSR segment boundaries not monotone");
    }
  }
  if (offset_[n] != 2 * links_.size() || neighbor_.size() != offset_[n] ||
      delay_ms_.size() != offset_[n] || data_delay_ms_.size() != offset_[n]) {
    throw std::logic_error("AsGraph: CSR entry count mismatch");
  }
  {
    const AsGraph rebuilt(nodes_, links_);
    if (rebuilt.offset_ != offset_ || rebuilt.cust_begin_ != cust_begin_ ||
        rebuilt.peer_begin_ != peer_begin_ ||
        rebuilt.neighbor_ != neighbor_ || rebuilt.delay_ms_ != delay_ms_ ||
        rebuilt.data_delay_ms_ != data_delay_ms_) {
      throw std::logic_error(
          "AsGraph: CSR arrays disagree with the link list");
    }
  }

  // Customer-provider acyclicity via iterative DFS coloring over
  // customer->provider edges (the provider segment of each node).
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  for (AsId start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    // Stack holds (node, next provider-segment index to explore).
    std::vector<std::pair<AsId, std::uint32_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const Segment prov = providers(v);
      bool descended = false;
      while (idx < prov.count) {
        const AsId w = prov.neighbor[idx++];
        if (color[w] == kGray) {
          throw std::logic_error(
              "AsGraph: customer-provider cycle involving AS " +
              std::to_string(w));
        }
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace tiv::topology
