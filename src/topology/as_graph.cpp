#include "topology/as_graph.hpp"

#include <stdexcept>
#include <string>

namespace tiv::topology {

AsGraph::AsGraph(std::vector<AsNode> nodes, std::vector<AsLink> links)
    : nodes_(std::move(nodes)), links_(std::move(links)) {
  adj_.resize(nodes_.size());
  for (const AsLink& l : links_) {
    if (l.a >= nodes_.size() || l.b >= nodes_.size()) {
      throw std::out_of_range("AsGraph: link endpoint out of range");
    }
    const double data = l.delay_ms * l.congestion;
    if (l.kind == LinkKind::kCustomerProvider) {
      adj_[l.a].push_back({l.b, Role::kToProvider, l.delay_ms, data});
      adj_[l.b].push_back({l.a, Role::kToCustomer, l.delay_ms, data});
    } else {
      adj_[l.a].push_back({l.b, Role::kToPeer, l.delay_ms, data});
      adj_[l.b].push_back({l.a, Role::kToPeer, l.delay_ms, data});
    }
  }
}

std::size_t AsGraph::provider_count(AsId v) const {
  std::size_t n = 0;
  for (const auto& a : adj_[v]) n += a.role == Role::kToProvider;
  return n;
}

std::size_t AsGraph::customer_count(AsId v) const {
  std::size_t n = 0;
  for (const auto& a : adj_[v]) n += a.role == Role::kToCustomer;
  return n;
}

std::size_t AsGraph::peer_count(AsId v) const {
  std::size_t n = 0;
  for (const auto& a : adj_[v]) n += a.role == Role::kToPeer;
  return n;
}

void AsGraph::validate() const {
  for (const AsLink& l : links_) {
    if (l.a == l.b) throw std::logic_error("AsGraph: self link");
    if (!(l.delay_ms > 0)) {
      throw std::logic_error("AsGraph: non-positive link delay");
    }
    if (!(l.congestion >= 1.0)) {
      throw std::logic_error("AsGraph: congestion multiplier below 1");
    }
  }
  // Customer-provider acyclicity via iterative DFS coloring over
  // customer->provider edges.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nodes_.size(), kWhite);
  for (AsId start = 0; start < nodes_.size(); ++start) {
    if (color[start] != kWhite) continue;
    // Stack holds (node, next adjacency index to explore).
    std::vector<std::pair<AsId, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      bool descended = false;
      while (idx < adj_[v].size()) {
        const Adjacency& a = adj_[v][idx++];
        if (a.role != Role::kToProvider) continue;
        if (color[a.neighbor] == kGray) {
          throw std::logic_error(
              "AsGraph: customer-provider cycle involving AS " +
              std::to_string(a.neighbor));
        }
        if (color[a.neighbor] == kWhite) {
          color[a.neighbor] = kGray;
          stack.emplace_back(a.neighbor, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace tiv::topology
