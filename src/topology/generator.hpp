// Synthetic AS-level topology generator.
//
// The generated Internet has the coarse structure the DS^2 study [35]
// observed in measured delay spaces: a small number of major geographic
// clusters (continents) plus a noise cluster of poorly-connected outliers.
// Within each cluster, tier-2 regional providers attach to the tier-1 core
// with distance-weighted preferential attachment, and stub (edge) ASes
// multi-home to nearby tier-2s. Tier-1s form a full peering mesh; tier-2s
// peer regionally with a configurable probability — the *scarcity* of
// regional peering is the main knob controlling how severe the triangle
// inequality violations become once valley-free routing is applied.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace tiv::topology {

/// One geographic cluster (continent).
struct ClusterSpec {
  double center_x = 0.0;
  double center_y = 0.0;
  double radius = 15.0;   ///< ASes are placed within this radius (units)
  double weight = 1.0;    ///< relative share of ASes assigned to the cluster
};

struct TopologyParams {
  std::uint32_t num_ases = 300;

  /// Continents. Defaults (see default_clusters()) place three clusters at
  /// mutual distances of 70-100 units, i.e. 70-100 ms one-hop propagation.
  std::vector<ClusterSpec> clusters;

  /// Fraction of ASes placed far from every cluster (the noise cluster).
  double noise_fraction = 0.04;

  std::uint32_t tier1_per_cluster = 2;
  /// Fraction of the remaining ASes that become tier-2 regional providers.
  double tier2_fraction = 0.22;

  /// Propagation delay per geographic unit (speed-of-light scale).
  double ms_per_unit = 1.0;
  /// Router/serialization floor added to every link.
  double min_link_delay_ms = 0.4;
  /// Multiplicative log-normal jitter applied to link delays (sigma).
  double link_delay_sigma = 0.12;

  /// Number of providers for each tier-2 (multi-homing degree is sampled
  /// uniformly in [min,max]).
  std::uint32_t tier2_providers_min = 1;
  std::uint32_t tier2_providers_max = 2;
  std::uint32_t stub_providers_min = 1;
  std::uint32_t stub_providers_max = 2;

  /// Probability that two tier-2s in the same cluster peer. Low values
  /// force intra-continent traffic through the tier-1 core, producing the
  /// severe local TIVs of the paper's 5/5/100 ms example.
  double tier2_peering_same_cluster = 0.12;
  /// Probability that two tier-2s in different clusters peer (rare;
  /// models private transoceanic peering that creates shortcut paths).
  double tier2_peering_cross_cluster = 0.015;

  /// Preferential-attachment strength: provider choice weight is
  /// (degree + 1)^pa_exponent / (distance + pa_distance_bias).
  double pa_exponent = 1.0;
  double pa_distance_bias = 5.0;

  /// Probability that a tier-2 buys (one of its) transit from a tier-1 in a
  /// *different* cluster — multinational backhaul. All traffic of its
  /// customers then hairpins through a remote continent, one of the classic
  /// structural sources of severe TIVs (an intra-metro pair can measure
  /// 150+ ms while every third node offers a few-ms detour).
  double remote_transit_prob = 0.05;

  /// Fraction of links carrying persistent congestion. Congested links get
  /// an experienced-delay multiplier of 1 + Pareto(congestion_scale,
  /// congestion_shape), capped at congestion_cap. BGP never sees this —
  /// route selection uses propagation delay only — so congestion inflates
  /// the chosen path relative to detours.
  double congested_link_prob = 0.05;
  double congestion_scale = 0.30;
  double congestion_shape = 0.9;  ///< shape < 1: very heavy tail
  double congestion_cap = 14.0;
  /// Long-haul links congest more often than metro links (transoceanic
  /// capacity is scarce): links longer than congestion_long_threshold units
  /// use congested_link_prob * congestion_long_multiplier (capped at 0.6).
  /// This is what gives cross-cluster edges the higher TIV severity the
  /// paper observes in Fig. 3.
  double congestion_long_threshold = 30.0;
  double congestion_long_multiplier = 2.0;

  std::uint64_t seed = 1;
};

/// Three continental clusters roughly matching North America / Europe /
/// Asia inter-continent propagation delays.
std::vector<ClusterSpec> default_clusters();

/// Builds a topology honouring TopologyParams. The result always passes
/// AsGraph::validate(): tier hierarchy is acyclic and every AS can reach the
/// tier-1 core through providers, so valley-free routing connects all pairs.
/// Throws std::invalid_argument for unsatisfiable parameters (e.g. fewer
/// ASes than tier-1s).
AsGraph generate_topology(const TopologyParams& params);

}  // namespace tiv::topology
