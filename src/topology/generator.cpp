#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tiv::topology {
namespace {

double dist(const AsNode& a, const AsNode& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double link_delay(const TopologyParams& p, const AsNode& a, const AsNode& b,
                  Rng& rng) {
  const double base = p.min_link_delay_ms + p.ms_per_unit * dist(a, b);
  // Log-normal jitter models circuitous fiber paths and router hops.
  const double jitter = std::exp(rng.normal(0.0, p.link_delay_sigma));
  return base * jitter;
}

/// Picks a provider among `candidates` with probability proportional to
/// (degree+1)^exp / (distance + bias): well-connected nearby providers win.
AsId pick_provider(const std::vector<AsId>& candidates,
                   const std::vector<AsNode>& nodes,
                   const std::vector<std::size_t>& degree, const AsNode& from,
                   const TopologyParams& p, Rng& rng) {
  std::vector<double> weights(candidates.size());
  double total = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const AsId c = candidates[i];
    const double w = std::pow(static_cast<double>(degree[c] + 1), p.pa_exponent) /
                     (dist(from, nodes[c]) + p.pa_distance_bias);
    weights[i] = w;
    total += w;
  }
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return candidates[i];
  }
  return candidates.back();
}

}  // namespace

std::vector<ClusterSpec> default_clusters() {
  // Mutual center distances: NA-EU ~75, EU-AS ~78, NA-AS ~115 units, i.e.
  // one-hop propagation delays in the 75-115 ms range at 1 ms/unit.
  return {
      {0.0, 0.0, 14.0, 1.0},    // "North America"
      {75.0, 8.0, 12.0, 0.8},   // "Europe"
      {115.0, -60.0, 12.0, 0.7},  // "Asia"
  };
}

AsGraph generate_topology(const TopologyParams& params) {
  TopologyParams p = params;
  if (p.clusters.empty()) p.clusters = default_clusters();
  if (p.num_ases < p.tier1_per_cluster * p.clusters.size() + p.clusters.size()) {
    throw std::invalid_argument("generate_topology: too few ASes for tiers");
  }
  if (p.tier2_providers_min > p.tier2_providers_max ||
      p.stub_providers_min > p.stub_providers_max) {
    throw std::invalid_argument("generate_topology: provider range inverted");
  }
  Rng rng(p.seed);

  // --- Node placement -----------------------------------------------------
  std::vector<AsNode> nodes;
  nodes.reserve(p.num_ases);
  const auto noise_count = static_cast<std::uint32_t>(
      std::lround(p.noise_fraction * p.num_ases));
  const std::uint32_t clustered_count = p.num_ases - noise_count;

  double weight_total = 0.0;
  for (const auto& c : p.clusters) weight_total += c.weight;

  // Per-cluster node counts proportional to weight; remainder to cluster 0.
  std::vector<std::uint32_t> per_cluster(p.clusters.size(), 0);
  std::uint32_t assigned = 0;
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    per_cluster[c] = static_cast<std::uint32_t>(
        clustered_count * p.clusters[c].weight / weight_total);
    assigned += per_cluster[c];
  }
  per_cluster[0] += clustered_count - assigned;

  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    const ClusterSpec& spec = p.clusters[c];
    for (std::uint32_t i = 0; i < per_cluster[c]; ++i) {
      // Gaussian scatter truncated at the cluster radius keeps density
      // highest near the metro core.
      double x = 0.0;
      double y = 0.0;
      do {
        x = rng.normal(0.0, spec.radius / 2.0);
        y = rng.normal(0.0, spec.radius / 2.0);
      } while (x * x + y * y > spec.radius * spec.radius);
      nodes.push_back(
          {static_cast<int>(c), Tier::kStub, spec.center_x + x,
           spec.center_y + y});
    }
  }
  // Noise nodes: scattered over the whole map, far from cluster cores
  // (islands, satellite-connected networks).
  for (std::uint32_t i = 0; i < noise_count; ++i) {
    nodes.push_back({kNoiseCluster, Tier::kStub, rng.uniform(-40.0, 160.0),
                     rng.uniform(-110.0, 60.0)});
  }

  // --- Tier assignment ----------------------------------------------------
  // The tier-1s of each cluster are the nodes closest to the cluster center;
  // tier-2s are sampled among the rest of the cluster.
  std::vector<std::vector<AsId>> cluster_members(p.clusters.size());
  for (AsId v = 0; v < nodes.size(); ++v) {
    if (nodes[v].cluster >= 0) {
      cluster_members[static_cast<std::size_t>(nodes[v].cluster)].push_back(v);
    }
  }
  std::vector<AsId> tier1s;
  std::vector<AsId> tier2s;
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    auto& members = cluster_members[c];
    const ClusterSpec& spec = p.clusters[c];
    std::sort(members.begin(), members.end(), [&](AsId a, AsId b) {
      const double da = std::hypot(nodes[a].x - spec.center_x,
                                   nodes[a].y - spec.center_y);
      const double db = std::hypot(nodes[b].x - spec.center_x,
                                   nodes[b].y - spec.center_y);
      return da < db;
    });
    const std::uint32_t t1 =
        std::min<std::uint32_t>(p.tier1_per_cluster,
                                static_cast<std::uint32_t>(members.size()));
    for (std::uint32_t i = 0; i < t1; ++i) {
      nodes[members[i]].tier = Tier::kTier1;
      tier1s.push_back(members[i]);
    }
    const auto t2 = static_cast<std::uint32_t>(
        std::lround(p.tier2_fraction * static_cast<double>(members.size())));
    for (std::uint32_t i = t1; i < std::min<std::size_t>(t1 + t2, members.size());
         ++i) {
      nodes[members[i]].tier = Tier::kTier2;
      tier2s.push_back(members[i]);
    }
  }
  if (tier1s.empty()) {
    throw std::invalid_argument("generate_topology: no tier-1 ASes");
  }

  // --- Links ----------------------------------------------------------------
  std::vector<AsLink> links;
  std::vector<std::size_t> degree(nodes.size(), 0);
  auto congestion_factor = [&](double length) {
    double prob = p.congested_link_prob;
    if (length > p.congestion_long_threshold) {
      prob = std::min(0.6, prob * p.congestion_long_multiplier);
    }
    if (!rng.bernoulli(prob)) return 1.0;
    return std::min(p.congestion_cap,
                    1.0 + rng.pareto(p.congestion_scale, p.congestion_shape));
  };
  auto add_link = [&](AsId a, AsId b, LinkKind kind) {
    links.push_back({a, b, kind, link_delay(p, nodes[a], nodes[b], rng),
                     congestion_factor(dist(nodes[a], nodes[b]))});
    ++degree[a];
    ++degree[b];
  };

  // Tier-1 full peering mesh (the default-free zone).
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      add_link(tier1s[i], tier1s[j], LinkKind::kPeerPeer);
    }
  }

  // Tier-2s buy transit from tier-1s (distance-weighted preferential
  // attachment, multi-homed). A fraction are remote-transit ASes
  // (multinationals backhauling through headquarters): *all* their transit
  // comes from tier-1s of a different cluster, so every interdomain path of
  // their customers hairpins through another continent.
  for (AsId t2 : tier2s) {
    const auto want = static_cast<std::uint32_t>(rng.uniform_int(
        p.tier2_providers_min, p.tier2_providers_max));
    std::vector<AsId> pool;
    if (rng.bernoulli(p.remote_transit_prob)) {
      for (AsId t1 : tier1s) {
        if (nodes[t1].cluster != nodes[t2].cluster) pool.push_back(t1);
      }
    }
    if (pool.empty()) pool = tier1s;
    for (std::uint32_t k = 0; k < want && !pool.empty(); ++k) {
      const AsId prov = pick_provider(pool, nodes, degree, nodes[t2], p, rng);
      add_link(t2, prov, LinkKind::kCustomerProvider);
      pool.erase(std::find(pool.begin(), pool.end(), prov));
    }
  }

  // Tier-2 regional (and rare transoceanic) peering.
  for (std::size_t i = 0; i < tier2s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2s.size(); ++j) {
      const bool same =
          nodes[tier2s[i]].cluster == nodes[tier2s[j]].cluster;
      const double prob = same ? p.tier2_peering_same_cluster
                               : p.tier2_peering_cross_cluster;
      if (rng.bernoulli(prob)) {
        add_link(tier2s[i], tier2s[j], LinkKind::kPeerPeer);
      }
    }
  }

  // Stubs (everything not tier-1/tier-2, including noise nodes) buy transit
  // from tier-2s of their own cluster when possible, otherwise from any
  // tier-2 or tier-1.
  std::vector<std::vector<AsId>> tier2_by_cluster(p.clusters.size());
  for (AsId t2 : tier2s) {
    tier2_by_cluster[static_cast<std::size_t>(nodes[t2].cluster)].push_back(t2);
  }
  for (AsId v = 0; v < nodes.size(); ++v) {
    if (nodes[v].tier != Tier::kStub) continue;
    const std::vector<AsId>* pool_src = nullptr;
    if (nodes[v].cluster >= 0 &&
        !tier2_by_cluster[static_cast<std::size_t>(nodes[v].cluster)].empty()) {
      pool_src = &tier2_by_cluster[static_cast<std::size_t>(nodes[v].cluster)];
    } else if (!tier2s.empty()) {
      pool_src = &tier2s;
    } else {
      pool_src = &tier1s;
    }
    std::vector<AsId> pool = *pool_src;
    const auto want = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(
            rng.uniform_int(p.stub_providers_min, p.stub_providers_max)),
        static_cast<std::uint32_t>(pool.size()));
    for (std::uint32_t k = 0; k < want; ++k) {
      const AsId prov = pick_provider(pool, nodes, degree, nodes[v], p, rng);
      add_link(v, prov, LinkKind::kCustomerProvider);
      pool.erase(std::find(pool.begin(), pool.end(), prov));
    }
  }

  AsGraph g(std::move(nodes), std::move(links));
  g.validate();
  return g;
}

}  // namespace tiv::topology
