// Memory-budgeted LRU cache over SeverityTileStore tiles, plus the
// row/edge read API the monitoring consumers use (watch-lists, alerting,
// per-host severity profiles) without ever materializing the N^2 result.
//
// The concurrency and accounting model is the shared LruTileCache core
// (shard/lru_tile_cache.hpp) — the same instantiation pattern as
// shard::TileCache: bytes charged per resident tile, eviction from the
// LRU tail skipping pinned tiles, stats().peak_bytes <= max(budget,
// pinned working set). The row/edge readers pin one tile at a time, so
// any budget >= one tile keeps the peak under it. No prefetcher: severity
// reads are point/row lookups, not streaming scans.
//
// invalidate(r, c) is the commit hook: after the repair driver rewrites a
// dirty tile in the store, dropping the cached copy makes the next read
// see the committed bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "shard/lru_tile_cache.hpp"
#include "sink/severity_tile_store.hpp"

namespace tiv::sink {

/// A severity tile resident in memory: tile_dim^2 floats, row-major.
using SevTileRef = std::shared_ptr<const std::vector<float>>;

class SeverityCache {
 public:
  /// Keeps a reference to `store`; it must outlive the cache, and the
  /// cache must outlive every SevTileRef it hands out.
  SeverityCache(const SeverityTileStore& store, std::size_t budget_bytes)
      : store_(store), cache_(budget_bytes, store.tile_bytes(), "cache.sink") {}

  SeverityCache(const SeverityCache&) = delete;
  SeverityCache& operator=(const SeverityCache&) = delete;

  /// Returns tile (r, c), r <= c, loading it from the store on a miss.
  /// Thread-safe; blocks only while another thread loads the same tile.
  SevTileRef acquire(std::uint32_t r, std::uint32_t c);

  /// Drops tile (r, c) so the next acquire re-reads the store (call after
  /// SeverityTileStore::write_tile). Precondition: no outstanding
  /// SevTileRef pins it.
  void invalidate(std::uint32_t r, std::uint32_t c) {
    cache_.invalidate(key(r, c));
  }

  /// Severity of edge (a, b) — symmetric, 0 for a == b. One cached tile
  /// lookup.
  float at(delayspace::HostId a, delayspace::HostId b);

  /// Severity row a into out (size() floats): sev(a, x) for every x. Walks
  /// the band tiles of row a — tiles (band(a), c) row-wise past the
  /// diagonal band, tiles (c, band(a)) column-wise before it.
  void read_row(delayspace::HostId a, std::span<float> out);

  std::size_t budget_bytes() const { return cache_.budget_bytes(); }
  shard::CacheStats stats() const { return cache_.stats(); }

 private:
  static std::uint64_t key(std::uint32_t r, std::uint32_t c) {
    return (static_cast<std::uint64_t>(r) << 32) | c;
  }

  const SeverityTileStore& store_;
  shard::LruTileCache<std::vector<float>> cache_;
};

}  // namespace tiv::sink
