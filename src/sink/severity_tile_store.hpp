// On-disk tiled severity *output* — the result-side counterpart of
// shard::TileStore. The ROADMAP's N >= 1e5 target makes even the severity
// result (an N^2 float matrix, ~40 GB) too large for RAM; this store keeps
// it on disk in the same fixed-size-tile, header + offset-index format as
// the input store, so the out-of-core pipeline is tile-structured end to
// end.
//
// Severity is symmetric and the band-pair streaming driver
// (core/shard_severity) produces exactly the upper band triangle, so the
// store holds only tiles (r, c) with r <= c — tiles_per_side*(tiles+1)/2 of
// them. Tile (r, c) carries tile_dim x tile_dim floats:
//
//   payload[lr * T + lc] = sev(r*T + lr, c*T + lc)
//
// with 0.0f for unmeasured pairs, the diagonal, and the padding beyond the
// matrix edge — the exact values the in-memory SeverityMatrix holds there.
// Diagonal tiles (r == r) store their little square in full (both local
// triangles), so a row read never transposes within a tile; reading global
// row i still walks tiles (c, band(i)) for c < band(i) column-wise, which
// the budgeted cache (severity_cache.hpp) keeps cheap.
//
// The file machinery (header/offset-index/checksum-table layout, FNV-1a
// validation on every read_tile, in-place write_tile commits,
// fault-injection hooks) is shard::TileFile with a triangular index shape —
// one definition shared with the input store. create() builds the store
// sparse: the tile region is a hole (holes pread back as zeros, exactly the
// all-zero severity every tile starts with), so blocks materialize only as
// tiles are committed. Reads use pread(2) and are thread-safe; concurrent
// writes to *distinct* tiles are safe (positional writes, distinct checksum
// slots), which is what lets the band-pair repair driver commit tiles from
// pool workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "delayspace/delay_matrix.hpp"
#include "shard/checksum.hpp"
#include "shard/tile_file.hpp"
#include "shard/tile_store.hpp"

namespace tiv::sink {

using delayspace::HostId;

class SeverityTileStore {
 public:
  /// Creates an n-host store at `path` with every tile zeroed (all
  /// severities 0 — the value unmeasured pairs keep forever). tile_dim must
  /// be a nonzero multiple of DelayMatrixView::kLaneFloats. Throws
  /// std::invalid_argument / std::runtime_error.
  static void create(const std::string& path, HostId n,
                     std::uint32_t tile_dim = shard::kDefaultTileDim);

  /// Opens an existing store; `writable` enables write_tile. Throws
  /// std::runtime_error on a missing file or a malformed/mismatched
  /// header — including, when expected_n is nonzero, a header geometry
  /// (n, tile_dim) that differs from what the caller expects.
  static SeverityTileStore open(const std::string& path,
                                bool writable = false, HostId expected_n = 0,
                                std::uint32_t expected_tile_dim = 0);

  SeverityTileStore(SeverityTileStore&&) noexcept = default;
  SeverityTileStore& operator=(SeverityTileStore&&) noexcept = default;
  SeverityTileStore(const SeverityTileStore&) = delete;
  SeverityTileStore& operator=(const SeverityTileStore&) = delete;

  HostId size() const { return file_.size(); }
  std::uint32_t tile_dim() const { return file_.tile_dim(); }
  std::uint32_t tiles_per_side() const { return file_.tiles_per_side(); }
  /// Stored tiles: the upper band triangle, diagonal included.
  std::size_t tile_count() const { return file_.tile_count(); }
  /// Floats in one tile (tile_dim^2) — also its serialized size / 4.
  std::size_t payload_floats() const {
    return static_cast<std::size_t>(tile_dim()) * tile_dim();
  }
  std::size_t tile_bytes() const { return file_.tile_bytes(); }

  /// Rows of band r that carry real matrix rows (tile_dim except the last).
  std::uint32_t band_rows(std::uint32_t r) const {
    return file_.band_rows(r);
  }

  /// Flat index of tile (r, c) in the upper band triangle. Requires r <= c.
  std::size_t tile_index(std::uint32_t r, std::uint32_t c) const {
    return file_.tile_index(r, c);
  }

  /// Byte offset of tile (r, c) in the file — for fault-injection
  /// harnesses that damage tiles on disk directly.
  std::uint64_t tile_offset(std::uint32_t r, std::uint32_t c) const {
    return file_.tile_offset(r, c);
  }

  /// Attaches (or detaches, nullptr) a deterministic fault injector to
  /// this store's reads and commits. See shard/fault_injector.hpp.
  void set_fault_injector(shard::FaultInjector* injector) {
    file_.set_fault_injector(injector);
  }
  shard::FaultInjector* fault_injector() const {
    return file_.fault_injector();
  }

  /// Checksum-mismatch re-reads absorbed as transient (see
  /// shard::TileFile::read_retries).
  std::uint64_t read_retries() const { return file_.read_retries(); }

  /// Reads tile (r, c), r <= c, into payload_floats() floats. Thread-safe.
  /// Throws std::runtime_error on I/O failure, shard::CorruptTileError on a
  /// checksum mismatch or a truncated tile.
  void read_tile(std::uint32_t r, std::uint32_t c, float* payload) const {
    file_.read_tile(r, c, {{payload, tile_bytes()}});
  }

  /// Rewrites tile (r, c), r <= c, in place and commits its checksum.
  /// Requires a writable open. Safe from concurrent threads for distinct
  /// tiles; not safe concurrently with reads of the same tile (the repair
  /// driver owns a dirty tile exclusively while it rewrites it).
  void write_tile(std::uint32_t r, std::uint32_t c, const float* payload) {
    file_.write_tile(r, c, {{payload, tile_bytes()}});
  }

  bool writable() const { return file_.writable(); }
  const std::string& path() const { return file_.path(); }

 private:
  SeverityTileStore() = default;

  shard::TileFile file_;
};

}  // namespace tiv::sink
