// On-disk tiled severity *output* — the result-side counterpart of
// shard::TileStore. The ROADMAP's N >= 1e5 target makes even the severity
// result (an N^2 float matrix, ~40 GB) too large for RAM; this store keeps
// it on disk in the same fixed-size-tile, header + offset-index format as
// the input store, so the out-of-core pipeline is tile-structured end to
// end.
//
// Severity is symmetric and the band-pair streaming driver
// (core/shard_severity) produces exactly the upper band triangle, so the
// store holds only tiles (r, c) with r <= c — tiles_per_side*(tiles+1)/2 of
// them. Tile (r, c) carries tile_dim x tile_dim floats:
//
//   payload[lr * T + lc] = sev(r*T + lr, c*T + lc)
//
// with 0.0f for unmeasured pairs, the diagonal, and the padding beyond the
// matrix edge — the exact values the in-memory SeverityMatrix holds there.
// Diagonal tiles (r == r) store their little square in full (both local
// triangles), so a row read never transposes within a tile; reading global
// row i still walks tiles (c, band(i)) for c < band(i) column-wise, which
// the budgeted cache (severity_cache.hpp) keeps cheap.
//
// File layout (mirrors the shard conventions, triangular index):
//
//   [header][index: tri_count u64 offsets][checksums: tri_count u64 FNV-1a]
//   [64B pad][tile 0][tile 1]..
//
// Tiles are 64-byte aligned (tile_dim % 16 == 0 makes the payload a
// multiple of 1 KiB). Every tile carries an FNV-1a checksum validated on
// read_tile — corruption surfaces as shard::CorruptTileError. write_tile
// rewrites a tile in place (fixed-size tiles, stable offsets) and commits
// the refreshed checksum with it: the dirty-tile commit path of the
// streaming engine. Reads use pread(2) and are thread-safe; concurrent
// writes to *distinct* tiles are safe (positional writes, distinct
// checksum slots), which is what lets the band-pair repair driver commit
// tiles from pool workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "shard/checksum.hpp"
#include "shard/tile_store.hpp"

namespace tiv::sink {

using delayspace::HostId;

class SeverityTileStore {
 public:
  /// Creates an n-host store at `path` with every tile zeroed (all
  /// severities 0 — the value unmeasured pairs keep forever). tile_dim must
  /// be a nonzero multiple of DelayMatrixView::kLaneFloats. Throws
  /// std::invalid_argument / std::runtime_error.
  static void create(const std::string& path, HostId n,
                     std::uint32_t tile_dim = shard::kDefaultTileDim);

  /// Opens an existing store; `writable` enables write_tile. Throws
  /// std::runtime_error on a missing file or malformed header.
  static SeverityTileStore open(const std::string& path,
                                bool writable = false);

  SeverityTileStore(SeverityTileStore&& o) noexcept;
  SeverityTileStore& operator=(SeverityTileStore&& o) noexcept;
  SeverityTileStore(const SeverityTileStore&) = delete;
  SeverityTileStore& operator=(const SeverityTileStore&) = delete;
  ~SeverityTileStore();

  HostId size() const { return n_; }
  std::uint32_t tile_dim() const { return tile_dim_; }
  std::uint32_t tiles_per_side() const { return tiles_; }
  /// Stored tiles: the upper band triangle, diagonal included.
  std::size_t tile_count() const {
    return static_cast<std::size_t>(tiles_) * (tiles_ + 1) / 2;
  }
  /// Floats in one tile (tile_dim^2) — also its serialized size / 4.
  std::size_t payload_floats() const {
    return static_cast<std::size_t>(tile_dim_) * tile_dim_;
  }
  std::size_t tile_bytes() const { return payload_floats() * sizeof(float); }

  /// Rows of band r that carry real matrix rows (tile_dim except the last).
  std::uint32_t band_rows(std::uint32_t r) const;

  /// Flat index of tile (r, c) in the upper band triangle. Requires r <= c.
  std::size_t tile_index(std::uint32_t r, std::uint32_t c) const;

  /// Reads tile (r, c), r <= c, into payload_floats() floats. Thread-safe.
  /// Throws std::runtime_error on I/O failure, shard::CorruptTileError on a
  /// checksum mismatch.
  void read_tile(std::uint32_t r, std::uint32_t c, float* payload) const;

  /// Rewrites tile (r, c), r <= c, in place and commits its checksum.
  /// Requires a writable open. Safe from concurrent threads for distinct
  /// tiles; not safe concurrently with reads of the same tile (the repair
  /// driver owns a dirty tile exclusively while it rewrites it).
  void write_tile(std::uint32_t r, std::uint32_t c, const float* payload);

  bool writable() const { return writable_; }
  const std::string& path() const { return path_; }

 private:
  SeverityTileStore() = default;

  std::string path_;
  int fd_ = -1;
  bool writable_ = false;
  HostId n_ = 0;
  std::uint32_t tile_dim_ = 0;
  std::uint32_t tiles_ = 0;
  std::vector<std::uint64_t> tile_offsets_;    ///< triangular index
  std::vector<std::uint64_t> tile_checksums_;  ///< FNV-1a, same indexing
};

}  // namespace tiv::sink
