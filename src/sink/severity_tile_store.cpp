#include "sink/severity_tile_store.hpp"

#include <vector>

namespace tiv::sink {
namespace {

std::size_t store_tile_bytes(std::uint32_t tile_dim) {
  return static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float);
}

constexpr shard::TileFileParams kParams{"TIVSSEV1", 1, "SeverityTileStore",
                                        shard::TileIndexShape::kTriangular,
                                        store_tile_bytes, "shard.sink"};

}  // namespace

void SeverityTileStore::create(const std::string& path, HostId n,
                               std::uint32_t tile_dim) {
  shard::TileFile::Writer w(kParams, path, n, tile_dim);
  // Every tile starts zeroed, so the whole checksum table is the one hash
  // of a zero tile (and the tile region itself can stay a hole).
  const std::vector<float> zero_tile(
      static_cast<std::size_t>(tile_dim) * tile_dim, 0.0f);
  w.finish_sparse(shard::fnv1a(zero_tile.data(), w.tile_bytes()));
}

SeverityTileStore SeverityTileStore::open(const std::string& path,
                                          bool writable, HostId expected_n,
                                          std::uint32_t expected_tile_dim) {
  SeverityTileStore s;
  s.file_ = shard::TileFile::open(kParams, path, writable, expected_n,
                                  expected_tile_dim);
  return s;
}

}  // namespace tiv::sink
