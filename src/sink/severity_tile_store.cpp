#include "sink/severity_tile_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tiv::sink {
namespace {

using delayspace::DelayMatrixView;

constexpr char kMagic[8] = {'T', 'I', 'V', 'S', 'S', 'E', 'V', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kAlign = 64;

// Same fixed-width 40-byte header shape as the shard input store.
struct RawHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n;
  std::uint32_t tile_dim;
  std::uint32_t tiles;
  std::uint64_t tile_bytes;
  std::uint64_t data_offset;
};
static_assert(sizeof(RawHeader) == 40);

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("SeverityTileStore: " + what + ": " + path);
}

void fwrite_all(const void* data, std::size_t bytes, std::FILE* f,
                const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) fail("write failed", path);
}

std::size_t tri_count(std::uint32_t tiles) {
  return static_cast<std::size_t>(tiles) * (tiles + 1) / 2;
}

std::size_t checksum_table_offset(std::uint32_t tiles) {
  return sizeof(RawHeader) + tri_count(tiles) * sizeof(std::uint64_t);
}

}  // namespace

std::size_t SeverityTileStore::tile_index(std::uint32_t r,
                                          std::uint32_t c) const {
  assert(r <= c && c < tiles_);
  // Row r of the upper triangle starts after r full rows minus the
  // triangle above: r*tiles - r*(r-1)/2, then offset (c - r) within it.
  return static_cast<std::size_t>(r) * tiles_ -
         static_cast<std::size_t>(r) * (r - 1) / 2 + (c - r);
}

void SeverityTileStore::create(const std::string& path, HostId n,
                               std::uint32_t tile_dim) {
  if (tile_dim == 0 || tile_dim % DelayMatrixView::kLaneFloats != 0) {
    throw std::invalid_argument(
        "SeverityTileStore::create: tile_dim must be a nonzero multiple of " +
        std::to_string(DelayMatrixView::kLaneFloats));
  }
  const std::uint32_t tiles = (n + tile_dim - 1) / tile_dim;
  const std::size_t payload_floats =
      static_cast<std::size_t>(tile_dim) * tile_dim;
  const std::size_t tile_bytes = payload_floats * sizeof(float);
  const std::size_t count = tri_count(tiles);
  const std::size_t index_bytes = count * sizeof(std::uint64_t);
  const std::size_t data_offset =
      ((sizeof(RawHeader) + 2 * index_bytes + kAlign - 1) / kAlign) * kAlign;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail("cannot open for writing", path);

  RawHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.n = n;
  h.tile_dim = tile_dim;
  h.tiles = tiles;
  h.tile_bytes = tile_bytes;
  h.data_offset = data_offset;
  fwrite_all(&h, sizeof(h), f, path);

  std::vector<std::uint64_t> offsets(count);
  for (std::size_t t = 0; t < count; ++t) {
    offsets[t] = data_offset + t * tile_bytes;
  }
  if (count != 0) fwrite_all(offsets.data(), index_bytes, f, path);

  // Every tile starts zeroed, so the whole checksum table is the one hash
  // of a zero tile.
  const std::vector<float> zero_tile(payload_floats, 0.0f);
  const std::uint64_t zero_sum = shard::fnv1a(zero_tile.data(), tile_bytes);
  const std::vector<std::uint64_t> checksums(count, zero_sum);
  if (count != 0) fwrite_all(checksums.data(), index_bytes, f, path);

  const std::vector<char> pad(
      data_offset - sizeof(RawHeader) - 2 * index_bytes, 0);
  if (!pad.empty()) fwrite_all(pad.data(), pad.size(), f, path);

  // The tile region is a hole, not tri_count physical zero writes (~20 GB
  // at the N >= 1e5 target): holes pread back as zeros, which is exactly
  // the zero tile the precomputed checksum above describes, so read_tile
  // behavior is byte-identical and blocks materialize only as tiles are
  // actually committed.
  if (std::fflush(f) != 0) fail("flush failed", path);
  if (::ftruncate(::fileno(f),
                  static_cast<off_t>(data_offset + count * tile_bytes)) !=
      0) {
    fail("truncate failed", path);
  }
  if (std::fclose(f) != 0) fail("close failed", path);
}

SeverityTileStore SeverityTileStore::open(const std::string& path,
                                          bool writable) {
  const int fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  SeverityTileStore s;
  s.path_ = path;
  s.fd_ = fd;
  s.writable_ = writable;

  RawHeader h{};
  if (::pread(fd, &h, sizeof(h), 0) != static_cast<ssize_t>(sizeof(h))) {
    fail("short header", path);
  }
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic", path);
  }
  if (h.version != kVersion) fail("unsupported version", path);
  if (h.tile_dim == 0 || h.tile_dim % DelayMatrixView::kLaneFloats != 0 ||
      h.tiles != (h.n + h.tile_dim - 1) / h.tile_dim) {
    fail("inconsistent header", path);
  }
  s.n_ = h.n;
  s.tile_dim_ = h.tile_dim;
  s.tiles_ = h.tiles;
  if (h.tile_bytes != s.tile_bytes()) fail("tile size mismatch", path);

  const std::size_t count = tri_count(s.tiles_);
  s.tile_offsets_.resize(count);
  s.tile_checksums_.resize(count);
  const std::size_t index_bytes = count * sizeof(std::uint64_t);
  if (count != 0) {
    if (::pread(fd, s.tile_offsets_.data(), index_bytes, sizeof(RawHeader)) !=
        static_cast<ssize_t>(index_bytes)) {
      fail("short index", path);
    }
    if (::pread(fd, s.tile_checksums_.data(), index_bytes,
                static_cast<off_t>(checksum_table_offset(s.tiles_))) !=
        static_cast<ssize_t>(index_bytes)) {
      fail("short checksum table", path);
    }
  }
  return s;
}

SeverityTileStore::SeverityTileStore(SeverityTileStore&& o) noexcept
    : path_(std::move(o.path_)),
      fd_(std::exchange(o.fd_, -1)),
      writable_(o.writable_),
      n_(o.n_),
      tile_dim_(o.tile_dim_),
      tiles_(o.tiles_),
      tile_offsets_(std::move(o.tile_offsets_)),
      tile_checksums_(std::move(o.tile_checksums_)) {}

SeverityTileStore& SeverityTileStore::operator=(
    SeverityTileStore&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    fd_ = std::exchange(o.fd_, -1);
    writable_ = o.writable_;
    n_ = o.n_;
    tile_dim_ = o.tile_dim_;
    tiles_ = o.tiles_;
    tile_offsets_ = std::move(o.tile_offsets_);
    tile_checksums_ = std::move(o.tile_checksums_);
  }
  return *this;
}

SeverityTileStore::~SeverityTileStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint32_t SeverityTileStore::band_rows(std::uint32_t r) const {
  assert(r < tiles_);
  const std::size_t base = static_cast<std::size_t>(r) * tile_dim_;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(tile_dim_, n_ - base));
}

void SeverityTileStore::read_tile(std::uint32_t r, std::uint32_t c,
                                  float* payload) const {
  const std::size_t idx = tile_index(r, c);
  const std::uint64_t off = tile_offsets_[idx];
  const std::size_t bytes = tile_bytes();
  if (::pread(fd_, payload, bytes, static_cast<off_t>(off)) !=
      static_cast<ssize_t>(bytes)) {
    fail("short tile read", path_);
  }
  if (shard::fnv1a(payload, bytes) != tile_checksums_[idx]) {
    throw shard::CorruptTileError(
        "SeverityTileStore: tile (" + std::to_string(r) + ", " +
        std::to_string(c) + ") checksum mismatch: " + path_);
  }
}

void SeverityTileStore::write_tile(std::uint32_t r, std::uint32_t c,
                                   const float* payload) {
  if (!writable_) fail("write_tile on a read-only store", path_);
  const std::size_t idx = tile_index(r, c);
  const std::uint64_t off = tile_offsets_[idx];
  const std::size_t bytes = tile_bytes();
  const std::uint64_t sum = shard::fnv1a(payload, bytes);
  if (::pwrite(fd_, payload, bytes, static_cast<off_t>(off)) !=
      static_cast<ssize_t>(bytes)) {
    fail("short tile write", path_);
  }
  if (::pwrite(fd_, &sum, sizeof(sum),
               static_cast<off_t>(checksum_table_offset(tiles_) +
                                  idx * sizeof(std::uint64_t))) !=
      static_cast<ssize_t>(sizeof(sum))) {
    fail("short checksum write", path_);
  }
  tile_checksums_[idx] = sum;
}

}  // namespace tiv::sink
