#include "sink/severity_cache.hpp"

#include <cassert>
#include <cstring>
#include <utility>

namespace tiv::sink {

using delayspace::HostId;

SevTileRef SeverityCache::acquire(std::uint32_t r, std::uint32_t c) {
  assert(r <= c);
  return cache_.acquire(key(r, c), [&]() -> SevTileRef {
    auto fresh = std::make_shared<std::vector<float>>(store_.payload_floats());
    store_.read_tile(r, c, fresh->data());
    return fresh;
  });
}

float SeverityCache::at(HostId a, HostId b) {
  if (a == b) return 0.0f;
  const std::uint32_t T = store_.tile_dim();
  // sev is symmetric and only tiles r <= c exist; diagonal tiles hold both
  // local triangles, so (row in the lower band, column in the higher) is
  // always addressable directly.
  if (a / T > b / T) std::swap(a, b);
  const std::uint32_t r = a / T;
  const std::uint32_t c = b / T;
  const SevTileRef tile = acquire(r, c);
  return (*tile)[static_cast<std::size_t>(a % T) * T + (b % T)];
}

void SeverityCache::read_row(HostId a, std::span<float> out) {
  assert(out.size() >= store_.size());
  const std::uint32_t T = store_.tile_dim();
  const std::uint32_t ba = a / T;
  const std::uint32_t la = a % T;
  for (std::uint32_t c = 0; c < store_.tiles_per_side(); ++c) {
    const std::uint32_t cols = store_.band_rows(c);
    const std::size_t base = static_cast<std::size_t>(c) * T;
    if (c >= ba) {
      // Row la of tile (ba, c), contiguous.
      const SevTileRef tile = acquire(ba, c);
      std::memcpy(out.data() + base,
                  tile->data() + static_cast<std::size_t>(la) * T,
                  cols * sizeof(float));
    } else {
      // Column la of tile (c, ba): sev(a, x) = sev(x, a) for x in band c.
      const SevTileRef tile = acquire(c, ba);
      const float* p = tile->data();
      for (std::uint32_t lr = 0; lr < cols; ++lr) {
        out[base + lr] = p[static_cast<std::size_t>(lr) * T + la];
      }
    }
  }
}

}  // namespace tiv::sink
