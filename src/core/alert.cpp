#include "core/alert.hpp"

#include <algorithm>
#include <cmath>

#include "core/edge_sampling.hpp"

namespace tiv::core {

TivAlert::TivAlert(std::function<double(HostId, HostId)> ratio_fn,
                   double threshold)
    : ratio_fn_(std::move(ratio_fn)), threshold_(threshold) {}

TivAlert::TivAlert(const embedding::VivaldiSystem& system, double threshold)
    : ratio_fn_([&system](HostId a, HostId b) {
        return system.prediction_ratio(a, b);
      }),
      threshold_(threshold) {}

bool TivAlert::alerted(HostId a, HostId b) const {
  const double r = ratio_fn_(a, b);
  return !std::isnan(r) && r < threshold_;
}

std::vector<EdgeRatioSample> collect_ratio_severity_samples(
    const embedding::VivaldiSystem& system, std::size_t count,
    std::uint64_t seed) {
  const auto& matrix = system.matrix();
  // Shared duplicate-free sampler: the hand-rolled loop this replaces drew
  // with replacement, so the accuracy/recall figures could double-count an
  // edge, and on missing-heavy matrices it silently under-sampled with the
  // shortfall invisible to callers.
  const PairSample sample = sample_measured_pairs(matrix, count, seed);
  std::vector<EdgeRatioSample> samples(sample.pairs.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].a = sample.pairs[i].first;
    samples[i].b = sample.pairs[i].second;
    samples[i].ratio = system.prediction_ratio(samples[i].a, samples[i].b);
  }
  const TivAnalyzer analyzer(matrix);
  const std::vector<double> severities =
      analyzer.edge_severity_batch(sample.pairs);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].severity = severities[i];
  }
  return samples;
}

AlertMetrics evaluate_alert(const std::vector<EdgeRatioSample>& samples,
                            double worst_fraction, double threshold) {
  AlertMetrics m;
  m.threshold = threshold;
  m.worst_fraction = worst_fraction;
  if (samples.empty() || worst_fraction <= 0.0) return m;

  // Severity cut-off for membership in the worst set.
  std::vector<double> severities;
  severities.reserve(samples.size());
  for (const auto& s : samples) severities.push_back(s.severity);
  const auto worst_count = std::min<std::size_t>(
      samples.size(),
      static_cast<std::size_t>(
          std::ceil(worst_fraction * static_cast<double>(samples.size()))));
  std::nth_element(severities.begin(),
                   severities.end() - static_cast<std::ptrdiff_t>(worst_count),
                   severities.end());
  const double cutoff = severities[severities.size() - worst_count];

  std::size_t alerted = 0;
  std::size_t alerted_and_worst = 0;
  std::size_t worst = 0;
  for (const auto& s : samples) {
    const bool is_alert = !std::isnan(s.ratio) && s.ratio < threshold;
    const bool is_worst = s.severity >= cutoff;
    alerted += is_alert;
    worst += is_worst;
    alerted_and_worst += is_alert && is_worst;
  }
  m.alerts = alerted;
  m.alert_fraction =
      static_cast<double>(alerted) / static_cast<double>(samples.size());
  m.accuracy = alerted == 0 ? 0.0
                            : static_cast<double>(alerted_and_worst) /
                                  static_cast<double>(alerted);
  m.recall = worst == 0 ? 0.0
                        : static_cast<double>(alerted_and_worst) /
                              static_cast<double>(worst);
  return m;
}

}  // namespace tiv::core
