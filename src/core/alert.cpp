#include "core/alert.hpp"

#include <algorithm>
#include <cmath>

#include "core/edge_sampling.hpp"
#include "scenario/score.hpp"

namespace tiv::core {

TivAlert::TivAlert(std::function<double(HostId, HostId)> ratio_fn,
                   double threshold)
    : ratio_fn_(std::move(ratio_fn)), threshold_(threshold) {}

TivAlert::TivAlert(const embedding::VivaldiSystem& system, double threshold)
    : ratio_fn_([&system](HostId a, HostId b) {
        return system.prediction_ratio(a, b);
      }),
      threshold_(threshold) {}

bool TivAlert::alerted(HostId a, HostId b) const {
  const double r = ratio_fn_(a, b);
  return !std::isnan(r) && r < threshold_;
}

std::vector<EdgeRatioSample> collect_ratio_severity_samples(
    const embedding::VivaldiSystem& system, std::size_t count,
    std::uint64_t seed) {
  const auto& matrix = system.matrix();
  // Shared duplicate-free sampler: the hand-rolled loop this replaces drew
  // with replacement, so the accuracy/recall figures could double-count an
  // edge, and on missing-heavy matrices it silently under-sampled with the
  // shortfall invisible to callers.
  const PairSample sample = sample_measured_pairs(matrix, count, seed);
  std::vector<EdgeRatioSample> samples(sample.pairs.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].a = sample.pairs[i].first;
    samples[i].b = sample.pairs[i].second;
    samples[i].ratio = system.prediction_ratio(samples[i].a, samples[i].b);
  }
  const TivAnalyzer analyzer(matrix);
  const std::vector<double> severities =
      analyzer.edge_severity_batch(sample.pairs);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].severity = severities[i];
  }
  return samples;
}

AlertMetrics evaluate_alert(const std::vector<EdgeRatioSample>& samples,
                            double worst_fraction, double threshold) {
  AlertMetrics m;
  m.threshold = threshold;
  m.worst_fraction = worst_fraction;
  if (samples.empty() || worst_fraction <= 0.0) return m;

  // Shared classification core: the cutoff computation and the alert
  // predicate moved verbatim into score_ratio_alert, so accuracy/recall
  // here are bit-for-bit what the pre-delegation implementation produced.
  std::vector<double> ratios;
  std::vector<double> severities;
  ratios.reserve(samples.size());
  severities.reserve(samples.size());
  for (const auto& s : samples) {
    ratios.push_back(s.ratio);
    severities.push_back(s.severity);
  }
  const scenario::RatioAlertScore score =
      scenario::score_ratio_alert(ratios, severities, worst_fraction,
                                  threshold);
  m.alerts = score.counts.predicted_positive();
  m.alert_fraction = score.alert_fraction;
  m.accuracy = score.counts.precision();
  m.recall = score.counts.recall();
  m.f1 = score.counts.f1();
  return m;
}

}  // namespace tiv::core
