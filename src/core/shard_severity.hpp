// Out-of-core TIV severity: streams (a-band, c-band, witness-band) tile
// triples from a shard::TileStore through the branch-free witness kernels,
// honoring a user-set memory budget via a shard::TileCache.
//
// The budget governs the *delay-matrix* working set. The all_severities
// entry point still returns an in-memory SeverityMatrix (N^2 floats), so
// its total footprint is O(budget) + O(N^2) for the output;
// violating_triangle_fraction is O(budget) end to end. For matrices whose
// *result* no longer fits either, all_severities_to_sink streams the
// severity output band pair by band pair into a sink::SeverityTileStore —
// O(budget + tile^2) working memory total — and
// repair_severities_to_sink is its incremental counterpart: after an
// epoch dirtied a host set, only the edges incident to those hosts are
// recomputed and only the affected sink tiles are rewritten (the
// out-of-core half of the src/stream/ dirty-epoch engine).
//
// Results are bit-identical to the in-memory TivAnalyzer path: tiles are
// the packed view cut at lane-aligned column boundaries, the streamed scan
// feeds the same accumulator lanes in ascending column order, and the final
// reduction tree is shared (core/witness_kernels.hpp). See
// docs/PERFORMANCE.md ("Sharded storage & out-of-core severity").
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "core/severity.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_tile_store.hpp"

namespace tiv::core {

/// Bytes the in-memory DelayMatrixView of an n-host matrix would occupy
/// (padded delay rows + bitmask rows + alignment slack) — the quantity the
/// auto-selection below compares against the budget.
std::size_t packed_view_bytes(HostId n);

/// All-edges severity matrix computed by streaming tiles of `store` through
/// `cache`. Bit-identical to TivAnalyzer::all_severities on the matrix the
/// store serialized. The band-pair loop is dynamically scheduled over the
/// parallel pool; tile loads for the next witness band are prefetched on
/// the cache's background I/O thread while the current band computes.
SeverityMatrix all_severities_streamed(const shard::TileStore& store,
                                       shard::TileCache& cache);

/// All-edges severity streamed from `store` *into* `sink` — the fully
/// out-of-core form: neither the delay matrix nor the severity result is
/// ever materialized in memory (working set = cache budget + one O(tile^2)
/// buffer per pool worker). `sink` must be writable with the same n and
/// tile_dim as `store`. Every stored entry is bit-identical to the
/// corresponding all_severities / all_severities_streamed cell; entries the
/// in-memory path never sets (unmeasured pairs, the diagonal, padding) are
/// 0.0f.
void all_severities_to_sink(const shard::TileStore& store,
                            shard::TileCache& cache,
                            sink::SeverityTileStore& sink);

/// Accounting for one repair_severities_to_sink call.
struct SinkRepairStats {
  std::size_t tiles_committed = 0;   ///< sink tiles rewritten in place
  std::size_t edges_recomputed = 0;  ///< dirty pairs re-evaluated (incl.
                                     ///< pairs reset to 0 on a loss)
};

/// Incremental form of all_severities_to_sink: recomputes exactly the
/// edges incident to `dirty_hosts` (ascending, distinct — what
/// DelayStream::commit_epoch returns) through the band-pair streaming
/// driver and rewrites only the sink tiles containing such edges. `store`
/// must already hold the post-epoch matrix (TileStore::repack_tile on the
/// dirty bands, with the cache invalidated — src/stream/shard_stream owns
/// that sequencing). Severities the in-memory
/// IncrementalSeverity::apply_epoch would leave untouched are untouched
/// here too, so the sink stays bit-identical to a from-scratch
/// all_severities of the mutated matrix after every epoch.
SinkRepairStats repair_severities_to_sink(
    const shard::TileStore& store, shard::TileCache& cache,
    sink::SeverityTileStore& sink, std::span<const HostId> dirty_hosts);

/// Recomputes sink tile (bi, bj), bi <= bj, from scratch through the
/// band-pair streaming driver and commits it — the one-tile form of
/// all_severities_to_sink, bit-identical to the tile a full build would
/// write (same kernels, same ascending-witness-band order). This is the
/// self-healing primitive of the out-of-core engine: when a sink tile
/// fails its checksum, its band pair is rebuilt from the (trusted) input
/// store instead of abandoning the run. Runs on the calling thread.
void rebuild_sink_tile(const shard::TileStore& store, shard::TileCache& cache,
                       sink::SeverityTileStore& sink, std::uint32_t bi,
                       std::uint32_t bj);

/// Exact violating-triangle fraction, streamed. Matches
/// TivAnalyzer::violating_triangle_fraction(0) bit for bit (the reduction
/// is integer counting; the final division is the same arithmetic).
double violating_triangle_fraction_streamed(const shard::TileStore& store,
                                            shard::TileCache& cache);

/// Policy + plumbing for the auto-selecting entry points.
struct OutOfCoreConfig {
  /// Budget for delay-matrix storage during the analysis. 0 = unbounded
  /// (always run in memory). When the packed view exceeds the budget the
  /// matrix is spilled to a TileStore and streamed with a cache of this
  /// many bytes.
  std::size_t memory_budget_bytes = 0;
  std::uint32_t tile_dim = shard::kDefaultTileDim;
  /// Spill file path; "" derives a unique name under the system temp
  /// directory. The file is deleted after the analysis unless keep_spill.
  std::string spill_path;
  bool keep_spill = false;
};

/// What the auto-selection did, for benches/tests.
struct OutOfCoreReport {
  bool out_of_core = false;
  shard::CacheStats cache;  ///< zero-initialized when in-memory
};

/// TivAnalyzer::all_severities when the packed view fits the budget,
/// spill-and-stream otherwise. Either way the result is the same matrix.
SeverityMatrix all_severities_budgeted(const DelayMatrix& m,
                                       const OutOfCoreConfig& config,
                                       OutOfCoreReport* report = nullptr);

/// Budget-aware violating_triangle_fraction (exact mode only).
double violating_triangle_fraction_budgeted(const DelayMatrix& m,
                                            const OutOfCoreConfig& config,
                                            OutOfCoreReport* report = nullptr);

}  // namespace tiv::core
