// Out-of-core TIV severity: streams (a-band, c-band, witness-band) tile
// triples from a shard::TileStore through the branch-free witness kernels,
// honoring a user-set memory budget via a shard::TileCache.
//
// The budget governs the *delay-matrix* working set. The all_severities
// result is still an in-memory SeverityMatrix (N^2 floats), so that entry
// point's total footprint is O(budget) + O(N^2) for the output;
// violating_triangle_fraction is O(budget) end to end. Streaming the
// severity output is a ROADMAP follow-up.
//
// Results are bit-identical to the in-memory TivAnalyzer path: tiles are
// the packed view cut at lane-aligned column boundaries, the streamed scan
// feeds the same accumulator lanes in ascending column order, and the final
// reduction tree is shared (core/witness_kernels.hpp). See
// docs/PERFORMANCE.md ("Sharded storage & out-of-core severity").
#pragma once

#include <cstddef>
#include <string>

#include "core/severity.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"

namespace tiv::core {

/// Bytes the in-memory DelayMatrixView of an n-host matrix would occupy
/// (padded delay rows + bitmask rows + alignment slack) — the quantity the
/// auto-selection below compares against the budget.
std::size_t packed_view_bytes(HostId n);

/// All-edges severity matrix computed by streaming tiles of `store` through
/// `cache`. Bit-identical to TivAnalyzer::all_severities on the matrix the
/// store serialized. The band-pair loop is dynamically scheduled over the
/// parallel pool; tile loads for the next witness band are prefetched on
/// the cache's background I/O thread while the current band computes.
SeverityMatrix all_severities_streamed(const shard::TileStore& store,
                                       shard::TileCache& cache);

/// Exact violating-triangle fraction, streamed. Matches
/// TivAnalyzer::violating_triangle_fraction(0) bit for bit (the reduction
/// is integer counting; the final division is the same arithmetic).
double violating_triangle_fraction_streamed(const shard::TileStore& store,
                                            shard::TileCache& cache);

/// Policy + plumbing for the auto-selecting entry points.
struct OutOfCoreConfig {
  /// Budget for delay-matrix storage during the analysis. 0 = unbounded
  /// (always run in memory). When the packed view exceeds the budget the
  /// matrix is spilled to a TileStore and streamed with a cache of this
  /// many bytes.
  std::size_t memory_budget_bytes = 0;
  std::uint32_t tile_dim = shard::kDefaultTileDim;
  /// Spill file path; "" derives a unique name under the system temp
  /// directory. The file is deleted after the analysis unless keep_spill.
  std::string spill_path;
  bool keep_spill = false;
};

/// What the auto-selection did, for benches/tests.
struct OutOfCoreReport {
  bool out_of_core = false;
  shard::CacheStats cache;  ///< zero-initialized when in-memory
};

/// TivAnalyzer::all_severities when the packed view fits the budget,
/// spill-and-stream otherwise. Either way the result is the same matrix.
SeverityMatrix all_severities_budgeted(const DelayMatrix& m,
                                       const OutOfCoreConfig& config,
                                       OutOfCoreReport* report = nullptr);

/// Budget-aware violating_triangle_fraction (exact mode only).
double violating_triangle_fraction_budgeted(const DelayMatrix& m,
                                            const OutOfCoreConfig& config,
                                            OutOfCoreReport* report = nullptr);

}  // namespace tiv::core
