#include "core/severity.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "core/edge_sampling.hpp"
#include "core/triangle_schedule.hpp"
#include "core/witness_kernels.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::core {
namespace {

// ---------------------------------------------------------------------------
// Blocked, branch-free witness scans over the padded rows of a
// DelayMatrixView, in which missing entries are kMaskedDelay (huge) and the
// diagonal is 0. That representation makes every exclusion implicit:
//   - missing leg:  detour >= kMaskedDelay, never < d_ac
//   - b == a:       detour == 0 + d_ac    , never < d_ac (strictly)
//   - b == c:       detour == d_ac + 0    , never < d_ac
// so the loop body is pure arithmetic + compares, which the compiler
// auto-vectorizes. The loop bodies live in core/witness_kernels.hpp, shared
// with the out-of-core streaming driver (shard_severity.cpp), which feeds
// the same accumulator lanes in tile-sized chunks for bit-identical sums.
// ---------------------------------------------------------------------------

static_assert(DelayMatrixView::kLaneFloats % kWitnessLanes == 0);

/// Sum over witnesses b of d_ac / (d_ab + d_bc) for violating b
/// (detour < d_ac, detour > 0) — the unnormalized severity of edge (a, c).
double pair_ratio_sum(const float* ra, const float* rc, std::size_t stride,
                      float dac) {
  double acc[kWitnessLanes] = {};
  witness_ratio_accumulate(ra, rc, stride, dac, acc);
  return witness_ratio_reduce(acc);
}

// Dynamic-scheduling grain for the batched per-edge engine: per-edge cost
// is one O(stride) row scan, so a handful of edges per claimed chunk keeps
// dispatch overhead negligible without starving the balancer.
constexpr std::size_t kEdgeBatchGrain = 8;

/// View selection for a batched per-edge call: a caller-provided view is
/// already paid for; otherwise the O(N^2) local build only happens when
/// enough scans amortize it (edges * 4 >= N, the guard sampled_severities
/// has always used). get() == nullptr means "run the scalar path".
class BatchView {
 public:
  BatchView(const DelayMatrix& matrix, const DelayMatrixView* prebuilt,
            std::size_t batch_size) {
    if (prebuilt != nullptr) {
      view_ = prebuilt;
    } else if (batch_size * 4 >= matrix.size()) {
      local_.emplace(matrix);
      view_ = &*local_;
    }
  }

  const DelayMatrixView* get() const { return view_; }

 private:
  std::optional<DelayMatrixView> local_;
  const DelayMatrixView* view_ = nullptr;
};

// Tile edge for the blocked (a, c) pair loop. 16 rows of each endpoint keep
// the working set (2 * 16 padded rows) inside L2 even at n = 8192 while
// giving each dynamic chunk ~256 * n witnesses of work.
constexpr std::size_t kTileRows = 16;

/// Runs fn(a_begin, a_end, c_begin, c_end) over all tiles covering the
/// strict upper triangle (a < c allowed inside the tile; fn must still clamp
/// c > a), dynamically scheduled so the triangular workload balances.
template <typename TileFn>
void for_each_upper_tile(HostId n, TileFn&& fn) {
  const std::size_t tiles =
      (static_cast<std::size_t>(n) + kTileRows - 1) / kTileRows;
  for_each_triangle_pair(tiles, [&](std::size_t ta, std::size_t tc) {
    fn(static_cast<HostId>(ta * kTileRows),
       static_cast<HostId>(std::min<std::size_t>((ta + 1) * kTileRows, n)),
       static_cast<HostId>(tc * kTileRows),
       static_cast<HostId>(std::min<std::size_t>((tc + 1) * kTileRows, n)));
  });
}

}  // namespace

std::vector<double> SeverityMatrix::values_for_measured_edges(
    const DelayMatrix& matrix) const {
  std::vector<double> out;
  for (HostId i = 0; i < n_; ++i) {
    for (HostId j = i + 1; j < n_; ++j) {
      if (matrix.has(i, j)) out.push_back(at(i, j));
    }
  }
  return out;
}

EdgeTivStats TivAnalyzer::edge_stats(HostId a, HostId c) const {
  EdgeTivStats stats;
  if (!matrix_.has(a, c)) return stats;
  const float d_ac = matrix_.at(a, c);
  const auto row_a = matrix_.row(a);
  const auto row_c = matrix_.row(c);
  const HostId n = matrix_.size();
  double ratio_sum = 0.0;
  for (HostId b = 0; b < n; ++b) {
    if (b == a || b == c) continue;
    const float d_ab = row_a[b];
    const float d_bc = row_c[b];
    if (d_ab < 0.0f || d_bc < 0.0f) continue;  // missing leg
    ++stats.witness_count;
    const float detour = d_ab + d_bc;
    if (detour < d_ac && detour > 0.0f) {
      const double ratio = static_cast<double>(d_ac) / detour;
      ++stats.violation_count;
      ratio_sum += ratio;
      stats.max_ratio = std::max(stats.max_ratio, ratio);
    }
  }
  // Normalization is by |S| (all nodes), per the paper's definition — not by
  // the witness count — so edges in sparse neighborhoods are not inflated.
  stats.severity = ratio_sum / static_cast<double>(n);
  stats.mean_ratio = stats.violation_count == 0
                         ? 0.0
                         : ratio_sum / static_cast<double>(
                                           stats.violation_count);
  return stats;
}

double TivAnalyzer::edge_severity(HostId a, HostId c) const {
  return edge_stats(a, c).severity;
}

std::vector<EdgeTivStats> TivAnalyzer::edge_stats_batch(
    std::span<const std::pair<HostId, HostId>> edges,
    const DelayMatrixView* view) const {
  std::vector<EdgeTivStats> out(edges.size());
  const BatchView bv(matrix_, view, edges.size());
  if (bv.get() == nullptr) {
    parallel_for(edges.size(), [&](std::size_t e) {
      out[e] = edge_stats(edges[e].first, edges[e].second);
    });
    return out;
  }
  const DelayMatrixView& v = *bv.get();
  const std::size_t stride = v.stride();
  const auto nd = static_cast<double>(matrix_.size());
  parallel_for_dynamic(
      edges.size(), kEdgeBatchGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const auto [a, c] = edges[e];
          EdgeTivStats stats;
          const float d_ac = v.row(a)[c];
          if (a == c || d_ac >= DelayMatrixView::kMaskedDelay) {
            out[e] = stats;  // unmeasured edge: all-zero, as in edge_stats
            continue;
          }
          // Two vectorized passes over the same L2-resident rows: the ratio
          // sum (bit-identical lanes to the all_severities kernel) and the
          // count/min-detour scan, from which the max ratio follows by one
          // division (see witness_violation_minmax).
          double acc[kWitnessLanes] = {};
          witness_ratio_accumulate(v.row(a), v.row(c), stride, d_ac, acc);
          const WitnessViolationStats vs =
              witness_violation_minmax(v.row(a), v.row(c), stride, d_ac);
          const double ratio_sum = witness_ratio_reduce(acc);
          stats.violation_count = vs.count;
          stats.witness_count = v.witness_count(a, c);
          stats.max_ratio =
              vs.count == 0 ? 0.0
                            : static_cast<double>(d_ac) /
                                  static_cast<double>(vs.min_detour);
          stats.severity = ratio_sum / nd;
          stats.mean_ratio =
              stats.violation_count == 0
                  ? 0.0
                  : ratio_sum / static_cast<double>(stats.violation_count);
          out[e] = stats;
        }
      });
  return out;
}

std::vector<std::size_t> TivAnalyzer::edge_violation_count_batch(
    std::span<const std::pair<HostId, HostId>> edges,
    const DelayMatrixView* view) const {
  std::vector<std::size_t> out(edges.size());
  const BatchView bv(matrix_, view, edges.size());
  if (bv.get() == nullptr) {
    parallel_for(edges.size(), [&](std::size_t e) {
      out[e] = edge_stats(edges[e].first, edges[e].second).violation_count;
    });
    return out;
  }
  const DelayMatrixView& v = *bv.get();
  const std::size_t stride = v.stride();
  parallel_for_dynamic(
      edges.size(), kEdgeBatchGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const auto [a, c] = edges[e];
          const float d_ac = v.row(a)[c];
          if (a == c || d_ac >= DelayMatrixView::kMaskedDelay) {
            out[e] = 0;
            continue;
          }
          out[e] =
              witness_violation_minmax(v.row(a), v.row(c), stride, d_ac).count;
        }
      });
  return out;
}

std::vector<double> TivAnalyzer::edge_severity_batch(
    std::span<const std::pair<HostId, HostId>> edges,
    const DelayMatrixView* view) const {
  std::vector<double> out(edges.size());
  const BatchView bv(matrix_, view, edges.size());
  if (bv.get() == nullptr) {
    parallel_for(edges.size(), [&](std::size_t e) {
      out[e] = edge_severity(edges[e].first, edges[e].second);
    });
    return out;
  }
  const DelayMatrixView& v = *bv.get();
  const std::size_t stride = v.stride();
  const auto nd = static_cast<double>(matrix_.size());
  parallel_for_dynamic(
      edges.size(), kEdgeBatchGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const auto [a, c] = edges[e];
          const float d_ac = v.row(a)[c];
          if (a == c || d_ac >= DelayMatrixView::kMaskedDelay) {
            out[e] = 0.0;
            continue;
          }
          out[e] = pair_ratio_sum(v.row(a), v.row(c), stride, d_ac) / nd;
        }
      });
  return out;
}

std::vector<double> TivAnalyzer::violation_ratios(HostId a, HostId c) const {
  std::vector<double> out;
  if (!matrix_.has(a, c)) return out;
  const float d_ac = matrix_.at(a, c);
  const auto row_a = matrix_.row(a);
  const auto row_c = matrix_.row(c);
  for (HostId b = 0; b < matrix_.size(); ++b) {
    if (b == a || b == c) continue;
    const float d_ab = row_a[b];
    const float d_bc = row_c[b];
    if (d_ab < 0.0f || d_bc < 0.0f) continue;
    const float detour = d_ab + d_bc;
    if (detour < d_ac && detour > 0.0f) {
      out.push_back(static_cast<double>(d_ac) / detour);
    }
  }
  return out;
}

SeverityMatrix TivAnalyzer::all_severities(
    const DelayMatrixView* prebuilt) const {
  const HostId n = matrix_.size();
  SeverityMatrix sev(n);
  if (n < 2) return sev;
  std::optional<DelayMatrixView> local;
  if (prebuilt == nullptr) local.emplace(matrix_);
  const DelayMatrixView& view = prebuilt ? *prebuilt : *local;
  const std::size_t stride = view.stride();
  const auto nd = static_cast<double>(n);
  for_each_upper_tile(n, [&](HostId a_begin, HostId a_end, HostId c_begin,
                             HostId c_end) {
    for (HostId a = a_begin; a < a_end; ++a) {
      const float* row_a = view.row(a);
      const HostId c_lo = std::max<HostId>(c_begin, a + 1);
      for (HostId c = c_lo; c < c_end; ++c) {
        const float d_ac = row_a[c];
        if (d_ac >= DelayMatrixView::kMaskedDelay) continue;  // unmeasured
        const double ratio_sum =
            pair_ratio_sum(row_a, view.row(c), stride, d_ac);
        sev.set(a, c, static_cast<float>(ratio_sum / nd));
      }
    }
  });
  return sev;
}

SeverityMatrix TivAnalyzer::all_severities_reference() const {
  const HostId n = matrix_.size();
  SeverityMatrix sev(n);
  const auto nd = static_cast<double>(n);
  // Parallel over the first endpoint; each task owns rows i and writes only
  // the (i, j>i) strip, then we mirror. The inner witness scan reads two
  // matrix rows sequentially — contiguous and branch-light.
  parallel_for(n, [&](std::size_t ai) {
    const auto a = static_cast<HostId>(ai);
    const auto row_a = matrix_.row(a);
    for (HostId c = a + 1; c < n; ++c) {
      const float d_ac = row_a[c];
      if (d_ac < 0.0f) continue;  // missing edge -> severity 0
      const auto row_c = matrix_.row(c);
      double ratio_sum = 0.0;
      for (HostId b = 0; b < n; ++b) {
        const float d_ab = row_a[b];
        const float d_bc = row_c[b];
        // b == a or b == c gives detour == d_ac, never < d_ac; missing legs
        // are negative and excluded by the detour > 0 check only when both
        // are missing, so test them explicitly.
        if (d_ab < 0.0f || d_bc < 0.0f) continue;
        const float detour = d_ab + d_bc;
        if (detour < d_ac && detour > 0.0f) {
          ratio_sum += static_cast<double>(d_ac) / detour;
        }
      }
      sev.set(a, c, static_cast<float>(ratio_sum / nd));
    }
  });
  return sev;
}

std::vector<std::pair<std::pair<HostId, HostId>, double>>
TivAnalyzer::sampled_severities(std::size_t count, std::uint64_t seed) const {
  // The shared sampler reproduces this function's historical draw sequence
  // exactly (it was the one dedup-correct sampler the others now share).
  const PairSample sample = sample_measured_pairs(matrix_, count, seed);
  const std::vector<double> sevs = edge_severity_batch(sample.pairs);
  std::vector<std::pair<std::pair<HostId, HostId>, double>> out(
      sample.pairs.size());
  for (std::size_t e = 0; e < sample.pairs.size(); ++e) {
    out[e] = {sample.pairs[e], sevs[e]};
  }
  return out;
}

double TivAnalyzer::violating_triangle_fraction(std::size_t sample_triangles,
                                                std::uint64_t seed) const {
  const HostId n = matrix_.size();
  if (sample_triangles == 0) {
    // Exact mode, through the same blocked machinery as all_severities.
    //
    // Scan unordered measured pairs (a, c) and count witnesses b with both
    // legs measured. Each measurable triangle {x, y, z} is counted once per
    // role (3 times total), but contributes a *violation* in exactly one
    // role: if d_xy + d_yz < d_xz then d_xz is the strict maximum, so the
    // other two inequalities hold. Hence
    //   violating fraction = violations / (witness_total / 3).
    if (n < 3) return 0.0;
    const DelayMatrixView view(matrix_);
    const std::size_t stride = view.stride();
    std::atomic<std::size_t> violations{0};
    std::atomic<std::size_t> witness_total{0};
    for_each_upper_tile(n, [&](HostId a_begin, HostId a_end, HostId c_begin,
                               HostId c_end) {
      std::size_t local_v = 0;
      std::size_t local_t = 0;
      for (HostId a = a_begin; a < a_end; ++a) {
        const float* row_a = view.row(a);
        const HostId c_lo = std::max<HostId>(c_begin, a + 1);
        for (HostId c = c_lo; c < c_end; ++c) {
          const float d_ac = row_a[c];
          if (d_ac >= DelayMatrixView::kMaskedDelay) continue;
          local_t += view.witness_count(a, c);
          local_v +=
              witness_violation_count(row_a, view.row(c), stride, d_ac);
        }
      }
      violations.fetch_add(local_v, std::memory_order_relaxed);
      witness_total.fetch_add(local_t, std::memory_order_relaxed);
    });
    const auto t = static_cast<double>(witness_total.load());
    return t == 0.0 ? 0.0 : 3.0 * static_cast<double>(violations.load()) / t;
  }
  return violating_triangle_fraction_sampled(sample_triangles, seed).fraction;
}

TivAnalyzer::TriangleFractionSample
TivAnalyzer::violating_triangle_fraction_sampled(std::size_t sample_triangles,
                                                 std::uint64_t seed) const {
  const HostId n = matrix_.size();
  TriangleFractionSample out;
  out.requested = sample_triangles;
  if (n < 3) {
    out.exhausted = sample_triangles > 0;
    return out;
  }
  auto violates = [&](HostId a, HostId b, HostId c) {
    const float ab = matrix_.at(a, b);
    const float bc = matrix_.at(b, c);
    const float ac = matrix_.at(a, c);
    if (ab < 0.0f || bc < 0.0f || ac < 0.0f) return -1;  // unmeasurable
    return (ab + bc < ac || ab + ac < bc || bc + ac < ab) ? 1 : 0;
  };
  Rng rng(seed);
  std::size_t v = 0;
  std::size_t t = 0;
  std::size_t attempts = 0;
  while (t < sample_triangles && attempts < sample_triangles * 30) {
    ++attempts;
    const auto a = static_cast<HostId>(rng.uniform_index(n));
    const auto b = static_cast<HostId>(rng.uniform_index(n));
    const auto c = static_cast<HostId>(rng.uniform_index(n));
    if (a == b || b == c || a == c) continue;
    const int r = violates(a, b, c);
    if (r < 0) continue;
    ++t;
    v += r;
  }
  out.achieved = t;
  out.exhausted = t < sample_triangles;
  out.fraction = t == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(t);
  return out;
}

}  // namespace tiv::core
