#include "core/severity.hpp"

#include <algorithm>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::core {

std::vector<double> SeverityMatrix::values_for_measured_edges(
    const DelayMatrix& matrix) const {
  std::vector<double> out;
  for (HostId i = 0; i < n_; ++i) {
    for (HostId j = i + 1; j < n_; ++j) {
      if (matrix.has(i, j)) out.push_back(at(i, j));
    }
  }
  return out;
}

EdgeTivStats TivAnalyzer::edge_stats(HostId a, HostId c) const {
  EdgeTivStats stats;
  if (!matrix_.has(a, c)) return stats;
  const float d_ac = matrix_.at(a, c);
  const auto row_a = matrix_.row(a);
  const auto row_c = matrix_.row(c);
  const HostId n = matrix_.size();
  double ratio_sum = 0.0;
  for (HostId b = 0; b < n; ++b) {
    if (b == a || b == c) continue;
    const float d_ab = row_a[b];
    const float d_bc = row_c[b];
    if (d_ab < 0.0f || d_bc < 0.0f) continue;  // missing leg
    ++stats.witness_count;
    const float detour = d_ab + d_bc;
    if (detour < d_ac && detour > 0.0f) {
      const double ratio = static_cast<double>(d_ac) / detour;
      ++stats.violation_count;
      ratio_sum += ratio;
      stats.max_ratio = std::max(stats.max_ratio, ratio);
    }
  }
  // Normalization is by |S| (all nodes), per the paper's definition — not by
  // the witness count — so edges in sparse neighborhoods are not inflated.
  stats.severity = ratio_sum / static_cast<double>(n);
  stats.mean_ratio = stats.violation_count == 0
                         ? 0.0
                         : ratio_sum / static_cast<double>(
                                           stats.violation_count);
  return stats;
}

double TivAnalyzer::edge_severity(HostId a, HostId c) const {
  return edge_stats(a, c).severity;
}

std::vector<double> TivAnalyzer::violation_ratios(HostId a, HostId c) const {
  std::vector<double> out;
  if (!matrix_.has(a, c)) return out;
  const float d_ac = matrix_.at(a, c);
  const auto row_a = matrix_.row(a);
  const auto row_c = matrix_.row(c);
  for (HostId b = 0; b < matrix_.size(); ++b) {
    if (b == a || b == c) continue;
    const float d_ab = row_a[b];
    const float d_bc = row_c[b];
    if (d_ab < 0.0f || d_bc < 0.0f) continue;
    const float detour = d_ab + d_bc;
    if (detour < d_ac && detour > 0.0f) {
      out.push_back(static_cast<double>(d_ac) / detour);
    }
  }
  return out;
}

SeverityMatrix TivAnalyzer::all_severities() const {
  const HostId n = matrix_.size();
  SeverityMatrix sev(n);
  const auto nd = static_cast<double>(n);
  // Parallel over the first endpoint; each task owns rows i and writes only
  // the (i, j>i) strip, then we mirror. The inner witness scan reads two
  // matrix rows sequentially — contiguous and branch-light.
  parallel_for(n, [&](std::size_t ai) {
    const auto a = static_cast<HostId>(ai);
    const auto row_a = matrix_.row(a);
    for (HostId c = a + 1; c < n; ++c) {
      const float d_ac = row_a[c];
      if (d_ac < 0.0f) continue;  // missing edge -> severity 0
      const auto row_c = matrix_.row(c);
      double ratio_sum = 0.0;
      for (HostId b = 0; b < n; ++b) {
        const float d_ab = row_a[b];
        const float d_bc = row_c[b];
        // b == a or b == c gives detour == d_ac, never < d_ac; missing legs
        // are negative and excluded by the detour > 0 check only when both
        // are missing, so test them explicitly.
        if (d_ab < 0.0f || d_bc < 0.0f) continue;
        const float detour = d_ab + d_bc;
        if (detour < d_ac && detour > 0.0f) {
          ratio_sum += static_cast<double>(d_ac) / detour;
        }
      }
      sev.set(a, c, static_cast<float>(ratio_sum / nd));
    }
  });
  return sev;
}

std::vector<std::pair<std::pair<HostId, HostId>, double>>
TivAnalyzer::sampled_severities(std::size_t count, std::uint64_t seed) const {
  const HostId n = matrix_.size();
  Rng rng(seed);
  std::vector<std::pair<HostId, HostId>> edges;
  edges.reserve(count);
  std::size_t attempts = 0;
  while (edges.size() < count && attempts < count * 30) {
    ++attempts;
    auto i = static_cast<HostId>(rng.uniform_index(n));
    auto j = static_cast<HostId>(rng.uniform_index(n));
    if (i == j || !matrix_.has(i, j)) continue;
    if (i > j) std::swap(i, j);
    edges.emplace_back(i, j);
  }
  std::vector<std::pair<std::pair<HostId, HostId>, double>> out(edges.size());
  parallel_for(edges.size(), [&](std::size_t e) {
    out[e] = {edges[e], edge_severity(edges[e].first, edges[e].second)};
  });
  return out;
}

double TivAnalyzer::violating_triangle_fraction(std::size_t sample_triangles,
                                                std::uint64_t seed) const {
  const HostId n = matrix_.size();
  auto violates = [&](HostId a, HostId b, HostId c) {
    const float ab = matrix_.at(a, b);
    const float bc = matrix_.at(b, c);
    const float ac = matrix_.at(a, c);
    if (ab < 0.0f || bc < 0.0f || ac < 0.0f) return -1;  // unmeasurable
    return (ab + bc < ac || ab + ac < bc || bc + ac < ab) ? 1 : 0;
  };
  if (sample_triangles == 0) {
    // Exact count, parallel over the first vertex.
    std::vector<std::size_t> violating(n, 0);
    std::vector<std::size_t> total(n, 0);
    parallel_for(n, [&](std::size_t ai) {
      const auto a = static_cast<HostId>(ai);
      for (HostId b = a + 1; b < n; ++b) {
        for (HostId c = b + 1; c < n; ++c) {
          const int v = violates(a, b, c);
          if (v < 0) continue;
          ++total[a];
          violating[a] += v;
        }
      }
    });
    std::size_t v = 0;
    std::size_t t = 0;
    for (HostId a = 0; a < n; ++a) {
      v += violating[a];
      t += total[a];
    }
    return t == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(t);
  }
  Rng rng(seed);
  std::size_t v = 0;
  std::size_t t = 0;
  std::size_t attempts = 0;
  while (t < sample_triangles && attempts < sample_triangles * 30) {
    ++attempts;
    const auto a = static_cast<HostId>(rng.uniform_index(n));
    const auto b = static_cast<HostId>(rng.uniform_index(n));
    const auto c = static_cast<HostId>(rng.uniform_index(n));
    if (a == b || b == c || a == c) continue;
    const int r = violates(a, b, c);
    if (r < 0) continue;
    ++t;
    v += r;
  }
  return t == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(t);
}

}  // namespace tiv::core
