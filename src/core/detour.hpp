// TIV-aware one-hop detour routing — the constructive flip side of the TIV
// alert mechanism, and the paper's motivating "TIV-aware distributed
// system" (§7): a triangle inequality violation on edge A-B *is* the
// statement that some relay C gives a path A-C-B faster than the direct
// edge. The alert tells a node, without global knowledge, which of its
// edges are worth spending detour probes on.
//
// Protocol simulated here:
//   1. A maintains Vivaldi coordinates (shared embedding).
//   2. For a flow A -> B, A computes the prediction ratio of the edge; if
//      it is below the alert threshold, A asks `relay_candidates` of its
//      known peers — ranked by predicted relay delay
//      (predicted(A,C) + predicted(C,B)) — to probe B, and routes via the
//      best relay found if it beats the direct edge.
//   3. Un-alerted edges are used directly, costing zero extra probes.
//
// The evaluation compares against (a) direct routing, (b) oracle one-hop
// detours (best relay by true delays — the overlay-routing upper bound),
// and (c) probing the same number of *random* relays on every edge, which
// spends far more probes for less gain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/alert.hpp"
#include "embedding/vivaldi.hpp"
#include "util/stats.hpp"

namespace tiv::core {

struct DetourParams {
  double alert_threshold = 0.6;   ///< prediction-ratio alert gate
  std::uint32_t relay_candidates = 8;  ///< relays probed per alerted edge
  std::uint64_t seed = 57;
};

/// Outcome of routing one edge.
struct DetourDecision {
  /// The (a, b) pair has a usable direct measurement. When false the router
  /// early-returns with infinite direct/achieved delays and no alert or
  /// probes — callers must not fold the infinities into delay summaries
  /// (the old behavior silently propagated +inf / NaN into Summary stats).
  bool measured = false;
  bool alerted = false;        ///< the edge raised a TIV alert
  bool detoured = false;       ///< a relay beat the direct edge
  delayspace::HostId relay = 0;
  double direct_ms = 0.0;
  double achieved_ms = 0.0;    ///< min(direct, best relay path)
  std::uint32_t probes = 0;    ///< on-demand probes spent
};

/// One-hop detour router over a delay matrix + embedding.
///
/// The relay scans run over the packed DelayMatrixView's masked rows: a
/// missing leg sums past kMaskedDelay and can never look like a usable
/// relay, which deletes the per-element `< 0` branches from the hot loops
/// (the severity kernel's trick). Construction packs the O(N^2) view once
/// and amortizes it across every route/oracle call — or reuses a
/// caller-provided view, so drivers that also run severity batches pack the
/// matrix exactly once.
class DetourRouter {
 public:
  /// The system (its matrix) and the optional prebuilt view must outlive
  /// the router. view == nullptr packs a private view of system.matrix().
  DetourRouter(const embedding::VivaldiSystem& system,
               const DetourParams& params,
               const delayspace::DelayMatrixView* view = nullptr);

  /// Routes A -> B. Relay candidates are drawn from all hosts, ranked by
  /// predicted relay-path delay; each candidate costs 2 probes (A-C is
  /// usually known, C-B is measured on demand; we charge both
  /// conservatively). An unmeasured pair early-returns with
  /// measured == false.
  DetourDecision route(delayspace::HostId a, delayspace::HostId b,
                       Rng& rng) const;

  /// Best possible one-hop relay path (oracle; no probe accounting).
  /// Branch-free lane scan over the masked rows; exactly equal to
  /// oracle_one_hop_scalar. Requires a != b.
  double oracle_one_hop(delayspace::HostId a, delayspace::HostId b) const;

  /// The seed's branchy per-element scan, kept as the correctness reference
  /// for tests and the baseline bench_detour_routing measures against.
  double oracle_one_hop_scalar(delayspace::HostId a,
                               delayspace::HostId b) const;

 private:
  const embedding::VivaldiSystem& system_;
  DetourParams params_;
  std::optional<delayspace::DelayMatrixView> owned_view_;
  const delayspace::DelayMatrixView* view_;  ///< never null after ctor
};

/// Aggregate evaluation over sampled edges.
struct DetourEvaluation {
  Summary direct_ms;
  Summary achieved_ms;         ///< TIV-aware detour routing
  Summary oracle_ms;           ///< best one-hop relay (upper bound)
  Summary random_relay_ms;     ///< same relay budget on every edge, random
  double mean_stretch_direct = 0.0;   ///< direct / oracle
  double mean_stretch_achieved = 0.0; ///< achieved / oracle
  std::uint64_t probes_tiv_aware = 0;
  std::uint64_t probes_random = 0;
  std::size_t edges = 0;           ///< achieved sample count (distinct edges)
  std::size_t edges_requested = 0; ///< sample_edges as asked for; on a
                                   ///< missing-heavy matrix the rejection
                                   ///< budget may exhaust with edges <
                                   ///< edges_requested
  std::size_t alerted_edges = 0;
  std::size_t detoured_edges = 0;
};

/// Routes `sample_edges` distinct random measured pairs three ways and
/// aggregates. Pass `view` (a packed view of system.matrix()) to reuse a
/// view across calls — the threshold-sweep drivers call this once per
/// threshold on the same matrix.
DetourEvaluation evaluate_detour_routing(
    const embedding::VivaldiSystem& system, const DetourParams& params,
    std::size_t sample_edges, std::uint64_t seed = 31,
    const delayspace::DelayMatrixView* view = nullptr);

}  // namespace tiv::core
