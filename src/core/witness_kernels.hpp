// Branch-free witness-scan primitives shared by the in-memory severity
// kernel (severity.cpp) and the out-of-core streaming driver
// (shard_severity.cpp).
//
// All functions scan packed-view data: missing entries are
// DelayMatrixView::kMaskedDelay (huge), the diagonal is 0, so missing-leg
// and self-witness exclusions are implicit (see delay_matrix.hpp). The
// loop bodies are pure arithmetic + compares and auto-vectorize.
//
// The ratio accumulation is split into accumulate + reduce so a caller can
// feed witnesses in column chunks: kWitnessLanes independent accumulators,
// lane l taking columns b with b % kWitnessLanes == l. As long as chunks
// are multiples of kWitnessLanes and arrive in ascending column order, the
// per-lane addition sequences — and therefore the reduced double — are
// bit-identical whether the scan ran over one contiguous row or over tiles
// streamed from disk. Masked/padding columns contribute exactly +0.0,
// which is an exact no-op on the non-negative partial sums, so differing
// amounts of tail padding between the two paths cannot change the result.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace tiv::core {

/// Independent accumulator lanes of the ratio reduction. A divisor of
/// DelayMatrixView::kLaneFloats, so both the view's row padding and any
/// tile width that is a multiple of the lane count preserve lane phase.
inline constexpr std::size_t kWitnessLanes = 8;

/// Adds to acc[kWitnessLanes] the triangulation ratios d_ac / (d_ab + d_bc)
/// of violating witnesses (detour < d_ac, detour > 0) in columns
/// [0, len) of packed rows ra/rc. len must be a multiple of kWitnessLanes.
/// Lane phase follows the caller's global column offset: pass rows whose
/// column 0 is a multiple of kWitnessLanes globally.
inline void witness_ratio_accumulate(const float* ra, const float* rc,
                                     std::size_t len, float dac,
                                     double* acc) {
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const float detour = ra[b + l] + rc[b + l];
      const bool violates = (detour < dac) & (detour > 0.0f);
      // Unconditional division with a blended-safe divisor: cheaper than a
      // branch per witness and keeps the loop if-convertible. Double
      // division so each term is bit-identical to the scalar reference
      // (only the summation order differs).
      const double ratio = static_cast<double>(dac) /
                           (violates ? static_cast<double>(detour) : 1.0);
      acc[l] += violates ? ratio : 0.0;
    }
  }
}

/// Fixed pairwise reduction of the lane accumulators. Deterministic order;
/// every caller must use this (not a left-to-right sum) so partial-sum
/// paths match the monolithic scan bit for bit.
inline double witness_ratio_reduce(const double* acc) {
  static_assert(kWitnessLanes == 8, "reduction tree is written for 8 lanes");
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

/// Strict-violation count (detour < dac AND detour > 0 — the edge_stats
/// classification; unlike witness_violation_count below it excludes
/// zero-length detours) and minimum violating detour in [0, len).
struct WitnessViolationStats {
  std::size_t count = 0;
  /// The edge's own d_ac when count == 0 (callers must gate on count). The
  /// max triangulation ratio follows in O(1): dac / detour is monotone
  /// decreasing in detour, so max ratio = dac / min_detour — dividing the
  /// identical float detour the scalar reference divides, hence
  /// bit-identical to its running max.
  float min_detour = 0.0f;

  /// Exact composition (integer sum, order-free min; an empty chunk's dac
  /// never beats a violating detour, which is < dac by definition):
  /// chunked scans over the same edge combine to the monolithic result.
  void merge(const WitnessViolationStats& o) {
    count += o.count;
    min_detour = o.min_detour < min_detour ? o.min_detour : min_detour;
  }
};

/// One pass of the strict-violation scan for the batched edge engine. The
/// body is what lets it run at count-kernel speed: accumulator lanes are
/// function-local (a caller-provided float lane array could alias the rows,
/// blocking vectorization), and the min runs in the integer domain —
/// non-negative IEEE-754 floats order identically to their bit patterns, so
/// blending non-positive detours to dac's bits and taking an integer min is
/// exact while sidestepping GCC's refusal to if-convert a float select
/// feeding a float min (it emits scalar branches for that shape; this
/// formulation ran ~7x faster at n = 1024). All detours here are sums of
/// non-negative packed-view entries, so the positivity precondition holds
/// by construction.
inline WitnessViolationStats witness_violation_minmax(const float* ra,
                                                      const float* rc,
                                                      std::size_t len,
                                                      float dac) {
  std::uint32_t dac_bits = std::bit_cast<std::uint32_t>(dac);
  std::uint32_t cnt[kWitnessLanes] = {};
  std::uint32_t mind[kWitnessLanes];
  for (std::size_t l = 0; l < kWitnessLanes; ++l) mind[l] = dac_bits;
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const float detour = ra[b + l] + rc[b + l];
      cnt[l] += ((detour < dac) & (detour > 0.0f)) ? 1u : 0u;
      // Zero detours blend to dac (a no-op under min); positive
      // non-violating detours are >= dac in the integer order already.
      const std::uint32_t cand = detour > 0.0f
                                     ? std::bit_cast<std::uint32_t>(detour)
                                     : dac_bits;
      mind[l] = cand < mind[l] ? cand : mind[l];
    }
  }
  WitnessViolationStats out;
  std::uint32_t best = dac_bits;
  for (std::size_t l = 0; l < kWitnessLanes; ++l) {
    out.count += cnt[l];
    best = mind[l] < best ? mind[l] : best;
  }
  out.min_detour = std::bit_cast<float>(best);
  return out;
}

/// Best one-hop relay detour over packed rows: min over b in [0, len) of
/// ra[b] + rb[b], each leg widened to double before the add (the exact
/// arithmetic of the scalar oracle scan, so the min — which is
/// order-independent — is bit-identical to it). Missing legs, padding, and
/// an unmeasured self-column sum to >= DelayMatrixView::kMaskedDelay, so a
/// result at or above that sentinel means "no relay with both legs
/// measured". Self-columns b == a / b == b' contribute exactly the direct
/// delay when it is measured — never better than the true best relay — so
/// callers that fold the result into min(direct, relays) need no index
/// exclusions at all.
inline double relay_min_scan(const float* ra, const float* rb,
                             std::size_t len) {
  double best[kWitnessLanes];
  for (std::size_t l = 0; l < kWitnessLanes; ++l) {
    best[l] = std::numeric_limits<double>::infinity();
  }
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const double via = static_cast<double>(ra[b + l]) + rb[b + l];
      best[l] = via < best[l] ? via : best[l];
    }
  }
  double out = best[0];
  for (std::size_t l = 1; l < kWitnessLanes; ++l) {
    out = best[l] < out ? best[l] : out;
  }
  return out;
}

/// Number of witnesses b in [0, len) with detour < d_ac. Unlike the ratio
/// scan there is no detour > 0 exclusion: a measured zero-length detour
/// violates the triangle inequality for counting purposes (matches the
/// scalar violating_triangle_fraction reference). Exact integer math, so
/// chunked calls sum to the monolithic count in any order.
inline std::size_t witness_violation_count(const float* ra, const float* rc,
                                           std::size_t len, float dac) {
  std::size_t acc[kWitnessLanes] = {};
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const float detour = ra[b + l] + rc[b + l];
      acc[l] += detour < dac ? 1u : 0u;
    }
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l < kWitnessLanes; ++l) total += acc[l];
  return total;
}

/// Witnesses with both legs measured: popcount over the AND of two
/// missing-entry bitmask rows (a row's own bit is never set, so b == a and
/// b == c fall out automatically). Chunk-sum-safe like the count above.
inline std::size_t masked_witness_count(const std::uint64_t* ma,
                                        const std::uint64_t* mc,
                                        std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(ma[w] & mc[w]));
  }
  return count;
}

}  // namespace tiv::core
