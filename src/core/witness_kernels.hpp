// Branch-free witness-scan primitives shared by the in-memory severity
// kernel (severity.cpp) and the out-of-core streaming driver
// (shard_severity.cpp).
//
// All functions scan packed-view data: missing entries are
// DelayMatrixView::kMaskedDelay (huge), the diagonal is 0, so missing-leg
// and self-witness exclusions are implicit (see delay_matrix.hpp). The
// loop bodies are pure arithmetic + compares and auto-vectorize.
//
// The ratio accumulation is split into accumulate + reduce so a caller can
// feed witnesses in column chunks: kWitnessLanes independent accumulators,
// lane l taking columns b with b % kWitnessLanes == l. As long as chunks
// are multiples of kWitnessLanes and arrive in ascending column order, the
// per-lane addition sequences — and therefore the reduced double — are
// bit-identical whether the scan ran over one contiguous row or over tiles
// streamed from disk. Masked/padding columns contribute exactly +0.0,
// which is an exact no-op on the non-negative partial sums, so differing
// amounts of tail padding between the two paths cannot change the result.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace tiv::core {

/// Independent accumulator lanes of the ratio reduction. A divisor of
/// DelayMatrixView::kLaneFloats, so both the view's row padding and any
/// tile width that is a multiple of the lane count preserve lane phase.
inline constexpr std::size_t kWitnessLanes = 8;

/// Adds to acc[kWitnessLanes] the triangulation ratios d_ac / (d_ab + d_bc)
/// of violating witnesses (detour < d_ac, detour > 0) in columns
/// [0, len) of packed rows ra/rc. len must be a multiple of kWitnessLanes.
/// Lane phase follows the caller's global column offset: pass rows whose
/// column 0 is a multiple of kWitnessLanes globally.
inline void witness_ratio_accumulate(const float* ra, const float* rc,
                                     std::size_t len, float dac,
                                     double* acc) {
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const float detour = ra[b + l] + rc[b + l];
      const bool violates = (detour < dac) & (detour > 0.0f);
      // Unconditional division with a blended-safe divisor: cheaper than a
      // branch per witness and keeps the loop if-convertible. Double
      // division so each term is bit-identical to the scalar reference
      // (only the summation order differs).
      const double ratio = static_cast<double>(dac) /
                           (violates ? static_cast<double>(detour) : 1.0);
      acc[l] += violates ? ratio : 0.0;
    }
  }
}

/// Fixed pairwise reduction of the lane accumulators. Deterministic order;
/// every caller must use this (not a left-to-right sum) so partial-sum
/// paths match the monolithic scan bit for bit.
inline double witness_ratio_reduce(const double* acc) {
  static_assert(kWitnessLanes == 8, "reduction tree is written for 8 lanes");
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

/// Number of witnesses b in [0, len) with detour < d_ac. Unlike the ratio
/// scan there is no detour > 0 exclusion: a measured zero-length detour
/// violates the triangle inequality for counting purposes (matches the
/// scalar violating_triangle_fraction reference). Exact integer math, so
/// chunked calls sum to the monolithic count in any order.
inline std::size_t witness_violation_count(const float* ra, const float* rc,
                                           std::size_t len, float dac) {
  std::size_t acc[kWitnessLanes] = {};
  for (std::size_t b = 0; b < len; b += kWitnessLanes) {
    for (std::size_t l = 0; l < kWitnessLanes; ++l) {
      const float detour = ra[b + l] + rc[b + l];
      acc[l] += detour < dac ? 1u : 0u;
    }
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l < kWitnessLanes; ++l) total += acc[l];
  return total;
}

/// Witnesses with both legs measured: popcount over the AND of two
/// missing-entry bitmask rows (a row's own bit is never set, so b == a and
/// b == c fall out automatically). Chunk-sum-safe like the count above.
inline std::size_t masked_witness_count(const std::uint64_t* ma,
                                        const std::uint64_t* mc,
                                        std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(ma[w] & mc[w]));
  }
  return count;
}

}  // namespace tiv::core
