// Dynamically scheduled traversal of the upper triangle of a square grid —
// the work decomposition shared by the in-memory severity kernel (16-row
// tiles, severity.cpp) and the out-of-core streaming driver (store-sized
// bands, shard_severity.cpp).
#pragma once

#include <cstddef>

#include "util/parallel.hpp"

namespace tiv::core {

/// Runs fn(i, j) over all pairs 0 <= i <= j < count, dynamically scheduled
/// over the parallel pool (grain: one linear chunk per claim) so the
/// triangular workload balances. Pairs are walked row-major within the
/// triangle — consecutive pairs share i — which is what the callers'
/// cache-reuse arguments rely on.
template <typename PairFn>
void for_each_triangle_pair(std::size_t count, PairFn&& fn) {
  const std::size_t pairs = count * (count + 1) / 2;
  parallel_for_dynamic(pairs, 1, [&](std::size_t begin, std::size_t end) {
    // Decode the linear index into (i, j), i <= j, walking rows of the
    // triangle. O(count) per chunk — negligible next to any real pair
    // body.
    std::size_t i = 0;
    std::size_t rem = begin;
    while (rem >= count - i) {
      rem -= count - i;
      ++i;
    }
    std::size_t j = i + rem;
    for (std::size_t k = begin; k < end; ++k) {
      fn(i, j);
      if (++j == count) {
        ++i;
        j = i;
      }
    }
  });
}

}  // namespace tiv::core
