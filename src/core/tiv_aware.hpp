// Glue making the neighbor-selection mechanisms TIV-aware (paper §5.3):
// a Vivaldi embedding supplies prediction ratios, and Meridian consumes
// them through its predictor hooks (dual ring placement + query restart).
#pragma once

#include "embedding/vivaldi.hpp"
#include "meridian/meridian.hpp"

namespace tiv::core {

/// Delay predictor backed by a Vivaldi system's current coordinates. The
/// system must outlive the returned function.
meridian::DelayPredictor vivaldi_predictor(
    const embedding::VivaldiSystem& system);

/// Meridian parameters with the paper's TIV-alert configuration applied:
/// predictor from `system`, ring adjustment and query restart enabled,
/// ts = 0.6, tl = 2 (the paper's §5.3 settings).
meridian::MeridianParams tiv_aware_meridian_params(
    const embedding::VivaldiSystem& system,
    meridian::MeridianParams base = {});

}  // namespace tiv::core
