// Proximity predictability of TIV severity (paper §2.2, Fig. 9).
//
// Hypothesis under test: nearby edges have similar severity. For each
// sampled edge AB we build its "nearest-pair" edge AnBn (An/Bn = nearest
// neighbors of A/B) and a "random-pair" edge, and compare the distributions
// of |sev(AB) - sev(pair)|. The paper finds the nearest-pair distribution
// only marginally tighter — severity cannot be predicted from proximity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/severity.hpp"

namespace tiv::core {

struct ProximityParams {
  std::size_t sample_edges = 10000;  ///< paper samples 10,000 edges
  /// Nearest neighbors closer than this do not qualify. The paper's
  /// datasets deliberately avoid same-LAN nodes ("the nearest neighbor of
  /// a node is typically a few milliseconds away and may belong to a
  /// different ISP"); in the synthetic space the analogue is same-AS
  /// hosts, which share interdomain routing exactly and would make
  /// nearest pairs artificially similar.
  double min_neighbor_delay_ms = 0.0;
  std::uint64_t seed = 55;
};

struct ProximityResult {
  /// |severity difference| per sampled edge, against its nearest-pair edge
  /// and against a random-pair edge.
  std::vector<double> nearest_pair_diffs;
  std::vector<double> random_pair_diffs;
  std::size_t edges_requested = 0;  ///< params.sample_edges as asked for
  std::size_t edges_achieved = 0;   ///< == nearest_pair_diffs.size()
  /// The duplicate-free sampler's rejection budget ran out before
  /// edges_requested valid samples were found (mostly-missing matrix, or
  /// sample_edges close to the measured-edge count).
  bool sampler_exhausted = false;
};

/// Runs the experiment. O(sample_edges * N). The sampled edges are distinct
/// (duplicate-free sampling; a repeated edge would double-count its
/// severity difference in the CDFs); edges whose endpoints have no
/// measurable nearest neighbor are skipped. All severity lookups go through
/// the batched masked-view edge engine; pass `view` (a packed view of
/// `matrix`) to reuse one the caller already built.
ProximityResult proximity_experiment(const DelayMatrix& matrix,
                                     const ProximityParams& params = {},
                                     const delayspace::DelayMatrixView* view =
                                         nullptr);

/// Nearest measurable neighbor of a node (by delay), excluding `exclude`
/// and any neighbor closer than `min_delay_ms`. Returns the node's own id
/// when no neighbor qualifies.
HostId nearest_neighbor(const DelayMatrix& matrix, HostId node,
                        HostId exclude, double min_delay_ms = 0.0);

}  // namespace tiv::core
