#include "core/dynamic_neighbor.hpp"

#include <algorithm>
#include <set>

namespace tiv::core {

using delayspace::HostId;

DynamicNeighborVivaldi::DynamicNeighborVivaldi(
    const delayspace::DelayMatrix& matrix,
    const embedding::VivaldiParams& vivaldi_params,
    const DynamicNeighborParams& params)
    : system_(matrix, vivaldi_params),
      params_(params),
      view_(matrix),
      rng_(params.seed) {
  system_.run(params_.period_seconds);
}

void DynamicNeighborVivaldi::run_iteration() {
  const auto n = static_cast<HostId>(system_.size());
  const std::uint32_t keep = system_.params().neighbors_per_node;

  // Flat sorted candidate vector instead of the former per-host std::set:
  // the set cost a node allocation per insert and pointer-chasing lookups;
  // the candidate union is tiny (<= 2 * keep), so binary search + vector
  // insert stays in one or two cache lines. Iteration order (ascending id)
  // and the rng draw sequence are identical to the set version.
  std::vector<HostId> candidates;
  candidates.reserve(static_cast<std::size_t>(keep) * 2);
  for (HostId i = 0; i < n; ++i) {
    candidates.assign(system_.neighbors(i).begin(),
                      system_.neighbors(i).end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // Measured-pair probes answered by the packed view's missing bitmask
    // (bit j of mask row i is set iff (i, j) is measured and j != i —
    // exactly matrix.has(i, j)).
    const std::uint64_t* mask = view_.mask_row(i);
    std::size_t attempts = 0;
    const std::size_t target = candidates.size() + keep;
    while (candidates.size() < target && attempts < std::size_t{20} * keep) {
      ++attempts;
      const auto j = static_cast<HostId>(rng_.uniform_index(n));
      if (((mask[j >> 6] >> (j & 63)) & 1u) == 0) continue;
      const auto pos =
          std::lower_bound(candidates.begin(), candidates.end(), j);
      if (pos != candidates.end() && *pos == j) continue;  // duplicate
      candidates.insert(pos, j);
    }

    // Rank by prediction ratio, descending: small ratio = shrunk edge =
    // likely severe TIV = dropped first.
    std::vector<HostId> ranked = candidates;
    std::sort(ranked.begin(), ranked.end(), [&](HostId a, HostId b) {
      return system_.prediction_ratio(i, a) > system_.prediction_ratio(i, b);
    });
    if (ranked.size() > keep) ranked.resize(keep);
    system_.set_neighbors(i, std::move(ranked));
  }
  system_.run(params_.period_seconds);
  ++iterations_;
}

std::vector<std::pair<HostId, HostId>>
DynamicNeighborVivaldi::neighbor_edges() const {
  std::set<std::pair<HostId, HostId>> edges;
  for (HostId i = 0; i < system_.size(); ++i) {
    for (HostId j : system_.neighbors(i)) {
      edges.emplace(std::min(i, j), std::max(i, j));
    }
  }
  return {edges.begin(), edges.end()};
}

}  // namespace tiv::core
