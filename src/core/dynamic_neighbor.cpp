#include "core/dynamic_neighbor.hpp"

#include <algorithm>
#include <set>

namespace tiv::core {

using delayspace::HostId;

DynamicNeighborVivaldi::DynamicNeighborVivaldi(
    const delayspace::DelayMatrix& matrix,
    const embedding::VivaldiParams& vivaldi_params,
    const DynamicNeighborParams& params)
    : system_(matrix, vivaldi_params),
      params_(params),
      rng_(params.seed) {
  system_.run(params_.period_seconds);
}

void DynamicNeighborVivaldi::run_iteration() {
  const auto n = static_cast<HostId>(system_.size());
  const auto& matrix = system_.matrix();
  const std::uint32_t keep = system_.params().neighbors_per_node;

  for (HostId i = 0; i < n; ++i) {
    // Union of current neighbors and a fresh random sample of equal size.
    std::set<HostId> candidates(system_.neighbors(i).begin(),
                                system_.neighbors(i).end());
    std::size_t attempts = 0;
    const std::size_t target = candidates.size() + keep;
    while (candidates.size() < target && attempts < std::size_t{20} * keep) {
      ++attempts;
      const auto j = static_cast<HostId>(rng_.uniform_index(n));
      if (j != i && matrix.has(i, j)) candidates.insert(j);
    }

    // Rank by prediction ratio, descending: small ratio = shrunk edge =
    // likely severe TIV = dropped first.
    std::vector<HostId> ranked(candidates.begin(), candidates.end());
    std::sort(ranked.begin(), ranked.end(), [&](HostId a, HostId b) {
      return system_.prediction_ratio(i, a) > system_.prediction_ratio(i, b);
    });
    if (ranked.size() > keep) ranked.resize(keep);
    system_.set_neighbors(i, std::move(ranked));
  }
  system_.run(params_.period_seconds);
  ++iterations_;
}

std::vector<std::pair<HostId, HostId>>
DynamicNeighborVivaldi::neighbor_edges() const {
  std::set<std::pair<HostId, HostId>> edges;
  for (HostId i = 0; i < system_.size(); ++i) {
    for (HostId j : system_.neighbors(i)) {
      edges.emplace(std::min(i, j), std::max(i, j));
    }
  }
  return {edges.begin(), edges.end()};
}

}  // namespace tiv::core
