// Dynamic-neighbor Vivaldi (paper §5.2): the TIV alert mechanism applied to
// Vivaldi itself.
//
// Vivaldi already measures its neighbors, so prediction ratios for neighbor
// edges are free. Every period T each node samples a second batch of random
// neighbor candidates, ranks the union by prediction ratio, and drops the
// half with the *smallest* ratios — the edges most likely to cause severe
// TIVs. Over a few iterations the surviving neighbor sets are nearly
// TIV-free (Fig. 22) and the embedding's neighbor-selection quality improves
// markedly (Fig. 23), without the global knowledge the §4.3 strawman needs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "embedding/vivaldi.hpp"

namespace tiv::core {

struct DynamicNeighborParams {
  std::uint32_t period_seconds = 100;  ///< T: run time between updates
  std::uint64_t seed = 42;
};

class DynamicNeighborVivaldi {
 public:
  /// Wraps a fresh Vivaldi system over the matrix and runs the initial
  /// period (iteration 0 ends converged on the original random neighbors).
  /// Packs a DelayMatrixView once: the per-host candidate resampling of
  /// every later iteration answers its matrix.has probes from the view's
  /// missing bitmasks instead of float sign tests on the raw matrix.
  DynamicNeighborVivaldi(const delayspace::DelayMatrix& matrix,
                         const embedding::VivaldiParams& vivaldi_params,
                         const DynamicNeighborParams& params);

  /// One neighbor-update iteration: resample candidates, rank by prediction
  /// ratio, keep the best half, re-run Vivaldi for the period.
  void run_iteration();

  std::uint32_t iterations_done() const { return iterations_; }
  const embedding::VivaldiSystem& system() const { return system_; }
  embedding::VivaldiSystem& system() { return system_; }

  /// Current neighbor edges of all nodes (unordered, deduplicated) — the
  /// population whose severity CDF Fig. 22 tracks.
  std::vector<std::pair<delayspace::HostId, delayspace::HostId>>
  neighbor_edges() const;

 private:
  embedding::VivaldiSystem system_;
  DynamicNeighborParams params_;
  delayspace::DelayMatrixView view_;  ///< masks for the candidate probes
  Rng rng_;
  std::uint32_t iterations_ = 0;
};

}  // namespace tiv::core
