#include "core/tiv_aware.hpp"

namespace tiv::core {

meridian::DelayPredictor vivaldi_predictor(
    const embedding::VivaldiSystem& system) {
  return [&system](delayspace::HostId a, delayspace::HostId b) {
    return system.predicted(a, b);
  };
}

meridian::MeridianParams tiv_aware_meridian_params(
    const embedding::VivaldiSystem& system, meridian::MeridianParams base) {
  base.predictor = vivaldi_predictor(system);
  base.adjust_rings = true;
  base.restart_on_alert = true;
  base.ts = 0.6;
  base.tl = 2.0;
  return base;
}

}  // namespace tiv::core
