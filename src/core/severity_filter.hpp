// The §4.3 strawman: with *global* knowledge of all severities, remove the
// worst edges from the delay matrix before running a neighbor-selection
// mechanism. The paper shows this barely helps Vivaldi and actively hurts
// Meridian (ring under-population) — motivating the fine-grained alert
// mechanism instead.
#pragma once

#include <cstdint>
#include <vector>

#include "core/severity.hpp"
#include "embedding/vivaldi.hpp"

namespace tiv::core {

/// Set of filtered (removed) edges, built from a severity matrix.
class SeverityFilter {
 public:
  /// Filters the `worst_fraction` of measured edges with the highest
  /// severity.
  SeverityFilter(const DelayMatrix& matrix, const SeverityMatrix& severities,
                 double worst_fraction);
  /// Deleted: the filter keeps a pointer to the severity matrix; a
  /// temporary would dangle.
  SeverityFilter(const DelayMatrix&, SeverityMatrix&&, double) = delete;

  /// True when the edge is filtered (must not be used).
  bool filtered(HostId a, HostId b) const;

  double cutoff_severity() const { return cutoff_; }
  std::size_t filtered_count() const { return filtered_count_; }

 private:
  const SeverityMatrix* severities_;
  double cutoff_ = 0.0;
  std::size_t filtered_count_ = 0;
};

/// Re-draws every node's Vivaldi neighbor set avoiding filtered edges
/// (keeps the configured neighbor count when enough unfiltered peers
/// exist). This is how the strawman plugs into Vivaldi: probing neighbors
/// simply never use high-severity edges.
void apply_filter_to_vivaldi(embedding::VivaldiSystem& system,
                             const SeverityFilter& filter,
                             std::uint64_t seed = 31);

}  // namespace tiv::core
