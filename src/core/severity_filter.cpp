#include "core/severity_filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace tiv::core {

SeverityFilter::SeverityFilter(const DelayMatrix& matrix,
                               const SeverityMatrix& severities,
                               double worst_fraction)
    : severities_(&severities) {
  std::vector<double> values = severities.values_for_measured_edges(matrix);
  if (values.empty() || worst_fraction <= 0.0) {
    cutoff_ = std::numeric_limits<double>::infinity();
    return;
  }
  const auto worst_count = std::min<std::size_t>(
      values.size(),
      static_cast<std::size_t>(
          std::ceil(worst_fraction * static_cast<double>(values.size()))));
  std::nth_element(values.begin(),
                   values.end() - static_cast<std::ptrdiff_t>(worst_count),
                   values.end());
  cutoff_ = values[values.size() - worst_count];
  // An all-zero severity tail would make the cutoff 0 and filter *every*
  // edge; a zero cutoff means there is nothing worth filtering.
  if (cutoff_ <= 0.0) {
    cutoff_ = std::numeric_limits<double>::infinity();
    return;
  }
  for (const double v : severities.values_for_measured_edges(matrix)) {
    filtered_count_ += v >= cutoff_;
  }
}

bool SeverityFilter::filtered(HostId a, HostId b) const {
  return severities_->at(a, b) >= cutoff_;
}

void apply_filter_to_vivaldi(embedding::VivaldiSystem& system,
                             const SeverityFilter& filter,
                             std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<HostId>(system.size());
  const auto& matrix = system.matrix();
  const std::uint32_t want = system.params().neighbors_per_node;
  for (HostId i = 0; i < n; ++i) {
    std::vector<HostId> candidates;
    for (HostId j = 0; j < n; ++j) {
      if (j != i && matrix.has(i, j) && !filter.filtered(i, j)) {
        candidates.push_back(j);
      }
    }
    if (candidates.empty()) continue;  // keep the old set rather than none
    std::vector<HostId> neighbors;
    if (candidates.size() <= want) {
      neighbors = std::move(candidates);
    } else {
      const auto picks = rng.sample_without_replacement(
          static_cast<std::uint32_t>(candidates.size()), want);
      neighbors.reserve(want);
      for (auto p : picks) neighbors.push_back(candidates[p]);
    }
    system.set_neighbors(i, std::move(neighbors));
  }
}

}  // namespace tiv::core
