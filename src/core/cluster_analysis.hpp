// Severity-by-cluster analysis (paper Fig. 3 and the in-text within- vs
// cross-cluster violation counts).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/severity.hpp"
#include "delayspace/clustering.hpp"

namespace tiv::core {

/// Within- vs cross-cluster TIV statistics.
struct ClusterTivStats {
  double mean_violations_within = 0.0;  ///< avg #TIVs per within-cluster edge
  double mean_violations_cross = 0.0;   ///< avg #TIVs per cross-cluster edge
  double mean_severity_within = 0.0;
  double mean_severity_cross = 0.0;
  std::size_t edges_within = 0;   ///< edges_within + edges_cross = achieved
  std::size_t edges_cross = 0;
  /// Sampled edges as requested (= measured edge count when sample_edges is
  /// 0). The duplicate-free sampler's rejection budget may exhaust on a
  /// missing-heavy matrix, leaving edges_within + edges_cross short of this.
  std::size_t edges_requested = 0;
};

/// Computes violation-count and severity averages split by whether the
/// edge's endpoints share a major cluster (noise-cluster endpoints always
/// count as cross). The severities come from `sev`; the violation counts
/// are recomputed over `sample_edges` distinct random measured edges
/// (0 = all edges) through the batched masked-view edge engine
/// (TivAnalyzer::edge_violation_count_batch). Pass `view` (a packed view
/// of `matrix`) to reuse a view the caller already built.
ClusterTivStats cluster_tiv_stats(const DelayMatrix& matrix,
                                  const SeverityMatrix& sev,
                                  const delayspace::Clustering& clustering,
                                  std::size_t sample_edges = 0,
                                  std::uint64_t seed = 77,
                                  const delayspace::DelayMatrixView* view =
                                      nullptr);

/// The Fig. 3 matrix: severities reordered so nodes of the same cluster are
/// adjacent (largest cluster first, noise last), downsampled to a
/// grid_size x grid_size grid by block averaging so it can be printed.
/// grid[r][g] is the mean severity of the block.
std::vector<std::vector<double>> severity_cluster_grid(
    const DelayMatrix& matrix, const SeverityMatrix& sev,
    const delayspace::Clustering& clustering, std::size_t grid_size);

/// Renders the grid as ASCII art (dark = low severity, bright = high),
/// mirroring the paper's grayscale convention (white = most severe).
void print_severity_grid(std::ostream& os,
                         const std::vector<std::vector<double>>& grid);

}  // namespace tiv::core
