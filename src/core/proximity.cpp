#include "core/proximity.hpp"

#include <cmath>
#include <span>

#include "core/edge_sampling.hpp"
#include "util/rng.hpp"

namespace tiv::core {

HostId nearest_neighbor(const DelayMatrix& matrix, HostId node,
                        HostId exclude, double min_delay_ms) {
  const auto row = matrix.row(node);
  const auto floor = static_cast<float>(min_delay_ms);
  HostId best = node;
  float best_d = std::numeric_limits<float>::infinity();
  for (HostId j = 0; j < matrix.size(); ++j) {
    if (j == node || j == exclude) continue;
    const float d = row[j];
    if (d >= floor && d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

ProximityResult proximity_experiment(const DelayMatrix& matrix,
                                     const ProximityParams& params,
                                     const delayspace::DelayMatrixView* view) {
  const HostId n = matrix.size();

  struct Sample {
    HostId a, b;        // the edge
    HostId an, bn;      // nearest-pair edge
    HostId ra, rb;      // random-pair edge
  };
  // Primary edges come from the shared duplicate-free sampler (a repeated
  // AB edge would repeat both of its difference entries); samples whose
  // nearest-pair or random-pair edge does not materialize are dropped and
  // replaced out of the same attempt budget. Random-pair edges draw from a
  // decorrelated stream and may repeat across samples — they are a
  // per-sample comparison baseline, not a population estimate.
  MeasuredPairSampler sampler(matrix, params.sample_edges, params.seed);
  Rng random_pair_rng(params.seed ^ 0xd1b54a32d192ed03ULL);
  std::vector<Sample> samples;
  samples.reserve(params.sample_edges);
  while (samples.size() < params.sample_edges) {
    const auto edge = sampler.next();
    if (!edge) break;
    Sample s;
    s.a = edge->first;
    s.b = edge->second;
    // Nearest-pair edge: nearest neighbors of both endpoints (excluding the
    // other endpoint so AnBn is a distinct edge from AB).
    s.an = nearest_neighbor(matrix, s.a, s.b, params.min_neighbor_delay_ms);
    s.bn = nearest_neighbor(matrix, s.b, s.a, params.min_neighbor_delay_ms);
    if (s.an == s.a || s.bn == s.b || s.an == s.bn ||
        !matrix.has(s.an, s.bn)) {
      continue;
    }
    // Random-pair edge.
    bool found_random = false;
    for (int attempt = 0; attempt < 30 && !found_random; ++attempt) {
      s.ra = static_cast<HostId>(random_pair_rng.uniform_index(n));
      s.rb = static_cast<HostId>(random_pair_rng.uniform_index(n));
      found_random = s.ra != s.rb && matrix.has(s.ra, s.rb);
    }
    if (!found_random) continue;
    samples.push_back(s);
  }

  // One batched severity call over all three edge roles: the packed view is
  // built (or reused) once instead of 3 * samples scalar row scans.
  std::vector<std::pair<HostId, HostId>> batch;
  batch.reserve(samples.size() * 3);
  for (const Sample& s : samples) {
    batch.emplace_back(s.a, s.b);
    batch.emplace_back(s.an, s.bn);
    batch.emplace_back(s.ra, s.rb);
  }
  const TivAnalyzer analyzer(matrix);
  const std::vector<double> sev = analyzer.edge_severity_batch(
      std::span<const std::pair<HostId, HostId>>(batch), view);

  ProximityResult out;
  out.nearest_pair_diffs.resize(samples.size());
  out.random_pair_diffs.resize(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out.nearest_pair_diffs[i] = std::abs(sev[3 * i] - sev[3 * i + 1]);
    out.random_pair_diffs[i] = std::abs(sev[3 * i] - sev[3 * i + 2]);
  }
  out.edges_requested = params.sample_edges;
  out.edges_achieved = samples.size();
  out.sampler_exhausted =
      sampler.exhausted() && samples.size() < params.sample_edges;
  return out;
}

}  // namespace tiv::core
