#include "core/proximity.hpp"

#include <cmath>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tiv::core {

HostId nearest_neighbor(const DelayMatrix& matrix, HostId node,
                        HostId exclude, double min_delay_ms) {
  const auto row = matrix.row(node);
  const auto floor = static_cast<float>(min_delay_ms);
  HostId best = node;
  float best_d = std::numeric_limits<float>::infinity();
  for (HostId j = 0; j < matrix.size(); ++j) {
    if (j == node || j == exclude) continue;
    const float d = row[j];
    if (d >= floor && d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

ProximityResult proximity_experiment(const DelayMatrix& matrix,
                                     const ProximityParams& params) {
  const HostId n = matrix.size();
  Rng rng(params.seed);

  struct Sample {
    HostId a, b;        // the edge
    HostId an, bn;      // nearest-pair edge
    HostId ra, rb;      // random-pair edge
    bool valid = false;
  };
  std::vector<Sample> samples;
  samples.reserve(params.sample_edges);
  std::size_t attempts = 0;
  while (samples.size() < params.sample_edges &&
         attempts < params.sample_edges * 30) {
    ++attempts;
    Sample s;
    s.a = static_cast<HostId>(rng.uniform_index(n));
    s.b = static_cast<HostId>(rng.uniform_index(n));
    if (s.a == s.b || !matrix.has(s.a, s.b)) continue;
    // Nearest-pair edge: nearest neighbors of both endpoints (excluding the
    // other endpoint so AnBn is a distinct edge from AB).
    s.an = nearest_neighbor(matrix, s.a, s.b, params.min_neighbor_delay_ms);
    s.bn = nearest_neighbor(matrix, s.b, s.a, params.min_neighbor_delay_ms);
    if (s.an == s.a || s.bn == s.b || s.an == s.bn ||
        !matrix.has(s.an, s.bn)) {
      continue;
    }
    // Random-pair edge.
    s.ra = static_cast<HostId>(rng.uniform_index(n));
    s.rb = static_cast<HostId>(rng.uniform_index(n));
    if (s.ra == s.rb || !matrix.has(s.ra, s.rb)) continue;
    s.valid = true;
    samples.push_back(s);
  }

  const TivAnalyzer analyzer(matrix);
  std::vector<double> near_diff(samples.size());
  std::vector<double> rand_diff(samples.size());
  parallel_for(samples.size(), [&](std::size_t i) {
    const Sample& s = samples[i];
    const double sev = analyzer.edge_severity(s.a, s.b);
    near_diff[i] = std::abs(sev - analyzer.edge_severity(s.an, s.bn));
    rand_diff[i] = std::abs(sev - analyzer.edge_severity(s.ra, s.rb));
  });

  ProximityResult out;
  out.nearest_pair_diffs = std::move(near_diff);
  out.random_pair_diffs = std::move(rand_diff);
  return out;
}

}  // namespace tiv::core
