// The TIV alert mechanism (paper §5) — the core contribution.
//
// When a delay space containing TIVs is embedded into a metric space, the
// optimizer sacrifices the edges that disagree with many short alternative
// paths: edges causing severe TIVs end up *shrunk* (predicted much smaller
// than measured). The prediction ratio
//
//   ratio(A, B) = predicted_delay(A, B) / measured_delay(A, B)
//
// is therefore a cheap, measurement-free TIV-severity alarm: ratio below a
// threshold ts flags a likely severe-TIV edge. The alert does not *predict*
// severity — Fig. 19 shows the per-bin spread is huge — it identifies edges
// that are highly probable to be severe, with an accuracy/recall trade-off
// controlled by the threshold (Figs. 20-21).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/severity.hpp"
#include "embedding/vivaldi.hpp"

namespace tiv::core {

/// The alert itself: flags edges whose prediction ratio is below the
/// threshold.
class TivAlert {
 public:
  /// ratio_fn must return predicted/measured (NaN allowed for unmeasured
  /// pairs — never alerted).
  TivAlert(std::function<double(HostId, HostId)> ratio_fn,
           double threshold = 0.6);

  /// Alert from a Vivaldi system's current coordinates.
  explicit TivAlert(const embedding::VivaldiSystem& system,
                    double threshold = 0.6);

  double threshold() const { return threshold_; }
  double ratio(HostId a, HostId b) const { return ratio_fn_(a, b); }

  /// True when the edge is flagged as likely severe-TIV.
  bool alerted(HostId a, HostId b) const;

 private:
  std::function<double(HostId, HostId)> ratio_fn_;
  double threshold_;
};

/// One evaluated (ratio, severity) edge sample.
struct EdgeRatioSample {
  HostId a = 0;
  HostId b = 0;
  double ratio = 0.0;
  double severity = 0.0;
};

/// Collects (prediction ratio, severity) for up to `count` *distinct*
/// random measured edges of the system's matrix (severity computed exactly
/// through the batched edge engine, O(count * N)). Sampling goes through
/// the shared MeasuredPairSampler: no duplicate edges, and on missing-heavy
/// matrices the result is shorter than `count` once the rejection budget
/// exhausts rather than looping forever.
std::vector<EdgeRatioSample> collect_ratio_severity_samples(
    const embedding::VivaldiSystem& system, std::size_t count,
    std::uint64_t seed = 321);

/// Accuracy/recall of thresholded alerts against the ground-truth "worst
/// fraction" severity set.
struct AlertMetrics {
  double threshold = 0.0;
  double worst_fraction = 0.0;
  std::size_t alerts = 0;        ///< edges with ratio < threshold
  double alert_fraction = 0.0;   ///< alerts / samples
  double accuracy = 0.0;  ///< alerted edges that are in the worst set
  double recall = 0.0;    ///< worst-set edges that are alerted
  double f1 = 0.0;        ///< harmonic mean of accuracy and recall
};

/// Evaluates one (threshold, worst_fraction) point over the samples. The
/// worst set is the ceil(worst_fraction * n) samples of highest severity.
/// Delegates to scenario::score_ratio_alert — the one binary-classification
/// implementation the scenario observatory also grades traces with — so
/// figure numbers and scenario quality scores cannot drift.
AlertMetrics evaluate_alert(const std::vector<EdgeRatioSample>& samples,
                            double worst_fraction, double threshold);

}  // namespace tiv::core
