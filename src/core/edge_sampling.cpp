#include "core/edge_sampling.hpp"

namespace tiv::core {

MeasuredPairSampler::MeasuredPairSampler(const DelayMatrix& matrix,
                                         std::size_t target,
                                         std::uint64_t seed,
                                         PairSampleOptions options)
    : matrix_(matrix),
      target_(target),
      // A matrix with fewer than two hosts has no pairs to draw; a zero
      // budget makes next() exhaust immediately instead of dividing by
      // zero in uniform_index.
      budget_(matrix.size() < 2 ? 0 : target * options.attempts_per_pair),
      options_(options),
      rng_(seed) {
  seen_.reserve(target * 2);
}

std::optional<std::pair<HostId, HostId>> MeasuredPairSampler::next() {
  const HostId n = matrix_.size();
  while (attempts_ < budget_) {
    ++attempts_;
    auto i = static_cast<HostId>(rng_.uniform_index(n));
    auto j = static_cast<HostId>(rng_.uniform_index(n));
    if (i == j || !matrix_.has(i, j)) continue;
    if (options_.require_positive && matrix_.at(i, j) <= 0.0f) continue;
    if (i > j) std::swap(i, j);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
    if (!seen_.insert(key).second) continue;  // duplicate edge
    return std::make_pair(i, j);
  }
  exhausted_ = true;
  return std::nullopt;
}

PairSample sample_measured_pairs(const DelayMatrix& matrix, std::size_t count,
                                 std::uint64_t seed,
                                 PairSampleOptions options) {
  PairSample out;
  out.requested = count;
  out.pairs.reserve(count);
  MeasuredPairSampler sampler(matrix, count, seed, options);
  while (out.pairs.size() < count) {
    const auto pair = sampler.next();
    if (!pair) {
      out.exhausted = true;
      break;
    }
    out.pairs.push_back(*pair);
  }
  return out;
}

}  // namespace tiv::core
