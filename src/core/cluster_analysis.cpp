#include "core/cluster_analysis.hpp"

#include <algorithm>
#include <ostream>
#include <span>
#include <utility>

#include "core/edge_sampling.hpp"

namespace tiv::core {

using delayspace::Clustering;
using delayspace::HostId;

ClusterTivStats cluster_tiv_stats(const DelayMatrix& matrix,
                                  const SeverityMatrix& sev,
                                  const Clustering& clustering,
                                  std::size_t sample_edges,
                                  std::uint64_t seed,
                                  const delayspace::DelayMatrixView* view) {
  const HostId n = matrix.size();
  std::vector<std::pair<HostId, HostId>> edges;
  std::size_t requested = 0;
  if (sample_edges == 0) {
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = i + 1; j < n; ++j) {
        if (matrix.has(i, j)) edges.emplace_back(i, j);
      }
    }
    requested = edges.size();
  } else {
    // Distinct edges: the old sampler drew with replacement, so a
    // duplicate edge counted twice in the within/cross averages.
    PairSample sample = sample_measured_pairs(matrix, sample_edges, seed);
    edges = std::move(sample.pairs);
    requested = sample.requested;
  }

  const TivAnalyzer analyzer(matrix);
  const std::vector<std::size_t> counts = analyzer.edge_violation_count_batch(
      std::span<const std::pair<HostId, HostId>>(edges), view);

  ClusterTivStats out;
  out.edges_requested = requested;
  double viol_within = 0.0;
  double viol_cross = 0.0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [i, j] = edges[e];
    const double s = sev.at(i, j);
    if (clustering.same_cluster(i, j)) {
      ++out.edges_within;
      viol_within += static_cast<double>(counts[e]);
      out.mean_severity_within += s;
    } else {
      ++out.edges_cross;
      viol_cross += static_cast<double>(counts[e]);
      out.mean_severity_cross += s;
    }
  }
  if (out.edges_within > 0) {
    out.mean_violations_within =
        viol_within / static_cast<double>(out.edges_within);
    out.mean_severity_within /= static_cast<double>(out.edges_within);
  }
  if (out.edges_cross > 0) {
    out.mean_violations_cross =
        viol_cross / static_cast<double>(out.edges_cross);
    out.mean_severity_cross /= static_cast<double>(out.edges_cross);
  }
  return out;
}

std::vector<std::vector<double>> severity_cluster_grid(
    const DelayMatrix& matrix, const SeverityMatrix& sev,
    const Clustering& clustering, std::size_t grid_size) {
  const std::vector<HostId> order = clustering.grouped_order();
  const std::size_t n = order.size();
  grid_size = std::min(grid_size, n);
  std::vector<std::vector<double>> grid(grid_size,
                                        std::vector<double>(grid_size, 0.0));
  std::vector<std::vector<std::size_t>> counts(
      grid_size, std::vector<std::size_t>(grid_size, 0));
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t gr = r * grid_size / n;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      const std::size_t gc = c * grid_size / n;
      // Missing entries are drawn black (severity 0), as in the paper.
      const double s =
          matrix.has(order[r], order[c]) ? sev.at(order[r], order[c]) : 0.0;
      grid[gr][gc] += s;
      ++counts[gr][gc];
    }
  }
  for (std::size_t r = 0; r < grid_size; ++r) {
    for (std::size_t c = 0; c < grid_size; ++c) {
      if (counts[r][c] > 0) grid[r][c] /= static_cast<double>(counts[r][c]);
    }
  }
  return grid;
}

void print_severity_grid(std::ostream& os,
                         const std::vector<std::vector<double>>& grid) {
  // ASCII luminance ramp, dark -> bright.
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;
  double max_v = 0.0;
  for (const auto& row : grid) {
    for (double v : row) max_v = std::max(max_v, v);
  }
  for (const auto& row : grid) {
    for (double v : row) {
      const auto level =
          max_v > 0.0 ? static_cast<std::size_t>(v / max_v * kLevels) : 0;
      os << kRamp[std::min(level, kLevels)];
    }
    os << '\n';
  }
}

}  // namespace tiv::core
