// Shared duplicate-free sampling of measured pairs.
//
// Before this helper existed, four consumers hand-rolled the same
// rejection-sampling loop over random (i, j) draws — and three of them
// (cluster_tiv_stats, evaluate_detour_routing, proximity_experiment) drew
// *with* duplicates, unlike sampled_severities, which deduplicated via a
// `seen` set. A duplicate edge double-counts its statistics in whatever
// average the caller builds, skewing the figure the sample feeds. This
// header is the single sampling path: distinct measured unordered pairs,
// an explicit attempt budget, and an explicit achieved-vs-requested
// accounting so exhaustion on missing-heavy matrices is visible instead of
// a silently short vector.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "util/rng.hpp"

namespace tiv::core {

using delayspace::DelayMatrix;
using delayspace::HostId;

struct PairSampleOptions {
  /// Also reject measured pairs with zero delay (detour routing divides by
  /// and compares against the direct delay).
  bool require_positive = false;
  /// Rejection budget: at most attempts_per_pair * target draws in total.
  /// Misses, unmeasured pairs, and duplicates all consume attempts, so on a
  /// mostly-missing matrix — or when target approaches the number of
  /// measured edges — the sampler exhausts rather than looping forever.
  std::size_t attempts_per_pair = 30;
};

/// Incremental sampler of distinct measured unordered pairs (first < second),
/// uniform over the measured edges up to rejection. Pull-based so callers
/// with per-sample validity filters of their own (proximity_experiment) can
/// keep drawing replacements for rejected samples out of the same budget.
///
/// The draw sequence, dedup key, and budget are exactly the ones
/// sampled_severities has always used, so routing it through this class
/// changes no sampled edge for a given seed.
class MeasuredPairSampler {
 public:
  MeasuredPairSampler(const DelayMatrix& matrix, std::size_t target,
                      std::uint64_t seed, PairSampleOptions options = {});

  /// Next distinct measured pair, or nullopt once the attempt budget is
  /// exhausted (never returns a pair twice).
  std::optional<std::pair<HostId, HostId>> next();

  std::size_t target() const { return target_; }
  /// Draws consumed so far (accepted + rejected).
  std::size_t attempts() const { return attempts_; }
  /// True once next() has returned nullopt: the budget ran out.
  bool exhausted() const { return exhausted_; }

 private:
  const DelayMatrix& matrix_;
  std::size_t target_;
  std::size_t budget_;
  PairSampleOptions options_;
  Rng rng_;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t attempts_ = 0;
  bool exhausted_ = false;
};

/// A batch of sampled pairs plus the achieved-vs-requested accounting the
/// result structs surface (ISSUE: the samplers used to silently return
/// fewer pairs than asked for when the rejection budget exhausted).
struct PairSample {
  std::vector<std::pair<HostId, HostId>> pairs;  ///< distinct, first < second
  std::size_t requested = 0;
  /// True when the attempt budget exhausted before `requested` pairs were
  /// found; pairs.size() is then the achieved count.
  bool exhausted = false;

  std::size_t achieved() const { return pairs.size(); }
};

/// Draws up to `count` distinct measured unordered pairs in one call — the
/// batch form every fixed-size consumer (sampled_severities,
/// cluster_tiv_stats, evaluate_detour_routing) routes through.
PairSample sample_measured_pairs(const DelayMatrix& matrix, std::size_t count,
                                 std::uint64_t seed,
                                 PairSampleOptions options = {});

}  // namespace tiv::core
