#include "core/shard_severity.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/triangle_schedule.hpp"
#include "core/witness_kernels.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace tiv::core {
namespace {

using delayspace::DelayMatrixView;
using shard::TileCache;
using shard::TileRef;
using shard::TileStore;

// ---------------------------------------------------------------------------
// Band-pair streaming.
//
// The matrix is stored as square tiles of T = store.tile_dim() rows. The
// driver walks unordered band pairs (I, J), I <= J, of the upper triangle —
// the same decomposition as the in-memory kernel's 16-row tiles, just at
// tile-store granularity — dynamically scheduled over the pool. For one
// band pair it pins the d_ac tile (I, J), then streams witness bands K in
// ascending column order, pinning tiles (I, K) and (J, K) and feeding each
// pair's kWitnessLanes accumulators. Ascending K plus lane-aligned tile
// widths is what makes the partial sums land in the same lanes, in the
// same order, as the monolithic in-memory row scan — hence bit-identical
// severities (see witness_kernels.hpp).
//
// Cache locality: band pairs are walked row-major within the band
// triangle, so consecutive pairs share band I and re-hit its (I, K) tiles;
// while band K computes, tiles for K+1 load on the cache's background I/O
// thread.
// ---------------------------------------------------------------------------

/// Runs fn(I, J) over all band pairs I <= J, dynamically scheduled
/// (core/triangle_schedule.hpp, shared with the in-memory tile loop).
///
/// Unlike the in-memory kernels — noexcept in practice — the band body does
/// tile I/O, which can throw (truncated spill file, disk error). The pool
/// contract terminates the process on a worker-thread exception, so the
/// body is wrapped: the first failure is captured, remaining pairs are
/// skipped, and the exception rethrows on the calling thread after the
/// parallel loop drains.
template <typename PairFn>
void for_each_band_pair(std::uint32_t bands, PairFn&& fn) {
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  for_each_triangle_pair(bands, [&](std::size_t bi, std::size_t bj) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      fn(static_cast<std::uint32_t>(bi), static_cast<std::uint32_t>(bj));
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (error) std::rethrow_exception(error);
}

/// Issues background loads for witness band k of row bands bi/bj.
void prefetch_band(TileCache& cache, std::uint32_t bi, std::uint32_t bj,
                   std::uint32_t k, std::uint32_t bands) {
  if (k >= bands) return;
  cache.prefetch(bi, k);
  if (bj != bi) cache.prefetch(bj, k);
}

/// The per-band-pair streaming skeleton shared by both drivers: walks
/// witness bands k in ascending order, prefetching band k+1 while k is
/// pinned, and invokes fn(al, cl, d_ac, ta, tc) for every measured (a, c)
/// pair of band pair (bi, bj) — al/cl tile-local, c_lo clamped past the
/// diagonal on diagonal band pairs. Ascending k is load-bearing: it keeps
/// the severity lane sums bit-identical to the monolithic scan.
template <typename WitnessFn>
void walk_band_pair(const TileStore& store, TileCache& cache,
                    std::uint32_t bi, std::uint32_t bj,
                    const shard::Tile& dac_tile, WitnessFn&& fn) {
  const std::uint32_t bands = store.tiles_per_side();
  const std::uint32_t rows_i = store.band_rows(bi);
  const std::uint32_t rows_j = store.band_rows(bj);
  for (std::uint32_t k = 0; k < bands; ++k) {
    prefetch_band(cache, bi, bj, k + 1, bands);
    const TileRef ta = cache.acquire(bi, k);
    const TileRef tc = bj == bi ? ta : cache.acquire(bj, k);
    for (std::uint32_t al = 0; al < rows_i; ++al) {
      const float* dac_row = dac_tile.row(al);
      const std::uint32_t c_lo = bi == bj ? al + 1 : 0;
      for (std::uint32_t cl = c_lo; cl < rows_j; ++cl) {
        const float d_ac = dac_row[cl];
        if (d_ac >= DelayMatrixView::kMaskedDelay) continue;  // unmeasured
        fn(al, cl, d_ac, *ta, *tc);
      }
    }
  }
}

}  // namespace

std::size_t packed_view_bytes(HostId n) {
  return DelayMatrixView::bytes_for(n);
}

SeverityMatrix all_severities_streamed(const TileStore& store,
                                       TileCache& cache) {
  const HostId n = store.size();
  SeverityMatrix sev(n);
  if (n < 2) return sev;
  const std::uint32_t T = store.tile_dim();
  const std::uint32_t bands = store.tiles_per_side();
  const std::size_t scan_len = T;  // full tile width; padding sums to +0.0
  const auto nd = static_cast<double>(n);

  for_each_band_pair(bands, [&](std::uint32_t bi, std::uint32_t bj) {
    const TileRef dac_tile = cache.acquire(bi, bj);
    const std::uint32_t rows_i = store.band_rows(bi);
    const std::uint32_t rows_j = store.band_rows(bj);
    // One kWitnessLanes accumulator block per (a, c) pair of the band pair,
    // carried across witness bands. ~T*T*64 B (256 KiB at T = 64); owned by
    // the worker, not the cache budget (it is O(T^2), not O(N)).
    std::vector<double> acc(static_cast<std::size_t>(rows_i) * rows_j *
                                kWitnessLanes,
                            0.0);
    walk_band_pair(store, cache, bi, bj, *dac_tile,
                   [&](std::uint32_t al, std::uint32_t cl, float d_ac,
                       const shard::Tile& ta, const shard::Tile& tc) {
                     witness_ratio_accumulate(
                         ta.row(al), tc.row(cl), scan_len, d_ac,
                         acc.data() +
                             (static_cast<std::size_t>(al) * rows_j + cl) *
                                 kWitnessLanes);
                   });
    for (std::uint32_t al = 0; al < rows_i; ++al) {
      const float* dac_row = dac_tile->row(al);
      const auto a = static_cast<HostId>(bi * T + al);
      const std::uint32_t c_lo = bi == bj ? al + 1 : 0;
      for (std::uint32_t cl = c_lo; cl < rows_j; ++cl) {
        if (dac_row[cl] >= DelayMatrixView::kMaskedDelay) continue;
        const double ratio_sum = witness_ratio_reduce(
            acc.data() +
            (static_cast<std::size_t>(al) * rows_j + cl) * kWitnessLanes);
        sev.set(a, static_cast<HostId>(bj * T + cl),
                static_cast<float>(ratio_sum / nd));
      }
    }
  });
  return sev;
}

namespace {

// ---------------------------------------------------------------------------
// Sink-fed severity: the band-pair driver writing tile-shaped results
// instead of filling an N^2 buffer. One shared body serves the full build
// (every pair) and the dirty-epoch repair (pairs incident to dirty hosts).
// ---------------------------------------------------------------------------

/// One (a, c) pair of a band pair selected for recomputation, tile-local.
struct PairTask {
  std::uint32_t al;
  std::uint32_t cl;
  float dac;
};

struct BandPairResult {
  std::size_t recomputed = 0;  ///< pairs re-evaluated (incl. zero-resets)
  bool committed = false;      ///< sink tile rewritten
};

/// Recomputes the selected pairs of band pair (bi, bj) and commits the sink
/// tile. dirty_i/dirty_j flag dirty tile-local rows of the two bands
/// (ignored when full_build, which selects every pair and skips the
/// read-modify cycle — create() zeroed the tile). The witness walk is the
/// same ascending-k, full-tile-width scan as all_severities_streamed, so
/// every stored float is bit-identical to the in-memory kernel's.
BandPairResult process_band_pair_to_sink(
    const TileStore& store, TileCache& cache, sink::SeverityTileStore& sink,
    std::uint32_t bi, std::uint32_t bj, const std::uint8_t* dirty_i,
    const std::uint8_t* dirty_j, bool full_build) {
  const std::uint32_t T = store.tile_dim();
  const std::uint32_t bands = store.tiles_per_side();
  const std::uint32_t rows_i = store.band_rows(bi);
  const std::uint32_t rows_j = store.band_rows(bj);
  const auto nd = static_cast<double>(store.size());
  const TileRef dac_tile = cache.acquire(bi, bj);

  // Worker-local tile image (O(T^2), like the accumulator block — outside
  // the cache budgets by design).
  std::vector<float> buf(sink.payload_floats(), 0.0f);
  if (!full_build) sink.read_tile(bi, bj, buf.data());

  BandPairResult res;
  std::vector<PairTask> tasks;
  bool zeroed = false;  ///< a stale value was reset to 0 in buf
  for (std::uint32_t al = 0; al < rows_i; ++al) {
    const float* dac_row = dac_tile->row(al);
    const std::uint32_t c_lo = bi == bj ? al + 1 : 0;
    for (std::uint32_t cl = c_lo; cl < rows_j; ++cl) {
      if (!full_build && !(dirty_i[al] | dirty_j[cl])) continue;
      ++res.recomputed;
      const float d_ac = dac_row[cl];
      if (d_ac >= DelayMatrixView::kMaskedDelay) {
        // Unmeasured — possibly a measured->missing transition this epoch:
        // a rebuild leaves 0 there, so the stale severity is reset.
        const std::size_t o = static_cast<std::size_t>(al) * T + cl;
        const std::size_t om = static_cast<std::size_t>(cl) * T + al;
        zeroed |= buf[o] != 0.0f || (bi == bj && buf[om] != 0.0f);
        buf[o] = 0.0f;
        if (bi == bj) buf[om] = 0.0f;
        continue;
      }
      tasks.push_back({al, cl, d_ac});
    }
  }
  if (!full_build && tasks.empty() && !zeroed) return res;  // tile untouched

  if (!tasks.empty()) {
    std::vector<double> acc(tasks.size() * kWitnessLanes, 0.0);
    for (std::uint32_t k = 0; k < bands; ++k) {
      prefetch_band(cache, bi, bj, k + 1, bands);
      const TileRef ta = cache.acquire(bi, k);
      const TileRef tc = bj == bi ? ta : cache.acquire(bj, k);
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        witness_ratio_accumulate(ta->row(tasks[t].al), tc->row(tasks[t].cl),
                                 T, tasks[t].dac,
                                 acc.data() + t * kWitnessLanes);
      }
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const double ratio_sum =
          witness_ratio_reduce(acc.data() + t * kWitnessLanes);
      const float v = static_cast<float>(ratio_sum / nd);
      buf[static_cast<std::size_t>(tasks[t].al) * T + tasks[t].cl] = v;
      if (bi == bj) {
        buf[static_cast<std::size_t>(tasks[t].cl) * T + tasks[t].al] = v;
      }
    }
  }
  sink.write_tile(bi, bj, buf.data());
  res.committed = true;
  return res;
}

void check_sink_matches(const TileStore& store,
                        const sink::SeverityTileStore& sink) {
  if (sink.size() != store.size() || sink.tile_dim() != store.tile_dim()) {
    throw std::invalid_argument(
        "severity sink geometry (n, tile_dim) must match the input store");
  }
  if (!sink.writable()) {
    throw std::invalid_argument("severity sink must be opened writable");
  }
}

}  // namespace

void all_severities_to_sink(const TileStore& store, TileCache& cache,
                            sink::SeverityTileStore& sink) {
  check_sink_matches(store, sink);
  obs::Span span("band-pair-stream");
  for_each_band_pair(store.tiles_per_side(),
                     [&](std::uint32_t bi, std::uint32_t bj) {
                       process_band_pair_to_sink(store, cache, sink, bi, bj,
                                                 nullptr, nullptr, true);
                     });
}

void rebuild_sink_tile(const TileStore& store, TileCache& cache,
                       sink::SeverityTileStore& sink, std::uint32_t bi,
                       std::uint32_t bj) {
  check_sink_matches(store, sink);
  process_band_pair_to_sink(store, cache, sink, bi, bj, nullptr, nullptr,
                            true);
}

SinkRepairStats repair_severities_to_sink(
    const TileStore& store, TileCache& cache, sink::SeverityTileStore& sink,
    std::span<const HostId> dirty_hosts) {
  check_sink_matches(store, sink);
  SinkRepairStats stats;
  if (dirty_hosts.empty() || store.size() < 2) return stats;

  const std::uint32_t T = store.tile_dim();
  const std::uint32_t bands = store.tiles_per_side();
  // Tile-local dirty-row bitmaps; a band with no dirty host keeps an empty
  // vector and borrows the shared all-clean bitmap below.
  std::vector<std::vector<std::uint8_t>> dirty(bands);
  for (const HostId h : dirty_hosts) {
    auto& band = dirty[h / T];
    if (band.empty()) band.assign(T, 0);
    band[h % T] = 1;
  }
  const std::vector<std::uint8_t> clean(T, 0);

  obs::Span span("band-pair-stream");
  std::atomic<std::size_t> recomputed{0};
  std::atomic<std::size_t> committed{0};
  for_each_band_pair(bands, [&](std::uint32_t bi, std::uint32_t bj) {
    if (dirty[bi].empty() && dirty[bj].empty()) return;  // no dirty edge
    const BandPairResult r = process_band_pair_to_sink(
        store, cache, sink, bi, bj,
        (dirty[bi].empty() ? clean : dirty[bi]).data(),
        (dirty[bj].empty() ? clean : dirty[bj]).data(), false);
    recomputed.fetch_add(r.recomputed, std::memory_order_relaxed);
    committed.fetch_add(r.committed ? 1 : 0, std::memory_order_relaxed);
  });
  stats.edges_recomputed = recomputed.load();
  stats.tiles_committed = committed.load();
  return stats;
}

double violating_triangle_fraction_streamed(const TileStore& store,
                                            TileCache& cache) {
  const HostId n = store.size();
  if (n < 3) return 0.0;
  const std::uint32_t T = store.tile_dim();
  const std::uint32_t bands = store.tiles_per_side();
  const std::size_t scan_len = T;
  const std::size_t mask_len = store.mask_words_per_row();
  // Same triangle-role accounting as the in-memory exact mode: every
  // measurable triangle is scanned in 3 pair-roles but violates in exactly
  // one, so fraction = 3 * violations / witness_total.
  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> witness_total{0};

  for_each_band_pair(bands, [&](std::uint32_t bi, std::uint32_t bj) {
    const TileRef dac_tile = cache.acquire(bi, bj);
    std::size_t local_v = 0;
    std::size_t local_t = 0;
    walk_band_pair(store, cache, bi, bj, *dac_tile,
                   [&](std::uint32_t al, std::uint32_t cl, float d_ac,
                       const shard::Tile& ta, const shard::Tile& tc) {
                     local_t += masked_witness_count(
                         ta.mask_row(al), tc.mask_row(cl), mask_len);
                     local_v += witness_violation_count(
                         ta.row(al), tc.row(cl), scan_len, d_ac);
                   });
    violations.fetch_add(local_v, std::memory_order_relaxed);
    witness_total.fetch_add(local_t, std::memory_order_relaxed);
  });
  const auto t = static_cast<double>(witness_total.load());
  return t == 0.0 ? 0.0 : 3.0 * static_cast<double>(violations.load()) / t;
}

namespace {

std::string derive_spill_path(const OutOfCoreConfig& config) {
  if (!config.spill_path.empty()) return config.spill_path;
  static std::atomic<unsigned> counter{0};
  const auto name = "tiv_spill_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)) + ".tiles";
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Spills m, runs fn(store, cache), fills the report, cleans up the spill.
template <typename Fn>
auto spill_and_run(const DelayMatrix& m, const OutOfCoreConfig& config,
                   OutOfCoreReport* report, Fn&& fn) {
  const std::string path = derive_spill_path(config);
  // Scope guard, not a success-path remove: a failed analysis must not
  // leave a matrix-sized spill behind (it is the dominant disk cost at the
  // host counts this path exists for). Destroyed last, after the TileStore
  // below closes its fd (unlink-while-open would also be fine on POSIX).
  struct SpillGuard {
    const std::string& path;
    bool keep;
    ~SpillGuard() {
      if (keep) return;
      std::error_code ec;  // best-effort cleanup on every exit path
      std::filesystem::remove(path, ec);
    }
  } guard{path, config.keep_spill};
  TileStore::write_matrix(path, m, config.tile_dim);
  const TileStore store = TileStore::open(path);
  TileCache cache(store, config.memory_budget_bytes);
  auto result = fn(store, cache);
  if (report != nullptr) {
    report->out_of_core = true;
    report->cache = cache.stats();
  }
  return result;
}

}  // namespace

SeverityMatrix all_severities_budgeted(const DelayMatrix& m,
                                       const OutOfCoreConfig& config,
                                       OutOfCoreReport* report) {
  if (report != nullptr) *report = {};
  if (config.memory_budget_bytes == 0 ||
      packed_view_bytes(m.size()) <= config.memory_budget_bytes) {
    return TivAnalyzer(m).all_severities();
  }
  return spill_and_run(m, config, report,
                       [](const TileStore& store, TileCache& cache) {
                         return all_severities_streamed(store, cache);
                       });
}

double violating_triangle_fraction_budgeted(const DelayMatrix& m,
                                            const OutOfCoreConfig& config,
                                            OutOfCoreReport* report) {
  if (report != nullptr) *report = {};
  if (config.memory_budget_bytes == 0 ||
      packed_view_bytes(m.size()) <= config.memory_budget_bytes) {
    return TivAnalyzer(m).violating_triangle_fraction();
  }
  return spill_and_run(m, config, report,
                       [](const TileStore& store, TileCache& cache) {
                         return violating_triangle_fraction_streamed(store,
                                                                     cache);
                       });
}

}  // namespace tiv::core
