// The paper's TIV severity metric (§2.1) and its bulk computation.
//
// Edge AC causes a triangle inequality violation with witness B when
// d(A,B) + d(B,C) < d(A,C). The severity of edge AC is
//
//   sev(A,C) = (1/|S|) * sum over violating witnesses B of
//              d(A,C) / (d(A,B) + d(B,C))
//
// i.e. the sum of triangulation ratios of all violations the edge causes,
// normalized by the node-set size. It is 0 for a violation-free edge and
// grows both with the number of violations and with how badly each one
// violates — the two properties §2.1 shows neither the violation count nor
// the mean ratio captures alone.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "delayspace/delay_matrix.hpp"

namespace tiv::core {

using delayspace::DelayMatrix;
using delayspace::DelayMatrixView;
using delayspace::HostId;

/// Per-edge violation statistics.
struct EdgeTivStats {
  double severity = 0.0;
  std::size_t violation_count = 0;   ///< witnesses B with a violation
  std::size_t witness_count = 0;     ///< witnesses with both legs measured
  double mean_ratio = 0.0;           ///< mean triangulation ratio (0 if none)
  double max_ratio = 0.0;

  /// Fraction of measurable triangles through this edge that violate.
  double violating_fraction() const {
    return witness_count == 0
               ? 0.0
               : static_cast<double>(violation_count) /
                     static_cast<double>(witness_count);
  }
};

/// Dense symmetric matrix of severities (float; same layout rationale as
/// DelayMatrix).
class SeverityMatrix {
 public:
  SeverityMatrix() = default;
  explicit SeverityMatrix(HostId n)
      : n_(n), data_(static_cast<std::size_t>(n) * n, 0.0f) {}

  HostId size() const { return n_; }
  float at(HostId i, HostId j) const {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }
  void set(HostId i, HostId j, float v) {
    data_[static_cast<std::size_t>(i) * n_ + j] = v;
    data_[static_cast<std::size_t>(j) * n_ + i] = v;
  }

  /// Severities of all measured edges of `matrix` (unordered pairs).
  std::vector<double> values_for_measured_edges(
      const DelayMatrix& matrix) const;

 private:
  HostId n_ = 0;
  std::vector<float> data_;
};

/// TIV analysis over one delay matrix.
class TivAnalyzer {
 public:
  explicit TivAnalyzer(const DelayMatrix& matrix) : matrix_(matrix) {}
  /// Deleted: the analyzer keeps a reference; a temporary would dangle.
  explicit TivAnalyzer(DelayMatrix&&) = delete;

  /// Severity of one edge; O(N). Returns 0 for unmeasured edges.
  double edge_severity(HostId a, HostId c) const;

  /// Full per-edge statistics; O(N).
  EdgeTivStats edge_stats(HostId a, HostId c) const;

  /// Batched per-edge statistics — the single witness-scan path for the
  /// sampled consumers (cluster_tiv_stats, proximity_experiment,
  /// sampled_severities). One packed DelayMatrixView is amortized across
  /// all requested edges and the branch-free lane kernels run under
  /// parallel_for_dynamic; severities are bit-identical to the
  /// all_severities kernel's per-edge values and the integer counts are
  /// exactly the scalar edge_stats counts.
  ///
  /// Pass `view` (a packed view of this analyzer's matrix) to skip the
  /// O(N^2) view build — figure drivers that make several batched calls
  /// should pack once and share it. With view == nullptr a batch too small
  /// to amortize a local build (edges * 4 < N) falls back to the scalar
  /// per-edge scan, which computes identical counts and severities to
  /// ~1e-15 relative (summation order only).
  std::vector<EdgeTivStats> edge_stats_batch(
      std::span<const std::pair<HostId, HostId>> edges,
      const DelayMatrixView* view = nullptr) const;

  /// Severity-only batch: same contract as edge_stats_batch, cheaper scan
  /// (no count/max lanes, no mask popcounts).
  std::vector<double> edge_severity_batch(
      std::span<const std::pair<HostId, HostId>> edges,
      const DelayMatrixView* view = nullptr) const;

  /// Violation-count-only batch (the edge_stats strict classification:
  /// detour < d_ac and detour > 0): same contract as edge_stats_batch but
  /// runs only the fused count/min kernel — consumers like
  /// cluster_tiv_stats that read nothing else skip the ratio-accumulate
  /// pass and the witness popcounts.
  std::vector<std::size_t> edge_violation_count_batch(
      std::span<const std::pair<HostId, HostId>> edges,
      const DelayMatrixView* view = nullptr) const;

  /// Triangulation ratios of all violations caused by the edge (the Fig. 1
  /// distribution), unsorted.
  std::vector<double> violation_ratios(HostId a, HostId c) const;

  /// All-edges severity matrix; O(N^3). Runs the tiled, branch-free kernel
  /// over a packed DelayMatrixView (see docs/PERFORMANCE.md), dynamically
  /// scheduled over (a, c) tiles of the upper triangle. Matches
  /// all_severities_reference to within ~1e-7 relative (float-division
  /// rounding; both round the result to float).
  /// Pass `view` (a packed view of this matrix) to reuse a view the caller
  /// already built; nullptr packs one locally.
  SeverityMatrix all_severities(const DelayMatrixView* view = nullptr) const;

  /// The straightforward scalar kernel (the original implementation): two
  /// data-dependent branches per witness, statically partitioned rows. Kept
  /// as the correctness reference for tests and as the baseline
  /// bench_severity_kernel measures the blocked kernel against.
  SeverityMatrix all_severities_reference() const;

  /// Severities of `count` distinct random measured edges — enough for CDFs
  /// at a fraction of the all-edges cost. Returns (edge, severity) pairs.
  ///
  /// Sampling is without replacement: a pair already drawn is rejected, so
  /// severity CDFs are not skewed by duplicate edges. Rejection sampling
  /// gives up after 30 * count attempts (misses, duplicates, and unmeasured
  /// pairs all consume attempts), so on a sparse matrix — or when count
  /// approaches the number of measured edges — the result may hold fewer
  /// than `count` entries rather than loop forever.
  std::vector<std::pair<std::pair<HostId, HostId>, double>> sampled_severities(
      std::size_t count, std::uint64_t seed = 1234) const;

  /// Fraction of triangles (all three edges measured) that contain at least
  /// one violation — the paper's "around 12% of them violate triangle
  /// inequality" figure for DS^2. Exact over all triangles when
  /// sample_triangles == 0, otherwise Monte Carlo.
  double violating_triangle_fraction(std::size_t sample_triangles = 0,
                                     std::uint64_t seed = 4321) const;

  /// Monte Carlo triangle-violation estimate plus achieved-vs-requested
  /// accounting. The sampler gives up after 30 * requested draws
  /// (unmeasurable triangles consume attempts), so on a mostly-missing
  /// matrix `achieved < requested`; the fraction is then over the achieved
  /// triangles and `exhausted` is set, instead of the shortfall being
  /// silent. Equals violating_triangle_fraction(requested, seed) exactly
  /// for requested > 0. requested == 0 here means "sample nothing"
  /// (fraction 0, achieved 0) — unlike the double-returning wrapper, whose
  /// 0 selects the exact exhaustive mode instead.
  struct TriangleFractionSample {
    double fraction = 0.0;
    std::size_t requested = 0;
    std::size_t achieved = 0;  ///< measurable triangles actually counted
    bool exhausted = false;    ///< attempt budget ran out before `requested`
  };
  TriangleFractionSample violating_triangle_fraction_sampled(
      std::size_t sample_triangles, std::uint64_t seed = 4321) const;

 private:
  const DelayMatrix& matrix_;
};

}  // namespace tiv::core
