#include "core/detour.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/edge_sampling.hpp"
#include "core/witness_kernels.hpp"
#include "util/parallel.hpp"

namespace tiv::core {

using delayspace::DelayMatrixView;
using delayspace::HostId;

DetourRouter::DetourRouter(const embedding::VivaldiSystem& system,
                           const DetourParams& params,
                           const DelayMatrixView* view)
    : system_(system), params_(params) {
  if (view == nullptr) {
    owned_view_.emplace(system.matrix());
    view_ = &*owned_view_;
  } else {
    view_ = view;
  }
}

double DetourRouter::oracle_one_hop(HostId a, HostId b) const {
  const auto& m = system_.matrix();
  const double direct = m.has(a, b)
                            ? m.at(a, b)
                            : std::numeric_limits<double>::infinity();
  // Lane-min over the masked rows: missing legs and padding sum past
  // kMaskedDelay, and the self-columns c == a / c == b contribute exactly
  // `direct` (diagonal 0 + the direct leg), which the min against `direct`
  // absorbs — so no per-element exclusions remain. min is order-free, so
  // the result equals the scalar reference bit for bit.
  const double relay =
      relay_min_scan(view_->row(a), view_->row(b), view_->stride());
  if (relay >= static_cast<double>(DelayMatrixView::kMaskedDelay)) {
    return direct;  // no relay with both legs measured
  }
  return std::min(direct, relay);
}

double DetourRouter::oracle_one_hop_scalar(HostId a, HostId b) const {
  const auto& m = system_.matrix();
  double best = m.has(a, b) ? m.at(a, b)
                            : std::numeric_limits<double>::infinity();
  const auto row_a = m.row(a);
  const auto row_b = m.row(b);
  for (HostId c = 0; c < m.size(); ++c) {
    if (c == a || c == b) continue;
    const float ac = row_a[c];
    const float cb = row_b[c];
    if (ac < 0.0f || cb < 0.0f) continue;
    best = std::min(best, static_cast<double>(ac) + cb);
  }
  return best;
}

DetourDecision DetourRouter::route(HostId a, HostId b, Rng& rng) const {
  DetourDecision d;
  d.measured = system_.matrix().has(a, b);
  if (!d.measured) {
    // Early-return: no alert evaluation, no probes. The infinities mark the
    // absence of a measurement; `measured` lets callers skip the edge
    // instead of folding +inf into their delay summaries.
    d.direct_ms = std::numeric_limits<double>::infinity();
    d.achieved_ms = d.direct_ms;
    return d;
  }
  const float* row_a = view_->row(a);
  const float* row_b = view_->row(b);
  d.direct_ms = row_a[b];
  d.achieved_ms = d.direct_ms;

  const double ratio = system_.prediction_ratio(a, b);
  d.alerted = !std::isnan(ratio) && ratio < params_.alert_threshold;
  if (!d.alerted) return d;

  // Rank all peers by predicted relay-path delay and probe the best few.
  // (A deployment would rank only its known peers; the embedding makes the
  // ranking free either way.) Masked rows turn the two sign-tested has()
  // calls per candidate into one sum-compare: any missing leg pushes
  // row_a[c] + row_b[c] past kMaskedDelay.
  const HostId n = system_.matrix().size();
  std::vector<std::pair<double, HostId>> ranked;
  ranked.reserve(n);
  for (HostId c = 0; c < n; ++c) {
    if (static_cast<double>(row_a[c]) + row_b[c] >=
        static_cast<double>(DelayMatrixView::kMaskedDelay)) {
      continue;  // a leg is missing
    }
    if (c == a || c == b) continue;
    ranked.emplace_back(system_.predicted(a, c) + system_.predicted(c, b), c);
  }
  const std::size_t k =
      std::min<std::size_t>(params_.relay_candidates, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                    ranked.end());
  (void)rng;  // candidate order is deterministic given the embedding

  for (std::size_t i = 0; i < k; ++i) {
    const HostId c = ranked[i].second;
    d.probes += 2;  // A-C refresh + C-B on-demand probe
    const double via = static_cast<double>(row_a[c]) + row_b[c];
    if (via < d.achieved_ms) {
      d.achieved_ms = via;
      d.relay = c;
      d.detoured = true;
    }
  }
  return d;
}

DetourEvaluation evaluate_detour_routing(
    const embedding::VivaldiSystem& system, const DetourParams& params,
    std::size_t sample_edges, std::uint64_t seed,
    const DelayMatrixView* view) {
  const auto& m = system.matrix();
  const HostId n = m.size();
  // Distinct measured pairs (the shared duplicate-free sampler): a
  // duplicate edge would double-count its delays in every Summary below.
  PairSampleOptions opt;
  opt.require_positive = true;  // stretch ratios divide by the direct delay
  PairSample sample = sample_measured_pairs(m, sample_edges, seed, opt);
  const auto& edges = sample.pairs;

  const DetourRouter router(system, params, view);
  struct Row {
    double direct, achieved, oracle, random_relay;
    std::uint32_t probes;
    bool alerted, detoured;
  };
  std::vector<Row> rows(edges.size());
  parallel_for(edges.size(), [&](std::size_t e) {
    const auto [a, b] = edges[e];
    Rng edge_rng(seed ^ (0x9e3779b97f4a7c15ULL * (e + 1)));
    const DetourDecision d = router.route(a, b, edge_rng);
    Row r;
    r.direct = d.direct_ms;
    r.achieved = d.achieved_ms;
    r.oracle = router.oracle_one_hop(a, b);
    r.probes = d.probes;
    r.alerted = d.alerted;
    r.detoured = d.detoured;
    // Random-relay baseline: probe the same candidate count on EVERY edge,
    // relays chosen uniformly.
    double best = d.direct_ms;
    for (std::uint32_t i = 0; i < params.relay_candidates; ++i) {
      const auto c = static_cast<HostId>(edge_rng.uniform_index(n));
      if (c == a || c == b || !m.has(a, c) || !m.has(c, b)) continue;
      best = std::min(best, static_cast<double>(m.at(a, c)) + m.at(c, b));
    }
    r.random_relay = best;
    rows[e] = r;
  });

  DetourEvaluation out;
  out.edges_requested = sample.requested;
  std::vector<double> direct;
  std::vector<double> achieved;
  std::vector<double> oracle;
  std::vector<double> random_relay;
  double stretch_direct = 0.0;
  double stretch_achieved = 0.0;
  for (const Row& r : rows) {
    direct.push_back(r.direct);
    achieved.push_back(r.achieved);
    oracle.push_back(r.oracle);
    random_relay.push_back(r.random_relay);
    if (r.oracle > 0) {
      stretch_direct += r.direct / r.oracle;
      stretch_achieved += r.achieved / r.oracle;
    }
    out.probes_tiv_aware += r.probes;
    out.probes_random += params.relay_candidates * 2;
    out.alerted_edges += r.alerted;
    out.detoured_edges += r.detoured;
  }
  out.edges = rows.size();
  out.direct_ms = summarize(std::move(direct));
  out.achieved_ms = summarize(std::move(achieved));
  out.oracle_ms = summarize(std::move(oracle));
  out.random_relay_ms = summarize(std::move(random_relay));
  if (!rows.empty()) {
    out.mean_stretch_direct = stretch_direct / static_cast<double>(rows.size());
    out.mean_stretch_achieved =
        stretch_achieved / static_cast<double>(rows.size());
  }
  return out;
}

}  // namespace tiv::core
