#include "scenario/replay.hpp"

#include <bit>
#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stream/incremental_severity.hpp"

namespace tiv::scenario {
namespace {

obs::Counter& epochs_replayed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("scenario.epochs_replayed");
  return c;
}
obs::Counter& samples_replayed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("scenario.samples_replayed");
  return c;
}
obs::Counter& bit_mismatch_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("scenario.bit_mismatches");
  return c;
}

/// Float equality at the bit level — the same comparison the shard-stream
/// bench gates on: NaNs compare by payload and -0.0f != 0.0f, so "equal"
/// here means indistinguishable bytes on disk.
bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

std::size_t count_mismatches(const SeverityMatrix& got,
                             const SeverityMatrix& want) {
  std::size_t mismatches = 0;
  const HostId n = want.size();
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      mismatches += !bits_equal(got.at(a, b), want.at(a, b));
    }
  }
  return mismatches;
}

}  // namespace

ReplayDriver::ReplayDriver(const DelayMatrix& base, const DelayTrace& trace,
                           ReplayConfig config)
    : base_(base), trace_(trace), config_(std::move(config)) {
  if (trace.hosts != base.size()) {
    throw std::invalid_argument(
        "ReplayDriver: trace host count does not match base matrix");
  }
}

void ReplayDriver::set_fault_injectors(shard::FaultInjector* input,
                                       shard::FaultInjector* sink) {
  input_fault_ = input;
  sink_fault_ = sink;
}

ReplayDriver::Result ReplayDriver::run(const EpochCallback& on_epoch) {
  const HostId n = base_.size();
  Result result;

  DelayMatrix truth = base_;
  stream::DelayStream live(base_, config_.estimator);

  std::optional<stream::IncrementalSeverity> inc;
  std::optional<stream::ShardStreamEngine> engine;
  SeverityMatrix engine_readback;  // kShard: row-read buffer for the sink
  if (config_.engine == ReplayConfig::Engine::kShard) {
    engine.emplace(live.matrix(), config_.shard);
    engine->attach_source(&live.matrix());
    engine->set_input_fault_injector(input_fault_);
    engine->set_sink_fault_injector(sink_fault_);
    engine_readback = SeverityMatrix(n);
  } else {
    inc.emplace(live.matrix());
  }

  std::vector<float> row(n);
  for (const auto& epoch : trace_.epochs) {
    obs::Span span("scenario-epoch");

    SeverityMatrix truth_sev;
    {
      obs::Span truth_span("scenario-truth");
      apply_truth(epoch, truth);
      truth_sev = core::TivAnalyzer(truth).all_severities();
    }

    stream::Epoch committed;
    {
      obs::Span ingest_span("scenario-ingest");
      live.ingest(epoch.samples);
      committed = live.commit_epoch();
      if (engine) {
        result.edges_recomputed +=
            engine->apply_epoch(live.matrix(), committed.dirty_hosts)
                .edges_recomputed;
      } else {
        result.edges_recomputed +=
            inc->apply_epoch(live.matrix(), committed.dirty_hosts)
                .edges_recomputed;
      }
    }

    std::size_t mismatches = 0;
    if (engine) {
      for (HostId a = 0; a < n; ++a) {
        engine->severity_row(a, row);
        for (HostId b = 0; b < n; ++b) engine_readback.set(a, b, row[b]);
      }
    }
    const SeverityMatrix& monitor_sev = engine ? engine_readback
                                               : inc->severities();
    if (config_.verify_bit_identity) {
      obs::Span verify_span("scenario-verify");
      const SeverityMatrix direct =
          core::TivAnalyzer(live.matrix()).all_severities();
      mismatches = count_mismatches(monitor_sev, direct);
    }

    ++result.epochs;
    result.samples += epoch.samples.size();
    result.bit_mismatches += mismatches;
    epochs_replayed_counter().increment();
    samples_replayed_counter().add(epoch.samples.size());
    bit_mismatch_counter().add(mismatches);

    if (on_epoch) {
      on_epoch(EpochView{.epoch = result.epochs - 1,
                         .truth = truth,
                         .truth_severities = truth_sev,
                         .monitor = live.matrix(),
                         .monitor_severities = monitor_sev,
                         .bit_mismatches = mismatches,
                         .committed = committed});
    }
  }

  if (engine) result.recovery = engine->recovery_stats();
  return result;
}

}  // namespace tiv::scenario
