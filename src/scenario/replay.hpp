// Trace replay — drives a DelayTrace through the live pipeline, epoch by
// epoch, maintaining the ground truth alongside and verifying that the
// incremental path stays bit-identical to direct ingestion at EVERY epoch.
//
// Per epoch the driver:
//   1. applies the truth stream to its ground-truth matrix and computes
//      the truth severities (all_severities on the instantaneous matrix —
//      the trace's definition of "truly TIV-violating");
//   2. ingests the sample stream into a DelayStream and commits the epoch
//      into either IncrementalSeverity (in-memory) or ShardStreamEngine
//      (out-of-core, optionally under FaultInjector rot);
//   3. recomputes severities of the monitor matrix from scratch and
//      bit-compares against the incrementally maintained ones — the
//      bench/CI-gated bit_mismatches == 0 contract;
//   4. hands both (truth, monitor) pairs to the caller — typically a
//      QualityScorer (score.hpp).
//
// Progress is published as scenario.* registry metrics and scenario-*
// spans so profiles attribute replay cost per phase.
#pragma once

#include <cstdint>
#include <functional>

#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "scenario/trace.hpp"
#include "stream/shard_stream.hpp"

namespace tiv::shard {
class FaultInjector;
}

namespace tiv::scenario {

using core::SeverityMatrix;

struct ReplayConfig {
  /// Smoothing the monitor applies to the trace's noisy samples. Default
  /// mirrors the live monitor example: EWMA with alpha 0.3.
  stream::EstimatorParams estimator{
      .policy = stream::SmoothingPolicy::kEwma, .ewma_alpha = 0.3f};

  enum class Engine {
    kInMemory,  ///< DelayStream -> IncrementalSeverity
    kShard,     ///< DelayStream -> ShardStreamEngine (out-of-core)
  };
  Engine engine = Engine::kInMemory;

  /// Tile/budget/path configuration for Engine::kShard.
  stream::ShardStreamConfig shard;

  /// Recompute severities from scratch each epoch and bit-compare against
  /// the incremental path. Costs an O(n^3) kernel per epoch; disable only
  /// for throughput-oriented replays.
  bool verify_bit_identity = true;
};

class ReplayDriver {
 public:
  /// Everything the caller can observe about one replayed epoch. The
  /// references are valid only during the callback.
  struct EpochView {
    std::uint64_t epoch = 0;
    const DelayMatrix& truth;
    const SeverityMatrix& truth_severities;
    const DelayMatrix& monitor;             ///< DelayStream's mutated matrix
    const SeverityMatrix& monitor_severities;  ///< incrementally maintained
    std::size_t bit_mismatches = 0;         ///< this epoch (0 when verified)
    const stream::Epoch& committed;         ///< dirty hosts + ingest stats
  };
  using EpochCallback = std::function<void(const EpochView&)>;

  struct Result {
    std::size_t epochs = 0;
    std::size_t samples = 0;          ///< trace samples ingested
    std::size_t bit_mismatches = 0;   ///< summed over all epochs
    std::size_t edges_recomputed = 0; ///< incremental repair work
    /// Engine::kShard only: the engine's cumulative self-healing counters
    /// at the end of the run (all zero for kInMemory).
    stream::ShardStreamEngine::RecoveryStats recovery;
  };

  /// Validates trace.hosts == base.size() (throws std::invalid_argument).
  /// `base` and `trace` must outlive the driver.
  ReplayDriver(const DelayMatrix& base, const DelayTrace& trace,
               ReplayConfig config = {});

  /// Engine::kShard only: attach deterministic rot to the stores of the
  /// NEXT run() (nullptr detaches). Injectors must outlive the run.
  void set_fault_injectors(shard::FaultInjector* input,
                           shard::FaultInjector* sink);

  /// Replays the whole trace. Reentrant: each call builds a fresh monitor
  /// from the base matrix and replays from epoch 0.
  Result run(const EpochCallback& on_epoch = {});

 private:
  const DelayMatrix& base_;
  const DelayTrace& trace_;
  ReplayConfig config_;
  shard::FaultInjector* input_fault_ = nullptr;
  shard::FaultInjector* sink_fault_ = nullptr;
};

}  // namespace tiv::scenario
