// Detection-quality scoring — the observatory's grading layer.
//
// Given, per epoch, the ground-truth matrix/severities a trace defines and
// the monitor's matrix/severities as maintained by the live pipeline, the
// scorer turns "how well did the monitor track reality" into regression-
// gateable numbers:
//
//   precision / recall / F1   per-epoch, per-edge binary classification of
//                             "severity >= threshold" against ground truth,
//                             summed over the trace (sweepable thresholds).
//   time-to-detect / -clear   per-edge onset state machines: epochs between
//                             a ground-truth violation appearing (clearing)
//                             and the monitor's detection following suit.
//   detour win rate           on each truly violating edge, would the relay
//                             the monitor's estimates pick actually beat
//                             the direct path in the ground truth? (the
//                             paper's operational payoff for detection).
//
// Every count is deterministic for a seeded trace — the severity kernel is
// bit-identical across thread counts and the generators bake noise into
// the trace — so CI gates these with `=` tolerances and `>` floors
// (bench/baselines/bench_scenario.quick.json), exactly like PR 9's perf
// gates. Headline-threshold totals are also published as `scenario.*`
// registry metrics.
//
// score_ratio_alert is the shared binary-classification core the figure
// benches (20/21 via core::evaluate_alert, 24/25 directly) route through,
// so figure numbers and scenario scores cannot drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"

namespace tiv::scenario {

using core::SeverityMatrix;
using delayspace::DelayMatrix;
using delayspace::HostId;

/// Binary-classification tallies and the derived rates. The one
/// implementation of precision/recall/F1 in the repo.
struct ClassificationCounts {
  std::size_t tp = 0;  ///< predicted positive, truly positive
  std::size_t fp = 0;  ///< predicted positive, truly negative
  std::size_t fn = 0;  ///< predicted negative, truly positive
  std::size_t tn = 0;  ///< predicted negative, truly negative

  void add(bool predicted, bool actual) {
    if (predicted) {
      actual ? ++tp : ++fp;
    } else {
      actual ? ++fn : ++tn;
    }
  }
  ClassificationCounts& operator+=(const ClassificationCounts& o) {
    tp += o.tp;
    fp += o.fp;
    fn += o.fn;
    tn += o.tn;
    return *this;
  }

  std::size_t total() const { return tp + fp + fn + tn; }
  std::size_t predicted_positive() const { return tp + fp; }
  std::size_t actual_positive() const { return tp + fn; }

  /// tp / (tp + fp); 0 when nothing was predicted positive.
  double precision() const;
  /// tp / (tp + fn); 0 when nothing is truly positive.
  double recall() const;
  /// Harmonic mean of precision and recall; 0 when either is 0.
  double f1() const;
};

/// Result of grading a prediction-ratio alert (the Figs. 20/21/24/25
/// mechanism: alert when predicted/measured delay ratio < threshold)
/// against the "worst worst_fraction of edges by severity" positive set.
struct RatioAlertScore {
  ClassificationCounts counts;
  double alert_fraction = 0.0;   ///< predicted-positive share of all samples
  double severity_cutoff = 0.0;  ///< severity at the worst-fraction boundary
};

/// Grades ratio-based alerts: sample i is predicted positive when
/// ratios[i] is non-NaN and < threshold; truly positive when its severity
/// is within the worst `worst_fraction` of `severities` (cutoff = severity
/// of the ceil(worst_fraction * n)-th worst sample, inclusive). Spans must
/// be equal length. Empty input or worst_fraction <= 0 scores zero.
RatioAlertScore score_ratio_alert(std::span<const double> ratios,
                                  std::span<const double> severities,
                                  double worst_fraction, double threshold);

struct ScorerParams {
  /// Headline detection gate: an edge is "alerted" / "truly violating"
  /// when its (monitor / ground-truth) severity is >= this.
  double severity_threshold = 0.1;
  /// Additional thresholds to sweep (the headline is always included as
  /// thresholds()[0]; duplicates of it are kept as-is).
  std::vector<double> threshold_sweep;
  /// Score detour routing on truly violating edges (headline threshold).
  bool score_detour = true;
};

/// Quality totals at one severity threshold.
struct ThresholdQuality {
  double threshold = 0.0;
  /// Per-epoch, per-edge classification summed over the trace. The edge
  /// universe at each epoch is the edges measured in the ground-truth
  /// matrix (an edge that is truly down has no defined severity).
  ClassificationCounts counts;

  std::size_t onsets = 0;            ///< truth transitions quiet -> violating
  std::size_t onsets_detected = 0;   ///< detected before truth cleared/ended
  std::size_t onsets_missed = 0;     ///< truth cleared with no detection
  std::size_t clears = 0;            ///< truth transitions violating -> quiet
  std::size_t clears_confirmed = 0;  ///< monitor's alert dropped afterwards
  std::uint64_t detect_lag_epochs = 0;  ///< summed over detected onsets
  std::uint64_t clear_lag_epochs = 0;   ///< summed over confirmed clears

  /// Mean epochs from truth onset to detection (detected onsets only).
  double mean_time_to_detect() const;
  /// Mean epochs from truth clear to the alert dropping (confirmed only).
  double mean_time_to_clear() const;
};

/// Detour-routing quality on truly violating edges: the relay is chosen by
/// the MONITOR's estimates (what a deployed system would do), the win is
/// judged by the GROUND TRUTH (what the packets would experience).
struct DetourQuality {
  std::size_t trials = 0;       ///< (epoch, violating edge) opportunities
  std::size_t relay_found = 0;  ///< monitor had a two-leg candidate
  std::size_t wins = 0;         ///< chosen relay beats direct in truth
  double win_rate() const;      ///< wins / trials (0 if none)
};

/// Accumulates quality over a replayed trace, one observe_epoch call per
/// epoch. Publishes headline-threshold totals to the obs registry
/// ("scenario.*") and brackets each observation in a "scenario-score"
/// span. Single-threaded by design (scoring is O(n^2) per epoch and rides
/// the replay loop).
class QualityScorer {
 public:
  QualityScorer(HostId hosts, ScorerParams params = {});

  /// Grades one epoch. All four arguments must be of the construction-time
  /// host count; severities must correspond to their matrices.
  void observe_epoch(const DelayMatrix& truth, const SeverityMatrix& truth_sev,
                     const DelayMatrix& monitor,
                     const SeverityMatrix& monitor_sev);

  /// Per-threshold totals; [0] is the headline threshold.
  const std::vector<ThresholdQuality>& thresholds() const { return totals_; }
  const ThresholdQuality& headline() const { return totals_.front(); }
  const DetourQuality& detour() const { return detour_; }
  std::uint64_t epochs_scored() const { return epochs_; }

 private:
  /// Per-(threshold, edge) onset/clear state machine.
  struct EdgeState {
    std::uint32_t onset_epoch = 0;
    std::uint32_t clear_epoch = 0;
    bool truth_active = false;
    bool detect_active = false;
    bool awaiting_detect = false;
    bool awaiting_clear = false;
  };

  std::size_t edge_index(HostId a, HostId b) const {
    // Upper-triangle (a < b) linearization.
    return static_cast<std::size_t>(a) * n_ -
           static_cast<std::size_t>(a) * (a + 1) / 2 + (b - a - 1);
  }
  void score_threshold(std::size_t t, const DelayMatrix& truth,
                       const SeverityMatrix& truth_sev,
                       const SeverityMatrix& monitor_sev);
  void score_detour(const DelayMatrix& truth, const SeverityMatrix& truth_sev,
                    const DelayMatrix& monitor);

  HostId n_;
  ScorerParams params_;
  std::vector<ThresholdQuality> totals_;
  std::vector<std::vector<EdgeState>> edge_states_;  ///< [threshold][edge]
  DetourQuality detour_;
  std::uint64_t epochs_ = 0;
};

}  // namespace tiv::scenario
