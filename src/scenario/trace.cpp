#include "scenario/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "shard/checksum.hpp"

namespace tiv::scenario {
namespace {

constexpr char kMagic[8] = {'T', 'I', 'V', 'T', 'R', 'C', 'E', '1'};

[[noreturn]] void fail_io(const std::string& what, const std::string& path) {
  throw std::runtime_error("DelayTrace: " + what + ": " + path);
}

[[noreturn]] void fail_format(const std::string& what,
                              const std::string& path) {
  throw TraceFormatError("DelayTrace: " + what + ": " + path);
}

void append(std::vector<unsigned char>& buf, const void* data,
            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + bytes);
}

// Events are serialized field-by-field (20 bytes) rather than as the raw
// struct so alignment padding never leaks uninitialized bytes into the
// checksum.
constexpr std::size_t kEventBytes =
    2 * sizeof(std::uint32_t) + sizeof(float) + sizeof(double);

void append_events(std::vector<unsigned char>& buf,
                   const std::vector<stream::DelaySample>& events) {
  for (const auto& e : events) {
    const std::uint32_t a = e.a;
    const std::uint32_t b = e.b;
    append(buf, &a, sizeof(a));
    append(buf, &b, sizeof(b));
    append(buf, &e.delay_ms, sizeof(e.delay_ms));
    append(buf, &e.timestamp, sizeof(e.timestamp));
  }
}

/// Bounds-checked sequential reader over the loaded file image.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t off = 0;
  const std::string& path;

  void read(void* out, std::size_t bytes) {
    if (bytes > size - off) fail_format("truncated body", path);
    std::memcpy(out, data + off, bytes);
    off += bytes;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    read(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    read(&v, sizeof(v));
    return v;
  }
};

void read_events(Cursor& cur, std::uint32_t count,
                 std::vector<stream::DelaySample>& out) {
  // Validate the count against remaining bytes BEFORE reserving so a
  // corrupt count can't balloon the allocation.
  if (static_cast<std::uint64_t>(count) * kEventBytes > cur.size - cur.off) {
    fail_format("event count overruns file", cur.path);
  }
  out.resize(count);
  for (auto& e : out) {
    e.a = cur.u32();
    e.b = cur.u32();
    cur.read(&e.delay_ms, sizeof(e.delay_ms));
    cur.read(&e.timestamp, sizeof(e.timestamp));
  }
}

}  // namespace

std::size_t DelayTrace::total_truth_events() const {
  std::size_t total = 0;
  for (const auto& e : epochs) total += e.truth.size();
  return total;
}

std::size_t DelayTrace::total_samples() const {
  std::size_t total = 0;
  for (const auto& e : epochs) total += e.samples.size();
  return total;
}

void DelayTrace::save(const std::string& path) const {
  std::vector<unsigned char> buf;
  buf.reserve(sizeof(kMagic) + 32 + family.size() +
              (total_truth_events() + total_samples()) * kEventBytes +
              epochs.size() * 8 + sizeof(std::uint64_t));
  append(buf, kMagic, sizeof(kMagic));
  append(buf, &hosts, sizeof(hosts));
  append(buf, &seed, sizeof(seed));
  const auto family_len = static_cast<std::uint32_t>(family.size());
  append(buf, &family_len, sizeof(family_len));
  append(buf, family.data(), family.size());
  const auto epoch_count = static_cast<std::uint32_t>(epochs.size());
  append(buf, &epoch_count, sizeof(epoch_count));
  for (const auto& epoch : epochs) {
    const auto tc = static_cast<std::uint32_t>(epoch.truth.size());
    const auto sc = static_cast<std::uint32_t>(epoch.samples.size());
    append(buf, &tc, sizeof(tc));
    append(buf, &sc, sizeof(sc));
    append_events(buf, epoch.truth);
    append_events(buf, epoch.samples);
  }
  const std::uint64_t sum = shard::fnv1a(buf.data(), buf.size());
  append(buf, &sum, sizeof(sum));

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_io("cannot open for writing", path);
  const bool ok = ::write(fd, buf.data(), buf.size()) ==
                  static_cast<ssize_t>(buf.size());
  if (::close(fd) != 0 || !ok) fail_io("write failed", path);
}

DelayTrace DelayTrace::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail_io("cannot open", path);
  std::vector<unsigned char> buf;
  unsigned char chunk[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof(chunk))) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  ::close(fd);
  if (got < 0) fail_io("read failed", path);

  if (buf.size() < sizeof(kMagic) + sizeof(std::uint64_t)) {
    fail_format("file too short", path);
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    fail_format("bad magic", path);
  }
  std::uint64_t sum = 0;
  std::memcpy(&sum, buf.data() + buf.size() - sizeof(sum), sizeof(sum));
  if (shard::fnv1a(buf.data(), buf.size() - sizeof(sum)) != sum) {
    fail_format("checksum mismatch (torn or corrupted trace)", path);
  }

  Cursor cur{buf.data(), buf.size() - sizeof(sum), sizeof(kMagic), path};
  DelayTrace trace;
  cur.read(&trace.hosts, sizeof(trace.hosts));
  trace.seed = cur.u64();
  const std::uint32_t family_len = cur.u32();
  if (family_len > cur.size - cur.off) {
    fail_format("family length overruns file", path);
  }
  trace.family.assign(reinterpret_cast<const char*>(cur.data + cur.off),
                      family_len);
  cur.off += family_len;
  const std::uint32_t epoch_count = cur.u32();
  trace.epochs.resize(epoch_count);
  for (auto& epoch : trace.epochs) {
    const std::uint32_t tc = cur.u32();
    const std::uint32_t sc = cur.u32();
    read_events(cur, tc, epoch.truth);
    read_events(cur, sc, epoch.samples);
  }
  if (cur.off != cur.size) fail_format("trailing bytes after epochs", path);
  return trace;
}

void apply_truth(const TraceEpoch& epoch, DelayMatrix& truth) {
  const HostId n = truth.size();
  for (const auto& e : epoch.truth) {
    if (e.a == e.b || e.a >= n || e.b >= n) {
      throw std::invalid_argument(
          "apply_truth: event references invalid edge");
    }
    if (e.delay_ms < 0.0f) {
      truth.set_missing(e.a, e.b);
    } else {
      truth.set(e.a, e.b, e.delay_ms);
    }
  }
}

}  // namespace tiv::scenario
