// Deterministic seeded trace generators — the scenario families the
// quality observatory scores detection against.
//
// Each family perturbs a handful of measured edges of a base matrix over a
// fixed number of epochs, writing the exact ground-truth delay into the
// trace's truth stream and a noisy measurement into the sample stream (see
// trace.hpp for the two-stream contract). Generation is a pure function of
// (family, base, params): the same inputs produce a byte-identical trace
// file, which is what lets CI gate precision/recall as deterministic
// numbers instead of noisy estimates.
//
// Families (ROADMAP "Scenario engine" item; WangZN07 §4-5 dynamics):
//   diurnal_drift     every target edge swells and relaxes on a smooth
//                     sinusoid with a random phase — the daily load cycle.
//   correlated_links  a cut between two host groups inflates all crossing
//                     edges together for a window — one congested link
//                     shared by many overlay paths.
//   flash_crowd       one hotspot host's edges ramp up geometrically, hold
//                     at peak, then decay — a flash-crowd arrival.
//   partition_heal    cross edges of a host subset go dark (loss reports)
//                     and later heal — a partition and its repair.
//   oscillation       targets alternate base/inflated on a square wave —
//                     the paper's Fig. 11 severity-oscillation trace.
#pragma once

#include <string>
#include <vector>

#include "scenario/trace.hpp"

namespace tiv::scenario {

struct ScenarioParams {
  std::uint32_t epochs = 16;
  std::uint64_t seed = 1;

  /// Fraction of measured edges each family perturbs (before the cap).
  double target_fraction = 0.02;
  std::uint32_t max_targets = 64;

  /// Multiplicative measurement noise: each sample reports
  /// truth * uniform(1 - noise, 1 + noise). This is the monitor's handicap
  /// — the gap precision/recall measures.
  double measurement_noise = 0.08;

  /// Peak delay multiplier on perturbed edges. Must be > 1 to create
  /// violations worth detecting.
  double inflation = 6.0;

  /// Event window for the windowed families (correlated_links,
  /// partition_heal, flash_crowd onset/decay), as fractions of `epochs`.
  double onset_fraction = 0.25;
  double clear_fraction = 0.65;

  /// Square-wave half period in epochs (oscillation).
  std::uint32_t oscillation_half_period = 2;
};

/// The registered family names, in canonical order.
const std::vector<std::string>& scenario_families();

bool is_scenario_family(const std::string& name);

/// Generates a trace of `family` over `base`. Throws std::invalid_argument
/// for an unknown family, epochs == 0, inflation <= 1, or a base matrix
/// with no positive measured edge to perturb.
DelayTrace generate_scenario(const std::string& family,
                             const DelayMatrix& base,
                             const ScenarioParams& params = {});

}  // namespace tiv::scenario
