// Ground-truthed delay traces — the scenario observatory's workload unit
// (docs/OBSERVABILITY.md, "Quality observatory").
//
// The streaming benches drive the live pipeline with synthetic square-wave
// churn only; the paper's operational claims (Figs. 20/21/24/25) are about
// *detection quality* under realistic dynamics. A DelayTrace fixes that
// gap: a compact, versioned, epoch-structured recording of a dynamic delay
// space that carries TWO event streams per epoch:
//
//   truth    the instantaneous ground-truth delay of the perturbed edges
//            (delay < 0 = the path is genuinely down). Replaying only the
//            truth stream onto a copy of the base matrix reconstructs the
//            exact matrix the network "really had" at every epoch — the
//            matrix whose all_severities defines which edges are truly
//            TIV-violating (the ground truth the quality scorer grades
//            against).
//   samples  what the monitor's probes measured: the truth value distorted
//            by the generator's measurement-noise model, plus loss reports
//            where probing a downed path timed out. This stream feeds
//            DelayStream exactly like live traffic.
//
// The split is what makes detection quality a real observable: the monitor
// sees noisy samples through smoothing estimators and epoch-grained
// commits, the scorer sees the noiseless truth, and precision/recall/
// time-to-detect measure the gap between them.
//
// On-disk format (little-endian, FNV-1a trailer over everything before it,
// following stream::EpochManifest):
//
//   [magic "TIVTRCE1"][u32 hosts][u64 seed][u32 family_len][family bytes]
//   [u32 epoch_count]
//   per epoch: [u32 truth_count][u32 sample_count]
//              [truth events...][sample events...]
//   per event: [u32 a][u32 b][f32 delay_ms][f64 timestamp]
//   [u64 fnv1a]
//
// Unlike the epoch manifest — where a torn trailer means "nothing was
// mutated yet, report clean" — a trace is *input data*: a file that fails
// its checksum must be rejected loudly (TraceFormatError), never replayed
// as a silently truncated workload.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "delayspace/delay_matrix.hpp"
#include "stream/delay_stream.hpp"

namespace tiv::scenario {

using delayspace::DelayMatrix;
using delayspace::HostId;

/// A trace file whose bytes cannot be trusted or parsed: bad magic, torn
/// trailer, truncated body, or counts that overrun the file.
struct TraceFormatError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One epoch of trace events. Both streams reuse stream::DelaySample — a
/// truth event's timestamp is the epoch index (informational only).
struct TraceEpoch {
  /// Ground-truth delay updates: applied to the truth matrix before the
  /// epoch's samples are ingested. delay_ms < 0 means the path is down.
  std::vector<stream::DelaySample> truth;
  /// Measurements the monitor ingests this epoch (noise and loss included).
  std::vector<stream::DelaySample> samples;
};

/// A recorded or generated delay trace over a fixed host set. The base
/// matrix is NOT stored — a trace perturbs a delay space the replayer
/// already has (the generators' contract: every referenced edge is
/// measured in the base matrix or explicitly transitioned by the trace).
struct DelayTrace {
  std::uint32_t hosts = 0;
  std::uint64_t seed = 0;     ///< generator seed (0 for recorded traces)
  std::string family;         ///< generator family, or "recorded"
  std::vector<TraceEpoch> epochs;

  std::size_t total_truth_events() const;
  std::size_t total_samples() const;

  /// Serializes to `path` in the versioned format above. Byte-identical
  /// for identical traces (the generator-determinism contract tests byte-
  /// compare two saves). Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Loads and validates a trace. Throws TraceFormatError on any
  /// structural damage (magic, trailer, truncation, count overrun) and
  /// std::runtime_error on hard I/O errors.
  static DelayTrace load(const std::string& path);
};

/// Applies one epoch's truth stream to the ground-truth matrix: delay >= 0
/// sets the edge, delay < 0 transitions it to missing. Out-of-range and
/// self-pair events throw std::invalid_argument (a malformed trace must
/// not silently skew the ground truth it defines).
void apply_truth(const TraceEpoch& epoch, DelayMatrix& truth);

}  // namespace tiv::scenario
