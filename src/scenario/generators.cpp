#include "scenario/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

#include "core/edge_sampling.hpp"
#include "util/rng.hpp"

namespace tiv::scenario {
namespace {

using core::sample_measured_pairs;

/// Accumulates truth/sample streams. set_truth only emits an event when the
/// edge's ground-truth value actually changes (keeps traces compact);
/// probe always emits a measurement — targets are probed every epoch, the
/// way a monitor keeps re-measuring a watched edge.
class TraceBuilder {
 public:
  TraceBuilder(const DelayMatrix& base, const std::string& family,
               const ScenarioParams& params)
      : base_(base), noise_(params.measurement_noise),
        noise_rng_(params.seed ^ 0x9d5cu) {
    trace_.hosts = base.size();
    trace_.seed = params.seed;
    trace_.family = family;
    trace_.epochs.resize(params.epochs);
  }

  float truth_value(HostId a, HostId b) const {
    const auto it = current_.find(key(a, b));
    if (it != current_.end()) return it->second;
    return base_.has(a, b) ? base_.at(a, b) : DelayMatrix::kMissing;
  }

  void set_truth(std::uint32_t epoch, HostId a, HostId b, float value) {
    if (truth_value(a, b) == value) return;
    current_[key(a, b)] = value;
    trace_.epochs[epoch].truth.push_back(
        {a, b, value, static_cast<double>(epoch)});
  }

  void probe(std::uint32_t epoch, HostId a, HostId b) {
    const float t = truth_value(a, b);
    float measured = DelayMatrix::kMissing;  // a downed path probes as loss
    if (t >= 0.0f) {
      measured = t * static_cast<float>(
                         noise_rng_.uniform(1.0 - noise_, 1.0 + noise_));
    }
    trace_.epochs[epoch].samples.push_back(
        {a, b, measured, static_cast<double>(epoch)});
  }

  DelayTrace take() { return std::move(trace_); }

 private:
  static std::uint64_t key(HostId a, HostId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  const DelayMatrix& base_;
  double noise_;
  Rng noise_rng_;
  DelayTrace trace_;
  std::unordered_map<std::uint64_t, float> current_;
};

using Edge = std::pair<HostId, HostId>;

/// Target edges shared by the non-topological families: distinct measured
/// positive-delay pairs through the repo's one sampling path.
std::vector<Edge> pick_targets(const DelayMatrix& base,
                               const ScenarioParams& params,
                               std::uint64_t salt) {
  const auto measured = base.measured_pair_count();
  auto count = static_cast<std::size_t>(
      std::llround(params.target_fraction * static_cast<double>(measured)));
  count = std::clamp<std::size_t>(count, 1, params.max_targets);
  const auto sample = sample_measured_pairs(base, count, params.seed ^ salt,
                                            {.require_positive = true});
  if (sample.pairs.empty()) {
    throw std::invalid_argument(
        "generate_scenario: base matrix has no positive measured edge");
  }
  return sample.pairs;
}

/// Window [onset, clear) in epochs, clamped so both lie inside the trace
/// and the window is non-empty.
std::pair<std::uint32_t, std::uint32_t> window(const ScenarioParams& params) {
  auto onset = static_cast<std::uint32_t>(params.onset_fraction *
                                          static_cast<double>(params.epochs));
  auto clear = static_cast<std::uint32_t>(params.clear_fraction *
                                          static_cast<double>(params.epochs));
  onset = std::min(onset, params.epochs - 1);
  clear = std::clamp(clear, onset + 1, params.epochs);
  return {onset, clear};
}

DelayTrace gen_diurnal(const DelayMatrix& base, const ScenarioParams& params) {
  TraceBuilder builder(base, "diurnal_drift", params);
  const auto targets = pick_targets(base, params, 0x01);
  Rng rng(params.seed ^ 0xd1u);
  std::vector<double> phase(targets.size());
  for (auto& p : phase) p = rng.uniform(0.0, 2.0 * std::numbers::pi);

  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(e) /
        static_cast<double>(params.epochs);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const auto [a, b] = targets[t];
      const double mult =
          1.0 + (params.inflation - 1.0) *
                    0.5 * (1.0 + std::sin(angle + phase[t]));
      builder.set_truth(e, a, b,
                        base.at(a, b) * static_cast<float>(mult));
      builder.probe(e, a, b);
    }
  }
  return builder.take();
}

DelayTrace gen_correlated(const DelayMatrix& base,
                          const ScenarioParams& params) {
  TraceBuilder builder(base, "correlated_links", params);
  const HostId n = base.size();
  Rng rng(params.seed ^ 0xc0u);
  const auto group = std::max<std::uint32_t>(1, n / 8);
  auto hosts = rng.sample_without_replacement(n, std::min(2 * group, n));
  const std::size_t split = hosts.size() / 2;

  // All measured positive edges crossing the two groups inflate together —
  // that correlation (shared underlying link) is the family's point.
  std::vector<Edge> targets;
  for (std::size_t i = 0; i < split; ++i) {
    for (std::size_t j = split; j < hosts.size(); ++j) {
      const HostId a = hosts[i];
      const HostId b = hosts[j];
      if (base.has(a, b) && base.at(a, b) > 0.0f &&
          targets.size() < params.max_targets) {
        targets.emplace_back(a, b);
      }
    }
  }
  if (targets.empty()) targets = pick_targets(base, params, 0xc0);

  const auto [onset, clear] = window(params);
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    const bool up = e >= onset && e < clear;
    for (const auto& [a, b] : targets) {
      const float d0 = base.at(a, b);
      builder.set_truth(
          e, a, b, up ? d0 * static_cast<float>(params.inflation) : d0);
      builder.probe(e, a, b);
    }
  }
  return builder.take();
}

DelayTrace gen_flash_crowd(const DelayMatrix& base,
                           const ScenarioParams& params) {
  TraceBuilder builder(base, "flash_crowd", params);
  const HostId n = base.size();
  Rng rng(params.seed ^ 0xf1u);
  const auto hot = static_cast<HostId>(rng.uniform_index(n));

  std::vector<Edge> targets;
  for (HostId b = 0; b < n && targets.size() < params.max_targets; ++b) {
    if (b != hot && base.has(hot, b) && base.at(hot, b) > 0.0f) {
      targets.emplace_back(hot, b);
    }
  }
  if (targets.empty()) targets = pick_targets(base, params, 0xf1);

  const auto [onset, clear] = window(params);
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    // Geometric ramp to the peak, hold through the window, geometric decay.
    double mult = 1.0;
    if (e >= onset && e < clear) {
      mult = std::min(params.inflation,
                      std::exp2(static_cast<double>(e - onset + 1)));
    } else if (e >= clear) {
      mult = std::max(1.0, params.inflation /
                               std::exp2(static_cast<double>(e - clear + 1)));
    }
    for (const auto& [a, b] : targets) {
      builder.set_truth(e, a, b,
                        base.at(a, b) * static_cast<float>(mult));
      builder.probe(e, a, b);
    }
  }
  return builder.take();
}

DelayTrace gen_partition_heal(const DelayMatrix& base,
                              const ScenarioParams& params) {
  TraceBuilder builder(base, "partition_heal", params);
  const HostId n = base.size();
  Rng rng(params.seed ^ 0x9au);
  const auto part = std::max<std::uint32_t>(1, n / 6);
  const auto members = rng.sample_without_replacement(n, std::min(part, n));
  std::vector<std::uint8_t> in_part(n, 0);
  for (const auto h : members) in_part[h] = 1;

  std::vector<Edge> targets;  // every measured edge crossing the partition
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      if ((in_part[a] ^ in_part[b]) && base.has(a, b)) {
        targets.emplace_back(a, b);
      }
    }
  }
  if (targets.empty()) targets = pick_targets(base, params, 0x9a);

  const auto [onset, clear] = window(params);
  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    const bool dark = e >= onset && e < clear;
    for (const auto& [a, b] : targets) {
      builder.set_truth(e, a, b,
                        dark ? DelayMatrix::kMissing : base.at(a, b));
      builder.probe(e, a, b);
    }
  }
  return builder.take();
}

DelayTrace gen_oscillation(const DelayMatrix& base,
                           const ScenarioParams& params) {
  TraceBuilder builder(base, "oscillation", params);
  const auto targets = pick_targets(base, params, 0x05);
  const auto half = std::max<std::uint32_t>(1, params.oscillation_half_period);

  for (std::uint32_t e = 0; e < params.epochs; ++e) {
    const bool high = ((e / half) % 2) == 1;
    for (const auto& [a, b] : targets) {
      const float d0 = base.at(a, b);
      builder.set_truth(
          e, a, b, high ? d0 * static_cast<float>(params.inflation) : d0);
      builder.probe(e, a, b);
    }
  }
  return builder.take();
}

}  // namespace

const std::vector<std::string>& scenario_families() {
  static const std::vector<std::string> kFamilies = {
      "diurnal_drift", "correlated_links", "flash_crowd", "partition_heal",
      "oscillation"};
  return kFamilies;
}

bool is_scenario_family(const std::string& name) {
  const auto& families = scenario_families();
  return std::find(families.begin(), families.end(), name) != families.end();
}

DelayTrace generate_scenario(const std::string& family,
                             const DelayMatrix& base,
                             const ScenarioParams& params) {
  if (params.epochs == 0) {
    throw std::invalid_argument("generate_scenario: epochs must be > 0");
  }
  if (params.inflation <= 1.0) {
    throw std::invalid_argument("generate_scenario: inflation must be > 1");
  }
  if (base.size() < 2) {
    throw std::invalid_argument("generate_scenario: need at least 2 hosts");
  }
  if (family == "diurnal_drift") return gen_diurnal(base, params);
  if (family == "correlated_links") return gen_correlated(base, params);
  if (family == "flash_crowd") return gen_flash_crowd(base, params);
  if (family == "partition_heal") return gen_partition_heal(base, params);
  if (family == "oscillation") return gen_oscillation(base, params);
  throw std::invalid_argument("generate_scenario: unknown family \"" +
                              family + "\"");
}

}  // namespace tiv::scenario
