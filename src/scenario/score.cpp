#include "scenario/score.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tiv::scenario {
namespace {

// Headline-threshold totals feed the obs registry so the live monitor and
// SnapshotReporter surface detection quality next to throughput
// (docs/OBSERVABILITY.md "Quality observatory"). Function-local statics:
// registration takes a mutex, the hot loop holds the references.
struct ScenarioMetrics {
  obs::Counter& epochs_scored;
  obs::Counter& edges_scored;
  obs::Counter& true_positives;
  obs::Counter& false_positives;
  obs::Counter& false_negatives;
  obs::Counter& onsets;
  obs::Counter& onsets_detected;
  obs::Counter& clears;
  obs::Counter& clears_confirmed;
  obs::Counter& detour_trials;
  obs::Counter& detour_wins;
  obs::Histogram& detect_lag_epochs;
  obs::Histogram& clear_lag_epochs;
};

ScenarioMetrics& metrics() {
  auto& reg = obs::MetricsRegistry::instance();
  static ScenarioMetrics m{
      reg.counter("scenario.epochs_scored"),
      reg.counter("scenario.edges_scored"),
      reg.counter("scenario.true_positives"),
      reg.counter("scenario.false_positives"),
      reg.counter("scenario.false_negatives"),
      reg.counter("scenario.onsets"),
      reg.counter("scenario.onsets_detected"),
      reg.counter("scenario.clears"),
      reg.counter("scenario.clears_confirmed"),
      reg.counter("scenario.detour_trials"),
      reg.counter("scenario.detour_wins"),
      reg.histogram("scenario.detect_lag_epochs"),
      reg.histogram("scenario.clear_lag_epochs"),
  };
  return m;
}

}  // namespace

double ClassificationCounts::precision() const {
  const auto pp = predicted_positive();
  return pp == 0 ? 0.0
                 : static_cast<double>(tp) / static_cast<double>(pp);
}

double ClassificationCounts::recall() const {
  const auto ap = actual_positive();
  return ap == 0 ? 0.0
                 : static_cast<double>(tp) / static_cast<double>(ap);
}

double ClassificationCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

RatioAlertScore score_ratio_alert(std::span<const double> ratios,
                                  std::span<const double> severities,
                                  double worst_fraction, double threshold) {
  if (ratios.size() != severities.size()) {
    throw std::invalid_argument(
        "score_ratio_alert: ratios/severities size mismatch");
  }
  RatioAlertScore score;
  if (ratios.empty() || worst_fraction <= 0.0) return score;

  // Severity cut-off for membership in the worst set — the exact
  // computation evaluate_alert has always used, so delegating changes no
  // figure number.
  std::vector<double> sorted(severities.begin(), severities.end());
  const auto worst_count = std::min<std::size_t>(
      sorted.size(),
      static_cast<std::size_t>(
          std::ceil(worst_fraction * static_cast<double>(sorted.size()))));
  std::nth_element(sorted.begin(),
                   sorted.end() - static_cast<std::ptrdiff_t>(worst_count),
                   sorted.end());
  score.severity_cutoff = sorted[sorted.size() - worst_count];

  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const bool predicted =
        !std::isnan(ratios[i]) && ratios[i] < threshold;
    const bool actual = severities[i] >= score.severity_cutoff;
    score.counts.add(predicted, actual);
  }
  score.alert_fraction =
      static_cast<double>(score.counts.predicted_positive()) /
      static_cast<double>(ratios.size());
  return score;
}

double ThresholdQuality::mean_time_to_detect() const {
  return onsets_detected == 0
             ? 0.0
             : static_cast<double>(detect_lag_epochs) /
                   static_cast<double>(onsets_detected);
}

double ThresholdQuality::mean_time_to_clear() const {
  return clears_confirmed == 0
             ? 0.0
             : static_cast<double>(clear_lag_epochs) /
                   static_cast<double>(clears_confirmed);
}

double DetourQuality::win_rate() const {
  return trials == 0
             ? 0.0
             : static_cast<double>(wins) / static_cast<double>(trials);
}

QualityScorer::QualityScorer(HostId hosts, ScorerParams params)
    : n_(hosts), params_(std::move(params)) {
  std::vector<double> thresholds{params_.severity_threshold};
  thresholds.insert(thresholds.end(), params_.threshold_sweep.begin(),
                    params_.threshold_sweep.end());
  const std::size_t edge_count =
      static_cast<std::size_t>(n_) * (n_ > 0 ? n_ - 1 : 0) / 2;
  totals_.reserve(thresholds.size());
  edge_states_.reserve(thresholds.size());
  for (const double t : thresholds) {
    totals_.push_back({.threshold = t});
    edge_states_.emplace_back(edge_count);
  }
}

void QualityScorer::observe_epoch(const DelayMatrix& truth,
                                  const SeverityMatrix& truth_sev,
                                  const DelayMatrix& monitor,
                                  const SeverityMatrix& monitor_sev) {
  if (truth.size() != n_ || monitor.size() != n_ || truth_sev.size() != n_ ||
      monitor_sev.size() != n_) {
    throw std::invalid_argument("QualityScorer: host-count mismatch");
  }
  obs::Span span("scenario-score");
  for (std::size_t t = 0; t < totals_.size(); ++t) {
    score_threshold(t, truth, truth_sev, monitor_sev);
  }
  if (params_.score_detour) score_detour(truth, truth_sev, monitor);
  ++epochs_;
  metrics().epochs_scored.increment();
}

void QualityScorer::score_threshold(std::size_t t, const DelayMatrix& truth,
                                    const SeverityMatrix& truth_sev,
                                    const SeverityMatrix& monitor_sev) {
  ThresholdQuality& q = totals_[t];
  auto& states = edge_states_[t];
  const auto thr = static_cast<float>(q.threshold);
  const auto epoch = static_cast<std::uint32_t>(epochs_);
  const bool headline = t == 0;
  ClassificationCounts epoch_counts;

  for (HostId a = 0; a < n_; ++a) {
    for (HostId b = a + 1; b < n_; ++b) {
      const bool measured = truth.has(a, b);
      const bool actual = measured && truth_sev.at(a, b) >= thr;
      const bool detected = monitor_sev.at(a, b) >= thr;
      // Classification universe: edges the ground truth defines a severity
      // for. A truly-down edge still runs the state machine (its violation
      // has factually cleared) but is not graded.
      if (measured) epoch_counts.add(detected, actual);

      EdgeState& st = states[edge_index(a, b)];
      if (actual && !st.truth_active) {
        ++q.onsets;
        st.onset_epoch = epoch;
        st.awaiting_detect = true;
        st.awaiting_clear = false;  // re-onset cancels the pending clear
        if (headline) metrics().onsets.increment();
      } else if (!actual && st.truth_active) {
        ++q.clears;
        if (headline) metrics().clears.increment();
        if (st.awaiting_detect) {
          ++q.onsets_missed;
          st.awaiting_detect = false;
        }
        if (detected) {
          st.awaiting_clear = true;
          st.clear_epoch = epoch;
        } else {
          ++q.clears_confirmed;  // alert already off: zero-lag clear
          if (headline) {
            metrics().clears_confirmed.increment();
            metrics().clear_lag_epochs.record(0);
          }
        }
      }
      st.truth_active = actual;

      if (st.awaiting_detect && detected) {
        const std::uint32_t lag = epoch - st.onset_epoch;
        q.detect_lag_epochs += lag;
        ++q.onsets_detected;
        st.awaiting_detect = false;
        if (headline) {
          metrics().onsets_detected.increment();
          metrics().detect_lag_epochs.record(lag);
        }
      }
      if (st.awaiting_clear && !detected) {
        const std::uint32_t lag = epoch - st.clear_epoch;
        q.clear_lag_epochs += lag;
        ++q.clears_confirmed;
        st.awaiting_clear = false;
        if (headline) {
          metrics().clears_confirmed.increment();
          metrics().clear_lag_epochs.record(lag);
        }
      }
      st.detect_active = detected;
    }
  }

  q.counts += epoch_counts;
  if (headline) {
    metrics().edges_scored.add(epoch_counts.total());
    metrics().true_positives.add(epoch_counts.tp);
    metrics().false_positives.add(epoch_counts.fp);
    metrics().false_negatives.add(epoch_counts.fn);
  }
}

void QualityScorer::score_detour(const DelayMatrix& truth,
                                 const SeverityMatrix& truth_sev,
                                 const DelayMatrix& monitor) {
  const auto thr = static_cast<float>(params_.severity_threshold);
  for (HostId a = 0; a < n_; ++a) {
    for (HostId b = a + 1; b < n_; ++b) {
      if (!truth.has(a, b) || truth_sev.at(a, b) < thr) continue;
      ++detour_.trials;
      metrics().detour_trials.increment();

      // The monitor picks the best one-hop relay from its own estimates —
      // exactly what a deployed detour router would have to do.
      HostId best = n_;
      float best_est = monitor.has(a, b) ? monitor.at(a, b)
                                         : std::numeric_limits<float>::max();
      for (HostId c = 0; c < n_; ++c) {
        if (c == a || c == b || !monitor.has(a, c) || !monitor.has(c, b)) {
          continue;
        }
        const float est = monitor.at(a, c) + monitor.at(c, b);
        if (est < best_est) {
          best_est = est;
          best = c;
        }
      }
      if (best == n_) continue;
      ++detour_.relay_found;

      // ...but the packets experience the ground truth.
      if (truth.has(a, best) && truth.has(best, b) &&
          truth.at(a, best) + truth.at(best, b) < truth.at(a, b)) {
        ++detour_.wins;
        metrics().detour_wins.increment();
      }
    }
  }
}

}  // namespace tiv::scenario
