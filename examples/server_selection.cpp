// server_selection: the paper's motivating scenario — clients picking the
// nearest of a set of replica servers — comparing four selection schemes:
//
//   random        pick any server (no network awareness)
//   vivaldi       rank servers by Vivaldi coordinates
//   meridian      recursive online probing
//   tiv-meridian  Meridian with the TIV alert mechanism (§5.3)
//
//   ./server_selection [--hosts=600] [--servers=30] [--seed=1]
#include <algorithm>
#include <cmath>
#include <limits>
#include <iostream>

#include "core/tiv_aware.hpp"
#include "delayspace/datasets.hpp"
#include "embedding/vivaldi.hpp"
#include "meridian/meridian.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using delayspace::HostId;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 600));
  const auto servers = static_cast<std::uint32_t>(flags.get_int("servers", 30));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  reject_unknown_flags(flags);

  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const auto space = delayspace::generate_delay_space(params);
  const auto& m = space.measured;
  std::cout << "delay space: " << m.size() << " hosts; " << servers
            << " replica servers\n";

  // Shared Vivaldi embedding (runs as a background service).
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ seed;
  embedding::VivaldiSystem vivaldi(m, vp);
  vivaldi.run(200);

  // The replica servers double as the Meridian overlay.
  Rng rng(seed);
  const auto picks = rng.sample_without_replacement(m.size(), servers);
  std::vector<HostId> server_set(picks.begin(), picks.end());
  std::sort(server_set.begin(), server_set.end());

  meridian::MeridianParams mp;  // paper's normal parameters
  const meridian::MeridianOverlay meridian_plain(m, server_set, mp);
  const meridian::MeridianOverlay meridian_tiv(
      m, server_set, core::tiv_aware_meridian_params(vivaldi, mp));

  struct Scheme {
    std::string name;
    std::vector<double> penalties;
    std::uint64_t probes = 0;
  };
  std::vector<Scheme> schemes{{"random", {}, 0},
                              {"vivaldi", {}, 0},
                              {"meridian", {}, 0},
                              {"tiv-meridian", {}, 0}};

  Rng client_rng = rng.split();
  for (HostId client = 0; client < m.size(); ++client) {
    if (std::binary_search(server_set.begin(), server_set.end(), client)) {
      continue;
    }
    auto penalty = [&](HostId chosen) {
      return neighbor::percentage_penalty(m, client, chosen, server_set);
    };
    // random
    schemes[0].penalties.push_back(
        penalty(server_set[client_rng.uniform_index(server_set.size())]));
    // vivaldi: rank by coordinates, no probes
    HostId best = server_set.front();
    double best_pred = std::numeric_limits<double>::infinity();
    for (HostId s : server_set) {
      const double p = vivaldi.predicted(client, s);
      if (p < best_pred) {
        best_pred = p;
        best = s;
      }
    }
    schemes[1].penalties.push_back(penalty(best));
    // meridian variants
    const HostId start = server_set[client_rng.uniform_index(server_set.size())];
    const auto q1 = meridian_plain.find_closest(client, start);
    schemes[2].penalties.push_back(penalty(q1.chosen));
    schemes[2].probes += q1.probes;
    const auto q2 = meridian_tiv.find_closest(client, start);
    schemes[3].penalties.push_back(penalty(q2.chosen));
    schemes[3].probes += q2.probes;
  }

  print_section(std::cout, "Server selection penalty (percent over optimal)");
  Table table({"scheme", "median", "p90", "p99", "perfect %", "probes/query"});
  for (auto& s : schemes) {
    std::vector<double> clean;
    std::size_t perfect = 0;
    for (double p : s.penalties) {
      if (std::isnan(p)) continue;
      clean.push_back(p);
      perfect += p <= 1e-9;
    }
    const Summary sum = summarize(clean);
    const double p99 = percentile(clean, 99);
    table.add_row(
        {s.name, format_double(sum.median, 1), format_double(sum.p90, 1),
         format_double(p99, 1),
         format_double(100.0 * static_cast<double>(perfect) /
                           static_cast<double>(clean.size()),
                       1),
         format_double(static_cast<double>(s.probes) /
                           static_cast<double>(clean.size()),
                       1)});
  }
  table.print(std::cout);
  return 0;
}
