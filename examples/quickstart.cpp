// Quickstart: generate a synthetic Internet delay space, measure its TIV
// characteristics, embed it with Vivaldi, and use the TIV alert mechanism to
// flag the edges causing severe violations.
//
//   ./quickstart [--hosts=400] [--seed=1]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/alert.hpp"
#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/datasets.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  reject_unknown_flags(flags);

  // 1. Generate a DS^2-like delay space: AS topology + valley-free policy
  //    routing + host attachment.
  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const delayspace::DelaySpace space = delayspace::generate_delay_space(params);
  const auto& matrix = space.measured;
  std::cout << "Generated " << matrix.size() << "-host delay space ("
            << matrix.measured_pair_count() << " measured pairs)\n";

  // 2. How bad are the triangle inequality violations?
  const core::TivAnalyzer analyzer(matrix);
  std::cout << "Fraction of violating triangles: "
            << format_double(analyzer.violating_triangle_fraction(200000), 3)
            << "\n";
  const auto samples = analyzer.sampled_severities(2000);
  std::vector<double> sev;
  sev.reserve(samples.size());
  for (const auto& s : samples) sev.push_back(s.second);
  const Summary sum = summarize(sev);
  std::cout << "Edge TIV severity: median=" << format_double(sum.median, 3)
            << " p90=" << format_double(sum.p90, 3)
            << " max=" << format_double(sum.max, 3) << "\n";

  // 3. Embed with Vivaldi (5-D, 32 neighbors) and check the embedding error.
  embedding::VivaldiParams vp;
  vp.seed = seed;
  embedding::VivaldiSystem vivaldi(matrix, vp);
  vivaldi.run(100);
  const auto err = vivaldi.snapshot_error(20000).absolute_error();
  std::cout << "Vivaldi absolute error after 100 s: median="
            << format_double(err.median, 1)
            << " ms, p90=" << format_double(err.p90, 1) << " ms\n";

  // 4. TIV alert: flag edges whose prediction ratio says "shrunk in the
  //    embedding" and verify the flagged edges really are the severe ones.
  const core::TivAlert alert(vivaldi, /*threshold=*/0.6);
  const auto ratio_samples = core::collect_ratio_severity_samples(vivaldi, 2000);
  const auto metrics = core::evaluate_alert(ratio_samples, /*worst=*/0.05,
                                            alert.threshold());
  std::cout << "TIV alert (threshold 0.6) on worst-5% severity edges: "
            << "accuracy=" << format_double(metrics.accuracy, 2)
            << " recall=" << format_double(metrics.recall, 2)
            << " (alerts on " << format_double(100 * metrics.alert_fraction, 1)
            << "% of edges)\n";

  // 5. Show the three most severe flagged edges.
  Table table({"edge", "measured_ms", "predicted_ms", "ratio", "severity"});
  std::vector<core::EdgeRatioSample> flagged;
  for (const auto& s : ratio_samples) {
    if (!std::isnan(s.ratio) && s.ratio < alert.threshold()) {
      flagged.push_back(s);
    }
  }
  std::sort(flagged.begin(), flagged.end(),
            [](const auto& a, const auto& b) { return a.severity > b.severity; });
  for (std::size_t i = 0; i < std::min<std::size_t>(3, flagged.size()); ++i) {
    const auto& s = flagged[i];
    table.add_row({std::to_string(s.a) + "-" + std::to_string(s.b),
                   format_double(matrix.at(s.a, s.b), 1),
                   format_double(vivaldi.predicted(s.a, s.b), 1),
                   format_double(s.ratio, 2), format_double(s.severity, 3)});
  }
  std::cout << "\nMost severe alerted edges:\n";
  table.print(std::cout);
  return 0;
}
