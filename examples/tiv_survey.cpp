// tiv_survey: the paper's §2 measurement study as a command-line tool.
// Point it at a saved delay matrix (DelayMatrix::save format) or let it
// generate a preset, and it reports the TIV characteristics: violating-
// triangle fraction, severity distribution, severity vs delay, cluster
// structure, and the worst offender edges.
//
//   ./tiv_survey [--matrix=path] [--dataset=ds2|meridian|p2psim|planetlab]
//                [--hosts=500] [--worst=10]
#include <algorithm>
#include <iostream>

#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/datasets.hpp"
#include "delayspace/delay_matrix.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

tiv::delayspace::DatasetId parse_dataset(const std::string& name) {
  using tiv::delayspace::DatasetId;
  if (name == "ds2") return DatasetId::kDs2;
  if (name == "meridian") return DatasetId::kMeridian;
  if (name == "p2psim") return DatasetId::kP2psim;
  if (name == "planetlab") return DatasetId::kPlanetLab;
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  const Flags flags(argc, argv);
  const std::string matrix_path = flags.get_string("matrix", "");
  const std::string dataset = flags.get_string("dataset", "ds2");
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 500));
  const auto worst = static_cast<std::size_t>(flags.get_int("worst", 10));
  reject_unknown_flags(flags);

  delayspace::DelayMatrix matrix;
  if (!matrix_path.empty()) {
    matrix = delayspace::DelayMatrix::load(matrix_path);
    std::cout << "loaded " << matrix.size() << "-host matrix from "
              << matrix_path << "\n";
  } else {
    matrix =
        delayspace::make_dataset(parse_dataset(dataset), hosts).measured;
    std::cout << "generated " << dataset << " preset with " << matrix.size()
              << " hosts\n";
  }

  const core::TivAnalyzer analyzer(matrix);

  print_section(std::cout, "Delay distribution");
  const Summary delays = summarize(matrix.all_delays());
  Table dt({"metric", "value"});
  dt.add_row({"measured pairs", std::to_string(matrix.measured_pair_count())});
  dt.add_row({"missing fraction", format_double(matrix.missing_fraction(), 4)});
  dt.add_row({"median delay (ms)", format_double(delays.median, 1)});
  dt.add_row({"p90 delay (ms)", format_double(delays.p90, 1)});
  dt.add_row({"max delay (ms)", format_double(delays.max, 1)});
  dt.print(std::cout);

  print_section(std::cout, "Triangle inequality violations");
  const double tri = analyzer.violating_triangle_fraction(500000);
  const auto samples = analyzer.sampled_severities(10000);
  std::vector<double> sev;
  sev.reserve(samples.size());
  for (const auto& s : samples) sev.push_back(s.second);
  const Summary ss = summarize(sev);
  Table tt({"metric", "value"});
  tt.add_row({"violating triangle fraction", format_double(tri, 3)});
  tt.add_row({"edge severity median", format_double(ss.median, 4)});
  tt.add_row({"edge severity p90", format_double(ss.p90, 4)});
  tt.add_row({"edge severity max", format_double(ss.max, 3)});
  tt.print(std::cout);

  print_section(std::cout, "Severity vs edge delay (100 ms bins)");
  BinnedSeries series(0.0, 1000.0, 100.0);
  for (const auto& [edge, s] : samples) {
    series.add(matrix.at(edge.first, edge.second), s);
  }
  Table bt({"delay bin", "median sev", "p90 sev", "edges"});
  for (const auto& b : series.bins()) {
    bt.add_row({format_double(b.x_center, 0), format_double(b.median, 4),
                format_double(b.p90, 4), std::to_string(b.count)});
  }
  bt.print(std::cout);

  print_section(std::cout, "Cluster structure");
  const auto clustering = delayspace::cluster_delay_space(matrix, {});
  Table ct({"cluster", "size"});
  for (std::size_t c = 0; c < clustering.num_clusters(); ++c) {
    ct.add_row({std::to_string(c),
                std::to_string(clustering.members[c].size())});
  }
  ct.add_row({"noise", std::to_string(clustering.noise.size())});
  ct.print(std::cout);

  print_section(std::cout, "Worst edges by TIV severity");
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table wt({"edge", "delay (ms)", "severity", "#TIVs", "max ratio"});
  for (std::size_t i = 0; i < std::min(worst, sorted.size()); ++i) {
    const auto [edge, s] = sorted[i];
    const auto stats = analyzer.edge_stats(edge.first, edge.second);
    wt.add_row({std::to_string(edge.first) + "-" + std::to_string(edge.second),
                format_double(matrix.at(edge.first, edge.second), 1),
                format_double(s, 3), std::to_string(stats.violation_count),
                format_double(stats.max_ratio, 2)});
  }
  wt.print(std::cout);
  return 0;
}
