// overlay_multicast: the paper's other motivating scenario — a tree-based
// overlay multicast where each joining node picks a nearby parent. Three
// parent-selection policies are compared by total tree cost and root-to-
// leaf stretch:
//
//   random           pick any existing member
//   vivaldi          nearest existing member by coordinates
//   vivaldi+alert    like vivaldi, but candidates whose edge to the joiner
//                    raises a TIV alert are measured before use, and the
//                    joiner falls back to the next candidate when the
//                    measurement is much worse than predicted
//
//   ./overlay_multicast [--hosts=500] [--fanout=8] [--seed=1]
#include <algorithm>
#include <iostream>

#include "core/alert.hpp"
#include "delayspace/datasets.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using tiv::delayspace::HostId;

struct Tree {
  std::vector<int> parent;          // -1 for the root
  std::vector<std::uint32_t> kids;  // fan-out counter
  double edge_cost = 0.0;
  std::uint64_t probes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 500));
  const auto fanout = static_cast<std::uint32_t>(flags.get_int("fanout", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  reject_unknown_flags(flags);

  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const auto space = delayspace::generate_delay_space(params);
  const auto& m = space.measured;

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ seed;
  embedding::VivaldiSystem vivaldi(m, vp);
  vivaldi.run(200);
  const core::TivAlert alert(vivaldi, 0.6);

  // Join order is the same for all policies.
  std::vector<HostId> order(m.size());
  for (HostId i = 0; i < m.size(); ++i) order[i] = i;
  Rng rng(seed ^ 0xbeef);
  rng.shuffle(order);

  enum class Policy { kRandom, kVivaldi, kVivaldiAlert };
  auto build = [&](Policy policy) {
    Tree tree;
    tree.parent.assign(m.size(), -1);
    tree.kids.assign(m.size(), 0);
    std::vector<HostId> members{order[0]};
    Rng pick_rng(seed ^ 0xfeed);
    for (std::size_t k = 1; k < order.size(); ++k) {
      const HostId join = order[k];
      // Eligible parents: members with spare fan-out and a measured edge.
      std::vector<HostId> eligible;
      for (HostId p : members) {
        if (tree.kids[p] < fanout && m.has(join, p)) eligible.push_back(p);
      }
      if (eligible.empty()) eligible = members;
      HostId parent = eligible.front();
      if (policy == Policy::kRandom) {
        parent = eligible[pick_rng.uniform_index(eligible.size())];
      } else {
        // Rank by predicted delay.
        std::sort(eligible.begin(), eligible.end(), [&](HostId a, HostId b) {
          return vivaldi.predicted(join, a) < vivaldi.predicted(join, b);
        });
        parent = eligible.front();
        if (policy == Policy::kVivaldiAlert) {
          // Measure alerted candidates before committing: a shrunk edge's
          // true delay is probably much larger than predicted.
          for (HostId cand : eligible) {
            if (!alert.alerted(join, cand)) {
              parent = cand;
              break;
            }
            ++tree.probes;  // on-demand verification probe
            if (m.at(join, cand) <
                2.0 * vivaldi.predicted(join, cand)) {
              parent = cand;  // measurement says the edge is fine
              break;
            }
          }
        }
      }
      tree.parent[join] = static_cast<int>(parent);
      ++tree.kids[parent];
      tree.edge_cost += m.at(join, parent);
      members.push_back(join);
    }
    return tree;
  };

  auto evaluate = [&](const char* name, const Tree& tree, Table& table) {
    // Root-to-node latency via tree edges vs direct delay (stretch).
    const HostId root = order[0];
    std::vector<double> depth(m.size(), 0.0);
    // Children were always attached after their parent, so a pass in join
    // order resolves depths.
    for (const HostId h : order) {
      if (tree.parent[h] >= 0) {
        const auto p = static_cast<HostId>(tree.parent[h]);
        depth[h] = depth[p] + m.at(h, p);
      }
    }
    std::vector<double> stretch;
    for (HostId h = 0; h < m.size(); ++h) {
      if (h == root || !m.has(root, h) || m.at(root, h) <= 0) continue;
      stretch.push_back(depth[h] / m.at(root, h));
    }
    const Summary st = summarize(stretch);
    table.add_row({name, format_double(tree.edge_cost / 1000.0, 1),
                   format_double(st.median, 2), format_double(st.p90, 2),
                   std::to_string(tree.probes)});
  };

  print_section(std::cout, "Overlay multicast tree quality");
  Table table({"policy", "tree cost (s)", "median stretch", "p90 stretch",
               "probes"});
  evaluate("random", build(Policy::kRandom), table);
  evaluate("vivaldi", build(Policy::kVivaldi), table);
  evaluate("vivaldi+alert", build(Policy::kVivaldiAlert), table);
  table.print(std::cout);
  std::cout << "(stretch = tree path delay from the root / direct delay)\n";
  return 0;
}
